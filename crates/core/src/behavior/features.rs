//! Per-period feature extraction from application access traces.
//!
//! The behavior-modeling process (§III-C of the paper) starts by collecting
//! *"several predefined metrics … based on application data access past
//! traces. These metrics are collected per time period in order to build the
//! application timeline."* [`PeriodFeatures`] is that per-period metric
//! vector and [`extract_timeline`] builds the timeline from a trace.

use concord_sim::SimDuration;
use concord_workload::{Trace, TraceOp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The metrics collected for one time period of the application timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodFeatures {
    /// Index of the period in the timeline.
    pub period: usize,
    /// Operations per second during the period.
    pub ops_per_sec: f64,
    /// Reads per second.
    pub read_rate: f64,
    /// Writes per second.
    pub write_rate: f64,
    /// Fraction of operations that are writes.
    pub write_ratio: f64,
    /// Mean payload size in bytes.
    pub mean_value_size: f64,
    /// Access skew: fraction of operations that touch the 10% most popular
    /// keys of the period (0.1 for a perfectly uniform access pattern).
    pub hot_key_concentration: f64,
    /// Number of distinct keys touched.
    pub distinct_keys: u64,
}

impl PeriodFeatures {
    /// The feature vector used for clustering (order is stable and
    /// documented: rate, write ratio, value size, skew).
    pub fn vector(&self) -> Vec<f64> {
        vec![
            self.ops_per_sec,
            self.write_ratio,
            self.mean_value_size,
            self.hot_key_concentration,
        ]
    }

    /// Number of clustering dimensions.
    pub const DIMENSIONS: usize = 4;
}

/// Compute the features of one window of trace operations.
pub fn period_features(period: usize, ops: &[TraceOp], window: SimDuration) -> PeriodFeatures {
    let secs = window.as_secs_f64().max(1e-9);
    if ops.is_empty() {
        return PeriodFeatures {
            period,
            ops_per_sec: 0.0,
            read_rate: 0.0,
            write_rate: 0.0,
            write_ratio: 0.0,
            mean_value_size: 0.0,
            hot_key_concentration: 0.0,
            distinct_keys: 0,
        };
    }
    let total = ops.len() as f64;
    let writes = ops.iter().filter(|o| o.op.is_write()).count() as f64;
    let reads = total - writes;
    let mean_value_size = ops.iter().map(|o| o.value_size as f64).sum::<f64>() / total;

    let mut key_counts: HashMap<u64, u64> = HashMap::new();
    for op in ops {
        *key_counts.entry(op.key).or_insert(0) += 1;
    }
    let distinct = key_counts.len() as u64;
    let mut counts: Vec<u64> = key_counts.into_values().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let hot_count = ((counts.len() as f64 * 0.1).ceil() as usize).max(1);
    let hot_ops: u64 = counts.iter().take(hot_count).sum();
    let hot_key_concentration = hot_ops as f64 / total;

    PeriodFeatures {
        period,
        ops_per_sec: total / secs,
        read_rate: reads / secs,
        write_rate: writes / secs,
        write_ratio: writes / total,
        mean_value_size,
        hot_key_concentration,
        distinct_keys: distinct,
    }
}

/// Build the application timeline: one [`PeriodFeatures`] per `period`-long
/// window of the trace.
pub fn extract_timeline(trace: &Trace, period: SimDuration) -> Vec<PeriodFeatures> {
    trace
        .windows(period)
        .into_iter()
        .enumerate()
        .map(|(i, ops)| period_features(i, ops, period))
        .collect()
}

/// Normalize feature vectors to zero mean / unit variance per dimension so
/// that clustering is not dominated by the dimension with the largest scale.
/// Returns the normalized vectors plus the (mean, std) per dimension so that
/// new observations can be normalized the same way at classification time.
pub fn normalize(vectors: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<(f64, f64)>) {
    if vectors.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let dims = vectors[0].len();
    let n = vectors.len() as f64;
    let mut stats = Vec::with_capacity(dims);
    for d in 0..dims {
        let mean = vectors.iter().map(|v| v[d]).sum::<f64>() / n;
        let var = vectors.iter().map(|v| (v[d] - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt();
        stats.push((mean, if std > 1e-12 { std } else { 1.0 }));
    }
    let normalized = vectors
        .iter()
        .map(|v| {
            v.iter()
                .enumerate()
                .map(|(d, x)| (x - stats[d].0) / stats[d].1)
                .collect()
        })
        .collect();
    (normalized, stats)
}

/// Normalize a single vector with previously computed per-dimension stats.
pub fn normalize_with(vector: &[f64], stats: &[(f64, f64)]) -> Vec<f64> {
    vector
        .iter()
        .zip(stats.iter())
        .map(|(x, (mean, std))| (x - mean) / std)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use concord_sim::SimTime;
    use concord_workload::OperationType;

    fn op(at_ms: u64, write: bool, key: u64, size: u32) -> TraceOp {
        TraceOp {
            at: SimTime::from_millis(at_ms),
            op: if write {
                OperationType::Update
            } else {
                OperationType::Read
            },
            key,
            value_size: size,
        }
    }

    #[test]
    fn features_of_a_simple_window() {
        let ops: Vec<TraceOp> = (0..100)
            .map(|i| op(i * 10, i % 4 == 0, i % 10, 100))
            .collect();
        let f = period_features(0, &ops, SimDuration::from_secs(1));
        assert_eq!(f.period, 0);
        assert!((f.ops_per_sec - 100.0).abs() < 1e-9);
        assert!((f.write_ratio - 0.25).abs() < 1e-9);
        assert!((f.read_rate - 75.0).abs() < 1e-9);
        assert!((f.write_rate - 25.0).abs() < 1e-9);
        assert_eq!(f.mean_value_size, 100.0);
        assert_eq!(f.distinct_keys, 10);
        // Uniform over 10 keys → the hottest key (10% of keys) gets ~10%.
        assert!(f.hot_key_concentration < 0.2);
    }

    #[test]
    fn empty_window_is_zeroed() {
        let f = period_features(3, &[], SimDuration::from_secs(1));
        assert_eq!(f.ops_per_sec, 0.0);
        assert_eq!(f.distinct_keys, 0);
        assert_eq!(f.period, 3);
    }

    #[test]
    fn skewed_access_has_high_concentration() {
        // 90% of ops on one key out of 20.
        let mut ops = Vec::new();
        for i in 0..100u64 {
            let key = if i < 90 { 0 } else { i % 20 };
            ops.push(op(i, false, key, 50));
        }
        let f = period_features(0, &ops, SimDuration::from_secs(1));
        assert!(f.hot_key_concentration > 0.8);
    }

    #[test]
    fn timeline_extraction_counts_periods() {
        let mut trace = Trace::new();
        for i in 0..1000u64 {
            trace.push(op(i * 10, i % 2 == 0, i % 50, 100));
        }
        // 10 seconds of trace, 1-second periods.
        let timeline = extract_timeline(&trace, SimDuration::from_secs(1));
        assert_eq!(timeline.len(), 10);
        assert!(timeline.iter().all(|f| (f.ops_per_sec - 100.0).abs() < 5.0));
        assert_eq!(timeline[4].period, 4);
    }

    #[test]
    fn normalization_centers_and_scales() {
        let vectors = vec![vec![100.0, 0.1], vec![200.0, 0.2], vec![300.0, 0.3]];
        let (normed, stats) = normalize(&vectors);
        assert_eq!(normed.len(), 3);
        // Mean of each normalized dimension is ~0.
        for d in 0..2 {
            let mean: f64 = normed.iter().map(|v| v[d]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-9);
        }
        // Round trip through normalize_with matches.
        let again = normalize_with(&vectors[1], &stats);
        assert!((again[0] - normed[1][0]).abs() < 1e-12);
    }

    #[test]
    fn constant_dimension_does_not_divide_by_zero() {
        let vectors = vec![vec![5.0, 1.0], vec![5.0, 2.0]];
        let (normed, _) = normalize(&vectors);
        assert!(normed.iter().all(|v| v[0].abs() < 1e-9));
    }

    #[test]
    fn feature_vector_has_documented_dimension() {
        let f = period_features(0, &[], SimDuration::from_secs(1));
        assert_eq!(f.vector().len(), PeriodFeatures::DIMENSIONS);
    }
}
