//! k-means clustering (with k-means++ seeding and silhouette-based model
//! selection), used to identify the application *states* in the timeline.
//!
//! The paper: *"This timeline is further processed by machine learning
//! techniques in order to identify the different states and states
//! evolvements of the application during its lifetime."* k-means over the
//! normalized per-period feature vectors is the canonical unsupervised choice
//! for this step; it is implemented from scratch here to keep the dependency
//! set minimal.

use concord_sim::SimRng;

/// The result of a k-means fit.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansFit {
    /// Cluster centroids (k × dims).
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index assigned to every input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their centroid (inertia).
    pub inertia: f64,
}

/// Squared Euclidean distance.
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Index of the nearest centroid.
fn nearest(point: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = dist2(point, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    (best, best_d)
}

/// k-means++ initialization: the first centroid is a random point, each
/// subsequent centroid is sampled proportionally to its squared distance from
/// the nearest already-chosen centroid.
fn init_plus_plus(points: &[Vec<f64>], k: usize, rng: &mut SimRng) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.index(points.len())].clone());
    while centroids.len() < k {
        let weights: Vec<f64> = points.iter().map(|p| nearest(p, &centroids).1).collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            // All points coincide with existing centroids; duplicate one.
            centroids.push(points[rng.index(points.len())].clone());
            continue;
        }
        let mut target = rng.next_f64() * total;
        let mut chosen = points.len() - 1;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                chosen = i;
                break;
            }
            target -= w;
        }
        centroids.push(points[chosen].clone());
    }
    centroids
}

/// Run k-means (Lloyd's algorithm) on `points`.
///
/// # Panics
/// Panics if `points` is empty, `k` is zero, or `k > points.len()`.
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iters: usize, rng: &mut SimRng) -> KMeansFit {
    assert!(!points.is_empty(), "cannot cluster an empty set");
    assert!(k >= 1 && k <= points.len(), "k must be in 1..=len");
    let dims = points[0].len();
    let mut centroids = init_plus_plus(points, k, rng);
    let mut assignments = vec![0usize; points.len()];

    for _ in 0..max_iters.max(1) {
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let (c, _) = nearest(p, &centroids);
            if assignments[i] != c {
                assignments[i] = c;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0; dims]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(assignments.iter()) {
            counts[a] += 1;
            for d in 0..dims {
                sums[a][d] += p[d];
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster on the farthest point.
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        nearest(a, &centroids)
                            .1
                            .partial_cmp(&nearest(b, &centroids).1)
                            .unwrap()
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                centroids[c] = points[far].clone();
            } else {
                for d in 0..dims {
                    centroids[c][d] = sums[c][d] / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(assignments.iter())
        .map(|(p, &a)| dist2(p, &centroids[a]))
        .sum();
    KMeansFit {
        centroids,
        assignments,
        inertia,
    }
}

/// Mean silhouette coefficient of a clustering (−1 … 1, higher is better).
/// Returns 0 for degenerate clusterings (a single cluster or singleton data).
pub fn silhouette(points: &[Vec<f64>], fit: &KMeansFit) -> f64 {
    let k = fit.centroids.len();
    if k < 2 || points.len() < 3 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for (i, p) in points.iter().enumerate() {
        let own = fit.assignments[i];
        // Mean distance to own cluster (a) and to the best other cluster (b).
        let mut sums = vec![0.0; k];
        let mut counts = vec![0usize; k];
        for (j, q) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            sums[fit.assignments[j]] += dist2(p, q).sqrt();
            counts[fit.assignments[j]] += 1;
        }
        if counts[own] == 0 {
            continue; // singleton cluster: silhouette undefined for the point
        }
        let a = sums[own] / counts[own] as f64;
        let b = (0..k)
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if !b.is_finite() {
            continue;
        }
        total += (b - a) / a.max(b).max(1e-12);
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Fit k-means for every k in `k_range` and return the fit with the best
/// silhouette score (ties favour fewer clusters).
pub fn select_k(
    points: &[Vec<f64>],
    k_range: std::ops::RangeInclusive<usize>,
    max_iters: usize,
    rng: &mut SimRng,
) -> (usize, KMeansFit) {
    let mut best: Option<(usize, KMeansFit, f64)> = None;
    for k in k_range {
        if k > points.len() || k == 0 {
            continue;
        }
        let fit = kmeans(points, k, max_iters, rng);
        let score = silhouette(points, &fit);
        let better = match &best {
            None => true,
            Some((_, _, best_score)) => score > *best_score + 1e-9,
        };
        if better {
            best = Some((k, fit, score));
        }
    }
    let (k, fit, _) = best.expect("k_range must contain at least one feasible k");
    (k, fit)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs in 2-D.
    fn blobs(rng: &mut SimRng) -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [(0.0, 0.0), (10.0, 10.0), (0.0, 10.0)];
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for (label, (cx, cy)) in centers.iter().enumerate() {
            for _ in 0..30 {
                points.push(vec![cx + rng.next_f64() - 0.5, cy + rng.next_f64() - 0.5]);
                labels.push(label);
            }
        }
        (points, labels)
    }

    #[test]
    fn recovers_well_separated_clusters() {
        let mut rng = SimRng::new(1);
        let (points, labels) = blobs(&mut rng);
        let fit = kmeans(&points, 3, 100, &mut rng);
        assert_eq!(fit.centroids.len(), 3);
        // Every ground-truth cluster must map to exactly one k-means cluster.
        for label in 0..3 {
            let assigned: std::collections::HashSet<usize> = points
                .iter()
                .zip(labels.iter())
                .zip(fit.assignments.iter())
                .filter(|((_, l), _)| **l == label)
                .map(|(_, &a)| a)
                .collect();
            assert_eq!(assigned.len(), 1, "cluster {label} split across centroids");
        }
        assert!(fit.inertia < 100.0);
    }

    #[test]
    fn single_cluster_is_the_mean() {
        let points = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let mut rng = SimRng::new(2);
        let fit = kmeans(&points, 1, 50, &mut rng);
        assert!((fit.centroids[0][0] - 3.0).abs() < 1e-9);
        assert!((fit.centroids[0][1] - 4.0).abs() < 1e-9);
        assert!(fit.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let points = vec![vec![0.0], vec![5.0], vec![9.0]];
        let mut rng = SimRng::new(3);
        let fit = kmeans(&points, 3, 50, &mut rng);
        assert!(fit.inertia < 1e-9);
    }

    #[test]
    fn silhouette_prefers_the_true_k() {
        let mut rng = SimRng::new(4);
        let (points, _) = blobs(&mut rng);
        let fit2 = kmeans(&points, 2, 100, &mut rng);
        let fit3 = kmeans(&points, 3, 100, &mut rng);
        assert!(silhouette(&points, &fit3) > silhouette(&points, &fit2));
    }

    #[test]
    fn select_k_finds_three_blobs() {
        let mut rng = SimRng::new(5);
        let (points, _) = blobs(&mut rng);
        let (k, fit) = select_k(&points, 2..=6, 100, &mut rng);
        assert_eq!(k, 3, "silhouette should select the true number of blobs");
        assert_eq!(fit.centroids.len(), 3);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut rng1 = SimRng::new(7);
        let mut rng2 = SimRng::new(7);
        let (points, _) = blobs(&mut rng1);
        let (points2, _) = blobs(&mut rng2);
        let fit1 = kmeans(&points, 3, 100, &mut rng1);
        let fit2 = kmeans(&points2, 3, 100, &mut rng2);
        assert_eq!(fit1.assignments, fit2.assignments);
    }

    #[test]
    fn identical_points_do_not_loop_forever() {
        let points = vec![vec![1.0, 1.0]; 10];
        let mut rng = SimRng::new(8);
        let fit = kmeans(&points, 3, 100, &mut rng);
        assert_eq!(fit.assignments.len(), 10);
        assert!(fit.inertia < 1e-9);
        assert_eq!(silhouette(&points, &fit), 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn k_larger_than_points_is_rejected() {
        let mut rng = SimRng::new(9);
        kmeans(&[vec![1.0]], 2, 10, &mut rng);
    }
}
