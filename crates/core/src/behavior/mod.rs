//! Customized consistency by application behavior modeling (§III-C).
//!
//! The third contribution of the paper: an **offline** modeling process that
//! learns an application's consistency requirements from its access traces,
//! and a **runtime** classifier that recognizes the application's current
//! state and applies the consistency policy associated with it.
//!
//! Pipeline:
//!
//! ```text
//! access trace ──windows──▶ per-period metrics (features)
//!              ──k-means──▶ application states
//!              ──rules────▶ state → policy assignment        (offline)
//! live metrics ──nearest centroid──▶ current state → policy  (runtime)
//! ```
//!
//! See [`BehaviorModelBuilder`] for the offline side and
//! [`BehaviorDrivenPolicy`](crate::behavior::driven::BehaviorDrivenPolicy)
//! for the runtime side.

pub mod driven;
pub mod features;
pub mod kmeans;
pub mod model;
pub mod rules;

pub use driven::BehaviorDrivenPolicy;
pub use features::{extract_timeline, period_features, PeriodFeatures};
pub use kmeans::{kmeans, select_k, silhouette, KMeansFit};
pub use model::{ApplicationState, BehaviorModel, BehaviorModelBuilder};
pub use rules::{PolicyKind, PolicyRule, RuleCondition, RuleSet};
