//! The offline application behavior model and the runtime state classifier.
//!
//! Putting the pieces of §III-C together:
//!
//! 1. **offline** — [`BehaviorModelBuilder::fit`] extracts the per-period
//!    timeline from an access trace, normalizes it, clusters it with k-means
//!    (selecting `k` by silhouette), and associates every discovered state
//!    with a consistency policy through the [`RuleSet`];
//! 2. **runtime** — [`BehaviorModel::classify`] maps the live period's
//!    features to the nearest state centroid and returns the policy
//!    associated with that state, which the adaptive runtime then applies.

use super::features::{extract_timeline, normalize, normalize_with, PeriodFeatures};
use super::kmeans::{kmeans, select_k, KMeansFit};
use super::rules::{PolicyKind, RuleSet};
use concord_sim::{SimDuration, SimRng};
use concord_workload::Trace;
use serde::{Deserialize, Serialize};

/// A discovered application state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationState {
    /// State index.
    pub id: usize,
    /// Centroid expressed back in raw (un-normalized) feature units.
    pub centroid: PeriodFeatures,
    /// The consistency policy assigned to the state.
    pub policy: PolicyKind,
    /// The name of the rule that made the assignment.
    pub assigned_by: String,
    /// How many timeline periods belong to this state.
    pub periods: usize,
}

/// The fitted behavior model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorModel {
    states: Vec<ApplicationState>,
    /// Normalized centroids used for nearest-centroid classification.
    normalized_centroids: Vec<Vec<f64>>,
    /// Per-dimension (mean, std) used to normalize observations.
    feature_stats: Vec<(f64, f64)>,
    /// The period length the model was built with.
    period: SimDuration,
    /// The state assigned to every period of the training timeline.
    timeline_states: Vec<usize>,
}

impl BehaviorModel {
    /// The discovered states.
    pub fn states(&self) -> &[ApplicationState] {
        &self.states
    }

    /// Number of discovered states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The period length used to build (and expected when classifying).
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The training timeline's state sequence.
    pub fn timeline_states(&self) -> &[usize] {
        &self.timeline_states
    }

    /// The training mean of the hot-key-concentration feature. Runtime
    /// classification uses this as a neutral value when the live monitor
    /// cannot observe per-key popularity.
    pub fn neutral_hot_key_concentration(&self) -> f64 {
        // Dimension order is documented in `PeriodFeatures::vector`.
        self.feature_stats
            .get(3)
            .map(|(mean, _)| *mean)
            .unwrap_or(0.0)
    }

    /// Classify a live period into one of the discovered states and return
    /// the state plus the policy to apply.
    pub fn classify(&self, features: &PeriodFeatures) -> &ApplicationState {
        let v = normalize_with(&features.vector(), &self.feature_stats);
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, c) in self.normalized_centroids.iter().enumerate() {
            let d: f64 = v.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        &self.states[best]
    }

    /// Serialize the model to JSON (for storing alongside the application).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("model serialization cannot fail")
    }

    /// Load a model from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Configuration of the offline modeling process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorModelBuilder {
    /// Length of one timeline period.
    pub period: SimDuration,
    /// Candidate numbers of states (k) to try; the silhouette score decides.
    pub min_states: usize,
    /// Upper bound of the state-count search.
    pub max_states: usize,
    /// k-means iteration cap.
    pub max_iterations: usize,
    /// The rule set used to assign policies to states.
    pub rules: RuleSet,
}

impl Default for BehaviorModelBuilder {
    fn default() -> Self {
        BehaviorModelBuilder {
            period: SimDuration::from_secs(60),
            min_states: 2,
            max_states: 6,
            max_iterations: 100,
            rules: RuleSet::generic(),
        }
    }
}

impl BehaviorModelBuilder {
    /// Create a builder with a given timeline period.
    pub fn new(period: SimDuration) -> Self {
        BehaviorModelBuilder {
            period,
            ..Default::default()
        }
    }

    /// Replace the rule set (e.g. to add administrator-specific rules).
    pub fn with_rules(mut self, rules: RuleSet) -> Self {
        self.rules = rules;
        self
    }

    /// Bound the number of states to search over.
    pub fn with_state_bounds(mut self, min_states: usize, max_states: usize) -> Self {
        assert!(min_states >= 1 && max_states >= min_states);
        self.min_states = min_states;
        self.max_states = max_states;
        self
    }

    /// Fit the behavior model on an access trace.
    ///
    /// # Panics
    /// Panics if the trace produces fewer than two timeline periods (there is
    /// nothing to model).
    pub fn fit(&self, trace: &Trace, rng: &mut SimRng) -> BehaviorModel {
        let timeline = extract_timeline(trace, self.period);
        assert!(
            timeline.len() >= 2,
            "behavior modeling needs at least two timeline periods, got {}",
            timeline.len()
        );
        let vectors: Vec<Vec<f64>> = timeline.iter().map(|f| f.vector()).collect();
        let (normalized, stats) = normalize(&vectors);

        let max_k = self.max_states.min(normalized.len());
        let min_k = self.min_states.min(max_k);
        let (_, fit): (usize, KMeansFit) = if min_k == max_k {
            (min_k, kmeans(&normalized, min_k, self.max_iterations, rng))
        } else {
            select_k(&normalized, min_k..=max_k, self.max_iterations, rng)
        };

        // Re-express centroids in raw feature units by averaging the member
        // periods (more interpretable than de-normalizing).
        let k = fit.centroids.len();
        let mut states = Vec::with_capacity(k);
        for state_id in 0..k {
            let members: Vec<&PeriodFeatures> = timeline
                .iter()
                .zip(fit.assignments.iter())
                .filter(|(_, &a)| a == state_id)
                .map(|(f, _)| f)
                .collect();
            let centroid = mean_features(state_id, &members);
            let (policy, assigned_by) = self.rules.assign(&centroid);
            states.push(ApplicationState {
                id: state_id,
                centroid,
                policy,
                assigned_by,
                periods: members.len(),
            });
        }

        BehaviorModel {
            states,
            normalized_centroids: fit.centroids,
            feature_stats: stats,
            period: self.period,
            timeline_states: fit.assignments,
        }
    }
}

/// Mean of a set of period features (used as the human-readable centroid).
fn mean_features(id: usize, members: &[&PeriodFeatures]) -> PeriodFeatures {
    if members.is_empty() {
        return PeriodFeatures {
            period: id,
            ops_per_sec: 0.0,
            read_rate: 0.0,
            write_rate: 0.0,
            write_ratio: 0.0,
            mean_value_size: 0.0,
            hot_key_concentration: 0.0,
            distinct_keys: 0,
        };
    }
    let n = members.len() as f64;
    PeriodFeatures {
        period: id,
        ops_per_sec: members.iter().map(|f| f.ops_per_sec).sum::<f64>() / n,
        read_rate: members.iter().map(|f| f.read_rate).sum::<f64>() / n,
        write_rate: members.iter().map(|f| f.write_rate).sum::<f64>() / n,
        write_ratio: members.iter().map(|f| f.write_ratio).sum::<f64>() / n,
        mean_value_size: members.iter().map(|f| f.mean_value_size).sum::<f64>() / n,
        hot_key_concentration: members.iter().map(|f| f.hot_key_concentration).sum::<f64>() / n,
        distinct_keys: (members.iter().map(|f| f.distinct_keys).sum::<u64>() as f64 / n) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concord_workload::{presets, SyntheticTraceBuilder};

    /// A webshop-like trace: long quiet browsing phases, short write-heavy
    /// checkout bursts.
    fn webshop_trace(rng: &mut SimRng) -> Trace {
        let browse = presets::ycsb_b(); // 95% reads
        let mut checkout = presets::ycsb_a(); // 50% writes
        checkout.record_count = 2_000;
        let builder = SyntheticTraceBuilder::new()
            .add(
                "browse-1",
                SimDuration::from_secs(300),
                60.0,
                browse.clone(),
            )
            .add(
                "checkout-1",
                SimDuration::from_secs(120),
                400.0,
                checkout.clone(),
            )
            .add(
                "browse-2",
                SimDuration::from_secs(300),
                55.0,
                browse.clone(),
            )
            .add("checkout-2", SimDuration::from_secs(120), 420.0, checkout)
            .add("browse-3", SimDuration::from_secs(300), 65.0, browse);
        builder.build(rng)
    }

    #[test]
    fn fit_discovers_browse_and_checkout_states() {
        let mut rng = SimRng::new(42);
        let trace = webshop_trace(&mut rng);
        let model = BehaviorModelBuilder::new(SimDuration::from_secs(60))
            .with_state_bounds(2, 4)
            .fit(&trace, &mut rng);
        assert!(model.state_count() >= 2);
        // There must be a write-heavy state mapped to strong/quorum and a
        // read-mostly state mapped to something weaker.
        let has_strong_state = model.states().iter().any(|s| {
            s.centroid.write_ratio > 0.3
                && matches!(s.policy, PolicyKind::Quorum | PolicyKind::Strong)
        });
        let has_weak_state = model.states().iter().any(|s| {
            s.centroid.write_ratio < 0.2
                && !matches!(s.policy, PolicyKind::Quorum | PolicyKind::Strong)
        });
        assert!(has_strong_state, "states: {:?}", model.states());
        assert!(has_weak_state, "states: {:?}", model.states());
    }

    #[test]
    fn classification_routes_periods_to_the_right_state() {
        let mut rng = SimRng::new(7);
        let trace = webshop_trace(&mut rng);
        let model = BehaviorModelBuilder::new(SimDuration::from_secs(60))
            .with_state_bounds(2, 4)
            .fit(&trace, &mut rng);

        // Synthetic observations: rate and write ratio differ; the skew
        // dimension is set to the training mean (a live monitor cannot
        // observe it, see `BehaviorDrivenPolicy`).
        let neutral_skew = model.neutral_hot_key_concentration();
        let checkout_like = PeriodFeatures {
            period: 0,
            ops_per_sec: 400.0,
            read_rate: 200.0,
            write_rate: 200.0,
            write_ratio: 0.5,
            mean_value_size: 1_000.0,
            hot_key_concentration: neutral_skew,
            distinct_keys: 500,
        };
        let browse_like = PeriodFeatures {
            period: 0,
            ops_per_sec: 60.0,
            read_rate: 57.0,
            write_rate: 3.0,
            write_ratio: 0.05,
            mean_value_size: 1_000.0,
            hot_key_concentration: neutral_skew,
            distinct_keys: 300,
        };
        let checkout_state = model.classify(&checkout_like);
        let browse_state = model.classify(&browse_like);
        assert_ne!(checkout_state.id, browse_state.id);
        assert!(checkout_state.centroid.write_ratio > browse_state.centroid.write_ratio);
    }

    #[test]
    fn timeline_states_cover_every_period() {
        let mut rng = SimRng::new(3);
        let trace = webshop_trace(&mut rng);
        let builder = BehaviorModelBuilder::new(SimDuration::from_secs(60));
        let model = builder.fit(&trace, &mut rng);
        // ~1140 s of trace at 60 s periods → 19 periods.
        assert!(model.timeline_states().len() >= 18);
        assert!(model
            .timeline_states()
            .iter()
            .all(|&s| s < model.state_count()));
        let total_members: usize = model.states().iter().map(|s| s.periods).sum();
        assert_eq!(total_members, model.timeline_states().len());
        assert_eq!(model.period(), SimDuration::from_secs(60));
    }

    #[test]
    fn model_round_trips_through_json() {
        let mut rng = SimRng::new(5);
        let trace = webshop_trace(&mut rng);
        let model = BehaviorModelBuilder::default().fit(&trace, &mut rng);
        let json = model.to_json();
        let back = BehaviorModel::from_json(&json).unwrap();
        assert_eq!(model, back);
    }

    #[test]
    #[should_panic(expected = "at least two timeline periods")]
    fn tiny_traces_are_rejected() {
        let mut rng = SimRng::new(1);
        let trace = Trace::new();
        BehaviorModelBuilder::default().fit(&trace, &mut rng);
    }

    #[test]
    fn custom_rules_flow_through_to_states() {
        let mut rng = SimRng::new(11);
        let trace = webshop_trace(&mut rng);
        let rules = RuleSet::empty().with_fallback_rule(super::super::rules::PolicyRule {
            name: "everything bismar".into(),
            condition: super::super::rules::RuleCondition::default(),
            policy: PolicyKind::Bismar,
        });
        let model = BehaviorModelBuilder::new(SimDuration::from_secs(60))
            .with_rules(rules)
            .fit(&trace, &mut rng);
        assert!(model
            .states()
            .iter()
            .all(|s| s.policy == PolicyKind::Bismar));
    }
}
