//! The runtime side of behavior modeling: a [`ConsistencyPolicy`] that
//! classifies the application's current state with the offline-built
//! [`BehaviorModel`] and delegates the decision to the policy associated
//! with that state.

use super::features::PeriodFeatures;
use super::model::BehaviorModel;
use crate::policy::{ConsistencyPolicy, LevelDecision, PolicyContext};
use std::collections::HashMap;

/// A policy driven by an application behavior model.
///
/// At every adaptation step the live monitor snapshot is converted into the
/// model's feature space, the nearest application state is found, and the
/// decision is delegated to the consistency policy that the offline rules
/// associated with that state (instantiated lazily and kept across steps so
/// that adaptive inner policies like Harmony retain their history).
pub struct BehaviorDrivenPolicy {
    model: BehaviorModel,
    instantiated: HashMap<usize, Box<dyn ConsistencyPolicy>>,
    last_state: Option<usize>,
    state_switches: u64,
}

impl BehaviorDrivenPolicy {
    /// Create the policy from an offline-fitted model.
    pub fn new(model: BehaviorModel) -> Self {
        BehaviorDrivenPolicy {
            model,
            instantiated: HashMap::new(),
            last_state: None,
            state_switches: 0,
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &BehaviorModel {
        &self.model
    }

    /// The state selected at the last decision.
    pub fn current_state(&self) -> Option<usize> {
        self.last_state
    }

    /// How many times the classified state changed between decisions.
    pub fn state_switches(&self) -> u64 {
        self.state_switches
    }

    /// Build the live feature observation from the monitor snapshot.
    fn observation(ctx: &PolicyContext) -> PeriodFeatures {
        let snapshot = &ctx.snapshot;
        let ops = snapshot.read_rate + snapshot.write_rate;
        let write_ratio = if ops > 0.0 {
            snapshot.write_rate / ops
        } else {
            0.0
        };
        PeriodFeatures {
            period: 0,
            ops_per_sec: ops,
            read_rate: snapshot.read_rate,
            write_rate: snapshot.write_rate,
            write_ratio,
            mean_value_size: ctx.profile.record_size_bytes as f64,
            // The monitor does not track per-key popularity; use a neutral
            // value (the classifier normalizes it against the training mean).
            hot_key_concentration: f64::NAN,
            distinct_keys: 0,
        }
    }
}

impl ConsistencyPolicy for BehaviorDrivenPolicy {
    fn name(&self) -> String {
        format!("behavior-model({} states)", self.model.state_count())
    }

    fn decide(&mut self, ctx: &PolicyContext) -> LevelDecision {
        let mut obs = Self::observation(ctx);
        // Replace the unknown skew dimension with the classifier-neutral
        // training mean so it does not influence the nearest-centroid search.
        obs.hot_key_concentration = self.model.neutral_hot_key_concentration();

        let state = self.model.classify(&obs);
        let state_id = state.id;
        let policy_kind = state.policy;
        if self.last_state != Some(state_id) {
            if self.last_state.is_some() {
                self.state_switches += 1;
            }
            self.last_state = Some(state_id);
        }
        let inner = self
            .instantiated
            .entry(state_id)
            .or_insert_with(|| policy_kind.instantiate());
        inner.decide(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::model::BehaviorModelBuilder;
    use crate::policy::tests::test_context;
    use concord_cluster::ConsistencyLevel;
    use concord_sim::{SimDuration, SimRng};
    use concord_workload::{presets, SyntheticTraceBuilder};

    fn webshop_model() -> BehaviorModel {
        let mut rng = SimRng::new(21);
        let browse = presets::ycsb_b();
        let checkout = presets::ycsb_a();
        let trace = SyntheticTraceBuilder::new()
            .add("browse", SimDuration::from_secs(300), 60.0, browse.clone())
            .add(
                "checkout",
                SimDuration::from_secs(120),
                400.0,
                checkout.clone(),
            )
            .add("browse2", SimDuration::from_secs(300), 60.0, browse)
            .add("checkout2", SimDuration::from_secs(120), 400.0, checkout)
            .build(&mut rng);
        BehaviorModelBuilder::new(SimDuration::from_secs(60))
            .with_state_bounds(2, 3)
            .fit(&trace, &mut rng)
    }

    #[test]
    fn delegates_to_the_state_policy() {
        let mut policy = BehaviorDrivenPolicy::new(webshop_model());
        assert!(policy.current_state().is_none());

        // Browse-like load: read mostly, light → a weak/cheap decision.
        let browse_ctx = test_context(60.0, 3.0, 2.0);
        let browse_decision = policy.decide(&browse_ctx);
        let browse_state = policy.current_state().unwrap();

        // Checkout-like load: heavy, write-rich → a stronger decision.
        let checkout_ctx = test_context(200.0, 200.0, 10.0);
        let checkout_decision = policy.decide(&checkout_ctx);
        let checkout_state = policy.current_state().unwrap();

        assert_ne!(browse_state, checkout_state);
        assert_eq!(policy.state_switches(), 1);
        // The checkout state must read at least as strongly as browsing.
        let rf = checkout_ctx.profile.replication_factor;
        let dcs = checkout_ctx.profile.dc_count;
        assert!(
            checkout_decision.read.required_acks(rf, dcs)
                >= browse_decision.read.required_acks(rf, dcs),
            "browse={browse_decision:?} checkout={checkout_decision:?}"
        );
    }

    #[test]
    fn repeated_same_state_does_not_count_as_switch() {
        let mut policy = BehaviorDrivenPolicy::new(webshop_model());
        let ctx = test_context(60.0, 3.0, 2.0);
        policy.decide(&ctx);
        policy.decide(&ctx);
        policy.decide(&ctx);
        assert_eq!(policy.state_switches(), 0);
        assert!(policy.name().contains("behavior-model"));
        assert!(policy.model().state_count() >= 2);
    }

    #[test]
    fn zero_traffic_is_classified_without_panicking() {
        let mut policy = BehaviorDrivenPolicy::new(webshop_model());
        let ctx = test_context(0.0, 0.0, 0.0);
        let d = policy.decide(&ctx);
        // Any valid level is acceptable; it must simply not blow up.
        let acks = d.read.required_acks(5, 2);
        assert!((1..=5).contains(&acks));
        assert_ne!(d.write, ConsistencyLevel::Exact(0));
    }
}
