//! State → consistency-policy assignment rules.
//!
//! The paper: *"Each state is then automatically associated with a
//! consistency policy (policies include geographical policies, Harmony, and
//! static eventual and strong policies) based on a set of both generic
//! predefined rules and customized rules (integrated by application'
//! administrator) specific for the application."*
//!
//! A rule is a declarative predicate over a state's centroid features plus
//! the policy to assign when it matches. Rules are evaluated in order:
//! custom rules first, then the generic defaults, so an administrator can
//! always override the defaults.

use super::features::PeriodFeatures;
use crate::bismar::{BismarConfig, BismarPolicy};
use crate::harmony::HarmonyPolicy;
use crate::policy::{ConsistencyPolicy, GeographicPolicy, StaticPolicy};
use serde::{Deserialize, Serialize};

/// A serializable description of a consistency policy that a rule can assign
/// to a state (instantiated into a live [`ConsistencyPolicy`] on demand).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Static eventual consistency (ONE/ONE) — cheapest, weakest.
    Eventual,
    /// Static strong consistency (read ALL).
    Strong,
    /// Static quorum reads and writes.
    Quorum,
    /// The Harmony adaptive controller with the given tolerated stale rate.
    Harmony {
        /// Tolerated stale-read rate.
        tolerance: f64,
    },
    /// The Bismar cost-efficient controller (default pricing).
    Bismar,
    /// DC-local quorums (a geographical policy).
    Geographic,
}

impl PolicyKind {
    /// Instantiate a live policy object.
    pub fn instantiate(self) -> Box<dyn ConsistencyPolicy> {
        match self {
            PolicyKind::Eventual => Box::new(StaticPolicy::eventual()),
            PolicyKind::Strong => Box::new(StaticPolicy::strong()),
            PolicyKind::Quorum => Box::new(StaticPolicy::quorum()),
            PolicyKind::Harmony { tolerance } => Box::new(HarmonyPolicy::with_tolerance(tolerance)),
            PolicyKind::Bismar => Box::new(BismarPolicy::new(BismarConfig::default())),
            PolicyKind::Geographic => Box::new(GeographicPolicy),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            PolicyKind::Eventual => "eventual".into(),
            PolicyKind::Strong => "strong".into(),
            PolicyKind::Quorum => "quorum".into(),
            PolicyKind::Harmony { tolerance } => format!("harmony({:.0}%)", tolerance * 100.0),
            PolicyKind::Bismar => "bismar".into(),
            PolicyKind::Geographic => "geographic".into(),
        }
    }
}

/// A declarative predicate over a state's (centroid) features.
///
/// Every bound is optional; a rule matches when all its specified bounds do.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RuleCondition {
    /// Minimum write ratio (fraction of writes).
    pub min_write_ratio: Option<f64>,
    /// Maximum write ratio.
    pub max_write_ratio: Option<f64>,
    /// Minimum operation rate (ops/s).
    pub min_ops_per_sec: Option<f64>,
    /// Maximum operation rate (ops/s).
    pub max_ops_per_sec: Option<f64>,
    /// Minimum hot-key concentration.
    pub min_hot_key_concentration: Option<f64>,
}

impl RuleCondition {
    /// Does this condition match the given state features?
    pub fn matches(&self, f: &PeriodFeatures) -> bool {
        self.min_write_ratio.is_none_or(|v| f.write_ratio >= v)
            && self.max_write_ratio.is_none_or(|v| f.write_ratio <= v)
            && self.min_ops_per_sec.is_none_or(|v| f.ops_per_sec >= v)
            && self.max_ops_per_sec.is_none_or(|v| f.ops_per_sec <= v)
            && self
                .min_hot_key_concentration
                .is_none_or(|v| f.hot_key_concentration >= v)
    }
}

/// A rule: a condition plus the policy to assign and a label explaining why.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRule {
    /// Human-readable explanation (shown in reports).
    pub name: String,
    /// When the rule applies.
    pub condition: RuleCondition,
    /// What it assigns.
    pub policy: PolicyKind,
}

/// The ordered rule set (custom rules first, generic rules last).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    rules: Vec<PolicyRule>,
}

impl RuleSet {
    /// The paper's generic predefined rules:
    ///
    /// 1. write-heavy, contended states need strong consistency (a webshop
    ///    checkout / payment phase);
    /// 2. highly skewed, busy states benefit from Harmony with a tight
    ///    tolerance (hot items must stay fresh without paying ALL);
    /// 3. read-mostly quiet states tolerate eventual consistency (browsing /
    ///    social-network timelines);
    /// 4. anything else falls back to Harmony with a moderate tolerance.
    pub fn generic() -> Self {
        RuleSet {
            rules: vec![
                PolicyRule {
                    name: "write-heavy state → strong consistency".into(),
                    condition: RuleCondition {
                        min_write_ratio: Some(0.4),
                        ..Default::default()
                    },
                    policy: PolicyKind::Quorum,
                },
                PolicyRule {
                    name: "busy, skewed state → Harmony (5% tolerance)".into(),
                    condition: RuleCondition {
                        min_ops_per_sec: Some(500.0),
                        min_hot_key_concentration: Some(0.5),
                        ..Default::default()
                    },
                    policy: PolicyKind::Harmony { tolerance: 0.05 },
                },
                PolicyRule {
                    name: "read-mostly quiet state → eventual consistency".into(),
                    condition: RuleCondition {
                        max_write_ratio: Some(0.1),
                        ..Default::default()
                    },
                    policy: PolicyKind::Eventual,
                },
                PolicyRule {
                    name: "default → Harmony (20% tolerance)".into(),
                    condition: RuleCondition::default(),
                    policy: PolicyKind::Harmony { tolerance: 0.20 },
                },
            ],
        }
    }

    /// An empty rule set (useful as a base for fully custom rules).
    pub fn empty() -> Self {
        RuleSet { rules: Vec::new() }
    }

    /// Prepend a custom (administrator-provided) rule; custom rules take
    /// precedence over the generic ones.
    pub fn with_custom_rule(mut self, rule: PolicyRule) -> Self {
        self.rules.insert(0, rule);
        self
    }

    /// Append a rule at the lowest priority.
    pub fn with_fallback_rule(mut self, rule: PolicyRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// The rules, in evaluation order.
    pub fn rules(&self) -> &[PolicyRule] {
        &self.rules
    }

    /// Assign a policy to a state described by its (centroid) features.
    /// Returns the chosen policy and the name of the rule that matched.
    pub fn assign(&self, state: &PeriodFeatures) -> (PolicyKind, String) {
        for rule in &self.rules {
            if rule.condition.matches(state) {
                return (rule.policy, rule.name.clone());
            }
        }
        // Safety net when no rule matches (e.g. an empty custom rule set).
        (
            PolicyKind::Harmony { tolerance: 0.20 },
            "implicit default → Harmony (20% tolerance)".into(),
        )
    }
}

impl Default for RuleSet {
    fn default() -> Self {
        Self::generic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(ops: f64, write_ratio: f64, hot: f64) -> PeriodFeatures {
        PeriodFeatures {
            period: 0,
            ops_per_sec: ops,
            read_rate: ops * (1.0 - write_ratio),
            write_rate: ops * write_ratio,
            write_ratio,
            mean_value_size: 1_000.0,
            hot_key_concentration: hot,
            distinct_keys: 100,
        }
    }

    #[test]
    fn generic_rules_cover_the_canonical_states() {
        let rules = RuleSet::generic();
        // Checkout-like: write heavy → quorum.
        let (p, why) = rules.assign(&state(800.0, 0.5, 0.3));
        assert_eq!(p, PolicyKind::Quorum);
        assert!(why.contains("write-heavy"));
        // Flash-sale-like: busy and skewed → tight Harmony.
        let (p, _) = rules.assign(&state(2_000.0, 0.2, 0.8));
        assert_eq!(p, PolicyKind::Harmony { tolerance: 0.05 });
        // Browsing: read mostly → eventual.
        let (p, _) = rules.assign(&state(100.0, 0.02, 0.2));
        assert_eq!(p, PolicyKind::Eventual);
        // Something in between → default Harmony.
        let (p, _) = rules.assign(&state(100.0, 0.2, 0.2));
        assert_eq!(p, PolicyKind::Harmony { tolerance: 0.20 });
    }

    #[test]
    fn custom_rules_take_precedence() {
        let rules = RuleSet::generic().with_custom_rule(PolicyRule {
            name: "custom: payments always strong".into(),
            condition: RuleCondition {
                min_write_ratio: Some(0.3),
                ..Default::default()
            },
            policy: PolicyKind::Strong,
        });
        let (p, why) = rules.assign(&state(800.0, 0.5, 0.3));
        assert_eq!(p, PolicyKind::Strong);
        assert!(why.contains("custom"));
        assert_eq!(rules.rules().len(), 5);
    }

    #[test]
    fn empty_rule_set_falls_back_to_harmony() {
        let rules = RuleSet::empty();
        let (p, why) = rules.assign(&state(10.0, 0.5, 0.5));
        assert_eq!(p, PolicyKind::Harmony { tolerance: 0.20 });
        assert!(why.contains("implicit"));
    }

    #[test]
    fn fallback_rules_are_lowest_priority() {
        let rules = RuleSet::empty()
            .with_fallback_rule(PolicyRule {
                name: "everything geographic".into(),
                condition: RuleCondition::default(),
                policy: PolicyKind::Geographic,
            })
            .with_custom_rule(PolicyRule {
                name: "busy is bismar".into(),
                condition: RuleCondition {
                    min_ops_per_sec: Some(1_000.0),
                    ..Default::default()
                },
                policy: PolicyKind::Bismar,
            });
        assert_eq!(
            rules.assign(&state(2_000.0, 0.1, 0.1)).0,
            PolicyKind::Bismar
        );
        assert_eq!(
            rules.assign(&state(10.0, 0.1, 0.1)).0,
            PolicyKind::Geographic
        );
    }

    #[test]
    fn conditions_respect_all_bounds() {
        let cond = RuleCondition {
            min_write_ratio: Some(0.1),
            max_write_ratio: Some(0.5),
            min_ops_per_sec: Some(100.0),
            max_ops_per_sec: Some(1_000.0),
            min_hot_key_concentration: Some(0.3),
        };
        assert!(cond.matches(&state(500.0, 0.3, 0.5)));
        assert!(!cond.matches(&state(50.0, 0.3, 0.5)), "rate too low");
        assert!(!cond.matches(&state(500.0, 0.6, 0.5)), "too write heavy");
        assert!(!cond.matches(&state(500.0, 0.3, 0.1)), "not skewed enough");
    }

    #[test]
    fn policy_kinds_instantiate_and_label() {
        for kind in [
            PolicyKind::Eventual,
            PolicyKind::Strong,
            PolicyKind::Quorum,
            PolicyKind::Harmony { tolerance: 0.1 },
            PolicyKind::Bismar,
            PolicyKind::Geographic,
        ] {
            let policy = kind.instantiate();
            assert!(!policy.name().is_empty());
            assert!(!kind.label().is_empty());
        }
        assert_eq!(
            PolicyKind::Harmony { tolerance: 0.4 }.label(),
            "harmony(40%)"
        );
    }

    #[test]
    fn rules_serialize() {
        let rules = RuleSet::generic();
        let json = serde_json::to_string(&rules).unwrap();
        let back: RuleSet = serde_json::from_str(&json).unwrap();
        assert_eq!(rules, back);
    }
}
