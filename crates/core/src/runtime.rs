//! The adaptive runtime: the **scenario driver** that connects a storage
//! cluster, a workload, the monitoring module and a consistency policy.
//!
//! Historically this was a closed-loop-only driver — "YCSB against Cassandra
//! with Harmony attached", the paper's evaluation setup. It now executes any
//! [`Scenario`]: the arrival mode decides whether clients form a closed loop
//! (each issues its next operation on completion) or an open loop (the whole
//! sorted arrival schedule is bulk-loaded up front through
//! `Cluster::submit_batch` and the event queue's O(1) bulk lane), and the
//! scenario's fault script is interleaved with the policy's adaptation
//! epochs as scheduled ticks. Every completed operation feeds the monitor;
//! at every adaptation interval the policy is consulted and the cluster's
//! consistency levels are retuned — under faults, exactly like on a healthy
//! cluster.

use crate::policy::{ClusterProfile, ConsistencyPolicy, PolicyContext};
use crate::report::{LatencySummary, LevelChange, RunReport};
use crate::scenario::Scenario;
use concord_cluster::{BatchOp, Cluster, ClusterOutput, OpKind};
use concord_cost::{Bill, PricingModel, ResourceUsage};
use concord_monitor::{AccessMonitor, MonitorConfig};
use concord_sim::{SimDuration, SimRng, SimTime};
use concord_workload::{CoreWorkload, OperationType, WorkloadOp};

/// Tick ids at or above this base address entries of the scenario's fault
/// script; below it they are adaptation ticks. (A run would need 2^32
/// adaptation intervals to collide, i.e. centuries of simulated time.)
const FAULT_TICK_BASE: u64 = 1 << 32;

/// Configuration of an adaptive run.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Number of concurrent closed-loop clients (YCSB threads).
    pub clients: u32,
    /// Per-client pause between a completion and the next request.
    pub think_time: SimDuration,
    /// How often the policy is consulted (the adaptation interval).
    pub adaptation_interval: SimDuration,
    /// Monitor configuration (rate window, smoothing factors).
    pub monitor: MonitorConfig,
    /// Pricing model used to compute the run's bill (optional).
    pub pricing: Option<PricingModel>,
    /// Safety cap on processed outputs (guards against run-away loops).
    pub max_outputs: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            clients: 32,
            think_time: SimDuration::ZERO,
            adaptation_interval: SimDuration::from_secs(5),
            monitor: MonitorConfig::default(),
            pricing: Some(PricingModel::ec2_2013()),
            max_outputs: u64::MAX,
        }
    }
}

/// The adaptive runtime.
pub struct AdaptiveRuntime {
    config: RuntimeConfig,
    rng: SimRng,
}

impl AdaptiveRuntime {
    /// Create a runtime with the given configuration and RNG seed.
    pub fn new(config: RuntimeConfig, seed: u64) -> Self {
        assert!(config.clients >= 1, "at least one client is required");
        assert!(
            !config.adaptation_interval.is_zero(),
            "the adaptation interval must be positive"
        );
        AdaptiveRuntime {
            config,
            rng: SimRng::new(seed),
        }
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    fn submit(cluster: &mut Cluster, op: &WorkloadOp, at: SimTime) {
        match op.op {
            OperationType::Read => {
                cluster.submit_read_at(op.key, at);
            }
            OperationType::Scan => {
                cluster.submit_scan_at(op.key, op.scan_length, at);
            }
            OperationType::Update | OperationType::Insert | OperationType::ReadModifyWrite => {
                cluster.submit_write_at(op.key, op.value_size, at);
            }
        }
    }

    /// Map one workload operation to its open-loop batch entry. Scans issue
    /// real range reads: every contacted replica reads `scan_length`
    /// consecutive records through the dense store, metered in storage reads
    /// and byte-weighted response traffic.
    fn batch_op(at: SimTime, op: &WorkloadOp) -> BatchOp {
        match op.op {
            OperationType::Read => BatchOp::read(at, op.key),
            OperationType::Scan => BatchOp::scan(at, op.key, op.scan_length),
            OperationType::Update | OperationType::Insert | OperationType::ReadModifyWrite => {
                BatchOp::write(at, op.key, op.value_size)
            }
        }
    }

    /// Drive `workload` against `cluster` under `policy` with the
    /// historical setup — a healthy closed loop of `config.clients` clients
    /// — until every operation has completed, and return the run report.
    ///
    /// This is a thin wrapper over [`AdaptiveRuntime::run_scenario`] with
    /// [`Scenario::closed_with_think`]; reports are byte-identical to the
    /// pre-scenario driver.
    pub fn run(
        &mut self,
        cluster: &mut Cluster,
        workload: &mut CoreWorkload,
        policy: &mut dyn ConsistencyPolicy,
    ) -> RunReport {
        let scenario = Scenario::closed_with_think(self.config.clients, self.config.think_time);
        self.run_scenario(cluster, workload, policy, &scenario)
    }

    /// Execute a [`Scenario`]: drive `workload` against `cluster` under
    /// `policy` with the scenario's arrival mode, interleaving its fault
    /// script with the policy's adaptation epochs, until every operation of
    /// the workload has completed. Returns the run report.
    ///
    /// * **Closed loop** — `scenario.arrival.concurrency()` clients are
    ///   primed; each issues its next operation when the previous completes
    ///   (plus the arrival's think time). `config.clients` is ignored in
    ///   favour of the scenario.
    /// * **Open loop** — the workload's whole timed schedule
    ///   (`CoreWorkload::timed_ops`) is bulk-loaded up front through
    ///   `Cluster::submit_batch`; completions never gate arrivals, so the
    ///   offered load stays fixed while faults and level changes move the
    ///   completion rate. Consistency levels still apply at *arrival* time
    ///   (the cluster resolves its default level when the operation reaches
    ///   its coordinator), so adaptation steps retune bulk-loaded
    ///   operations exactly like closed-loop ones.
    /// * **Faults** — each script entry is scheduled as a tick at `start +
    ///   at` and applied to the cluster when the simulation reaches it.
    ///   Faults scripted past the workload's completion never fire.
    ///
    /// The cluster should already be loaded with the workload's records
    /// (see [`Cluster::load_records`]). Fixed seed ⇒ identical report, for
    /// any arrival mode and fault script.
    pub fn run_scenario(
        &mut self,
        cluster: &mut Cluster,
        workload: &mut CoreWorkload,
        policy: &mut dyn ConsistencyPolicy,
        scenario: &Scenario,
    ) -> RunReport {
        let profile = ClusterProfile::from_cluster(cluster, workload.config().record_size());
        let mut monitor = AccessMonitor::new(self.config.monitor);
        let start = cluster.now();

        // Initial decision from a cold monitor, then the first tick.
        let mut adaptation_steps = 0u64;
        let mut level_timeline: Vec<LevelChange> = Vec::new();
        let initial = policy.decide(&PolicyContext {
            now: start,
            snapshot: monitor.snapshot(start),
            profile,
        });
        initial.apply(cluster);
        adaptation_steps += 1;
        level_timeline.push(LevelChange {
            at_secs: start.as_secs_f64(),
            read_replicas: cluster.config().required_acks(initial.read),
            write_replicas: cluster.config().required_acks(initial.write),
        });

        // Prime the arrivals. Closed loop: one outstanding operation per
        // client, staggered by a few microseconds to avoid an artificial
        // burst. Open loop: the whole sorted timed schedule is bulk-loaded
        // through the event queue's O(1) bulk lane up front.
        let total_ops = workload.config().operation_count;
        let mut submitted = 0u64;
        let closed_clients = scenario.arrival.concurrency();
        let think_time = scenario.arrival.think_time();
        match closed_clients {
            Some(clients) => {
                assert!(clients >= 1, "a closed-loop scenario needs clients");
                let initial_clients = (clients as u64).min(total_ops);
                for i in 0..initial_clients {
                    let op = workload.next_op(&mut self.rng);
                    Self::submit(cluster, &op, start + SimDuration::from_micros(i * 13));
                    submitted += 1;
                }
            }
            None => {
                let process = scenario.arrival;
                let rng = &mut self.rng;
                let timed = workload
                    .timed_ops(process, start, rng)
                    .map(|(at, op)| Self::batch_op(at, &op));
                submitted = cluster.submit_batch(timed) as u64;
            }
        }

        // Schedule the fault script; the tick-id space above FAULT_TICK_BASE
        // indexes into it.
        for (i, fault) in scenario.faults.iter().enumerate() {
            cluster.schedule_tick(start + fault.at, FAULT_TICK_BASE + i as u64);
        }
        let mut faults_injected = 0u64;

        let mut tick_id = 0u64;
        cluster.schedule_tick(start + self.config.adaptation_interval, tick_id);

        let mut completed = 0u64;
        let mut outputs = 0u64;
        while completed < submitted.max(1) && outputs < self.config.max_outputs {
            let Some(output) = cluster.advance() else {
                break;
            };
            outputs += 1;
            match output {
                ClusterOutput::Completed(op) => {
                    completed += 1;
                    // Completions arrive in time order of `completed_at`; use
                    // that timestamp for the rate windows (at steady state the
                    // completion rate equals the arrival rate).
                    match op.kind {
                        OpKind::Read => monitor.record_read(op.completed_at, op.latency()),
                        OpKind::Write => monitor.record_write(op.completed_at, op.latency()),
                    }
                    // Closed loop: this client immediately issues its next
                    // operation (after the optional think time).
                    if closed_clients.is_some() && submitted < total_ops && !workload.is_exhausted()
                    {
                        let next = workload.next_op(&mut self.rng);
                        Self::submit(cluster, &next, op.completed_at + think_time);
                        submitted += 1;
                    }
                }
                ClusterOutput::Tick { at: _, id } if id >= FAULT_TICK_BASE => {
                    let fault = &scenario.faults[(id - FAULT_TICK_BASE) as usize];
                    fault.action.apply(cluster);
                    faults_injected += 1;
                }
                ClusterOutput::Tick { at, .. } => {
                    // Feed the monitor with the propagation measurements the
                    // cluster collected since the last tick.
                    for sample in cluster.drain_propagation_samples() {
                        monitor.record_propagation(sample);
                    }
                    if policy.is_adaptive() {
                        let ctx = PolicyContext {
                            now: at,
                            snapshot: monitor.snapshot(at),
                            profile,
                        };
                        let decision = policy.decide(&ctx);
                        decision.apply(cluster);
                        adaptation_steps += 1;
                        let read_replicas = cluster.config().required_acks(decision.read);
                        let write_replicas = cluster.config().required_acks(decision.write);
                        if level_timeline.last().is_none_or(|last| {
                            last.read_replicas != read_replicas
                                || last.write_replicas != write_replicas
                        }) {
                            level_timeline.push(LevelChange {
                                at_secs: at.as_secs_f64(),
                                read_replicas,
                                write_replicas,
                            });
                        }
                    }
                    // Keep ticking while work remains.
                    if completed < total_ops {
                        tick_id += 1;
                        cluster.schedule_tick(at + self.config.adaptation_interval, tick_id);
                    }
                }
            }
        }

        let makespan = cluster.now() - start;
        let shard_metrics = cluster.shard_metrics();
        let metrics = cluster.metrics();
        let usage = ResourceUsage::from_cluster(cluster, makespan);
        let bill = self.config.pricing.map(|p| Bill::compute(&p, &usage));

        RunReport {
            policy: policy.name(),
            scenario: scenario.label(),
            total_ops: metrics.ops_completed(),
            reads: metrics.reads_completed,
            writes: metrics.writes_completed,
            timeouts: metrics.timeouts,
            retries: metrics.retries,
            faults_injected,
            messages_lost: metrics.messages_lost,
            makespan,
            throughput_ops_per_sec: metrics.throughput(makespan),
            read_latency_ms: LatencySummary::from_stats(&metrics.read_latency),
            write_latency_ms: LatencySummary::from_stats(&metrics.write_latency),
            stale_reads: metrics.stale_reads,
            stale_read_rate: metrics.stale_read_rate(),
            mean_staleness_depth: cluster.oracle().mean_staleness_depth(),
            mean_read_replicas: metrics.mean_read_fanout(),
            adaptation_steps,
            hints_queued: metrics.hints_queued,
            hints_replayed: metrics.hints_replayed,
            hints_dropped: metrics.hints_dropped,
            repair_pages_compared: metrics.repair_pages_compared,
            repair_records_streamed: metrics.repair_records_streamed,
            repair_traffic: metrics.repair_traffic,
            hedged_requests: metrics.hedged_requests,
            hedge_wins: metrics.hedge_wins,
            backoff_retries: metrics.backoff_retries,
            breaker_opens: metrics.breaker_opens,
            hedge_bytes: metrics.hedge_traffic.total(),
            shards: cluster.shards() as u64,
            shard_windows: shard_metrics.windows,
            cross_shard_staged: shard_metrics.staged,
            lookahead_violations: shard_metrics.violations,
            parallel_batches: shard_metrics.parallel_batches,
            barrier_folds: shard_metrics.barrier_folds,
            max_batch_len: shard_metrics.max_batch_len,
            elided_barriers: shard_metrics.elided_barriers,
            fast_forwards: shard_metrics.fast_forwards,
            level_timeline,
            usage,
            bill,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harmony::HarmonyPolicy;
    use crate::policy::StaticPolicy;
    use crate::scenario::{FaultAction, FaultEvent};
    use concord_cluster::{ClusterConfig, ReplicationStrategy};
    use concord_sim::{NetworkModel, RegionId, Topology};
    use concord_workload::presets;

    /// A small two-site cluster and a scaled-down heavy read-update workload.
    fn setup(seed: u64) -> (Cluster, CoreWorkload) {
        let mut cfg = ClusterConfig::lan_test(8, 5);
        cfg.topology = Topology::spread(8, &[("site-a", RegionId(0)), ("site-b", RegionId(0))]);
        cfg.network = NetworkModel::grid5000_like();
        cfg.strategy = ReplicationStrategy::NetworkTopology;
        let mut cluster = Cluster::new(cfg, seed);

        let mut wl_cfg = presets::paper_heavy_read_update(2_000, 6_000);
        wl_cfg.field_count = 1;
        wl_cfg.field_length = 256;
        let workload = CoreWorkload::new(wl_cfg.clone());
        cluster.load_records((0..wl_cfg.record_count).map(|k| (k, wl_cfg.record_size())));
        (cluster, workload)
    }

    fn quick_runtime(seed: u64) -> AdaptiveRuntime {
        AdaptiveRuntime::new(
            RuntimeConfig {
                clients: 16,
                // Short interval so even fast (level-ONE) runs see several
                // adaptation steps.
                adaptation_interval: SimDuration::from_millis(100),
                ..Default::default()
            },
            seed,
        )
    }

    #[test]
    fn static_run_completes_every_operation() {
        let (mut cluster, mut workload) = setup(1);
        let mut policy = StaticPolicy::eventual();
        let report = quick_runtime(1).run(&mut cluster, &mut workload, &mut policy);
        assert_eq!(report.total_ops, 6_000);
        assert_eq!(report.reads + report.writes, 6_000);
        assert!(report.throughput_ops_per_sec > 0.0);
        assert!(report.makespan > SimDuration::ZERO);
        assert!(report.read_latency_ms.p95 >= report.read_latency_ms.p50);
        assert!(report.bill.is_some());
        assert!(report.total_cost_usd() > 0.0);
        assert_eq!(report.policy, "static-eventual(ONE)");
    }

    #[test]
    fn eventual_is_faster_but_staler_than_strong() {
        let run_with = |mut policy: StaticPolicy, seed: u64| {
            let (mut cluster, mut workload) = setup(seed);
            quick_runtime(seed).run(&mut cluster, &mut workload, &mut policy)
        };
        let eventual = run_with(StaticPolicy::eventual(), 3);
        let strong = run_with(StaticPolicy::strong(), 3);
        assert!(
            eventual.throughput_ops_per_sec > strong.throughput_ops_per_sec,
            "eventual {} vs strong {}",
            eventual.throughput_ops_per_sec,
            strong.throughput_ops_per_sec
        );
        assert!(eventual.stale_read_rate > strong.stale_read_rate);
        assert_eq!(strong.stale_reads, 0, "read-ALL can never be stale");
        assert!(eventual.mean_read_replicas < strong.mean_read_replicas);
    }

    #[test]
    fn harmony_respects_its_tolerance_and_beats_strong_throughput() {
        let (mut cluster, mut workload) = setup(5);
        let mut harmony = HarmonyPolicy::with_tolerance(0.20);
        let harmony_report = quick_runtime(5).run(&mut cluster, &mut workload, &mut harmony);

        let (mut cluster2, mut workload2) = setup(5);
        let mut strong = StaticPolicy::strong();
        let strong_report = quick_runtime(5).run(&mut cluster2, &mut workload2, &mut strong);

        // The measured stale rate must stay at or below the tolerance
        // (small numerical slack for the finite run).
        assert!(
            harmony_report.stale_read_rate <= 0.20 + 0.03,
            "harmony stale rate {} exceeds tolerance",
            harmony_report.stale_read_rate
        );
        // And Harmony must not be slower than static strong consistency.
        assert!(
            harmony_report.throughput_ops_per_sec >= strong_report.throughput_ops_per_sec * 0.95,
            "harmony {} vs strong {}",
            harmony_report.throughput_ops_per_sec,
            strong_report.throughput_ops_per_sec
        );
        assert!(harmony_report.adaptation_steps > 1);
    }

    #[test]
    fn adaptive_runs_record_a_level_timeline() {
        let (mut cluster, mut workload) = setup(7);
        let mut harmony = HarmonyPolicy::with_tolerance(0.05);
        let report = quick_runtime(7).run(&mut cluster, &mut workload, &mut harmony);
        assert!(!report.level_timeline.is_empty());
        assert!(report
            .level_timeline
            .iter()
            .all(|c| (1..=5).contains(&c.read_replicas)));
        // The JSON round trip used by the experiment binaries works.
        let json = report.to_json();
        assert!(json.contains("level_timeline"));
    }

    #[test]
    fn think_time_slows_the_offered_load() {
        let run_with_think = |think: SimDuration| {
            let (mut cluster, mut workload) = setup(11);
            let mut rt = AdaptiveRuntime::new(
                RuntimeConfig {
                    clients: 8,
                    think_time: think,
                    adaptation_interval: SimDuration::from_millis(500),
                    ..Default::default()
                },
                11,
            );
            let mut policy = StaticPolicy::eventual();
            rt.run(&mut cluster, &mut workload, &mut policy)
                .throughput_ops_per_sec
        };
        let fast = run_with_think(SimDuration::ZERO);
        let slow = run_with_think(SimDuration::from_millis(5));
        assert!(fast > slow * 1.5, "fast={fast} slow={slow}");
    }

    #[test]
    fn closed_loop_scenario_matches_the_legacy_entry_point() {
        let (mut cluster_a, mut workload_a) = setup(21);
        let mut policy_a = StaticPolicy::quorum();
        let legacy = quick_runtime(21).run(&mut cluster_a, &mut workload_a, &mut policy_a);

        let (mut cluster_b, mut workload_b) = setup(21);
        let mut policy_b = StaticPolicy::quorum();
        let scenario = Scenario::closed(16); // quick_runtime uses 16 clients
        let scenic = quick_runtime(21).run_scenario(
            &mut cluster_b,
            &mut workload_b,
            &mut policy_b,
            &scenario,
        );
        assert_eq!(legacy, scenic, "the wrapper and the driver must agree");
        assert_eq!(legacy.scenario, "closed(16)");
    }

    #[test]
    fn open_loop_runs_complete_under_adaptive_policies() {
        let (mut cluster, mut workload) = setup(23);
        let mut harmony = HarmonyPolicy::with_tolerance(0.15);
        let scenario = Scenario::open_poisson(20_000.0);
        let report =
            quick_runtime(23).run_scenario(&mut cluster, &mut workload, &mut harmony, &scenario);
        assert_eq!(report.total_ops, 6_000);
        assert_eq!(report.scenario, "poisson(20000/s)");
        assert!(report.adaptation_steps > 1, "the policy must keep adapting");
        assert!(report.throughput_ops_per_sec > 0.0);
        assert_eq!(report.faults_injected, 0);
    }

    #[test]
    fn open_loop_offered_load_is_fixed_by_the_schedule() {
        // A closed loop's makespan stretches under a slow policy; an open
        // loop's arrival span is fixed by the schedule, so the makespan is
        // pinned near (last arrival + tail latency) for any policy.
        let run_open = |seed: u64, mut policy: StaticPolicy| {
            let (mut cluster, mut workload) = setup(seed);
            let scenario = Scenario::open_uniform(10_000.0);
            quick_runtime(seed).run_scenario(&mut cluster, &mut workload, &mut policy, &scenario)
        };
        let eventual = run_open(25, StaticPolicy::eventual());
        let strong = run_open(25, StaticPolicy::strong());
        // 6000 ops at 10k/s: arrivals span 0.6 s for both runs.
        let span = 0.6;
        for r in [&eventual, &strong] {
            let makespan = r.makespan.as_secs_f64();
            assert!(
                makespan >= span && makespan < span * 1.5,
                "open-loop makespan must track the schedule, got {makespan}"
            );
        }
        // Staleness still separates the levels under identical offered load.
        assert!(eventual.stale_read_rate > strong.stale_read_rate);
        assert_eq!(strong.stale_reads, 0);
    }

    #[test]
    fn fault_scripts_fire_and_are_reported() {
        let (mut cluster, mut workload) = setup(27);
        let mut policy = StaticPolicy::eventual();
        // 6000 ops at 10k/s span 0.6 s; crash at 0.1 s, recover at 0.3 s,
        // partition the two sites in between.
        let scenario = Scenario::open_uniform(10_000.0).with_faults(vec![
            FaultEvent::at_secs(0.1, FaultAction::CrashNode(2)),
            FaultEvent::at_secs(0.2, FaultAction::PartitionDcs(0, 1)),
            FaultEvent::at_secs(0.3, FaultAction::RecoverNode(2)),
            FaultEvent::at_secs(0.4, FaultAction::HealDcs(0, 1)),
        ]);
        let report =
            quick_runtime(27).run_scenario(&mut cluster, &mut workload, &mut policy, &scenario);
        assert_eq!(report.faults_injected, 4, "every scripted fault fired");
        assert!(report.scenario.ends_with("+4 faults"));
        assert!(
            report.messages_lost > 0,
            "the partition must drop messages mid-run"
        );
        assert_eq!(report.total_ops, 6_000, "the run still completes");
        // The scripted pairs healed: the cluster ends healthy.
        assert!(!cluster.is_node_crashed(concord_sim::NodeId(2)));
        assert!(!cluster.dcs_partitioned(concord_sim::DcId(0), concord_sim::DcId(1)));
    }

    #[test]
    fn fault_scenarios_are_deterministic_per_seed() {
        let run = || {
            let (mut cluster, mut workload) = setup(31);
            let mut policy = HarmonyPolicy::with_tolerance(0.25);
            let scenario = Scenario::open_poisson(15_000.0).with_faults(vec![
                FaultEvent::at_secs(0.1, FaultAction::NodeDown(1)),
                FaultEvent::at_secs(
                    0.25,
                    FaultAction::DegradeLink(concord_sim::LinkClass::InterDc, 6.0),
                ),
                FaultEvent::at_secs(0.3, FaultAction::NodeUp(1)),
                FaultEvent::at_secs(
                    0.35,
                    FaultAction::RestoreLink(concord_sim::LinkClass::InterDc),
                ),
            ]);
            quick_runtime(31).run_scenario(&mut cluster, &mut workload, &mut policy, &scenario)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "fixed seed must reproduce the faulted run exactly");
        assert_eq!(a.faults_injected, 4);
    }

    #[test]
    fn ycsb_d_and_e_run_under_the_scenario_driver() {
        // Workload D (latest-distribution reads + inserts) and E (short
        // scans + inserts) both complete open-loop and closed-loop, with
        // deterministic per-seed reports. E's scans are real range reads:
        // each contacted replica reads the whole range through the dense
        // store (metered per record).
        for preset in [presets::ycsb_d(), presets::ycsb_e()] {
            let build = || {
                let mut cfg = ClusterConfig::lan_test(8, 3);
                cfg.topology =
                    Topology::spread(8, &[("site-a", RegionId(0)), ("site-b", RegionId(0))]);
                cfg.network = NetworkModel::grid5000_like();
                cfg.strategy = ReplicationStrategy::NetworkTopology;
                let mut cluster = Cluster::new(cfg, 43);
                let mut wl_cfg = presets::sized(preset.clone(), 1_000, 3_000);
                wl_cfg.field_count = 1;
                wl_cfg.field_length = 256;
                cluster.load_records((0..wl_cfg.record_count).map(|k| (k, wl_cfg.record_size())));
                (cluster, CoreWorkload::new(wl_cfg))
            };
            let run = |scenario: &Scenario| {
                let (mut cluster, mut workload) = build();
                let mut policy = HarmonyPolicy::with_tolerance(0.20);
                quick_runtime(43).run_scenario(&mut cluster, &mut workload, &mut policy, scenario)
            };
            let open = run(&Scenario::open_poisson(10_000.0));
            assert_eq!(open.total_ops, 3_000);
            assert!(open.reads > 0, "both mixes read");
            assert!(open.writes > 0, "inserts write");
            assert_eq!(
                open,
                run(&Scenario::open_poisson(10_000.0)),
                "deterministic"
            );
            let closed = run(&Scenario::closed(16));
            assert_eq!(closed.total_ops, 3_000);
        }
    }

    #[test]
    fn ordered_partitioner_runs_ycsb_e_under_the_scenario_driver() {
        // Workload E's short scans under contiguous key-range ownership:
        // the driver needs no special casing — placement mode is cluster
        // config — and runs stay deterministic per seed, open- and
        // closed-loop, exactly like hash-partitioned ones.
        let build = |partitioner: concord_cluster::Partitioner| {
            let mut cfg = ClusterConfig::lan_test(8, 3);
            cfg.topology = Topology::spread(8, &[("site-a", RegionId(0)), ("site-b", RegionId(0))]);
            cfg.network = NetworkModel::grid5000_like();
            cfg.strategy = ReplicationStrategy::NetworkTopology;
            cfg.partitioner = partitioner;
            let mut cluster = Cluster::new(cfg, 47);
            let mut wl_cfg = presets::sized(presets::ycsb_e(), 1_000, 3_000);
            wl_cfg.field_count = 1;
            wl_cfg.field_length = 256;
            cluster.load_records((0..wl_cfg.record_count).map(|k| (k, wl_cfg.record_size())));
            (cluster, CoreWorkload::new(wl_cfg))
        };
        let run = |partitioner, scenario: &Scenario| {
            let (mut cluster, mut workload) = build(partitioner);
            let mut policy = HarmonyPolicy::with_tolerance(0.20);
            quick_runtime(47).run_scenario(&mut cluster, &mut workload, &mut policy, scenario)
        };
        let ordered = concord_cluster::Partitioner::Ordered;
        let open = run(ordered, &Scenario::open_poisson(10_000.0));
        assert_eq!(open.total_ops, 3_000);
        assert!(open.reads > 0 && open.writes > 0);
        assert_eq!(
            open,
            run(ordered, &Scenario::open_poisson(10_000.0)),
            "ordered runs must be deterministic per seed"
        );
        let closed = run(ordered, &Scenario::closed(16));
        assert_eq!(closed.total_ops, 3_000);
        // The placement mode changes coverage and traffic, so the reports
        // must actually differ from hash ones (same seed, same scenario).
        let hash = run(
            concord_cluster::Partitioner::Hash,
            &Scenario::open_poisson(10_000.0),
        );
        assert_ne!(open, hash, "ordered placement must change the run");
    }

    #[test]
    fn repair_plane_surfaces_in_fault_reports_and_the_bill() {
        // The same faulted run with and without the repair plane: with it,
        // the report carries the hint/sweep counters and the repair bytes
        // land in the billable traffic (higher network cost).
        let run = |mode: concord_cluster::RepairMode| {
            let mut cfg = ClusterConfig::lan_test(8, 5);
            cfg.topology = Topology::spread(8, &[("site-a", RegionId(0)), ("site-b", RegionId(0))]);
            cfg.network = NetworkModel::grid5000_like();
            cfg.strategy = ReplicationStrategy::NetworkTopology;
            cfg.repair = concord_cluster::RepairConfig::with_mode(mode);
            let mut cluster = Cluster::new(cfg, 51);
            let mut wl_cfg = presets::paper_heavy_read_update(2_000, 6_000);
            wl_cfg.field_count = 1;
            wl_cfg.field_length = 256;
            let mut workload = CoreWorkload::new(wl_cfg.clone());
            cluster.load_records((0..wl_cfg.record_count).map(|k| (k, wl_cfg.record_size())));
            let mut policy = StaticPolicy::eventual();
            // 6000 ops at 10k/s span 0.6 s; a transient outage queues hints,
            // the crash/recover pair exercises the recovery migration.
            let scenario = Scenario::open_uniform(10_000.0).with_faults(vec![
                FaultEvent::at_secs(0.1, FaultAction::NodeDown(1)),
                FaultEvent::at_secs(0.2, FaultAction::NodeUp(1)),
                FaultEvent::at_secs(0.3, FaultAction::CrashNode(2)),
                FaultEvent::at_secs(0.45, FaultAction::RecoverNode(2)),
            ]);
            quick_runtime(51).run_scenario(&mut cluster, &mut workload, &mut policy, &scenario)
        };
        let off = run(concord_cluster::RepairMode::Off);
        assert_eq!(off.hints_queued, 0);
        assert_eq!(off.repair_pages_compared, 0);
        assert_eq!(off.repair_traffic.total(), 0);

        let full = run(concord_cluster::RepairMode::Full);
        assert!(full.hints_queued > 0, "the outage must queue hints");
        assert!(full.hints_replayed > 0, "recovery must replay them");
        assert!(full.repair_pages_compared > 0);
        assert!(full.repair_records_streamed > 0);
        assert!(full.repair_traffic.total() > 0);
        assert!(
            full.repair_traffic.intra_dc > 0,
            "a two-site cluster repairs over intra-DC links too"
        );
        assert!(
            full.usage.traffic.total() > off.usage.traffic.total(),
            "repair bytes must flow into the billable traffic"
        );
        let (off_bill, full_bill) = (off.bill.unwrap(), full.bill.unwrap());
        assert!(
            full_bill.network_usd > off_bill.network_usd,
            "repair traffic must show up in the bill ({} vs {})",
            full_bill.network_usd,
            off_bill.network_usd
        );
        // The whole point: the repaired run serves fewer stale reads.
        assert!(
            full.stale_reads <= off.stale_reads,
            "repair must not increase staleness ({} vs {})",
            full.stale_reads,
            off.stale_reads
        );
    }

    #[test]
    fn resilience_layer_surfaces_in_fault_reports_and_the_bill() {
        // The same gray-failure run with and without the resilience layer:
        // with it, the report carries the hedge/backoff/breaker counters and
        // the hedge duplicates land in the billable traffic (higher network
        // cost). With it off, every counter stays zero.
        let run = |resilience_on: bool| {
            let mut cfg = ClusterConfig::lan_test(8, 5);
            cfg.topology = Topology::spread(8, &[("site-a", RegionId(0)), ("site-b", RegionId(0))]);
            cfg.network = NetworkModel::grid5000_like();
            cfg.strategy = ReplicationStrategy::NetworkTopology;
            // Tight enough that reads stuck on the dead node time out and
            // re-issue (exercising backoff and the breaker strikes).
            cfg.op_timeout = SimDuration::from_millis(25);
            cfg.retry_on_timeout = 3;
            if resilience_on {
                cfg.resilience.hedge_delay = SimDuration::from_micros(500);
                cfg.resilience.backoff = true;
                cfg.read_selection = concord_cluster::ReplicaSelection::Dynamic;
            }
            let mut cluster = Cluster::new(cfg, 53);
            let mut wl_cfg = presets::paper_heavy_read_update(2_000, 6_000);
            wl_cfg.field_count = 1;
            wl_cfg.field_length = 256;
            let mut workload = CoreWorkload::new(wl_cfg.clone());
            cluster.load_records((0..wl_cfg.record_count).map(|k| (k, wl_cfg.record_size())));
            // Quorum reads are the pressure lever: a hedge adds only ONE
            // speculative replica, so a read whose contacted set holds both
            // the dead node and the saturated slow node cannot be rescued —
            // it genuinely times out, feeding backoff and breaker strikes,
            // while ordinary reads still hedge past the slow node. (At CL
            // ONE every read is hedge-rescuable and no counter past
            // hedge_wins would ever move.)
            let mut policy = StaticPolicy::quorum();
            // A gray failure (one node 20x slow) plus a transient hard
            // outage: the slow window feeds hedging, the outage feeds
            // timeouts, backoff retries and breaker strikes.
            let scenario = Scenario::open_uniform(10_000.0).with_faults(vec![
                FaultEvent::at_secs(0.1, FaultAction::SlowNode(1, 20.0)),
                FaultEvent::at_secs(0.2, FaultAction::NodeDown(2)),
                FaultEvent::at_secs(0.35, FaultAction::RestoreNode(1)),
                FaultEvent::at_secs(0.4, FaultAction::NodeUp(2)),
            ]);
            quick_runtime(53).run_scenario(&mut cluster, &mut workload, &mut policy, &scenario)
        };
        let off = run(false);
        assert_eq!(off.hedged_requests, 0);
        assert_eq!(off.hedge_wins, 0);
        assert_eq!(off.backoff_retries, 0);
        assert_eq!(off.breaker_opens, 0);
        assert_eq!(off.hedge_bytes, 0);

        let on = run(true);
        assert!(
            on.hedged_requests > 0,
            "the slow window must trigger hedges"
        );
        assert!(on.hedge_wins > 0, "hedges past a 20x-slow node must win");
        assert!(on.hedge_wins <= on.hedged_requests);
        assert!(on.hedge_bytes > 0, "hedge duplicates must be metered");
        assert!(on.backoff_retries > 0, "timed-out reads must back off");
        assert!(on.breaker_opens > 0, "the silent node must trip a breaker");
        assert!(
            on.usage.traffic.total() > off.usage.traffic.total(),
            "hedge bytes must flow into the billable traffic"
        );
        let (off_bill, on_bill) = (off.bill.unwrap(), on.bill.unwrap());
        assert!(
            on_bill.network_usd > off_bill.network_usd,
            "hedge traffic must show up in the bill ({} vs {})",
            on_bill.network_usd,
            off_bill.network_usd
        );
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_rejected() {
        AdaptiveRuntime::new(
            RuntimeConfig {
                clients: 0,
                ..Default::default()
            },
            1,
        );
    }
}
