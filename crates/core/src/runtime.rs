//! The adaptive runtime: closes the loop between the storage cluster, the
//! workload, the monitoring module and a consistency policy.
//!
//! This is the component that corresponds to running "YCSB against Cassandra
//! with Harmony attached" in the paper's evaluation: a closed loop of client
//! threads drives the cluster, every completed operation feeds the monitor,
//! and at every adaptation interval the policy is consulted and the cluster's
//! consistency levels are retuned.

use crate::policy::{ClusterProfile, ConsistencyPolicy, PolicyContext};
use crate::report::{LatencySummary, LevelChange, RunReport};
use concord_cluster::{Cluster, ClusterOutput, OpKind};
use concord_cost::{Bill, PricingModel, ResourceUsage};
use concord_monitor::{AccessMonitor, MonitorConfig};
use concord_sim::{SimDuration, SimRng, SimTime};
use concord_workload::{CoreWorkload, OperationType, WorkloadOp};

/// Configuration of an adaptive run.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Number of concurrent closed-loop clients (YCSB threads).
    pub clients: u32,
    /// Per-client pause between a completion and the next request.
    pub think_time: SimDuration,
    /// How often the policy is consulted (the adaptation interval).
    pub adaptation_interval: SimDuration,
    /// Monitor configuration (rate window, smoothing factors).
    pub monitor: MonitorConfig,
    /// Pricing model used to compute the run's bill (optional).
    pub pricing: Option<PricingModel>,
    /// Safety cap on processed outputs (guards against run-away loops).
    pub max_outputs: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            clients: 32,
            think_time: SimDuration::ZERO,
            adaptation_interval: SimDuration::from_secs(5),
            monitor: MonitorConfig::default(),
            pricing: Some(PricingModel::ec2_2013()),
            max_outputs: u64::MAX,
        }
    }
}

/// The adaptive runtime.
pub struct AdaptiveRuntime {
    config: RuntimeConfig,
    rng: SimRng,
}

impl AdaptiveRuntime {
    /// Create a runtime with the given configuration and RNG seed.
    pub fn new(config: RuntimeConfig, seed: u64) -> Self {
        assert!(config.clients >= 1, "at least one client is required");
        assert!(
            !config.adaptation_interval.is_zero(),
            "the adaptation interval must be positive"
        );
        AdaptiveRuntime {
            config,
            rng: SimRng::new(seed),
        }
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    fn submit(cluster: &mut Cluster, op: &WorkloadOp, at: SimTime) {
        match op.op {
            OperationType::Read | OperationType::Scan => {
                cluster.submit_read_at(op.key, at);
            }
            OperationType::Update | OperationType::Insert | OperationType::ReadModifyWrite => {
                cluster.submit_write_at(op.key, op.value_size, at);
            }
        }
    }

    /// Drive `workload` against `cluster` under `policy` until every
    /// operation of the workload has completed, and return the run report.
    ///
    /// The cluster should already be loaded with the workload's records
    /// (see [`Cluster::load_records`]).
    pub fn run(
        &mut self,
        cluster: &mut Cluster,
        workload: &mut CoreWorkload,
        policy: &mut dyn ConsistencyPolicy,
    ) -> RunReport {
        let profile = ClusterProfile::from_cluster(cluster, workload.config().record_size());
        let mut monitor = AccessMonitor::new(self.config.monitor);
        let start = cluster.now();

        // Initial decision from a cold monitor, then the first tick.
        let mut adaptation_steps = 0u64;
        let mut level_timeline: Vec<LevelChange> = Vec::new();
        let initial = policy.decide(&PolicyContext {
            now: start,
            snapshot: monitor.snapshot(start),
            profile,
        });
        initial.apply(cluster);
        adaptation_steps += 1;
        level_timeline.push(LevelChange {
            at_secs: start.as_secs_f64(),
            read_replicas: cluster.config().required_acks(initial.read),
            write_replicas: cluster.config().required_acks(initial.write),
        });

        // Prime the closed loop: one outstanding operation per client,
        // staggered by a few microseconds to avoid an artificial burst.
        let total_ops = workload.config().operation_count;
        let mut submitted = 0u64;
        let initial_clients = (self.config.clients as u64).min(total_ops);
        for i in 0..initial_clients {
            let op = workload.next_op(&mut self.rng);
            Self::submit(cluster, &op, start + SimDuration::from_micros(i * 13));
            submitted += 1;
        }

        let mut tick_id = 0u64;
        cluster.schedule_tick(start + self.config.adaptation_interval, tick_id);

        let mut completed = 0u64;
        let mut outputs = 0u64;
        while completed < submitted.max(1) && outputs < self.config.max_outputs {
            let Some(output) = cluster.advance() else {
                break;
            };
            outputs += 1;
            match output {
                ClusterOutput::Completed(op) => {
                    completed += 1;
                    // Completions arrive in time order of `completed_at`; use
                    // that timestamp for the rate windows (at steady state the
                    // completion rate equals the arrival rate).
                    match op.kind {
                        OpKind::Read => monitor.record_read(op.completed_at, op.latency()),
                        OpKind::Write => monitor.record_write(op.completed_at, op.latency()),
                    }
                    // Closed loop: this client immediately issues its next
                    // operation (after the optional think time).
                    if submitted < total_ops && !workload.is_exhausted() {
                        let next = workload.next_op(&mut self.rng);
                        Self::submit(cluster, &next, op.completed_at + self.config.think_time);
                        submitted += 1;
                    }
                }
                ClusterOutput::Tick { at, .. } => {
                    // Feed the monitor with the propagation measurements the
                    // cluster collected since the last tick.
                    for sample in cluster.drain_propagation_samples() {
                        monitor.record_propagation(sample);
                    }
                    if policy.is_adaptive() {
                        let ctx = PolicyContext {
                            now: at,
                            snapshot: monitor.snapshot(at),
                            profile,
                        };
                        let decision = policy.decide(&ctx);
                        decision.apply(cluster);
                        adaptation_steps += 1;
                        let read_replicas = cluster.config().required_acks(decision.read);
                        let write_replicas = cluster.config().required_acks(decision.write);
                        if level_timeline.last().is_none_or(|last| {
                            last.read_replicas != read_replicas
                                || last.write_replicas != write_replicas
                        }) {
                            level_timeline.push(LevelChange {
                                at_secs: at.as_secs_f64(),
                                read_replicas,
                                write_replicas,
                            });
                        }
                    }
                    // Keep ticking while work remains.
                    if completed < total_ops {
                        tick_id += 1;
                        cluster.schedule_tick(at + self.config.adaptation_interval, tick_id);
                    }
                }
            }
        }

        let makespan = cluster.now() - start;
        let metrics = cluster.metrics();
        let usage = ResourceUsage::from_cluster(cluster, makespan);
        let bill = self.config.pricing.map(|p| Bill::compute(&p, &usage));

        RunReport {
            policy: policy.name(),
            total_ops: metrics.ops_completed(),
            reads: metrics.reads_completed,
            writes: metrics.writes_completed,
            timeouts: metrics.timeouts,
            makespan,
            throughput_ops_per_sec: metrics.throughput(makespan),
            read_latency_ms: LatencySummary::from_stats(&metrics.read_latency),
            write_latency_ms: LatencySummary::from_stats(&metrics.write_latency),
            stale_reads: metrics.stale_reads,
            stale_read_rate: metrics.stale_read_rate(),
            mean_staleness_depth: cluster.oracle().mean_staleness_depth(),
            mean_read_replicas: metrics.mean_read_fanout(),
            adaptation_steps,
            level_timeline,
            usage,
            bill,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harmony::HarmonyPolicy;
    use crate::policy::StaticPolicy;
    use concord_cluster::{ClusterConfig, ReplicationStrategy};
    use concord_sim::{NetworkModel, RegionId, Topology};
    use concord_workload::presets;

    /// A small two-site cluster and a scaled-down heavy read-update workload.
    fn setup(seed: u64) -> (Cluster, CoreWorkload) {
        let mut cfg = ClusterConfig::lan_test(8, 5);
        cfg.topology = Topology::spread(8, &[("site-a", RegionId(0)), ("site-b", RegionId(0))]);
        cfg.network = NetworkModel::grid5000_like();
        cfg.strategy = ReplicationStrategy::NetworkTopology;
        let mut cluster = Cluster::new(cfg, seed);

        let mut wl_cfg = presets::paper_heavy_read_update(2_000, 6_000);
        wl_cfg.field_count = 1;
        wl_cfg.field_length = 256;
        let workload = CoreWorkload::new(wl_cfg.clone());
        cluster.load_records((0..wl_cfg.record_count).map(|k| (k, wl_cfg.record_size())));
        (cluster, workload)
    }

    fn quick_runtime(seed: u64) -> AdaptiveRuntime {
        AdaptiveRuntime::new(
            RuntimeConfig {
                clients: 16,
                // Short interval so even fast (level-ONE) runs see several
                // adaptation steps.
                adaptation_interval: SimDuration::from_millis(100),
                ..Default::default()
            },
            seed,
        )
    }

    #[test]
    fn static_run_completes_every_operation() {
        let (mut cluster, mut workload) = setup(1);
        let mut policy = StaticPolicy::eventual();
        let report = quick_runtime(1).run(&mut cluster, &mut workload, &mut policy);
        assert_eq!(report.total_ops, 6_000);
        assert_eq!(report.reads + report.writes, 6_000);
        assert!(report.throughput_ops_per_sec > 0.0);
        assert!(report.makespan > SimDuration::ZERO);
        assert!(report.read_latency_ms.p95 >= report.read_latency_ms.p50);
        assert!(report.bill.is_some());
        assert!(report.total_cost_usd() > 0.0);
        assert_eq!(report.policy, "static-eventual(ONE)");
    }

    #[test]
    fn eventual_is_faster_but_staler_than_strong() {
        let run_with = |mut policy: StaticPolicy, seed: u64| {
            let (mut cluster, mut workload) = setup(seed);
            quick_runtime(seed).run(&mut cluster, &mut workload, &mut policy)
        };
        let eventual = run_with(StaticPolicy::eventual(), 3);
        let strong = run_with(StaticPolicy::strong(), 3);
        assert!(
            eventual.throughput_ops_per_sec > strong.throughput_ops_per_sec,
            "eventual {} vs strong {}",
            eventual.throughput_ops_per_sec,
            strong.throughput_ops_per_sec
        );
        assert!(eventual.stale_read_rate > strong.stale_read_rate);
        assert_eq!(strong.stale_reads, 0, "read-ALL can never be stale");
        assert!(eventual.mean_read_replicas < strong.mean_read_replicas);
    }

    #[test]
    fn harmony_respects_its_tolerance_and_beats_strong_throughput() {
        let (mut cluster, mut workload) = setup(5);
        let mut harmony = HarmonyPolicy::with_tolerance(0.20);
        let harmony_report = quick_runtime(5).run(&mut cluster, &mut workload, &mut harmony);

        let (mut cluster2, mut workload2) = setup(5);
        let mut strong = StaticPolicy::strong();
        let strong_report = quick_runtime(5).run(&mut cluster2, &mut workload2, &mut strong);

        // The measured stale rate must stay at or below the tolerance
        // (small numerical slack for the finite run).
        assert!(
            harmony_report.stale_read_rate <= 0.20 + 0.03,
            "harmony stale rate {} exceeds tolerance",
            harmony_report.stale_read_rate
        );
        // And Harmony must not be slower than static strong consistency.
        assert!(
            harmony_report.throughput_ops_per_sec >= strong_report.throughput_ops_per_sec * 0.95,
            "harmony {} vs strong {}",
            harmony_report.throughput_ops_per_sec,
            strong_report.throughput_ops_per_sec
        );
        assert!(harmony_report.adaptation_steps > 1);
    }

    #[test]
    fn adaptive_runs_record_a_level_timeline() {
        let (mut cluster, mut workload) = setup(7);
        let mut harmony = HarmonyPolicy::with_tolerance(0.05);
        let report = quick_runtime(7).run(&mut cluster, &mut workload, &mut harmony);
        assert!(!report.level_timeline.is_empty());
        assert!(report
            .level_timeline
            .iter()
            .all(|c| (1..=5).contains(&c.read_replicas)));
        // The JSON round trip used by the experiment binaries works.
        let json = report.to_json();
        assert!(json.contains("level_timeline"));
    }

    #[test]
    fn think_time_slows_the_offered_load() {
        let run_with_think = |think: SimDuration| {
            let (mut cluster, mut workload) = setup(11);
            let mut rt = AdaptiveRuntime::new(
                RuntimeConfig {
                    clients: 8,
                    think_time: think,
                    adaptation_interval: SimDuration::from_millis(500),
                    ..Default::default()
                },
                11,
            );
            let mut policy = StaticPolicy::eventual();
            rt.run(&mut cluster, &mut workload, &mut policy)
                .throughput_ops_per_sec
        };
        let fast = run_with_think(SimDuration::ZERO);
        let slow = run_with_think(SimDuration::from_millis(5));
        assert!(fast > slow * 1.5, "fast={fast} slow={slow}");
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_rejected() {
        AdaptiveRuntime::new(
            RuntimeConfig {
                clients: 0,
                ..Default::default()
            },
            1,
        );
    }
}
