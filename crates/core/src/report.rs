//! Run reports: everything an experiment needs to print the paper's tables.

use concord_cost::{Bill, ResourceUsage};
use concord_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Latency summary statistics, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observed.
    pub max: f64,
}

impl LatencySummary {
    /// Build from the cluster's streaming latency statistics.
    pub fn from_stats(stats: &concord_cluster::LatencyStats) -> Self {
        LatencySummary {
            mean: stats.mean_ms(),
            p50: stats.quantile_ms(0.50).unwrap_or(0.0),
            p95: stats.quantile_ms(0.95).unwrap_or(0.0),
            p99: stats.quantile_ms(0.99).unwrap_or(0.0),
            max: stats.max_ms(),
        }
    }

    /// Former name of [`LatencySummary::from_stats`].
    #[deprecated(note = "renamed to from_stats when the reservoir became a streaming histogram")]
    pub fn from_reservoir(stats: &concord_cluster::LatencyStats) -> Self {
        Self::from_stats(stats)
    }
}

/// One consistency-level change applied by the adaptive runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelChange {
    /// When the change took effect (seconds of simulated time).
    pub at_secs: f64,
    /// Read-level replica count after the change.
    pub read_replicas: u32,
    /// Write-level replica count after the change.
    pub write_replicas: u32,
}

/// The complete result of one adaptive (or static) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Name of the policy that drove the run.
    pub policy: String,
    /// Label of the scenario that drove the run (arrival mode + fault count,
    /// e.g. `closed(32)` or `poisson(5000/s)+3 faults`).
    pub scenario: String,
    /// Total client operations completed.
    pub total_ops: u64,
    /// Completed reads.
    pub reads: u64,
    /// Completed writes.
    pub writes: u64,
    /// Operations that timed out.
    pub timeouts: u64,
    /// Timed-out attempts that were re-issued (`retry_on_timeout` budget).
    pub retries: u64,
    /// Fault-script events applied during the run.
    pub faults_injected: u64,
    /// Messages lost in transit to datacenter partitions.
    pub messages_lost: u64,
    /// Simulated duration of the run.
    pub makespan: SimDuration,
    /// Operations per second of simulated time.
    pub throughput_ops_per_sec: f64,
    /// Read-latency summary.
    pub read_latency_ms: LatencySummary,
    /// Write-latency summary.
    pub write_latency_ms: LatencySummary,
    /// Ground-truth stale reads (oracle).
    pub stale_reads: u64,
    /// Ground-truth stale-read rate.
    pub stale_read_rate: f64,
    /// Mean number of acknowledged writes a stale read lagged behind.
    pub mean_staleness_depth: f64,
    /// Mean number of replicas contacted per read.
    pub mean_read_replicas: f64,
    /// Number of adaptation steps the policy performed.
    pub adaptation_steps: u64,
    /// Hints queued for down replicas by the hinted-handoff repair plane
    /// (0 unless `ClusterConfig::repair` enables hints).
    #[serde(default)]
    pub hints_queued: u64,
    /// Queued hints replayed to their destination after it came back up.
    #[serde(default)]
    pub hints_replayed: u64,
    /// Hints dropped because a destination's queue was at capacity.
    #[serde(default)]
    pub hints_dropped: u64,
    /// Page summaries compared by anti-entropy sweeps and recovery syncs.
    #[serde(default)]
    pub repair_pages_compared: u64,
    /// Records streamed between replicas by the repair plane.
    #[serde(default)]
    pub repair_records_streamed: u64,
    /// Repair-plane network bytes by link class (also included in
    /// `usage.traffic`, so the bill prices them; this is the breakdown).
    #[serde(default)]
    pub repair_traffic: concord_cluster::TrafficBytes,
    /// Speculative duplicate read requests issued by the hedging layer
    /// (0 unless `ClusterConfig::resilience` sets a hedge delay).
    #[serde(default)]
    pub hedged_requests: u64,
    /// Reads completed by their hedge's response — the tail-latency saves.
    #[serde(default)]
    pub hedge_wins: u64,
    /// Timed-out attempts re-issued after an exponential-backoff delay
    /// (subset of `retries`).
    #[serde(default)]
    pub backoff_retries: u64,
    /// Per-node circuit breakers tripped open by consecutive timeout
    /// strikes (`ReplicaSelection::Dynamic` only).
    #[serde(default)]
    pub breaker_opens: u64,
    /// Total network bytes of hedged read requests (also included in
    /// `usage.traffic`, so the bill prices tail tolerance like any other
    /// transfer; this breaks the share out).
    #[serde(default)]
    pub hedge_bytes: u64,
    /// Event-queue shards the run executed with (1 = unsharded engine).
    /// Each shard count is its own deterministic universe whose output is
    /// byte-identical at any worker-thread count; these counters only
    /// describe the engine's synchronization behaviour.
    #[serde(default)]
    pub shards: u64,
    /// Lookahead windows the sharded engine crossed (barrier flushes).
    #[serde(default)]
    pub shard_windows: u64,
    /// Cross-shard events staged in mailboxes and delivered at barriers.
    #[serde(default)]
    pub cross_shard_staged: u64,
    /// Cross-shard events whose sampled delay undercut the lookahead bound
    /// (still delivered exactly; nonzero means a truly concurrent engine
    /// would have needed a smaller window).
    #[serde(default)]
    pub lookahead_violations: u64,
    /// Lookahead windows in which at least two shards had events to run —
    /// the windows whose batches actually execute concurrently on the
    /// work-stealing pool (absent in reports from before the multi-core
    /// engine; deserialized as 0).
    #[serde(default)]
    pub parallel_batches: u64,
    /// Serial barrier folds performed. Before barrier elision (PR 10) this
    /// equalled `shard_windows` — every window folded exactly once. With
    /// elision a fold runs only when deferred control-plane work demands
    /// it, so the invariant is `barrier_folds + elided_barriers >=
    /// shard_windows` (folds forced between windows count here too).
    #[serde(default)]
    pub barrier_folds: u64,
    /// Largest number of events any single shard ran within one window (an
    /// upper bound on per-window work imbalance).
    #[serde(default)]
    pub max_batch_len: u64,
    /// Lookahead windows closed without a serial fold (barrier elision):
    /// cross-shard deliveries still applied, but completion classification
    /// and oracle updates were deferred. Always 0 for `shards = 1` and for
    /// reports from before PR 10 (deserialized as 0).
    #[serde(default)]
    pub elided_barriers: u64,
    /// Windows whose start cursor jumped over quiet simulated time instead
    /// of marching barrier-by-barrier through it. Always 0 for `shards = 1`
    /// and for pre-PR-10 reports (deserialized as 0).
    #[serde(default)]
    pub fast_forwards: u64,
    /// Consistency-level changes over time.
    pub level_timeline: Vec<LevelChange>,
    /// Resources consumed (instances, storage, traffic).
    pub usage: ResourceUsage,
    /// The bill, when a pricing model was supplied.
    pub bill: Option<Bill>,
}

impl RunReport {
    /// Total bill in USD (0 when no pricing model was supplied).
    pub fn total_cost_usd(&self) -> f64 {
        self.bill.map(|b| b.total()).unwrap_or(0.0)
    }

    /// Fraction of reads that returned fresh data.
    pub fn fresh_read_fraction(&self) -> f64 {
        1.0 - self.stale_read_rate
    }

    /// A compact single-line summary (used by the experiment binaries).
    pub fn one_line(&self) -> String {
        format!(
            "{:<28} thr={:>9.1} ops/s  read p95={:>7.2} ms  stale={:>6.2}%  cost=${:.4}",
            self.policy,
            self.throughput_ops_per_sec,
            self.read_latency_ms.p95,
            self.stale_read_rate * 100.0,
            self.total_cost_usd()
        )
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }
}

/// Render a set of reports as an aligned text table (one row per report),
/// the format the experiment binaries print.
pub fn render_table(title: &str, reports: &[RunReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<28} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>12}\n",
        "policy",
        "thr (ops/s)",
        "r-lat p50",
        "r-lat p95",
        "w-lat p95",
        "stale %",
        "fanout",
        "cost ($)"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<28} {:>12.1} {:>12.3} {:>12.3} {:>12.3} {:>10.2} {:>10.2} {:>12.4}\n",
            r.policy,
            r.throughput_ops_per_sec,
            r.read_latency_ms.p50,
            r.read_latency_ms.p95,
            r.write_latency_ms.p95,
            r.stale_read_rate * 100.0,
            r.mean_read_replicas,
            r.total_cost_usd(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use concord_cluster::TrafficBytes;

    fn report(policy: &str, stale: f64, cost: f64) -> RunReport {
        RunReport {
            policy: policy.to_string(),
            scenario: "closed(32)".to_string(),
            total_ops: 1000,
            reads: 500,
            writes: 500,
            timeouts: 0,
            retries: 0,
            faults_injected: 0,
            messages_lost: 0,
            makespan: SimDuration::from_secs(10),
            throughput_ops_per_sec: 100.0,
            read_latency_ms: LatencySummary {
                mean: 1.0,
                p50: 0.9,
                p95: 2.0,
                p99: 3.0,
                max: 5.0,
            },
            write_latency_ms: LatencySummary::default(),
            stale_reads: (stale * 500.0) as u64,
            stale_read_rate: stale,
            mean_staleness_depth: 1.0,
            mean_read_replicas: 1.0,
            adaptation_steps: 3,
            hints_queued: 0,
            hints_replayed: 0,
            hints_dropped: 0,
            repair_pages_compared: 0,
            repair_records_streamed: 0,
            repair_traffic: TrafficBytes::default(),
            hedged_requests: 0,
            hedge_wins: 0,
            backoff_retries: 0,
            breaker_opens: 0,
            hedge_bytes: 0,
            shards: 1,
            shard_windows: 0,
            cross_shard_staged: 0,
            lookahead_violations: 0,
            parallel_batches: 0,
            barrier_folds: 0,
            elided_barriers: 0,
            fast_forwards: 0,
            max_batch_len: 0,
            level_timeline: vec![LevelChange {
                at_secs: 0.0,
                read_replicas: 1,
                write_replicas: 1,
            }],
            usage: ResourceUsage {
                vm_count: 4,
                runtime: SimDuration::from_secs(10),
                stored_bytes: 1_000,
                storage_io_ops: 10,
                traffic: TrafficBytes::default(),
            },
            bill: Some(Bill {
                instances_usd: cost,
                storage_usd: 0.0,
                network_usd: 0.0,
            }),
        }
    }

    #[test]
    fn cost_and_freshness_helpers() {
        let r = report("x", 0.2, 1.5);
        assert!((r.total_cost_usd() - 1.5).abs() < 1e-12);
        assert!((r.fresh_read_fraction() - 0.8).abs() < 1e-12);
        let mut no_bill = r.clone();
        no_bill.bill = None;
        assert_eq!(no_bill.total_cost_usd(), 0.0);
    }

    #[test]
    fn one_line_and_table_contain_key_numbers() {
        let reports = vec![
            report("static-eventual(ONE)", 0.3, 0.5),
            report("harmony", 0.05, 0.6),
        ];
        let line = reports[0].one_line();
        assert!(line.contains("static-eventual"));
        assert!(line.contains("30.00%"));
        let table = render_table("EXP-A1", &reports);
        assert!(table.contains("EXP-A1"));
        assert!(table.contains("harmony"));
        assert!(table.contains("policy"));
        assert_eq!(table.lines().count(), 5, "title + header + 2 rows + blank");
    }

    #[test]
    fn report_serializes() {
        let r = report("quorum", 0.0, 2.0);
        let json = r.to_json();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn reports_without_repair_fields_still_deserialize() {
        // Reports serialized before the repair plane existed lack the
        // repair counters; they must load with everything zeroed.
        let r = report("quorum", 0.0, 2.0);
        let mut json = r.to_json();
        for field in [
            "hints_queued",
            "hints_replayed",
            "hints_dropped",
            "repair_pages_compared",
            "repair_records_streamed",
        ] {
            let start = json.find(&format!("\"{field}\"")).expect("field present");
            let end = start + json[start..].find(',').unwrap() + 1;
            json.replace_range(start..end, "");
        }
        let start = json.find("\"repair_traffic\"").expect("field present");
        let end = start + json[start..].find('}').unwrap() + 2; // past "},"
        json.replace_range(start..end, "");
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn reports_from_before_the_multicore_engine_still_deserialize() {
        // Reports serialized before handler batches ran in parallel lack the
        // pool counters; they must load with all three zeroed.
        let r = report("quorum", 0.0, 2.0);
        let mut json = r.to_json();
        for field in ["parallel_batches", "barrier_folds", "max_batch_len"] {
            let start = json.find(&format!("\"{field}\"")).expect("field present");
            let end = start + json[start..].find(',').unwrap() + 1;
            json.replace_range(start..end, "");
        }
        assert!(!json.contains("parallel_batches"));
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.parallel_batches, 0);
        assert_eq!(back.barrier_folds, 0);
        assert_eq!(back.max_batch_len, 0);
        assert_eq!(r, back);
    }

    #[test]
    fn reports_from_before_barrier_elision_still_deserialize() {
        // Reports serialized before PR 10 lack the elision counters; they
        // must load with both zeroed (the pre-elision engine folded at
        // every window, so zero elisions is also the semantically correct
        // reading of such a report).
        let r = report("quorum", 0.0, 2.0);
        let mut json = r.to_json();
        for field in ["elided_barriers", "fast_forwards"] {
            let start = json.find(&format!("\"{field}\"")).expect("field present");
            let end = start + json[start..].find(',').unwrap() + 1;
            json.replace_range(start..end, "");
        }
        assert!(!json.contains("elided_barriers"));
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.elided_barriers, 0);
        assert_eq!(back.fast_forwards, 0);
        assert_eq!(r, back);
    }

    #[test]
    fn reports_from_before_the_resilience_layer_still_deserialize() {
        // Reports serialized before the tail-tolerance layer lack its
        // counters; they must load with everything zeroed.
        let r = report("quorum", 0.0, 2.0);
        let mut json = r.to_json();
        for field in [
            "hedged_requests",
            "hedge_wins",
            "backoff_retries",
            "breaker_opens",
            "hedge_bytes",
        ] {
            let start = json.find(&format!("\"{field}\"")).expect("field present");
            let end = start + json[start..].find(',').unwrap() + 1;
            json.replace_range(start..end, "");
        }
        assert!(!json.contains("hedged_requests"));
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.hedged_requests, 0);
        assert_eq!(back.hedge_bytes, 0);
        assert_eq!(r, back);
    }
}
