//! Harmony: automated self-adaptive consistency (§III-A of the paper).
//!
//! Harmony *"monitors the storage system and data accesses in order to
//! estimate the stale reads rate in the system. Accordingly, it scales
//! up/down the consistency level to preserve a stale rate tolerated by the
//! application. Meanwhile, performance and availability are favored as long
//! as the application requirements are not violated."*
//!
//! The controller is the paper's "adaptive consistency module": at every
//! adaptation step it
//!
//! 1. reads the monitor snapshot (read rate λr, write rate λw, time to write
//!    the first replica `T`, total propagation time `Tp`),
//! 2. estimates the stale-read rate at consistency level ONE using the
//!    probabilistic model of `concord-staleness`,
//! 3. if the estimate is within the application's tolerated stale-read rate,
//!    selects the basic level ONE (best performance/availability);
//!    otherwise computes the **smallest** number of involved replicas that
//!    brings the estimate back under the tolerance.

use crate::policy::{ConsistencyPolicy, LevelDecision, PolicyContext};
use concord_cluster::ConsistencyLevel;
use concord_monitor::MonitorSnapshot;
use concord_staleness::{LevelSolver, PropagationModel, StalenessParams};
use serde::{Deserialize, Serialize};

/// Configuration of the Harmony controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HarmonyConfig {
    /// The application's tolerated stale-read rate (fraction of reads, e.g.
    /// 0.2 for the paper's "20%" Grid'5000 experiment).
    pub tolerated_stale_rate: f64,
    /// The write consistency level Harmony keeps while tuning reads
    /// (the paper's Cassandra experiments write at ONE and tune reads).
    pub write_level: ConsistencyLevel,
    /// Floor applied to the propagation-time estimate, in ms, so that a cold
    /// monitor (no samples yet) does not make Harmony overly optimistic.
    pub min_propagation_ms: f64,
    /// When `true`, Harmony falls back to the deterministic propagation model
    /// of the paper's Figure 1; when `false` it uses the exponential model
    /// (heavier tail, slightly more conservative levels).
    pub deterministic_propagation: bool,
}

impl Default for HarmonyConfig {
    fn default() -> Self {
        HarmonyConfig {
            tolerated_stale_rate: 0.05,
            write_level: ConsistencyLevel::One,
            min_propagation_ms: 0.1,
            deterministic_propagation: true,
        }
    }
}

impl HarmonyConfig {
    /// A Harmony configuration with the given tolerated stale-read rate.
    pub fn with_tolerance(tolerated_stale_rate: f64) -> Self {
        HarmonyConfig {
            tolerated_stale_rate,
            ..Default::default()
        }
    }
}

/// One decision made by Harmony, kept for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HarmonyDecision {
    /// The number of replicas reads will involve.
    pub read_replicas: u32,
    /// The estimated stale-read rate at that level.
    pub estimated_stale_rate: f64,
    /// The estimated stale-read rate if level ONE had been kept.
    pub estimated_stale_rate_at_one: f64,
}

/// The Harmony adaptive consistency controller.
#[derive(Debug, Clone)]
pub struct HarmonyPolicy {
    config: HarmonyConfig,
    solver: LevelSolver,
    last_decision: Option<HarmonyDecision>,
    decisions: Vec<HarmonyDecision>,
}

impl HarmonyPolicy {
    /// Create a Harmony controller.
    pub fn new(config: HarmonyConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.tolerated_stale_rate),
            "tolerated stale rate must be a fraction"
        );
        HarmonyPolicy {
            config,
            solver: LevelSolver::new(),
            last_decision: None,
            decisions: Vec::new(),
        }
    }

    /// Shorthand: Harmony with a tolerated stale-read rate.
    pub fn with_tolerance(tolerated_stale_rate: f64) -> Self {
        Self::new(HarmonyConfig::with_tolerance(tolerated_stale_rate))
    }

    /// The controller's configuration.
    pub fn config(&self) -> &HarmonyConfig {
        &self.config
    }

    /// The most recent decision (if any).
    pub fn last_decision(&self) -> Option<HarmonyDecision> {
        self.last_decision
    }

    /// Every decision made so far (one per adaptation step).
    pub fn decisions(&self) -> &[HarmonyDecision] {
        &self.decisions
    }

    /// Build the staleness-model parameters from a monitor snapshot.
    pub fn staleness_params(&self, ctx: &PolicyContext) -> StalenessParams {
        let snapshot: &MonitorSnapshot = &ctx.snapshot;
        let prop_ms = snapshot
            .propagation_time_ms
            .max(self.config.min_propagation_ms);
        let first_ms = snapshot.first_write_time_ms.max(0.0).min(prop_ms);
        let propagation = if self.config.deterministic_propagation {
            PropagationModel::Deterministic { total_ms: prop_ms }
        } else {
            PropagationModel::Exponential { mean_ms: prop_ms }
        };
        StalenessParams {
            n_replicas: ctx.profile.replication_factor,
            read_level: 1,
            write_level: ctx
                .profile
                .replication_factor
                .min(self.required_write_acks(ctx)),
            read_rate: snapshot.read_rate,
            write_rate: snapshot.write_rate,
            first_write_ms: first_ms,
            propagation,
        }
    }

    fn required_write_acks(&self, ctx: &PolicyContext) -> u32 {
        self.config
            .write_level
            .required_acks(ctx.profile.replication_factor, ctx.profile.dc_count)
    }
}

impl ConsistencyPolicy for HarmonyPolicy {
    fn name(&self) -> String {
        format!(
            "harmony(tolerance={:.0}%)",
            self.config.tolerated_stale_rate * 100.0
        )
    }

    fn decide(&mut self, ctx: &PolicyContext) -> LevelDecision {
        // Cold start: before the monitor has observed any traffic there is no
        // basis for an estimate, so Harmony starts from a conservative quorum
        // read level and relaxes as soon as measurements arrive (performance
        // is favoured only once it is known not to violate the requirement).
        if ctx.snapshot.total_reads == 0 && ctx.snapshot.total_writes == 0 {
            let quorum = ctx.profile.replication_factor / 2 + 1;
            let decision = HarmonyDecision {
                read_replicas: quorum,
                estimated_stale_rate: 0.0,
                estimated_stale_rate_at_one: 0.0,
            };
            self.last_decision = Some(decision);
            self.decisions.push(decision);
            return LevelDecision {
                read: ConsistencyLevel::from_replica_count(quorum, ctx.profile.replication_factor),
                write: self.config.write_level,
            };
        }
        let params = self.staleness_params(ctx);
        let estimates = self.solver.estimate_all_levels(&params);
        let solution = self.solver.solve(&params, self.config.tolerated_stale_rate);
        let decision = HarmonyDecision {
            read_replicas: solution.read_level,
            estimated_stale_rate: solution.estimated_stale_rate,
            estimated_stale_rate_at_one: estimates.first().copied().unwrap_or(0.0),
        };
        self.last_decision = Some(decision);
        self.decisions.push(decision);

        let read = if solution.read_level == 1 {
            ConsistencyLevel::One
        } else {
            ConsistencyLevel::from_replica_count(
                solution.read_level,
                ctx.profile.replication_factor,
            )
        };
        LevelDecision {
            read,
            write: self.config.write_level,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::tests::test_context;

    #[test]
    fn light_write_load_keeps_level_one() {
        // Few writes, fast propagation → even a tight tolerance allows ONE.
        let mut h = HarmonyPolicy::with_tolerance(0.10);
        let ctx = test_context(1_000.0, 2.0, 2.0);
        let d = h.decide(&ctx);
        assert_eq!(d.read, ConsistencyLevel::One);
        assert_eq!(d.write, ConsistencyLevel::One);
        let dec = h.last_decision().unwrap();
        assert!(dec.estimated_stale_rate <= 0.10);
        assert_eq!(dec.read_replicas, 1);
    }

    #[test]
    fn heavy_writes_scale_the_level_up() {
        let mut h = HarmonyPolicy::with_tolerance(0.05);
        // 2000 writes/s with 40 ms propagation: almost every read would be stale at ONE.
        let ctx = test_context(4_000.0, 2_000.0, 40.0);
        let d = h.decide(&ctx);
        let dec = h.last_decision().unwrap();
        assert!(
            dec.read_replicas > 1,
            "expected more than one replica, got {dec:?}"
        );
        assert!(dec.estimated_stale_rate_at_one > 0.5);
        assert_ne!(d.read, ConsistencyLevel::One);
    }

    #[test]
    fn looser_tolerance_never_needs_more_replicas() {
        let ctx = test_context(4_000.0, 800.0, 30.0);
        let mut strict = HarmonyPolicy::with_tolerance(0.05);
        let mut loose = HarmonyPolicy::with_tolerance(0.40);
        strict.decide(&ctx);
        loose.decide(&ctx);
        assert!(
            loose.last_decision().unwrap().read_replicas
                <= strict.last_decision().unwrap().read_replicas
        );
    }

    #[test]
    fn decisions_adapt_to_changing_conditions() {
        let mut h = HarmonyPolicy::with_tolerance(0.10);
        // Quiet phase → ONE.
        let quiet = h.decide(&test_context(500.0, 5.0, 5.0));
        // Burst of writes → stronger.
        let busy = h.decide(&test_context(4_000.0, 2_000.0, 50.0));
        // Back to quiet → ONE again (Harmony scales *down* too).
        let calm = h.decide(&test_context(500.0, 5.0, 5.0));
        assert_eq!(quiet.read, ConsistencyLevel::One);
        assert_ne!(busy.read, ConsistencyLevel::One);
        assert_eq!(calm.read, ConsistencyLevel::One);
        assert_eq!(h.decisions().len(), 3);
    }

    #[test]
    fn cold_monitor_starts_conservatively() {
        let mut h = HarmonyPolicy::with_tolerance(0.01);
        let ctx = test_context(0.0, 0.0, 0.0);
        let d = h.decide(&ctx);
        // No measurements yet → quorum reads until the monitor warms up.
        assert_eq!(d.read, ConsistencyLevel::Quorum);
        assert_eq!(h.last_decision().unwrap().read_replicas, 3);
    }

    #[test]
    fn name_mentions_the_tolerance() {
        assert_eq!(
            HarmonyPolicy::with_tolerance(0.4).name(),
            "harmony(tolerance=40%)"
        );
    }

    #[test]
    fn zero_tolerance_reads_strongly() {
        let mut h = HarmonyPolicy::with_tolerance(0.0);
        let ctx = test_context(1_000.0, 500.0, 30.0);
        let d = h.decide(&ctx);
        // With RF 5 and writes at ONE, only reading every replica guarantees
        // zero staleness under the model.
        assert_eq!(d.read, ConsistencyLevel::All);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_tolerance_rejected() {
        HarmonyPolicy::with_tolerance(1.5);
    }

    #[test]
    fn both_propagation_models_scale_up_under_pressure() {
        let ctx = test_context(2_000.0, 300.0, 25.0);
        let mut det = HarmonyPolicy::new(HarmonyConfig {
            tolerated_stale_rate: 0.10,
            deterministic_propagation: true,
            ..Default::default()
        });
        let mut exp = HarmonyPolicy::new(HarmonyConfig {
            tolerated_stale_rate: 0.10,
            deterministic_propagation: false,
            ..Default::default()
        });
        det.decide(&ctx);
        exp.decide(&ctx);
        let det_level = det.last_decision().unwrap().read_replicas;
        let exp_level = exp.last_decision().unwrap().read_replicas;
        assert!(det_level > 1, "deterministic model: {det_level}");
        assert!(exp_level > 1, "exponential model: {exp_level}");
        assert!((1..=5).contains(&det_level) && (1..=5).contains(&exp_level));
    }
}
