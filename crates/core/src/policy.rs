//! The consistency-policy framework.
//!
//! A [`ConsistencyPolicy`] is a pull-based controller: the adaptive runtime
//! invokes [`ConsistencyPolicy::decide`] every adaptation interval with a
//! [`PolicyContext`] (the monitor snapshot plus a static description of the
//! cluster) and applies the returned [`LevelDecision`] to the live cluster.
//! Static levels, Harmony, Bismar, the geographic policy and the
//! behavior-model-driven policy all implement this trait, so experiments and
//! downstream users can swap them freely.

use concord_cluster::{Cluster, ConsistencyLevel};
use concord_monitor::MonitorSnapshot;
use concord_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Static facts about the deployed cluster that policies may use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterProfile {
    /// Replication factor.
    pub replication_factor: u32,
    /// Number of datacenters.
    pub dc_count: u32,
    /// Replicas of a key located in the coordinator's datacenter
    /// (⌈RF / DCs⌉ under `NetworkTopologyStrategy`).
    pub replicas_in_local_dc: u32,
    /// Mean one-way intra-datacenter latency in milliseconds.
    pub intra_dc_latency_ms: f64,
    /// Mean one-way inter-datacenter latency in milliseconds.
    pub inter_dc_latency_ms: f64,
    /// Total number of storage nodes (VM instances).
    pub node_count: u32,
    /// Mean record payload size in bytes.
    pub record_size_bytes: u32,
    /// Mean replica-local storage service time in milliseconds.
    pub storage_service_ms: f64,
}

impl ClusterProfile {
    /// Extract the profile of a live cluster. `record_size_bytes` comes from
    /// the workload configuration (the cluster does not know it a priori).
    pub fn from_cluster(cluster: &Cluster, record_size_bytes: u32) -> Self {
        let cfg = cluster.config();
        let rf = cfg.replication_factor;
        let dc_count = cfg.dc_count().max(1);
        // Pick two representative nodes to estimate intra/inter-DC latency.
        let topo = &cfg.topology;
        let nodes: Vec<_> = topo.nodes().collect();
        let mut intra = cfg.network.intra_dc.mean_ms();
        let mut inter = cfg.network.inter_dc.mean_ms();
        if dc_count == 1 {
            inter = intra;
        }
        if nodes.len() < 2 {
            intra = cfg.network.local.mean_ms();
            inter = intra;
        }
        ClusterProfile {
            replication_factor: rf,
            dc_count,
            replicas_in_local_dc: rf.div_ceil(dc_count),
            intra_dc_latency_ms: intra,
            inter_dc_latency_ms: inter,
            node_count: topo.node_count() as u32,
            record_size_bytes,
            storage_service_ms: (cfg.storage_read_latency.mean_ms()
                + cfg.storage_write_latency.mean_ms())
                / 2.0,
        }
    }
}

/// Everything a policy sees when making a decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyContext {
    /// The time of the decision.
    pub now: SimTime,
    /// The most recent monitoring snapshot.
    pub snapshot: MonitorSnapshot,
    /// Static description of the cluster.
    pub profile: ClusterProfile,
}

/// The levels a policy wants the cluster to use from now on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelDecision {
    /// Read consistency level.
    pub read: ConsistencyLevel,
    /// Write consistency level.
    pub write: ConsistencyLevel,
}

impl LevelDecision {
    /// Eventual consistency: both reads and writes involve a single replica.
    pub fn eventual() -> Self {
        LevelDecision {
            read: ConsistencyLevel::One,
            write: ConsistencyLevel::One,
        }
    }

    /// Strong consistency through read-all (the static "strong" baseline the
    /// paper compares Harmony against in Cassandra: CL = ALL for reads).
    pub fn strong_read_all() -> Self {
        LevelDecision {
            read: ConsistencyLevel::All,
            write: ConsistencyLevel::One,
        }
    }

    /// Strong consistency through overlapping quorums.
    pub fn quorum() -> Self {
        LevelDecision {
            read: ConsistencyLevel::Quorum,
            write: ConsistencyLevel::Quorum,
        }
    }

    /// Apply the decision to a cluster.
    pub fn apply(self, cluster: &mut Cluster) {
        cluster.set_levels(self.read, self.write);
    }
}

/// A runtime-adjustable consistency policy.
pub trait ConsistencyPolicy: Send {
    /// Short human-readable name (used in reports and tables).
    fn name(&self) -> String;

    /// Decide the consistency levels to use from `ctx.now` on.
    fn decide(&mut self, ctx: &PolicyContext) -> LevelDecision;

    /// Whether the policy ever changes its decision (static policies return
    /// `false` so the runtime can skip needless re-application).
    fn is_adaptive(&self) -> bool {
        true
    }
}

/// A fixed-level policy (the paper's static baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticPolicy {
    decision: LevelDecision,
    label: &'static str,
}

impl StaticPolicy {
    /// Static eventual consistency (Cassandra level ONE).
    pub fn eventual() -> Self {
        StaticPolicy {
            decision: LevelDecision::eventual(),
            label: "static-eventual(ONE)",
        }
    }

    /// Static strong consistency via read-ALL.
    pub fn strong() -> Self {
        StaticPolicy {
            decision: LevelDecision::strong_read_all(),
            label: "static-strong(ALL)",
        }
    }

    /// Static strong consistency via quorum reads and writes.
    pub fn quorum() -> Self {
        StaticPolicy {
            decision: LevelDecision::quorum(),
            label: "static-quorum",
        }
    }

    /// An arbitrary fixed pair of levels.
    pub fn fixed(read: ConsistencyLevel, write: ConsistencyLevel) -> Self {
        StaticPolicy {
            decision: LevelDecision { read, write },
            label: "static-fixed",
        }
    }

    /// The decision this policy always returns.
    pub fn decision(&self) -> LevelDecision {
        self.decision
    }
}

impl ConsistencyPolicy for StaticPolicy {
    fn name(&self) -> String {
        if self.label == "static-fixed" {
            format!("static({}/{})", self.decision.read, self.decision.write)
        } else {
            self.label.to_string()
        }
    }

    fn decide(&mut self, _ctx: &PolicyContext) -> LevelDecision {
        self.decision
    }

    fn is_adaptive(&self) -> bool {
        false
    }
}

/// A DC-aware static policy: keeps both reads and writes inside the local
/// datacenter quorum, trading cross-DC freshness for WAN-free latencies.
/// This is one of the "geographical policies" the behavior-modeling
/// contribution can associate with application states.
#[derive(Debug, Clone, Copy, Default)]
pub struct GeographicPolicy;

impl ConsistencyPolicy for GeographicPolicy {
    fn name(&self) -> String {
        "geographic(LOCAL_QUORUM)".to_string()
    }

    fn decide(&mut self, _ctx: &PolicyContext) -> LevelDecision {
        LevelDecision {
            read: ConsistencyLevel::LocalQuorum,
            write: ConsistencyLevel::LocalQuorum,
        }
    }

    fn is_adaptive(&self) -> bool {
        false
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use concord_cluster::ClusterConfig;
    use concord_monitor::AccessMonitor;

    pub(crate) fn test_context(read_rate: f64, write_rate: f64, prop_ms: f64) -> PolicyContext {
        let mut monitor = AccessMonitor::default();
        let snapshot = {
            let mut s = monitor.snapshot(SimTime::from_secs(1));
            s.read_rate = read_rate;
            s.write_rate = write_rate;
            s.propagation_time_ms = prop_ms;
            s.first_write_time_ms = 1.0;
            // Pretend the monitor has been observing this traffic for 10 s so
            // policies do not take their cold-start path.
            s.total_reads = (read_rate * 10.0) as u64;
            s.total_writes = (write_rate * 10.0) as u64;
            s
        };
        PolicyContext {
            now: SimTime::from_secs(1),
            snapshot,
            profile: ClusterProfile {
                replication_factor: 5,
                dc_count: 2,
                replicas_in_local_dc: 3,
                intra_dc_latency_ms: 0.5,
                inter_dc_latency_ms: 12.0,
                node_count: 18,
                record_size_bytes: 1_000,
                storage_service_ms: 0.3,
            },
        }
    }

    #[test]
    fn static_policies_never_change() {
        let ctx_a = test_context(100.0, 10.0, 10.0);
        let ctx_b = test_context(10_000.0, 5_000.0, 200.0);
        let mut p = StaticPolicy::eventual();
        assert_eq!(p.decide(&ctx_a), p.decide(&ctx_b));
        assert!(!p.is_adaptive());
        assert_eq!(p.decide(&ctx_a), LevelDecision::eventual());

        let mut strong = StaticPolicy::strong();
        assert_eq!(strong.decide(&ctx_a).read, ConsistencyLevel::All);
        let mut quorum = StaticPolicy::quorum();
        assert_eq!(quorum.decide(&ctx_a), LevelDecision::quorum());
    }

    #[test]
    fn policy_names_are_descriptive() {
        assert!(StaticPolicy::eventual().name().contains("eventual"));
        assert!(StaticPolicy::strong().name().contains("strong"));
        assert!(
            StaticPolicy::fixed(ConsistencyLevel::Two, ConsistencyLevel::One)
                .name()
                .contains("TWO")
        );
        assert!(GeographicPolicy.name().contains("LOCAL_QUORUM"));
    }

    #[test]
    fn geographic_policy_uses_local_quorum() {
        let mut p = GeographicPolicy;
        let d = p.decide(&test_context(10.0, 10.0, 5.0));
        assert_eq!(d.read, ConsistencyLevel::LocalQuorum);
        assert_eq!(d.write, ConsistencyLevel::LocalQuorum);
    }

    #[test]
    fn decision_applies_to_cluster() {
        let mut cluster = Cluster::new(ClusterConfig::lan_test(5, 3), 1);
        LevelDecision::quorum().apply(&mut cluster);
        assert_eq!(cluster.read_level(), ConsistencyLevel::Quorum);
        assert_eq!(cluster.write_level(), ConsistencyLevel::Quorum);
    }

    #[test]
    fn profile_from_cluster_reads_config() {
        let cluster = Cluster::new(ClusterConfig::lan_test(6, 3), 1);
        let profile = ClusterProfile::from_cluster(&cluster, 1_000);
        assert_eq!(profile.replication_factor, 3);
        assert_eq!(profile.node_count, 6);
        assert_eq!(profile.dc_count, 1);
        assert_eq!(profile.replicas_in_local_dc, 3);
        assert_eq!(profile.record_size_bytes, 1_000);
        assert!(profile.intra_dc_latency_ms > 0.0);
        assert!(profile.storage_service_ms > 0.0);
    }
}
