//! Scenarios: the unified description of *how a run drives the cluster*.
//!
//! The paper's evaluation drives every experiment with a closed loop of
//! YCSB threads against a healthy cluster. The trade-off the adaptive
//! policies manage, however, is defined under **offered load** (open-loop
//! arrivals at a fixed rate, regardless of completions) and **replica
//! divergence under stress** (crashed nodes, partitioned datacenters,
//! degraded links) — so a [`Scenario`] describes both knobs declaratively:
//!
//! * an **arrival mode** — a [`ArrivalProcess`]: closed-loop N clients
//!   (think time optional), or an open-loop Poisson / uniform schedule that
//!   is bulk-loaded through `Cluster::submit_batch` and the event queue's
//!   O(1) bulk lane;
//! * a **fault script** — a list of [`FaultEvent`]s, each a time offset from
//!   the run start plus a [`FaultAction`] (node crash/recover with ring
//!   reconfiguration, transient down/up, DC partition/heal, link-class
//!   degradation/restore), which the scenario driver
//!   ([`AdaptiveRuntime::run_scenario`](crate::AdaptiveRuntime::run_scenario))
//!   interleaves with the policy's adaptation epochs.
//!
//! Scenarios are plain serializable data (the *fault-script format* is the
//! JSON serialization of this module's types), so `(arrival mode × topology
//! × fault script × seed)` grids compose exactly like the policy × seed
//! grids of the sweep engine, with the same determinism contract: a run is
//! a pure function of the scenario and the seed.
//!
//! ```
//! use concord_core::{FaultAction, FaultEvent, Scenario};
//! use concord_sim::SimDuration;
//!
//! let scenario = Scenario::open_poisson(5_000.0).with_faults(vec![
//!     FaultEvent::at_secs(2.0, FaultAction::CrashNode(3)),
//!     FaultEvent::at_secs(6.0, FaultAction::RecoverNode(3)),
//!     FaultEvent::at_secs(8.0, FaultAction::PartitionDcs(0, 1)),
//!     FaultEvent::at_secs(12.0, FaultAction::HealDcs(0, 1)),
//! ]);
//! assert_eq!(scenario.faults.len(), 4);
//! let json = serde_json::to_string(&scenario).unwrap();
//! let back: Scenario = serde_json::from_str(&json).unwrap();
//! assert_eq!(scenario, back);
//! ```

use concord_cluster::Cluster;
use concord_sim::{DcId, LinkClass, NodeId, SimDuration};
use concord_workload::ArrivalProcess;
use serde::{Deserialize, Serialize};

/// One fault-injection action, applied to the live cluster at its scripted
/// time. Node and datacenter ids are raw integers so scripts stay trivially
/// serializable and topology-independent to write.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Crash a node permanently: it goes down and its vnode tokens are
    /// withdrawn from the ring, so surviving nodes take over its ranges
    /// (`Cluster::crash_node`).
    CrashNode(u32),
    /// Recover a crashed node: it rejoins the ring at its original token
    /// positions; missed writes are repaired lazily by read repair.
    RecoverNode(u32),
    /// Transient outage: the node stops serving but keeps its ring tokens
    /// (`Cluster::set_node_down`) — requests routed to it are lost.
    NodeDown(u32),
    /// End of a transient outage.
    NodeUp(u32),
    /// Partition two datacenters: messages between their nodes are lost in
    /// transit until healed.
    PartitionDcs(u16, u16),
    /// Heal a datacenter partition.
    HealDcs(u16, u16),
    /// Degrade a link class: every delay sample on it is multiplied by the
    /// factor (e.g. 8.0 for a WAN brown-out).
    DegradeLink(LinkClass, f64),
    /// Restore a degraded link class to healthy latency.
    RestoreLink(LinkClass),
    /// Gray-fail a node: its storage service times and the responses it
    /// emits are multiplied by the factor (`Cluster::slow_node`). The node
    /// stays up and answers everything — just late, the failure mode crash
    /// detection misses.
    SlowNode(u32, f64),
    /// Restore a gray-failed node to healthy speed.
    RestoreNode(u32),
    /// Correlated whole-datacenter outage: every node in the DC goes
    /// transiently down at once (`Cluster::dc_down`).
    DcDown(u16),
    /// End of a whole-datacenter outage: every non-crashed node in the DC
    /// comes back up.
    DcUp(u16),
}

impl FaultAction {
    /// Apply this action to the cluster.
    pub fn apply(&self, cluster: &mut Cluster) {
        match *self {
            FaultAction::CrashNode(n) => cluster.crash_node(NodeId(n)),
            FaultAction::RecoverNode(n) => cluster.recover_node(NodeId(n)),
            FaultAction::NodeDown(n) => cluster.set_node_down(NodeId(n)),
            FaultAction::NodeUp(n) => cluster.set_node_up(NodeId(n)),
            FaultAction::PartitionDcs(a, b) => cluster.partition_dcs(DcId(a), DcId(b)),
            FaultAction::HealDcs(a, b) => cluster.heal_dcs(DcId(a), DcId(b)),
            FaultAction::DegradeLink(class, factor) => cluster.degrade_link(class, factor),
            FaultAction::RestoreLink(class) => cluster.restore_link(class),
            FaultAction::SlowNode(n, factor) => cluster.slow_node(NodeId(n), factor),
            FaultAction::RestoreNode(n) => cluster.restore_node(NodeId(n)),
            FaultAction::DcDown(dc) => cluster.dc_down(DcId(dc)),
            FaultAction::DcUp(dc) => cluster.dc_up(DcId(dc)),
        }
    }

    /// Short label for logs and tables.
    pub fn label(&self) -> String {
        match *self {
            FaultAction::CrashNode(n) => format!("crash(node{n})"),
            FaultAction::RecoverNode(n) => format!("recover(node{n})"),
            FaultAction::NodeDown(n) => format!("down(node{n})"),
            FaultAction::NodeUp(n) => format!("up(node{n})"),
            FaultAction::PartitionDcs(a, b) => format!("partition(dc{a}|dc{b})"),
            FaultAction::HealDcs(a, b) => format!("heal(dc{a}|dc{b})"),
            FaultAction::DegradeLink(class, f) => format!("degrade({class},{f}x)"),
            FaultAction::RestoreLink(class) => format!("restore({class})"),
            FaultAction::SlowNode(n, f) => format!("slow(node{n},{f}x)"),
            FaultAction::RestoreNode(n) => format!("restore(node{n})"),
            FaultAction::DcDown(dc) => format!("dc-down(dc{dc})"),
            FaultAction::DcUp(dc) => format!("dc-up(dc{dc})"),
        }
    }
}

/// A scripted fault: an offset from the run start plus the action to apply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires, relative to the start of the run.
    pub at: SimDuration,
    /// What happens.
    pub action: FaultAction,
}

impl FaultEvent {
    /// A fault at an offset given in (fractional) seconds.
    pub fn at_secs(secs: f64, action: FaultAction) -> Self {
        FaultEvent {
            at: SimDuration::from_secs_f64(secs),
            action,
        }
    }
}

/// A scenario: arrival mode plus fault script. See the module docs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// How client operations arrive (closed loop or open loop).
    pub arrival: ArrivalProcess,
    /// Timed fault script, sorted by offset (enforced by
    /// [`Scenario::with_faults`]). Faults scheduled past the end of the run
    /// never fire — the driver stops once the workload completes.
    pub faults: Vec<FaultEvent>,
}

impl Scenario {
    /// A healthy closed loop of `clients` zero-think-time clients — the
    /// paper's YCSB setup and the historical behaviour of
    /// [`AdaptiveRuntime::run`](crate::AdaptiveRuntime::run).
    pub fn closed(clients: u32) -> Self {
        Scenario {
            arrival: ArrivalProcess::closed(clients),
            faults: Vec::new(),
        }
    }

    /// A closed loop with a per-client think time.
    pub fn closed_with_think(clients: u32, think_time: SimDuration) -> Self {
        Scenario {
            arrival: ArrivalProcess::ClosedLoop {
                clients,
                think_time_us: think_time.as_micros(),
            },
            faults: Vec::new(),
        }
    }

    /// An open-loop Poisson arrival schedule at a fixed offered load.
    pub fn open_poisson(ops_per_sec: f64) -> Self {
        Scenario {
            arrival: ArrivalProcess::OpenLoopPoisson { ops_per_sec },
            faults: Vec::new(),
        }
    }

    /// An open-loop deterministic (uniform-gap) arrival schedule.
    pub fn open_uniform(ops_per_sec: f64) -> Self {
        Scenario {
            arrival: ArrivalProcess::OpenLoopUniform { ops_per_sec },
            faults: Vec::new(),
        }
    }

    /// Attach a fault script (sorted by offset; the sort is stable, so
    /// same-instant faults keep their script order).
    pub fn with_faults(mut self, mut faults: Vec<FaultEvent>) -> Self {
        faults.sort_by_key(|f| f.at);
        self.faults = faults;
        self
    }

    /// True when the arrival mode is a closed loop.
    pub fn is_closed_loop(&self) -> bool {
        self.arrival.concurrency().is_some()
    }

    /// Short label for banners and tables, e.g. `closed(32)` or
    /// `poisson(5000/s)+3 faults`.
    pub fn label(&self) -> String {
        let arrival = match self.arrival {
            ArrivalProcess::ClosedLoop {
                clients,
                think_time_us: 0,
            } => format!("closed({clients})"),
            ArrivalProcess::ClosedLoop {
                clients,
                think_time_us,
            } => format!("closed({clients},think={think_time_us}us)"),
            ArrivalProcess::OpenLoopPoisson { ops_per_sec } => {
                format!("poisson({ops_per_sec:.0}/s)")
            }
            ArrivalProcess::OpenLoopUniform { ops_per_sec } => {
                format!("uniform({ops_per_sec:.0}/s)")
            }
        };
        if self.faults.is_empty() {
            arrival
        } else {
            format!("{arrival}+{} faults", self.faults.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concord_cluster::ClusterConfig;

    #[test]
    fn constructors_and_labels() {
        assert_eq!(Scenario::closed(32).label(), "closed(32)");
        assert_eq!(
            Scenario::closed_with_think(8, SimDuration::from_micros(500)).label(),
            "closed(8,think=500us)"
        );
        assert_eq!(Scenario::open_poisson(5000.0).label(), "poisson(5000/s)");
        assert!(Scenario::closed(4).is_closed_loop());
        assert!(!Scenario::open_uniform(100.0).is_closed_loop());
        let s = Scenario::open_uniform(100.0)
            .with_faults(vec![FaultEvent::at_secs(1.0, FaultAction::CrashNode(0))]);
        assert_eq!(s.label(), "uniform(100/s)+1 faults");
    }

    #[test]
    fn fault_scripts_sort_stably_by_offset() {
        let s = Scenario::closed(1).with_faults(vec![
            FaultEvent::at_secs(5.0, FaultAction::RecoverNode(1)),
            FaultEvent::at_secs(1.0, FaultAction::CrashNode(1)),
            FaultEvent::at_secs(5.0, FaultAction::PartitionDcs(0, 1)),
        ]);
        assert_eq!(s.faults[0].action, FaultAction::CrashNode(1));
        assert_eq!(s.faults[1].action, FaultAction::RecoverNode(1));
        assert_eq!(s.faults[2].action, FaultAction::PartitionDcs(0, 1));
    }

    #[test]
    fn actions_apply_to_a_live_cluster() {
        let mut cluster = Cluster::new(ClusterConfig::lan_test(4, 3), 1);
        FaultAction::CrashNode(2).apply(&mut cluster);
        assert!(cluster.is_node_crashed(NodeId(2)));
        FaultAction::RecoverNode(2).apply(&mut cluster);
        assert!(!cluster.is_node_crashed(NodeId(2)));
        FaultAction::NodeDown(1).apply(&mut cluster);
        assert!(cluster.is_node_down(NodeId(1)));
        FaultAction::NodeUp(1).apply(&mut cluster);
        assert!(!cluster.is_node_down(NodeId(1)));
        FaultAction::PartitionDcs(0, 0).apply(&mut cluster); // same DC: no-op
        assert!(!cluster.dcs_partitioned(DcId(0), DcId(0)));
        FaultAction::DegradeLink(LinkClass::IntraDc, 4.0).apply(&mut cluster);
        FaultAction::RestoreLink(LinkClass::IntraDc).apply(&mut cluster);
        FaultAction::SlowNode(3, 10.0).apply(&mut cluster);
        assert_eq!(cluster.node_slow_factor(NodeId(3)), 10.0);
        FaultAction::RestoreNode(3).apply(&mut cluster);
        assert_eq!(cluster.node_slow_factor(NodeId(3)), 1.0);
        // Single-DC topology: the whole cluster is DC 0.
        FaultAction::DcDown(0).apply(&mut cluster);
        assert!(cluster.is_node_down(NodeId(0)));
        FaultAction::DcUp(0).apply(&mut cluster);
        assert!(!cluster.is_node_down(NodeId(0)));
    }

    #[test]
    fn scenario_serde_round_trip() {
        let s = Scenario::open_poisson(2_500.0).with_faults(vec![
            FaultEvent::at_secs(1.5, FaultAction::CrashNode(3)),
            FaultEvent::at_secs(3.0, FaultAction::DegradeLink(LinkClass::InterDc, 8.0)),
            FaultEvent::at_secs(4.0, FaultAction::HealDcs(0, 1)),
        ]);
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn gray_failure_actions_round_trip_in_the_script_format() {
        // The PR 9 additions ride the same externally-tagged wire format as
        // every older action, so scripts mixing old and new variants
        // round-trip unchanged.
        let s = Scenario::open_poisson(1_000.0).with_faults(vec![
            FaultEvent::at_secs(1.0, FaultAction::SlowNode(2, 10.0)),
            FaultEvent::at_secs(2.0, FaultAction::DcDown(1)),
            FaultEvent::at_secs(3.0, FaultAction::DcUp(1)),
            FaultEvent::at_secs(4.0, FaultAction::RestoreNode(2)),
            FaultEvent::at_secs(5.0, FaultAction::CrashNode(0)),
        ]);
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        assert_eq!(s.faults[0].action.label(), "slow(node2,10x)");
        assert_eq!(s.faults[1].action.label(), "dc-down(dc1)");
        assert_eq!(s.faults[2].action.label(), "dc-up(dc1)");
        assert_eq!(s.faults[3].action.label(), "restore(node2)");
        // The explicit wire spelling of the new variants, pinned so future
        // refactors cannot silently change the script format.
        let wire: FaultAction = serde_json::from_str(r#"{"SlowNode": [2, 10.0]}"#).unwrap();
        assert_eq!(wire, FaultAction::SlowNode(2, 10.0));
        let wire: FaultAction = serde_json::from_str(r#"{"DcDown": 1}"#).unwrap();
        assert_eq!(wire, FaultAction::DcDown(1));
    }

    #[test]
    fn fault_scripts_written_before_the_repair_plane_still_load() {
        // A raw script in the wire format that predates the repair plane
        // (PR 6): the scenario schema carries no repair fields, so scripts
        // serialized back then must keep deserializing unchanged. This
        // literal is the pinned pre-PR-6 format — do not regenerate it from
        // the current serializer.
        let json = r#"{
            "arrival": {"OpenLoopPoisson": {"ops_per_sec": 2500.0}},
            "faults": [
                {"at": 1500000, "action": {"CrashNode": 3}},
                {"at": 3000000, "action": {"DegradeLink": ["InterDc", 8.0]}},
                {"at": 4000000, "action": {"HealDcs": [0, 1]}}
            ]
        }"#;
        let script: Scenario = serde_json::from_str(json).unwrap();
        let expected = Scenario::open_poisson(2_500.0).with_faults(vec![
            FaultEvent::at_secs(1.5, FaultAction::CrashNode(3)),
            FaultEvent::at_secs(3.0, FaultAction::DegradeLink(LinkClass::InterDc, 8.0)),
            FaultEvent::at_secs(4.0, FaultAction::HealDcs(0, 1)),
        ]);
        assert_eq!(script, expected);
        assert_eq!(script.label(), "poisson(2500/s)+3 faults");
    }
}
