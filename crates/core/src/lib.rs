//! # concord-core — self-adaptive, cost-efficient consistency management
//!
//! This crate implements the paper's three contributions on top of the
//! Concord substrates (`concord-cluster`, `concord-workload`,
//! `concord-monitor`, `concord-staleness`, `concord-cost`):
//!
//! * **Harmony** ([`HarmonyPolicy`]) — automated self-adaptive consistency:
//!   estimates the stale-read rate from monitored read/write rates and
//!   replica propagation latency, and involves the minimum number of
//!   replicas that keeps the estimate under the application's tolerance
//!   (§III-A).
//! * **Bismar** ([`BismarPolicy`]) — cost-efficient consistency: evaluates
//!   the consistency-cost efficiency of every level from the monitored state
//!   and a cloud pricing model, and always selects the most efficient level
//!   (§III-B).
//! * **Behavior modeling** ([`behavior`]) — offline trace analysis (per-period
//!   features, k-means state discovery, rule-based policy assignment) plus a
//!   runtime state classifier ([`BehaviorDrivenPolicy`]) for
//!   application-specific consistency (§III-C).
//!
//! The [`AdaptiveRuntime`] is the **scenario driver** that closes the loop:
//! it executes a [`Scenario`] — closed-loop clients *or* a bulk-loaded
//! open-loop arrival schedule, plus a timed fault script (node
//! crash/recover, DC partition/heal, link degradation) — against the
//! simulated cluster, feeds the monitor, consults the configured
//! [`ConsistencyPolicy`] at every adaptation interval and produces a
//! [`RunReport`] with the throughput / latency / staleness / cost figures
//! the paper's evaluation reports.
//!
//! ```
//! use concord_core::{AdaptiveRuntime, HarmonyPolicy, RuntimeConfig};
//! use concord_cluster::{Cluster, ClusterConfig};
//! use concord_workload::{presets, CoreWorkload};
//!
//! let mut cluster = Cluster::new(ClusterConfig::lan_test(5, 3), 42);
//! let cfg = presets::paper_heavy_read_update(500, 1_000);
//! cluster.load_records((0..cfg.record_count).map(|k| (k, cfg.record_size())));
//! let mut workload = CoreWorkload::new(cfg);
//!
//! let mut policy = HarmonyPolicy::with_tolerance(0.10);
//! let mut runtime = AdaptiveRuntime::new(RuntimeConfig::default(), 42);
//! let report = runtime.run(&mut cluster, &mut workload, &mut policy);
//! assert_eq!(report.total_ops, 1_000);
//! ```

#![warn(missing_docs)]

pub mod behavior;
pub mod bismar;
pub mod harmony;
pub mod policy;
pub mod report;
pub mod runtime;
pub mod scenario;

pub use behavior::{
    BehaviorDrivenPolicy, BehaviorModel, BehaviorModelBuilder, PolicyKind, PolicyRule,
    RuleCondition, RuleSet,
};
pub use bismar::{BismarConfig, BismarDecision, BismarEvaluation, BismarPolicy};
pub use harmony::{HarmonyConfig, HarmonyDecision, HarmonyPolicy};
pub use policy::{
    ClusterProfile, ConsistencyPolicy, GeographicPolicy, LevelDecision, PolicyContext, StaticPolicy,
};
pub use report::{render_table, LatencySummary, LevelChange, RunReport};
pub use runtime::{AdaptiveRuntime, RuntimeConfig};
pub use scenario::{FaultAction, FaultEvent, Scenario};
