//! Bismar: cost-efficient adaptive consistency (§III-B of the paper).
//!
//! Bismar *"relies on a relative computation of the expected cost and
//! probabilistic estimation of consistency in the cloud. At runtime, the
//! consistency level with the highest consistency-cost efficiency value is
//! always chosen."*
//!
//! At every adaptation step Bismar evaluates, for every candidate read level
//! `ONE … ALL`:
//!
//! 1. the **consistency** the level would deliver — the probabilistic
//!    stale-read estimate of `concord-staleness` driven by the live monitor
//!    snapshot (the same model Harmony uses);
//! 2. the **expected relative cost** of running the workload at that level,
//!    decomposed like the paper's bill into
//!    * an *instance* component — in a closed loop, the time (and therefore
//!      instance-hours) needed to finish the workload is proportional to the
//!      mean operation latency, which grows when a read must wait for
//!      replicas in a remote datacenter;
//!    * a *network* component — contacting more replicas sends more
//!      cross-datacenter traffic;
//!    * a *storage* component — every contacted replica performs a storage
//!      I/O request;
//! 3. the consistency-cost efficiency `consistency / relative cost`
//!    (see `concord-cost`), picking the level with the highest value.

use crate::policy::{ClusterProfile, ConsistencyPolicy, LevelDecision, PolicyContext};
use concord_cluster::ConsistencyLevel;
use concord_cost::{consistency_cost_efficiency, most_efficient, EfficiencySample, PricingModel};
use concord_staleness::{AnalyticEstimator, PropagationModel, StaleReadEstimator, StalenessParams};
use serde::{Deserialize, Serialize};

/// Configuration of the Bismar controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BismarConfig {
    /// Pricing model used for the relative cost computation.
    pub pricing: PricingModel,
    /// Write consistency level kept while the read level is tuned.
    pub write_level: ConsistencyLevel,
    /// Optional cap on the stale-read rate: levels whose estimated staleness
    /// exceeds the cap are excluded even if their efficiency is the highest.
    /// The paper observes that efficient levels keep staleness below ~20 %,
    /// so the default cap is 0.20.
    pub stale_rate_cap: f64,
    /// Floor for the propagation-time estimate (cold-start protection), ms.
    pub min_propagation_ms: f64,
}

impl Default for BismarConfig {
    fn default() -> Self {
        BismarConfig {
            pricing: PricingModel::ec2_2013(),
            write_level: ConsistencyLevel::One,
            stale_rate_cap: 0.20,
            min_propagation_ms: 0.1,
        }
    }
}

/// The per-level evaluation Bismar performs at one adaptation step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BismarEvaluation {
    /// Replicas involved in reads at this level.
    pub read_replicas: u32,
    /// Estimated stale-read rate.
    pub estimated_stale_rate: f64,
    /// Estimated cost per operation in USD (only the *relative* values across
    /// levels matter for the decision).
    pub cost_per_op_usd: f64,
    /// The consistency-cost efficiency sample.
    pub efficiency: EfficiencySample,
}

/// One Bismar decision, kept for reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BismarDecision {
    /// The chosen number of read replicas.
    pub read_replicas: u32,
    /// The evaluations of every candidate level.
    pub evaluations: Vec<BismarEvaluation>,
}

/// The Bismar cost-efficient consistency controller.
#[derive(Debug, Clone)]
pub struct BismarPolicy {
    config: BismarConfig,
    estimator: AnalyticEstimator,
    last_decision: Option<BismarDecision>,
    decisions: u64,
}

impl BismarPolicy {
    /// Create a Bismar controller.
    pub fn new(config: BismarConfig) -> Self {
        BismarPolicy {
            config,
            estimator: AnalyticEstimator::new(),
            last_decision: None,
            decisions: 0,
        }
    }

    /// Bismar with default (2013 EC2) pricing.
    pub fn with_default_pricing() -> Self {
        Self::new(BismarConfig::default())
    }

    /// The controller's configuration.
    pub fn config(&self) -> &BismarConfig {
        &self.config
    }

    /// The most recent decision.
    pub fn last_decision(&self) -> Option<&BismarDecision> {
        self.last_decision.as_ref()
    }

    /// Number of decisions made.
    pub fn decision_count(&self) -> u64 {
        self.decisions
    }

    /// Expected client-observed latency of an operation whose coordinator
    /// must gather `level` replica responses, in milliseconds.
    ///
    /// With `NetworkTopologyStrategy`, the first `replicas_in_local_dc`
    /// responses can come from the coordinator's own datacenter (one
    /// intra-DC round trip); any further response has to cross to another
    /// datacenter (one inter-DC round trip).
    fn expected_latency_ms(profile: &ClusterProfile, level: u32) -> f64 {
        let local = profile.replicas_in_local_dc.max(1);
        let rtt_local = 2.0 * profile.intra_dc_latency_ms + profile.storage_service_ms;
        let rtt_remote = 2.0 * profile.inter_dc_latency_ms + profile.storage_service_ms;
        if level <= local {
            rtt_local
        } else {
            // The slowest required response comes from a remote DC.
            rtt_remote
        }
    }

    /// Expected monetary cost of one operation at the given read level.
    fn expected_cost_per_op(&self, ctx: &PolicyContext, level: u32) -> f64 {
        let profile = &ctx.profile;
        let pricing = &self.config.pricing;
        let snapshot = &ctx.snapshot;

        let total_rate = (snapshot.read_rate + snapshot.write_rate).max(1.0);
        let read_share = (snapshot.read_rate / total_rate).clamp(0.0, 1.0);
        let write_share = 1.0 - read_share;

        // --- Instance component -------------------------------------------
        // In a closed loop the workload's makespan scales with the mean
        // operation latency, so instance-hours per operation do too.
        let read_latency_ms = Self::expected_latency_ms(profile, level);
        let write_latency_ms = Self::expected_latency_ms(
            profile,
            self.config
                .write_level
                .required_acks(profile.replication_factor, profile.dc_count),
        );
        let mean_latency_ms = read_share * read_latency_ms + write_share * write_latency_ms;
        // Cost of keeping the whole fleet up for one mean-latency interval,
        // amortized over the operations in flight (≈ one per node-concurrency
        // slot; the constant cancels in the relative comparison).
        let fleet_usd_per_ms = profile.node_count as f64 * pricing.instance_hour_usd / 3_600_000.0;
        let instance_cost = fleet_usd_per_ms * mean_latency_ms;

        // --- Network component ---------------------------------------------
        // Reads contact `level` replicas: requests beyond the local DC cross
        // the DC boundary, and one full-data response comes back.
        let record_gb = profile.record_size_bytes as f64 / 1e9;
        let local = profile.replicas_in_local_dc as f64;
        let remote_contacts = (level as f64 - local).max(0.0);
        let read_cross_gb = remote_contacts * record_gb;
        // Writes always go to every replica; the remote-DC share is constant
        // across read levels but still part of the per-op cost.
        let remote_replicas = (profile.replication_factor as f64 - local).max(0.0);
        let write_cross_gb = remote_replicas * record_gb;
        let network_cost = (read_share * read_cross_gb + write_share * write_cross_gb)
            * pricing.transfer_inter_dc_gb_usd;

        // --- Storage component ----------------------------------------------
        let read_ios = level as f64;
        let write_ios = profile.replication_factor as f64;
        let storage_cost = (read_share * read_ios + write_share * write_ios) / 1e6
            * pricing.storage_io_million_usd;

        instance_cost + network_cost + storage_cost
    }

    fn staleness_params(&self, ctx: &PolicyContext, level: u32) -> StalenessParams {
        let prop_ms = ctx
            .snapshot
            .propagation_time_ms
            .max(self.config.min_propagation_ms);
        StalenessParams {
            n_replicas: ctx.profile.replication_factor,
            read_level: level,
            write_level: self
                .config
                .write_level
                .required_acks(ctx.profile.replication_factor, ctx.profile.dc_count),
            read_rate: ctx.snapshot.read_rate,
            write_rate: ctx.snapshot.write_rate,
            first_write_ms: ctx.snapshot.first_write_time_ms.max(0.0).min(prop_ms),
            propagation: PropagationModel::Deterministic { total_ms: prop_ms },
        }
    }

    /// Evaluate every candidate level under the current conditions.
    pub fn evaluate_levels(&self, ctx: &PolicyContext) -> Vec<BismarEvaluation> {
        let rf = ctx.profile.replication_factor;
        let reference_cost = self.expected_cost_per_op(ctx, rf);
        (1..=rf)
            .map(|level| {
                let stale = self
                    .estimator
                    .estimate(&self.staleness_params(ctx, level))
                    .stale_read_probability;
                let cost = self.expected_cost_per_op(ctx, level);
                BismarEvaluation {
                    read_replicas: level,
                    estimated_stale_rate: stale,
                    cost_per_op_usd: cost,
                    efficiency: consistency_cost_efficiency(stale, cost, reference_cost),
                }
            })
            .collect()
    }
}

impl ConsistencyPolicy for BismarPolicy {
    fn name(&self) -> String {
        format!("bismar(cap={:.0}%)", self.config.stale_rate_cap * 100.0)
    }

    fn decide(&mut self, ctx: &PolicyContext) -> LevelDecision {
        let evaluations = self.evaluate_levels(ctx);
        // Exclude levels above the staleness cap, unless none qualifies.
        let eligible: Vec<&BismarEvaluation> = {
            let ok: Vec<&BismarEvaluation> = evaluations
                .iter()
                .filter(|e| e.estimated_stale_rate <= self.config.stale_rate_cap)
                .collect();
            if ok.is_empty() {
                evaluations.iter().collect()
            } else {
                ok
            }
        };
        let samples: Vec<EfficiencySample> = eligible.iter().map(|e| e.efficiency).collect();
        let best_idx = most_efficient(&samples).unwrap_or(0);
        let read_replicas = eligible[best_idx].read_replicas;

        self.decisions += 1;
        self.last_decision = Some(BismarDecision {
            read_replicas,
            evaluations: evaluations.clone(),
        });

        LevelDecision {
            read: ConsistencyLevel::from_replica_count(
                read_replicas,
                ctx.profile.replication_factor,
            ),
            write: self.config.write_level,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::tests::test_context;

    #[test]
    fn quiet_workload_picks_cheap_weak_level() {
        let mut b = BismarPolicy::with_default_pricing();
        // Almost no writes: ONE is fresh *and* cheap, so it must win.
        let d = b.decide(&test_context(2_000.0, 1.0, 2.0));
        assert_eq!(d.read, ConsistencyLevel::One);
        let dec = b.last_decision().unwrap();
        assert_eq!(dec.read_replicas, 1);
        assert!(dec.evaluations[0].estimated_stale_rate < 0.05);
    }

    #[test]
    fn heavy_writes_push_bismar_to_stronger_levels() {
        let mut b = BismarPolicy::with_default_pricing();
        let d = b.decide(&test_context(4_000.0, 2_000.0, 40.0));
        let dec = b.last_decision().unwrap();
        assert!(
            dec.read_replicas > 1,
            "61%-stale ONE must not be selected: {:?}",
            dec.evaluations
        );
        assert_ne!(d.read, ConsistencyLevel::One);
    }

    #[test]
    fn stale_rate_cap_excludes_very_stale_levels() {
        let ctx = test_context(4_000.0, 1_500.0, 35.0);
        let capped = BismarPolicy::new(BismarConfig {
            stale_rate_cap: 0.05,
            ..Default::default()
        });
        let evaluations = capped.evaluate_levels(&ctx);
        // Sanity: level ONE is well above the cap under this load.
        assert!(evaluations[0].estimated_stale_rate > 0.05);
        let mut capped = capped;
        capped.decide(&ctx);
        let chosen = capped.last_decision().unwrap().read_replicas;
        let chosen_eval = &evaluations[(chosen - 1) as usize];
        assert!(chosen_eval.estimated_stale_rate <= 0.05);
    }

    #[test]
    fn costs_increase_with_the_read_level() {
        let b = BismarPolicy::with_default_pricing();
        let ctx = test_context(2_000.0, 200.0, 20.0);
        let evals = b.evaluate_levels(&ctx);
        assert_eq!(evals.len(), 5);
        for pair in evals.windows(2) {
            assert!(
                pair[1].cost_per_op_usd >= pair[0].cost_per_op_usd,
                "cost must not decrease with the level: {evals:?}"
            );
        }
        // And staleness decreases with the level.
        for pair in evals.windows(2) {
            assert!(pair[1].estimated_stale_rate <= pair[0].estimated_stale_rate + 1e-12);
        }
    }

    #[test]
    fn efficiency_peaks_at_levels_with_low_staleness() {
        // The paper: "the most efficient consistency levels are the ones that
        // provide a staleness rate smaller than 20%". Under a moderate
        // read-update load the efficiency optimum lands on a level that is
        // both cheaper than ALL and still mostly fresh.
        let b = BismarPolicy::with_default_pricing();
        let ctx = test_context(3_000.0, 50.0, 10.0);
        let evals = b.evaluate_levels(&ctx);
        let best = evals
            .iter()
            .max_by(|a, b| {
                a.efficiency
                    .efficiency
                    .partial_cmp(&b.efficiency.efficiency)
                    .unwrap()
            })
            .unwrap();
        assert!(
            best.estimated_stale_rate < 0.20,
            "most efficient level had {:.0}% staleness",
            best.estimated_stale_rate * 100.0
        );
    }

    #[test]
    fn decisions_are_recorded() {
        let mut b = BismarPolicy::with_default_pricing();
        assert!(b.last_decision().is_none());
        b.decide(&test_context(1_000.0, 100.0, 10.0));
        b.decide(&test_context(1_000.0, 100.0, 10.0));
        assert_eq!(b.decision_count(), 2);
        assert_eq!(b.last_decision().unwrap().evaluations.len(), 5);
        assert!(b.name().contains("bismar"));
        assert!(b.config().stale_rate_cap > 0.0);
    }

    #[test]
    fn expected_latency_jumps_when_leaving_the_local_dc() {
        let ctx = test_context(1_000.0, 100.0, 10.0);
        let local = BismarPolicy::expected_latency_ms(&ctx.profile, 1);
        let still_local = BismarPolicy::expected_latency_ms(&ctx.profile, 3);
        let remote = BismarPolicy::expected_latency_ms(&ctx.profile, 4);
        assert_eq!(local, still_local);
        assert!(
            remote > local * 3.0,
            "crossing the DC boundary must cost WAN latency"
        );
    }
}
