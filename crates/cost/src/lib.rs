//! # concord-cost — cloud pricing, bill decomposition and the
//! consistency-cost efficiency metric
//!
//! The Bismar contribution (§III-B of the paper) studies the monetary cost of
//! consistency in the cloud. This crate provides its building blocks:
//!
//! * [`PricingModel`] — unit prices for VM instances, storage
//!   (capacity + I/O) and network transfer, with 2013-era EC2 presets;
//! * [`ResourceUsage`] / [`Bill`] — the paper's three-part decomposition of
//!   the total bill (instances, storage, network), computed from the
//!   cluster simulator's meters;
//! * [`consistency_cost_efficiency`] — the paper's new metric:
//!   consistency delivered per unit of relative cost, used by the Bismar
//!   controller in `concord-core` to pick the most efficient level at
//!   runtime.

//!
//! As an extension (the paper's §V future-work direction on power
//! consumption), [`energy`] provides a linear server-power model so the
//! energy footprint of each consistency level can be compared alongside its
//! monetary bill.

#![warn(missing_docs)]

pub mod bill;
pub mod efficiency;
pub mod energy;
pub mod pricing;

pub use bill::{Bill, ResourceUsage};
pub use efficiency::{consistency_cost_efficiency, most_efficient, EfficiencySample};
pub use energy::{energy_of_run, estimate_utilization, EnergyReport, PowerModel};
pub use pricing::PricingModel;
