//! Bill computation: resource usage × pricing → the three-part bill
//! decomposition of the paper (VM instances, storage, network).

use crate::pricing::PricingModel;
use concord_cluster::{Cluster, TrafficBytes};
use concord_sim::SimDuration;
use serde::{Deserialize, Serialize};

const BYTES_PER_GB: f64 = 1_000_000_000.0;
const HOURS_PER_MONTH: f64 = 730.0;

/// The resources a run consumed, as metered by the cluster simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Number of VM instances (storage nodes) kept running.
    pub vm_count: u32,
    /// Wall-clock duration the service ran for.
    pub runtime: SimDuration,
    /// Total bytes stored across all replicas (payload).
    pub stored_bytes: u64,
    /// Replica-level storage I/O operations (reads + writes).
    pub storage_io_ops: u64,
    /// Network traffic per link class.
    pub traffic: TrafficBytes,
}

impl ResourceUsage {
    /// Extract the usage of a finished cluster run.
    ///
    /// `runtime` is the makespan of the run (the simulated duration the VMs
    /// were provisioned for).
    pub fn from_cluster(cluster: &Cluster, runtime: SimDuration) -> Self {
        let (io_reads, io_writes) = cluster.storage_op_totals();
        ResourceUsage {
            vm_count: cluster.config().topology.node_count() as u32,
            runtime,
            stored_bytes: cluster.total_bytes_stored(),
            storage_io_ops: io_reads + io_writes,
            traffic: cluster.metrics().traffic,
        }
    }

    /// Instance-hours consumed (VMs are billed per started hour on 2013 EC2;
    /// we bill fractional hours to keep scaled-down runs comparable).
    pub fn instance_hours(&self) -> f64 {
        self.vm_count as f64 * self.runtime.as_secs_f64() / 3_600.0
    }
}

/// The three-part bill of the paper, in USD.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Bill {
    /// Cost of the VM instances for the duration of the run.
    pub instances_usd: f64,
    /// Cost of provisioned storage plus storage I/O requests.
    pub storage_usd: f64,
    /// Cost of network transfer (inter-DC and inter-region).
    pub network_usd: f64,
}

impl Bill {
    /// Compute the bill of `usage` under `pricing`.
    pub fn compute(pricing: &PricingModel, usage: &ResourceUsage) -> Self {
        let instances_usd = usage.instance_hours() * pricing.instance_hour_usd;

        // Storage: GB-month prorated to the runtime + I/O request charges.
        let gb = usage.stored_bytes as f64 / BYTES_PER_GB;
        let months = usage.runtime.as_secs_f64() / 3_600.0 / HOURS_PER_MONTH;
        let storage_capacity = gb * months * pricing.storage_gb_month_usd;
        let storage_io = usage.storage_io_ops as f64 / 1_000_000.0 * pricing.storage_io_million_usd;
        let storage_usd = storage_capacity + storage_io;

        // Network: intra-DC is usually free, cross-DC and cross-region billed.
        let network_usd = usage.traffic.intra_dc as f64 / BYTES_PER_GB
            * pricing.transfer_intra_dc_gb_usd
            + usage.traffic.inter_dc as f64 / BYTES_PER_GB * pricing.transfer_inter_dc_gb_usd
            + usage.traffic.inter_region as f64 / BYTES_PER_GB
                * pricing.transfer_inter_region_gb_usd;

        Bill {
            instances_usd,
            storage_usd,
            network_usd,
        }
    }

    /// Total bill.
    pub fn total(&self) -> f64 {
        self.instances_usd + self.storage_usd + self.network_usd
    }

    /// Fraction of the total contributed by each component
    /// `(instances, storage, network)`; all zeros for an empty bill.
    pub fn shares(&self) -> (f64, f64, f64) {
        let total = self.total();
        if total <= 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (
                self.instances_usd / total,
                self.storage_usd / total,
                self.network_usd / total,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concord_sim::LinkClass;

    fn usage() -> ResourceUsage {
        let mut traffic = TrafficBytes::default();
        traffic.add(LinkClass::IntraDc, 50_000_000_000); // 50 GB free
        traffic.add(LinkClass::InterDc, 10_000_000_000); // 10 GB @ $0.01
        traffic.add(LinkClass::InterRegion, 1_000_000_000); // 1 GB @ $0.02
        ResourceUsage {
            vm_count: 18,
            runtime: SimDuration::from_secs(3_600),
            stored_bytes: 120_000_000_000, // 120 GB (24 GB × RF 5)
            storage_io_ops: 30_000_000,
            traffic,
        }
    }

    #[test]
    fn instance_cost_is_vm_hours_times_rate() {
        let bill = Bill::compute(&PricingModel::ec2_2013(), &usage());
        // 18 VMs × 1 h × $0.26.
        assert!((bill.instances_usd - 18.0 * 0.26).abs() < 1e-9);
    }

    #[test]
    fn network_cost_only_counts_cross_dc_traffic() {
        let bill = Bill::compute(&PricingModel::ec2_2013(), &usage());
        let expected = 10.0 * 0.01 + 1.0 * 0.02;
        assert!((bill.network_usd - expected).abs() < 1e-9);
    }

    #[test]
    fn storage_cost_combines_capacity_and_io() {
        let bill = Bill::compute(&PricingModel::ec2_2013(), &usage());
        let capacity = 120.0 * (1.0 / 730.0) * 0.10;
        let io = 30.0 * 0.10;
        assert!((bill.storage_usd - (capacity + io)).abs() < 1e-9);
    }

    #[test]
    fn total_and_shares_are_consistent() {
        let bill = Bill::compute(&PricingModel::ec2_2013(), &usage());
        let (i, s, n) = bill.shares();
        assert!((i + s + n - 1.0).abs() < 1e-9);
        assert!(bill.total() > 0.0);
        assert!(i > n, "instances dominate the bill for this usage");
        assert_eq!(Bill::default().shares(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn longer_runtime_costs_more() {
        let mut long = usage();
        long.runtime = SimDuration::from_secs(7_200);
        let short_bill = Bill::compute(&PricingModel::ec2_2013(), &usage());
        let long_bill = Bill::compute(&PricingModel::ec2_2013(), &long);
        assert!(long_bill.instances_usd > short_bill.instances_usd);
        assert!(long_bill.total() > short_bill.total());
    }

    #[test]
    fn usage_from_cluster_reads_meters() {
        use concord_cluster::{ClusterConfig, ConsistencyLevel};
        use concord_sim::SimTime;
        let mut cluster = concord_cluster::Cluster::new(ClusterConfig::lan_test(4, 3), 1);
        cluster.load_records((0..10u64).map(|k| (k, 1_000)));
        for i in 0..20u64 {
            cluster.submit_write_with(
                i % 10,
                1_000,
                ConsistencyLevel::All,
                SimTime::from_millis(i),
            );
        }
        cluster.run_to_completion(1_000_000);
        let usage = ResourceUsage::from_cluster(&cluster, SimDuration::from_secs(60));
        assert_eq!(usage.vm_count, 4);
        assert!(usage.stored_bytes >= 10 * 1_000 * 3);
        assert!(usage.storage_io_ops > 0);
        assert!((usage.instance_hours() - 4.0 / 60.0).abs() < 1e-9);
        let bill = Bill::compute(&PricingModel::ec2_2013(), &usage);
        assert!(bill.total() > 0.0);
    }
}
