//! Power / energy model for consistency levels.
//!
//! The paper's future-work section (§V) announces *"an in-depth study that
//! analyzes power consumption and resources usage … of the whole storage
//! system considering different consistency levels"* with the goal of
//! building a power-efficient consistency approach. This module implements
//! the measurement side of that plan for the simulated cluster: a simple but
//! standard linear server-power model
//!
//! ```text
//! P(node) = P_idle + (P_peak − P_idle) · utilization
//! energy  = Σ_nodes P(node) · runtime · PUE
//! ```
//!
//! where the utilization of the storage fleet is derived from the metered
//! storage I/O work. Stronger consistency levels perform more replica work
//! per operation *and* keep the fleet powered for longer (lower throughput in
//! a closed loop), so their energy per operation is higher — the shape the
//! future-work study sets out to quantify.

use crate::bill::ResourceUsage;
use serde::{Deserialize, Serialize};

/// A linear server power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Power draw of an idle node, in watts.
    pub idle_watts: f64,
    /// Power draw of a fully busy node, in watts.
    pub peak_watts: f64,
    /// Power usage effectiveness of the datacenter (≥ 1.0); multiplies the IT
    /// power to account for cooling and distribution.
    pub pue: f64,
}

impl PowerModel {
    /// A typical 2013-era commodity server: ~95 W idle, ~210 W at peak, in a
    /// datacenter with a PUE of 1.6.
    pub fn commodity_2013() -> Self {
        PowerModel {
            idle_watts: 95.0,
            peak_watts: 210.0,
            pue: 1.6,
        }
    }

    /// Validate the model's physical constraints.
    pub fn validate(&self) -> Result<(), String> {
        if self.idle_watts < 0.0 || self.peak_watts < self.idle_watts {
            return Err("peak power must be at least idle power (both non-negative)".into());
        }
        if self.pue < 1.0 {
            return Err("PUE cannot be below 1.0".into());
        }
        Ok(())
    }

    /// Power drawn by one node at the given utilization (clamped to [0, 1]).
    pub fn node_watts(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_watts + (self.peak_watts - self.idle_watts) * u
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::commodity_2013()
    }
}

/// The energy accounting of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Mean fleet utilization used for the computation (0..=1).
    pub utilization: f64,
    /// IT energy (servers only), in watt-hours.
    pub it_energy_wh: f64,
    /// Total facility energy including PUE, in watt-hours.
    pub total_energy_wh: f64,
}

impl EnergyReport {
    /// Total energy in kilowatt-hours.
    pub fn total_energy_kwh(&self) -> f64 {
        self.total_energy_wh / 1_000.0
    }

    /// Energy per completed operation, in joules (`None` if `ops` is zero).
    pub fn joules_per_op(&self, ops: u64) -> Option<f64> {
        if ops == 0 {
            None
        } else {
            Some(self.total_energy_wh * 3_600.0 / ops as f64)
        }
    }
}

/// Estimate the mean fleet utilization of a run from its metered storage I/O:
/// every storage operation occupies one node for `mean_service_ms`, and the
/// fleet provides `vm_count × runtime` of node-time in total.
pub fn estimate_utilization(usage: &ResourceUsage, mean_service_ms: f64) -> f64 {
    let node_time_ms = usage.vm_count as f64 * usage.runtime.as_millis_f64();
    if node_time_ms <= 0.0 {
        return 0.0;
    }
    (usage.storage_io_ops as f64 * mean_service_ms.max(0.0) / node_time_ms).clamp(0.0, 1.0)
}

/// Compute the energy consumed by a run.
pub fn energy_of_run(power: &PowerModel, usage: &ResourceUsage, utilization: f64) -> EnergyReport {
    power
        .validate()
        .unwrap_or_else(|e| panic!("invalid power model: {e}"));
    let hours = usage.runtime.as_secs_f64() / 3_600.0;
    let it_watts = usage.vm_count as f64 * power.node_watts(utilization);
    let it_energy_wh = it_watts * hours;
    EnergyReport {
        utilization: utilization.clamp(0.0, 1.0),
        it_energy_wh,
        total_energy_wh: it_energy_wh * power.pue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concord_cluster::TrafficBytes;
    use concord_sim::SimDuration;

    fn usage(vms: u32, secs: u64, io_ops: u64) -> ResourceUsage {
        ResourceUsage {
            vm_count: vms,
            runtime: SimDuration::from_secs(secs),
            stored_bytes: 1_000_000,
            storage_io_ops: io_ops,
            traffic: TrafficBytes::default(),
        }
    }

    #[test]
    fn idle_fleet_still_draws_idle_power() {
        let report = energy_of_run(&PowerModel::commodity_2013(), &usage(10, 3_600, 0), 0.0);
        // 10 nodes × 95 W × 1 h × PUE 1.6.
        assert!((report.it_energy_wh - 950.0).abs() < 1e-9);
        assert!((report.total_energy_wh - 950.0 * 1.6).abs() < 1e-9);
        assert!((report.total_energy_kwh() - 1.52).abs() < 1e-9);
    }

    #[test]
    fn busier_runs_draw_more_power() {
        let model = PowerModel::commodity_2013();
        let quiet = energy_of_run(&model, &usage(10, 3_600, 0), 0.1);
        let busy = energy_of_run(&model, &usage(10, 3_600, 0), 0.9);
        assert!(busy.total_energy_wh > quiet.total_energy_wh);
        assert!((model.node_watts(1.0) - 210.0).abs() < 1e-9);
        assert!((model.node_watts(2.0) - 210.0).abs() < 1e-9, "clamped");
    }

    #[test]
    fn longer_runs_cost_more_energy_at_equal_utilization() {
        // This is exactly why strong consistency (longer makespan for the
        // same workload in a closed loop) costs more energy.
        let model = PowerModel::commodity_2013();
        let fast = energy_of_run(&model, &usage(10, 600, 0), 0.5);
        let slow = energy_of_run(&model, &usage(10, 6_000, 0), 0.5);
        assert!(slow.total_energy_wh > fast.total_energy_wh * 9.0);
    }

    #[test]
    fn utilization_estimate_reflects_io_work() {
        // 10 nodes × 100 s = 1 000 000 ms of node time; 500 000 ops × 1 ms
        // of service each = 50% utilization.
        let u = estimate_utilization(&usage(10, 100, 500_000), 1.0);
        assert!((u - 0.5).abs() < 1e-9);
        // More replica work (stronger levels) → higher utilization.
        let stronger = estimate_utilization(&usage(10, 100, 900_000), 1.0);
        assert!(stronger > u);
        // Degenerate inputs are clamped.
        assert_eq!(estimate_utilization(&usage(0, 0, 100), 1.0), 0.0);
        assert_eq!(estimate_utilization(&usage(1, 1, u64::MAX), 10.0), 1.0);
    }

    #[test]
    fn joules_per_op() {
        let report = energy_of_run(&PowerModel::commodity_2013(), &usage(10, 3_600, 0), 0.0);
        let j = report.joules_per_op(1_000_000).unwrap();
        assert!((j - report.total_energy_wh * 3_600.0 / 1e6).abs() < 1e-9);
        assert!(report.joules_per_op(0).is_none());
    }

    #[test]
    fn invalid_models_are_rejected() {
        let bad = PowerModel {
            idle_watts: 200.0,
            peak_watts: 100.0,
            pue: 1.5,
        };
        assert!(bad.validate().is_err());
        let bad_pue = PowerModel {
            pue: 0.5,
            ..PowerModel::commodity_2013()
        };
        assert!(bad_pue.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid power model")]
    fn energy_of_run_panics_on_invalid_model() {
        let bad = PowerModel {
            idle_watts: -1.0,
            peak_watts: 10.0,
            pue: 1.2,
        };
        energy_of_run(&bad, &usage(1, 1, 0), 0.5);
    }
}
