//! Cloud pricing models.
//!
//! The Bismar contribution (§III-B of the paper) decomposes the bill of
//! running the storage service in the cloud into **three parts**: VM
//! instances cost, storage cost and network cost. A [`PricingModel`] holds
//! the unit prices of those three resources; presets encode 2013-era Amazon
//! EC2 on-demand prices (the era of the paper's experiments) and a
//! Grid'5000 accounting model that applies the same rates so the two
//! platforms' bills are comparable, as the paper does.

use serde::{Deserialize, Serialize};

/// Unit prices for the three bill components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricingModel {
    /// Price of one VM instance-hour, in USD (e.g. an m1.large).
    pub instance_hour_usd: f64,
    /// Price of one GB-month of provisioned storage, in USD.
    pub storage_gb_month_usd: f64,
    /// Price of one million storage I/O requests, in USD.
    pub storage_io_million_usd: f64,
    /// Price of transferring one GB between availability zones /
    /// datacenters of the same region, in USD.
    pub transfer_inter_dc_gb_usd: f64,
    /// Price of transferring one GB between regions, in USD.
    pub transfer_inter_region_gb_usd: f64,
    /// Price of transferring one GB inside a datacenter (free on EC2).
    pub transfer_intra_dc_gb_usd: f64,
}

impl PricingModel {
    /// Amazon EC2 on-demand prices circa 2012/2013 (us-east-1):
    /// m1.large at $0.26/h, EBS standard volumes at $0.10/GB-month and
    /// $0.10 per million I/O requests, $0.01/GB between availability zones,
    /// $0.02/GB between regions.
    pub fn ec2_2013() -> Self {
        PricingModel {
            instance_hour_usd: 0.26,
            storage_gb_month_usd: 0.10,
            storage_io_million_usd: 0.10,
            transfer_inter_dc_gb_usd: 0.01,
            transfer_inter_region_gb_usd: 0.02,
            transfer_intra_dc_gb_usd: 0.0,
        }
    }

    /// Grid'5000 is a free research testbed; to make its bills comparable
    /// with EC2 (as the paper's cost analysis does) the same 2013 EC2 rates
    /// are applied to the resources the experiment actually consumed.
    pub fn grid5000_accounting() -> Self {
        Self::ec2_2013()
    }

    /// A pricing model where only instances cost money — useful to isolate
    /// the runtime component in ablation experiments.
    pub fn instances_only(instance_hour_usd: f64) -> Self {
        PricingModel {
            instance_hour_usd,
            storage_gb_month_usd: 0.0,
            storage_io_million_usd: 0.0,
            transfer_inter_dc_gb_usd: 0.0,
            transfer_inter_region_gb_usd: 0.0,
            transfer_intra_dc_gb_usd: 0.0,
        }
    }

    /// Scale every price by a factor (e.g. model reserved-instance discounts).
    pub fn scaled(&self, factor: f64) -> Self {
        PricingModel {
            instance_hour_usd: self.instance_hour_usd * factor,
            storage_gb_month_usd: self.storage_gb_month_usd * factor,
            storage_io_million_usd: self.storage_io_million_usd * factor,
            transfer_inter_dc_gb_usd: self.transfer_inter_dc_gb_usd * factor,
            transfer_inter_region_gb_usd: self.transfer_inter_region_gb_usd * factor,
            transfer_intra_dc_gb_usd: self.transfer_intra_dc_gb_usd * factor,
        }
    }

    /// Validate that no price is negative.
    pub fn validate(&self) -> Result<(), String> {
        let prices = [
            self.instance_hour_usd,
            self.storage_gb_month_usd,
            self.storage_io_million_usd,
            self.transfer_inter_dc_gb_usd,
            self.transfer_inter_region_gb_usd,
            self.transfer_intra_dc_gb_usd,
        ];
        if prices.iter().any(|p| *p < 0.0 || !p.is_finite()) {
            Err("prices must be non-negative and finite".into())
        } else {
            Ok(())
        }
    }
}

impl Default for PricingModel {
    fn default() -> Self {
        Self::ec2_2013()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(PricingModel::ec2_2013().validate().is_ok());
        assert!(PricingModel::grid5000_accounting().validate().is_ok());
        assert!(PricingModel::instances_only(0.5).validate().is_ok());
        assert_eq!(PricingModel::default(), PricingModel::ec2_2013());
    }

    #[test]
    fn ec2_rates_match_2013_era() {
        let p = PricingModel::ec2_2013();
        assert!((p.instance_hour_usd - 0.26).abs() < 1e-9);
        assert!(
            p.transfer_intra_dc_gb_usd == 0.0,
            "intra-AZ transfer is free"
        );
        assert!(p.transfer_inter_region_gb_usd > p.transfer_inter_dc_gb_usd);
    }

    #[test]
    fn scaling_applies_to_every_component() {
        let p = PricingModel::ec2_2013().scaled(2.0);
        assert!((p.instance_hour_usd - 0.52).abs() < 1e-9);
        assert!((p.storage_gb_month_usd - 0.20).abs() < 1e-9);
    }

    #[test]
    fn negative_prices_rejected() {
        let mut p = PricingModel::ec2_2013();
        p.instance_hour_usd = -1.0;
        assert!(p.validate().is_err());
        let mut p = PricingModel::ec2_2013();
        p.storage_gb_month_usd = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let p = PricingModel::ec2_2013();
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(p, serde_json::from_str::<PricingModel>(&json).unwrap());
    }
}
