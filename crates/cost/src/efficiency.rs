//! The consistency-cost efficiency metric (the heart of Bismar).
//!
//! The paper introduces *"a new metric, consistency-cost efficiency, to
//! evaluate consistency in the cloud from an economical point of view"*
//! (§III-B). A consistency level is efficient when it delivers a high
//! fraction of consistent (fresh) reads per unit of relative monetary cost:
//!
//! ```text
//! efficiency(cl) = consistency(cl) / relative_cost(cl)
//!               = (1 − stale_rate(cl)) / (cost(cl) / cost(reference))
//! ```
//!
//! The reference is usually the strongest level under consideration (ALL or
//! QUORUM), so `relative_cost ≤ 1` for weaker levels. A weak level only wins
//! when the consistency it sacrifices is smaller than the cost it saves —
//! which is exactly the behaviour the paper reports: *"the most efficient
//! consistency levels are the ones that provide a staleness rate smaller
//! than 20%"*.

use serde::{Deserialize, Serialize};

/// One consistency level's measured consistency and cost, plus the derived
/// efficiency value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EfficiencySample {
    /// Fraction of reads that were fresh (1 − stale rate), in `[0, 1]`.
    pub consistency: f64,
    /// Absolute cost of running the workload at this level, in USD.
    pub cost_usd: f64,
    /// Cost of the reference level the sample is normalized against, in USD.
    pub reference_cost_usd: f64,
    /// The consistency-cost efficiency value.
    pub efficiency: f64,
}

/// Compute the consistency-cost efficiency of a level.
///
/// * `stale_rate` — measured or estimated fraction of stale reads at the level;
/// * `cost_usd` — bill of running the workload at the level;
/// * `reference_cost_usd` — bill at the reference (strongest) level.
pub fn consistency_cost_efficiency(
    stale_rate: f64,
    cost_usd: f64,
    reference_cost_usd: f64,
) -> EfficiencySample {
    let consistency = (1.0 - stale_rate).clamp(0.0, 1.0);
    let relative_cost = if reference_cost_usd > 0.0 && cost_usd > 0.0 {
        cost_usd / reference_cost_usd
    } else {
        1.0
    };
    let efficiency = if relative_cost > 0.0 {
        consistency / relative_cost
    } else {
        0.0
    };
    EfficiencySample {
        consistency,
        cost_usd,
        reference_cost_usd,
        efficiency,
    }
}

/// Pick the index of the most efficient sample (highest efficiency; ties go
/// to the cheaper level). Returns `None` for an empty slice.
pub fn most_efficient(samples: &[EfficiencySample]) -> Option<usize> {
    if samples.is_empty() {
        return None;
    }
    let mut best = 0usize;
    for (i, s) in samples.iter().enumerate().skip(1) {
        let b = &samples[best];
        if s.efficiency > b.efficiency || (s.efficiency == b.efficiency && s.cost_usd < b.cost_usd)
        {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_consistency_at_reference_cost_has_efficiency_one() {
        let s = consistency_cost_efficiency(0.0, 100.0, 100.0);
        assert!((s.efficiency - 1.0).abs() < 1e-12);
        assert_eq!(s.consistency, 1.0);
    }

    #[test]
    fn cheap_but_very_stale_levels_are_inefficient() {
        // ONE: half the cost but 61% stale reads (paper's observation).
        let one = consistency_cost_efficiency(0.61, 52.0, 100.0);
        // QUORUM: full reference cost, no stale reads.
        let quorum = consistency_cost_efficiency(0.0, 100.0, 100.0);
        assert!(
            quorum.efficiency > one.efficiency,
            "a 61%-stale level must not beat quorum: {} vs {}",
            one.efficiency,
            quorum.efficiency
        );
    }

    #[test]
    fn cheap_and_barely_stale_levels_are_efficient() {
        // A level that halves the cost while staying 96% fresh wins.
        let cheap = consistency_cost_efficiency(0.04, 50.0, 100.0);
        let strong = consistency_cost_efficiency(0.0, 100.0, 100.0);
        assert!(cheap.efficiency > strong.efficiency);
    }

    #[test]
    fn efficiency_decreases_with_stale_rate_at_fixed_cost() {
        let mut last = f64::INFINITY;
        for stale in [0.0, 0.1, 0.3, 0.6, 0.9] {
            let e = consistency_cost_efficiency(stale, 80.0, 100.0).efficiency;
            assert!(e <= last);
            last = e;
        }
    }

    #[test]
    fn efficiency_increases_as_cost_decreases_at_fixed_consistency() {
        let mut last = 0.0;
        for cost in [100.0, 80.0, 60.0, 40.0] {
            let e = consistency_cost_efficiency(0.1, cost, 100.0).efficiency;
            assert!(e >= last);
            last = e;
        }
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        let s = consistency_cost_efficiency(2.0, 0.0, 0.0);
        assert_eq!(s.consistency, 0.0);
        assert!(s.efficiency.is_finite());
        let s = consistency_cost_efficiency(-1.0, 10.0, 0.0);
        assert_eq!(s.consistency, 1.0);
    }

    #[test]
    fn most_efficient_selection() {
        let samples = vec![
            consistency_cost_efficiency(0.61, 52.0, 100.0),  // ONE
            consistency_cost_efficiency(0.10, 75.0, 100.0),  // TWO
            consistency_cost_efficiency(0.00, 87.0, 100.0),  // QUORUM
            consistency_cost_efficiency(0.00, 100.0, 100.0), // ALL
        ];
        let best = most_efficient(&samples).unwrap();
        assert_eq!(best, 1, "the 90%-fresh level at 75% cost wins: {samples:?}");
        assert_eq!(most_efficient(&[]), None);
    }

    #[test]
    fn ties_prefer_cheaper_level() {
        let a = consistency_cost_efficiency(0.0, 100.0, 100.0);
        let b = consistency_cost_efficiency(0.0, 100.0, 100.0);
        let mut cheaper = b;
        cheaper.cost_usd = 90.0;
        cheaper.efficiency = a.efficiency;
        assert_eq!(most_efficient(&[a, cheaper]), Some(1));
    }
}
