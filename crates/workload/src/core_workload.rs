//! The YCSB "core workload": a configurable mix of reads, updates, inserts,
//! scans and read-modify-writes over a synthetic record space.

use crate::generators::{
    CounterGenerator, DiscreteGenerator, ExponentialGenerator, HotspotGenerator, ItemGenerator,
    LatestGenerator, RequestDistribution, ScrambledZipfianGenerator, SequentialGenerator,
    UniformGenerator, ZipfianGenerator,
};
use concord_sim::SimRng;
use serde::{Deserialize, Serialize};

/// The type of a single client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperationType {
    /// Read one record.
    Read,
    /// Overwrite one field of an existing record.
    Update,
    /// Insert a new record.
    Insert,
    /// Read a contiguous range of records.
    Scan,
    /// Read one record, then write it back.
    ReadModifyWrite,
}

impl OperationType {
    /// Does this operation perform a write at the storage layer?
    pub fn is_write(self) -> bool {
        matches!(
            self,
            OperationType::Update | OperationType::Insert | OperationType::ReadModifyWrite
        )
    }

    /// Does this operation perform a read at the storage layer?
    pub fn is_read(self) -> bool {
        matches!(
            self,
            OperationType::Read | OperationType::Scan | OperationType::ReadModifyWrite
        )
    }
}

/// One generated client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadOp {
    /// The kind of operation.
    pub op: OperationType,
    /// The primary record the operation targets.
    pub key: u64,
    /// Number of records touched for scans (1 otherwise).
    pub scan_length: u32,
    /// Bytes read or written by the operation payload.
    pub value_size: u32,
}

/// Configuration of the core workload, mirroring YCSB's
/// `workloads/workload*` property files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of records loaded before the run.
    pub record_count: u64,
    /// Number of operations in the run phase.
    pub operation_count: u64,
    /// Proportion of reads (0..=1).
    pub read_proportion: f64,
    /// Proportion of updates.
    pub update_proportion: f64,
    /// Proportion of inserts.
    pub insert_proportion: f64,
    /// Proportion of scans.
    pub scan_proportion: f64,
    /// Proportion of read-modify-writes.
    pub read_modify_write_proportion: f64,
    /// Distribution of record popularity.
    pub request_distribution: RequestDistribution,
    /// Zipfian constant used when `request_distribution` is `Zipfian`.
    pub zipfian_constant: f64,
    /// Fraction of the key space forming the hot set (hotspot distribution).
    pub hotspot_data_fraction: f64,
    /// Fraction of operations hitting the hot set (hotspot distribution).
    pub hotspot_opn_fraction: f64,
    /// Number of fields per record.
    pub field_count: u32,
    /// Bytes per field.
    pub field_length: u32,
    /// Maximum scan length (uniformly chosen in `1..=max_scan_length`).
    pub max_scan_length: u32,
    /// When true updates write all fields; otherwise a single field.
    pub write_all_fields: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        // YCSB defaults: 1000-byte records (10 × 100 B), zipfian requests.
        WorkloadConfig {
            record_count: 1_000,
            operation_count: 1_000,
            read_proportion: 0.95,
            update_proportion: 0.05,
            insert_proportion: 0.0,
            scan_proportion: 0.0,
            read_modify_write_proportion: 0.0,
            request_distribution: RequestDistribution::Zipfian,
            zipfian_constant: 0.99,
            hotspot_data_fraction: 0.2,
            hotspot_opn_fraction: 0.8,
            field_count: 10,
            field_length: 100,
            max_scan_length: 100,
            write_all_fields: false,
        }
    }
}

impl WorkloadConfig {
    /// Total bytes of one full record.
    pub fn record_size(&self) -> u32 {
        self.field_count * self.field_length
    }

    /// Total size of the loaded data set in bytes.
    pub fn dataset_bytes(&self) -> u64 {
        self.record_count * self.record_size() as u64
    }

    /// Fraction of operations that issue a storage write.
    pub fn write_fraction(&self) -> f64 {
        self.update_proportion + self.insert_proportion + self.read_modify_write_proportion
    }

    /// Fraction of operations that issue a storage read.
    pub fn read_fraction(&self) -> f64 {
        self.read_proportion + self.scan_proportion + self.read_modify_write_proportion
    }

    /// Validate that the proportions form a sensible mix.
    pub fn validate(&self) -> Result<(), String> {
        let sum = self.read_proportion
            + self.update_proportion
            + self.insert_proportion
            + self.scan_proportion
            + self.read_modify_write_proportion;
        if !(0.999..=1.001).contains(&sum) {
            return Err(format!("operation proportions must sum to 1.0, got {sum}"));
        }
        if self.record_count == 0 {
            return Err("record_count must be positive".into());
        }
        if self.field_count == 0 || self.field_length == 0 {
            return Err("record fields must be non-empty".into());
        }
        if !(0.0..1.0).contains(&self.zipfian_constant) {
            return Err("zipfian constant must be in (0,1)".into());
        }
        Ok(())
    }
}

enum KeyChooser {
    Uniform(UniformGenerator),
    Zipfian(ScrambledZipfianGenerator),
    RawZipfian(ZipfianGenerator),
    Latest(LatestGenerator),
    Hotspot(HotspotGenerator),
    Exponential(ExponentialGenerator),
    Sequential(SequentialGenerator),
}

impl KeyChooser {
    fn next(&mut self, rng: &mut SimRng) -> u64 {
        match self {
            KeyChooser::Uniform(g) => g.next(rng),
            KeyChooser::Zipfian(g) => g.next(rng),
            KeyChooser::RawZipfian(g) => g.next(rng),
            KeyChooser::Latest(g) => g.next(rng),
            KeyChooser::Hotspot(g) => g.next(rng),
            KeyChooser::Exponential(g) => g.next(rng),
            KeyChooser::Sequential(g) => g.next(rng),
        }
    }

    fn grow(&mut self, new_count: u64) {
        match self {
            KeyChooser::Uniform(g) => g.set_item_count(new_count),
            KeyChooser::Zipfian(g) => g.set_item_count(new_count),
            KeyChooser::RawZipfian(g) => g.set_item_count(new_count),
            KeyChooser::Latest(g) => g.record_insert(new_count - 1),
            // Hotspot / exponential / sequential keep their original range —
            // same behaviour as YCSB, where insert growth only affects the
            // uniform/zipfian/latest choosers.
            KeyChooser::Hotspot(_) | KeyChooser::Exponential(_) | KeyChooser::Sequential(_) => {}
        }
    }
}

/// The runtime generator of client operations for a [`WorkloadConfig`].
///
/// Operations honor the **key-density contract** (see
/// [`generators`](crate::generators)): every produced record id is below the
/// current record count (which only grows, by one per insert), so the
/// cluster's direct-indexed per-key tables stay dense. The key choosers
/// assert the contract on every draw.
pub struct CoreWorkload {
    config: WorkloadConfig,
    op_chooser: DiscreteGenerator<OperationType>,
    key_chooser: KeyChooser,
    scan_len_chooser: UniformGenerator,
    insert_keys: CounterGenerator,
    record_count: u64,
    generated: u64,
}

impl CoreWorkload {
    /// Build the workload from its configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails [`WorkloadConfig::validate`].
    pub fn new(config: WorkloadConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid workload configuration: {e}");
        }
        let mut op_chooser = DiscreteGenerator::new();
        op_chooser
            .add(OperationType::Read, config.read_proportion)
            .add(OperationType::Update, config.update_proportion)
            .add(OperationType::Insert, config.insert_proportion)
            .add(OperationType::Scan, config.scan_proportion)
            .add(
                OperationType::ReadModifyWrite,
                config.read_modify_write_proportion,
            );

        let key_chooser = match config.request_distribution {
            RequestDistribution::Uniform => {
                KeyChooser::Uniform(UniformGenerator::new(config.record_count))
            }
            RequestDistribution::Zipfian => {
                if (config.zipfian_constant - 0.99).abs() < 1e-9 {
                    KeyChooser::Zipfian(ScrambledZipfianGenerator::new(config.record_count))
                } else {
                    KeyChooser::RawZipfian(ZipfianGenerator::with_constant(
                        config.record_count,
                        config.zipfian_constant,
                    ))
                }
            }
            RequestDistribution::Latest => {
                KeyChooser::Latest(LatestGenerator::new(config.record_count))
            }
            RequestDistribution::Hotspot => KeyChooser::Hotspot(HotspotGenerator::new(
                config.record_count,
                config.hotspot_data_fraction,
                config.hotspot_opn_fraction,
            )),
            RequestDistribution::Exponential => KeyChooser::Exponential(
                ExponentialGenerator::percentile(config.record_count, 0.95, 0.8571),
            ),
            RequestDistribution::Sequential => {
                KeyChooser::Sequential(SequentialGenerator::new(config.record_count))
            }
        };

        let scan_len_chooser = UniformGenerator::new(config.max_scan_length.max(1) as u64);
        let insert_keys = CounterGenerator::new(config.record_count);
        let record_count = config.record_count;
        CoreWorkload {
            config,
            op_chooser,
            key_chooser,
            scan_len_chooser,
            insert_keys,
            record_count,
            generated: 0,
        }
    }

    /// The configuration this workload was built from.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Number of operations generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Current number of records (grows with inserts).
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// True once `operation_count` operations have been generated.
    pub fn is_exhausted(&self) -> bool {
        self.generated >= self.config.operation_count
    }

    /// The sequence of operations needed to load the initial data set
    /// (one insert per record, sequential keys, full record payloads).
    pub fn load_ops(&self) -> impl Iterator<Item = WorkloadOp> + '_ {
        let size = self.config.record_size();
        (0..self.config.record_count).map(move |key| WorkloadOp {
            op: OperationType::Insert,
            key,
            scan_length: 1,
            value_size: size,
        })
    }

    /// Pair the run phase's remaining operations with a **sorted** open-loop
    /// arrival schedule: yields `(arrival_time, op)` with non-decreasing
    /// times, the exact stream `Cluster::submit_batch` bulk-loads through
    /// the event queue's O(1) lane. Operation generation and arrival gaps
    /// draw from the same `rng` in a fixed interleaving (gap first, then
    /// op), so a fixed seed reproduces the identical timed stream.
    ///
    /// # Panics
    /// Panics if `process` is a closed loop (see
    /// [`ArrivalProcess::schedule`](crate::ArrivalProcess::schedule)).
    pub fn timed_ops<'a>(
        &'a mut self,
        process: crate::ArrivalProcess,
        start: concord_sim::SimTime,
        rng: &'a mut SimRng,
    ) -> TimedOps<'a> {
        assert!(
            process.concurrency().is_none(),
            "closed-loop arrivals are completion-driven; timed_ops needs an \
             open-loop process"
        );
        TimedOps {
            workload: self,
            process,
            at: start,
            rng,
        }
    }

    /// Generate the next operation of the run phase.
    pub fn next_op(&mut self, rng: &mut SimRng) -> WorkloadOp {
        self.generated += 1;
        let op = self.op_chooser.next(rng);
        match op {
            OperationType::Insert => {
                let key = self.insert_keys.next(rng);
                self.record_count = key + 1;
                self.key_chooser.grow(self.record_count);
                WorkloadOp {
                    op,
                    key,
                    scan_length: 1,
                    value_size: self.config.record_size(),
                }
            }
            OperationType::Scan => {
                let key = self.next_existing_key(rng);
                let len = 1 + self.scan_len_chooser.next(rng) as u32;
                WorkloadOp {
                    op,
                    key,
                    scan_length: len.min(self.config.max_scan_length.max(1)),
                    value_size: self.config.record_size(),
                }
            }
            OperationType::Read => WorkloadOp {
                op,
                key: self.next_existing_key(rng),
                scan_length: 1,
                value_size: self.config.record_size(),
            },
            OperationType::Update => WorkloadOp {
                op,
                key: self.next_existing_key(rng),
                scan_length: 1,
                value_size: self.update_size(),
            },
            OperationType::ReadModifyWrite => WorkloadOp {
                op,
                key: self.next_existing_key(rng),
                scan_length: 1,
                value_size: self.config.record_size() + self.update_size(),
            },
        }
    }

    fn update_size(&self) -> u32 {
        if self.config.write_all_fields {
            self.config.record_size()
        } else {
            self.config.field_length
        }
    }

    fn next_existing_key(&mut self, rng: &mut SimRng) -> u64 {
        // The chooser may briefly overshoot right after growth; clamp like
        // YCSB's `nextKeynum` loop does.
        loop {
            let k = self.key_chooser.next(rng);
            if k < self.record_count {
                return k;
            }
        }
    }
}

/// Iterator over `(sorted arrival time, operation)` pairs of an open-loop
/// run phase (see [`CoreWorkload::timed_ops`]).
pub struct TimedOps<'a> {
    workload: &'a mut CoreWorkload,
    process: crate::ArrivalProcess,
    at: concord_sim::SimTime,
    rng: &'a mut SimRng,
}

impl Iterator for TimedOps<'_> {
    type Item = (concord_sim::SimTime, WorkloadOp);

    fn next(&mut self) -> Option<Self::Item> {
        if self.workload.is_exhausted() {
            return None;
        }
        let at = self.process.next_arrival(&mut self.at, self.rng);
        let op = self.workload.next_op(self.rng);
        Some((at, op))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self
            .workload
            .config
            .operation_count
            .saturating_sub(self.workload.generated);
        let n = usize::try_from(remaining).unwrap_or(usize::MAX);
        (n, Some(n))
    }
}

impl ExactSizeIterator for TimedOps<'_> {}

impl std::fmt::Debug for CoreWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreWorkload")
            .field("config", &self.config)
            .field("generated", &self.generated)
            .field("record_count", &self.record_count)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heavy_read_update() -> WorkloadConfig {
        WorkloadConfig {
            record_count: 10_000,
            operation_count: 50_000,
            read_proportion: 0.5,
            update_proportion: 0.5,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn proportions_are_respected() {
        let mut w = CoreWorkload::new(heavy_read_update());
        let mut rng = SimRng::new(1);
        let n = 50_000;
        let mut reads = 0;
        for _ in 0..n {
            if w.next_op(&mut rng).op == OperationType::Read {
                reads += 1;
            }
        }
        let share = reads as f64 / n as f64;
        assert!((share - 0.5).abs() < 0.02, "read share={share}");
        assert!(w.is_exhausted());
    }

    #[test]
    fn keys_stay_in_record_space() {
        let mut w = CoreWorkload::new(heavy_read_update());
        let mut rng = SimRng::new(2);
        for _ in 0..20_000 {
            let op = w.next_op(&mut rng);
            assert!(op.key < w.record_count());
        }
    }

    #[test]
    fn inserts_extend_the_key_space() {
        let cfg = WorkloadConfig {
            record_count: 100,
            operation_count: 1_000,
            read_proportion: 0.5,
            update_proportion: 0.0,
            insert_proportion: 0.5,
            request_distribution: RequestDistribution::Latest,
            ..WorkloadConfig::default()
        };
        let mut w = CoreWorkload::new(cfg);
        let mut rng = SimRng::new(3);
        let mut max_insert_key = 0;
        for _ in 0..1_000 {
            let op = w.next_op(&mut rng);
            if op.op == OperationType::Insert {
                assert!(op.key >= 100, "inserts allocate new keys");
                max_insert_key = max_insert_key.max(op.key);
            }
        }
        assert!(w.record_count() > 100);
        assert_eq!(w.record_count(), max_insert_key + 1);
    }

    #[test]
    fn load_ops_cover_every_record_once() {
        let w = CoreWorkload::new(WorkloadConfig {
            record_count: 500,
            ..WorkloadConfig::default()
        });
        let keys: Vec<u64> = w.load_ops().map(|o| o.key).collect();
        assert_eq!(keys.len(), 500);
        assert_eq!(keys, (0..500).collect::<Vec<_>>());
        assert!(w.load_ops().all(|o| o.op == OperationType::Insert));
        assert!(w.load_ops().all(|o| o.value_size == 1000));
    }

    #[test]
    fn scan_lengths_respect_bound() {
        let cfg = WorkloadConfig {
            record_count: 1_000,
            operation_count: 10_000,
            read_proportion: 0.0,
            update_proportion: 0.0,
            scan_proportion: 1.0,
            max_scan_length: 50,
            ..WorkloadConfig::default()
        };
        let mut w = CoreWorkload::new(cfg);
        let mut rng = SimRng::new(4);
        for _ in 0..5_000 {
            let op = w.next_op(&mut rng);
            assert_eq!(op.op, OperationType::Scan);
            assert!((1..=50).contains(&op.scan_length));
        }
    }

    #[test]
    fn update_payload_depends_on_write_all_fields() {
        let mut cfg = heavy_read_update();
        cfg.write_all_fields = false;
        let mut w = CoreWorkload::new(cfg.clone());
        let mut rng = SimRng::new(5);
        let update = std::iter::from_fn(|| Some(w.next_op(&mut rng)))
            .find(|o| o.op == OperationType::Update)
            .unwrap();
        assert_eq!(update.value_size, cfg.field_length);

        cfg.write_all_fields = true;
        let mut w = CoreWorkload::new(cfg.clone());
        let update = std::iter::from_fn(|| Some(w.next_op(&mut rng)))
            .find(|o| o.op == OperationType::Update)
            .unwrap();
        assert_eq!(update.value_size, cfg.record_size());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = WorkloadConfig {
            read_proportion: 0.5,
            update_proportion: 0.1,
            ..WorkloadConfig::default()
        };
        assert!(bad.validate().is_err());

        let bad = WorkloadConfig {
            record_count: 0,
            ..WorkloadConfig::default()
        };
        assert!(bad.validate().is_err());

        let bad = WorkloadConfig {
            zipfian_constant: 1.5,
            ..WorkloadConfig::default()
        };
        assert!(bad.validate().is_err());

        assert!(WorkloadConfig::default().validate().is_ok());
    }

    #[test]
    fn dataset_size_and_fractions() {
        let cfg = heavy_read_update();
        assert_eq!(cfg.record_size(), 1_000);
        assert_eq!(cfg.dataset_bytes(), 10_000_000);
        assert!((cfg.write_fraction() - 0.5).abs() < 1e-12);
        assert!((cfg.read_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn op_type_classification() {
        assert!(OperationType::Update.is_write());
        assert!(OperationType::Insert.is_write());
        assert!(!OperationType::Read.is_write());
        assert!(OperationType::Read.is_read());
        assert!(OperationType::ReadModifyWrite.is_read());
        assert!(OperationType::ReadModifyWrite.is_write());
        assert!(OperationType::Scan.is_read());
    }

    #[test]
    fn timed_ops_yield_sorted_times_until_exhaustion() {
        let mut w = CoreWorkload::new(WorkloadConfig {
            record_count: 1_000,
            operation_count: 2_500,
            read_proportion: 0.5,
            update_proportion: 0.5,
            ..WorkloadConfig::default()
        });
        let mut rng = SimRng::new(12);
        let process = crate::ArrivalProcess::OpenLoopPoisson { ops_per_sec: 800.0 };
        let start = concord_sim::SimTime::from_millis(5);
        let timed: Vec<_> = w.timed_ops(process, start, &mut rng).collect();
        assert_eq!(timed.len(), 2_500);
        assert!(w.is_exhausted());
        assert!(timed[0].0 >= start);
        assert!(
            timed.windows(2).all(|p| p[0].0 <= p[1].0),
            "timed op stream must be sorted by arrival time"
        );
        assert!(timed.iter().all(|(_, op)| op.key < 1_000));
    }

    #[test]
    #[should_panic(expected = "open-loop")]
    fn timed_ops_reject_closed_loops() {
        let mut w = CoreWorkload::new(WorkloadConfig::default());
        let mut rng = SimRng::new(1);
        let _ = w.timed_ops(
            crate::ArrivalProcess::closed(4),
            concord_sim::SimTime::ZERO,
            &mut rng,
        );
    }

    #[test]
    fn uniform_and_hotspot_distributions_work_end_to_end() {
        for dist in [RequestDistribution::Uniform, RequestDistribution::Hotspot] {
            let cfg = WorkloadConfig {
                request_distribution: dist,
                record_count: 1_000,
                operation_count: 5_000,
                ..heavy_read_update()
            };
            let mut w = CoreWorkload::new(cfg);
            let mut rng = SimRng::new(6);
            for _ in 0..5_000 {
                assert!(w.next_op(&mut rng).key < 1_000);
            }
        }
    }
}
