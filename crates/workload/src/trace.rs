//! Access-trace capture, replay and synthesis.
//!
//! The behavior-modeling contribution of the paper (§III-C) works on
//! *application data-access past traces*: sequences of timestamped operations
//! from which per-period metrics are extracted offline. This module provides:
//!
//! * [`TraceOp`] / [`Trace`] — a serializable access trace;
//! * [`TraceRecorder`] — capture a trace while a workload runs;
//! * [`SyntheticTraceBuilder`] — generate multi-phase application traces
//!   (e.g. a webshop alternating browse / checkout / flash-sale phases) used
//!   to exercise the behavior modeling pipeline.

use crate::core_workload::{CoreWorkload, OperationType, WorkloadConfig};
use concord_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// One operation observed in an application access trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceOp {
    /// When the operation was issued.
    pub at: SimTime,
    /// The kind of operation.
    pub op: OperationType,
    /// The record targeted.
    pub key: u64,
    /// Payload size in bytes.
    pub value_size: u32,
}

/// A complete access trace (ordered by time).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The operations, in non-decreasing time order.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace { ops: Vec::new() }
    }

    /// Number of operations in the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the trace contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total duration covered by the trace.
    pub fn duration(&self) -> SimDuration {
        match (self.ops.first(), self.ops.last()) {
            (Some(first), Some(last)) => last.at - first.at,
            _ => SimDuration::ZERO,
        }
    }

    /// Append an operation, keeping time order (panics in debug builds if the
    /// timestamp goes backwards).
    pub fn push(&mut self, op: TraceOp) {
        debug_assert!(
            self.ops.last().is_none_or(|last| op.at >= last.at),
            "trace must be appended in time order"
        );
        self.ops.push(op);
    }

    /// Split the trace into consecutive windows of `period` and return the
    /// operations of each window. The last partial window is included.
    pub fn windows(&self, period: SimDuration) -> Vec<&[TraceOp]> {
        assert!(!period.is_zero(), "period must be positive");
        if self.ops.is_empty() {
            return Vec::new();
        }
        let start = self.ops[0].at;
        let mut out = Vec::new();
        let mut window_start = 0usize;
        let mut boundary = start + period;
        for (i, op) in self.ops.iter().enumerate() {
            while op.at >= boundary {
                out.push(&self.ops[window_start..i]);
                window_start = i;
                boundary += period;
            }
        }
        out.push(&self.ops[window_start..]);
        out
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Records operations into a [`Trace`] as they are issued.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    trace: Trace,
}

impl TraceRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        TraceRecorder {
            trace: Trace::new(),
        }
    }

    /// Record one operation.
    pub fn record(&mut self, at: SimTime, op: OperationType, key: u64, value_size: u32) {
        self.trace.push(TraceOp {
            at,
            op,
            key,
            value_size,
        });
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Finish recording and return the trace.
    pub fn finish(self) -> Trace {
        self.trace
    }
}

/// A phase of a synthetic application trace: a workload mix applied at a
/// given request rate for a given duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracePhase {
    /// Human-readable name (e.g. "browse", "checkout", "flash-sale").
    pub name: String,
    /// How long the phase lasts.
    pub duration: SimDuration,
    /// Mean operation arrival rate during the phase (ops/second).
    pub ops_per_sec: f64,
    /// The operation mix / key distribution of the phase.
    pub workload: WorkloadConfig,
}

/// Builds synthetic multi-phase traces, e.g. the webshop timeline used by the
/// behavior-modeling evaluation (EXP-C in DESIGN.md).
#[derive(Debug, Clone, Default)]
pub struct SyntheticTraceBuilder {
    phases: Vec<TracePhase>,
}

impl SyntheticTraceBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        SyntheticTraceBuilder { phases: Vec::new() }
    }

    /// Append a phase.
    pub fn phase(mut self, phase: TracePhase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Convenience: append a phase from its parts.
    pub fn add(
        mut self,
        name: &str,
        duration: SimDuration,
        ops_per_sec: f64,
        workload: WorkloadConfig,
    ) -> Self {
        self.phases.push(TracePhase {
            name: name.to_string(),
            duration,
            ops_per_sec,
            workload,
        });
        self
    }

    /// The phases added so far.
    pub fn phases(&self) -> &[TracePhase] {
        &self.phases
    }

    /// Generate the trace, with Poisson arrivals inside each phase.
    pub fn build(&self, rng: &mut SimRng) -> Trace {
        let mut trace = Trace::new();
        let mut now = SimTime::ZERO;
        for phase in &self.phases {
            let end = now + phase.duration;
            // Each phase gets its own workload generator so record counts and
            // mixes can differ between phases.
            let mut wl = CoreWorkload::new(WorkloadConfig {
                // Effectively unlimited: phases are bounded by time, not count.
                operation_count: u64::MAX,
                ..phase.workload.clone()
            });
            if phase.ops_per_sec <= 0.0 {
                now = end;
                continue;
            }
            loop {
                let gap = SimDuration::from_secs_f64(rng.exponential(phase.ops_per_sec));
                let at = now + gap;
                if at >= end {
                    break;
                }
                now = at;
                let op = wl.next_op(rng);
                trace.push(TraceOp {
                    at,
                    op: op.op,
                    key: op.key,
                    value_size: op.value_size,
                });
            }
            now = end;
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn recorder_builds_ordered_trace() {
        let mut rec = TraceRecorder::new();
        assert!(rec.is_empty());
        rec.record(SimTime::from_secs(1), OperationType::Read, 5, 100);
        rec.record(SimTime::from_secs(2), OperationType::Update, 7, 100);
        assert_eq!(rec.len(), 2);
        let trace = rec.finish();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.duration(), SimDuration::from_secs(1));
    }

    #[test]
    fn windows_partition_the_trace() {
        let mut trace = Trace::new();
        for i in 0..100u64 {
            trace.push(TraceOp {
                at: SimTime::from_millis(i * 100),
                op: OperationType::Read,
                key: i,
                value_size: 10,
            });
        }
        // 100 ops spread over 10 s, 1-second windows of 10 ops each.
        let windows = trace.windows(SimDuration::from_secs(1));
        assert_eq!(windows.len(), 10);
        assert!(windows.iter().all(|w| w.len() == 10));
        let total: usize = windows.iter().map(|w| w.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn windows_handle_gaps_and_empty() {
        assert!(Trace::new().windows(SimDuration::from_secs(1)).is_empty());
        let mut trace = Trace::new();
        trace.push(TraceOp {
            at: SimTime::from_secs(0),
            op: OperationType::Read,
            key: 1,
            value_size: 1,
        });
        trace.push(TraceOp {
            at: SimTime::from_secs(5),
            op: OperationType::Read,
            key: 2,
            value_size: 1,
        });
        let windows = trace.windows(SimDuration::from_secs(1));
        // Gap windows are empty but present.
        assert_eq!(windows.len(), 6);
        assert_eq!(windows.iter().filter(|w| !w.is_empty()).count(), 2);
    }

    #[test]
    fn json_round_trip() {
        let mut trace = Trace::new();
        trace.push(TraceOp {
            at: SimTime::from_secs(3),
            op: OperationType::Insert,
            key: 9,
            value_size: 55,
        });
        let json = trace.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn synthetic_phases_have_distinct_rates() {
        let quiet = presets::ycsb_b();
        let busy = presets::ycsb_a();
        let builder = SyntheticTraceBuilder::new()
            .add("browse", SimDuration::from_secs(60), 50.0, quiet)
            .add("flash-sale", SimDuration::from_secs(60), 500.0, busy);
        assert_eq!(builder.phases().len(), 2);
        let mut rng = SimRng::new(7);
        let trace = builder.build(&mut rng);
        let windows = trace.windows(SimDuration::from_secs(60));
        assert!(windows.len() >= 2);
        let first = windows[0].len() as f64 / 60.0;
        let second = windows[1].len() as f64 / 60.0;
        assert!((first - 50.0).abs() < 10.0, "phase-1 rate {first}");
        assert!((second - 500.0).abs() < 40.0, "phase-2 rate {second}");
        // The flash-sale phase is write-heavier than the browse phase.
        let writes =
            |w: &[TraceOp]| w.iter().filter(|o| o.op.is_write()).count() as f64 / w.len() as f64;
        assert!(writes(windows[1]) > writes(windows[0]));
    }

    #[test]
    fn zero_rate_phase_produces_no_ops() {
        let builder = SyntheticTraceBuilder::new().add(
            "idle",
            SimDuration::from_secs(10),
            0.0,
            presets::ycsb_c(),
        );
        let mut rng = SimRng::new(1);
        assert!(builder.build(&mut rng).is_empty());
    }
}
