//! Hash functions used by the workload generators.
//!
//! YCSB scrambles the zipfian distribution by hashing the zipfian rank with
//! FNV-1a so that the popular items are spread over the whole key space
//! instead of being clustered at the low ids. We reproduce the same
//! construction (64-bit FNV-1a over the little-endian bytes of the value).

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET_BASIS_64: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME_64: u64 = 0x0000_0100_0000_01B3;

/// Hash a 64-bit value with FNV-1a (as YCSB's `Utils.fnvhash64` does).
#[inline]
pub fn fnv1a_64(value: u64) -> u64 {
    let mut hash = FNV_OFFSET_BASIS_64;
    let mut v = value;
    for _ in 0..8 {
        let octet = v & 0xff;
        v >>= 8;
        hash ^= octet;
        hash = hash.wrapping_mul(FNV_PRIME_64);
    }
    hash
}

/// Hash an arbitrary byte string with FNV-1a 64.
#[inline]
pub fn fnv1a_64_bytes(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET_BASIS_64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME_64);
    }
    hash
}

/// A 64-bit finalizer (from MurmurHash3) used when we only need good bit
/// mixing rather than the YCSB-compatible FNV construction.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fnv_is_deterministic() {
        assert_eq!(fnv1a_64(12345), fnv1a_64(12345));
        assert_ne!(fnv1a_64(12345), fnv1a_64(12346));
    }

    #[test]
    fn fnv_bytes_matches_known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c (well-known test vector).
        assert_eq!(fnv1a_64_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64_bytes(b""), FNV_OFFSET_BASIS_64);
    }

    #[test]
    fn fnv_spreads_small_integers() {
        let hashes: HashSet<u64> = (0..10_000u64).map(fnv1a_64).collect();
        assert_eq!(hashes.len(), 10_000, "no collisions on small dense input");
    }

    #[test]
    fn mix64_is_a_bijection_on_samples() {
        let hashes: HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(hashes.len(), 10_000);
        // Small consecutive inputs should spread across the 64-bit space.
        let high_bit_set = (1..1_000u64).filter(|&i| mix64(i) >> 63 == 1).count();
        assert!((300..700).contains(&high_bit_set));
    }
}
