//! Hotspot selection: a fraction of the key space (the *hot set*) receives a
//! configurable fraction of the accesses (YCSB's `HotspotIntegerGenerator`).

use super::ItemGenerator;
use concord_sim::SimRng;

/// With probability `hot_opn_fraction` an item is drawn uniformly from the
/// first `hot_set_fraction` of the key space, otherwise uniformly from the
/// remaining cold set.
#[derive(Debug, Clone)]
pub struct HotspotGenerator {
    items: u64,
    hot_items: u64,
    hot_opn_fraction: f64,
    last: Option<u64>,
}

impl HotspotGenerator {
    /// Create a generator where `hot_set_fraction` of the items receive
    /// `hot_opn_fraction` of the operations.
    pub fn new(item_count: u64, hot_set_fraction: f64, hot_opn_fraction: f64) -> Self {
        assert!(item_count > 0);
        assert!((0.0..=1.0).contains(&hot_set_fraction));
        assert!((0.0..=1.0).contains(&hot_opn_fraction));
        let hot_items =
            ((item_count as f64 * hot_set_fraction).round() as u64).clamp(1, item_count);
        HotspotGenerator {
            items: item_count,
            hot_items,
            hot_opn_fraction,
            last: None,
        }
    }

    /// Number of items in the hot set.
    pub fn hot_item_count(&self) -> u64 {
        self.hot_items
    }

    /// Total number of items.
    pub fn item_count(&self) -> u64 {
        self.items
    }
}

impl ItemGenerator for HotspotGenerator {
    fn next(&mut self, rng: &mut SimRng) -> u64 {
        let v = if rng.gen_bool(self.hot_opn_fraction) || self.hot_items == self.items {
            rng.next_bounded(self.hot_items)
        } else {
            self.hot_items + rng.next_bounded(self.items - self.hot_items)
        };
        let v = super::assert_dense("HotspotGenerator", v, self.items);
        self.last = Some(v);
        v
    }

    fn last(&self) -> Option<u64> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_in_range() {
        let mut g = HotspotGenerator::new(1000, 0.2, 0.8);
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            assert!(g.next(&mut rng) < 1000);
        }
    }

    #[test]
    fn key_density_contract_holds() {
        for (frac_hot, frac_opn) in [(0.1, 0.9), (0.5, 0.5), (1.0, 0.2)] {
            let mut g = HotspotGenerator::new(333, frac_hot, frac_opn);
            let mut rng = SimRng::new(17);
            for _ in 0..20_000 {
                assert!(g.next(&mut rng) < 333);
            }
        }
    }

    #[test]
    fn hot_set_receives_configured_share() {
        let mut g = HotspotGenerator::new(1000, 0.2, 0.8);
        assert_eq!(g.hot_item_count(), 200);
        let mut rng = SimRng::new(2);
        let n = 200_000;
        let hot_hits = (0..n).filter(|_| g.next(&mut rng) < 200).count();
        let share = hot_hits as f64 / n as f64;
        assert!((share - 0.8).abs() < 0.01, "hot share={share}");
    }

    #[test]
    fn degenerate_all_hot() {
        let mut g = HotspotGenerator::new(10, 1.0, 0.5);
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            assert!(g.next(&mut rng) < 10);
        }
    }

    #[test]
    fn tiny_hot_fraction_keeps_at_least_one_item() {
        let g = HotspotGenerator::new(10, 0.0, 0.9);
        assert_eq!(g.hot_item_count(), 1);
    }
}
