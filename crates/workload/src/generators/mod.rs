//! Key- and value-selection generators, modeled after YCSB's generator
//! package.
//!
//! Every generator produces `u64` item indices in `[0, item_count)` (or, for
//! [`DiscreteGenerator`], an arbitrary labeled choice). The distributions
//! implemented here are the ones YCSB ships and the paper's workloads use:
//!
//! | Generator | YCSB equivalent | Typical use |
//! |---|---|---|
//! | [`UniformGenerator`] | `UniformLongGenerator` | workload C-style uniform reads |
//! | [`ZipfianGenerator`] | `ZipfianGenerator` | skewed popularity (θ = 0.99) |
//! | [`ScrambledZipfianGenerator`] | `ScrambledZipfianGenerator` | skewed but spread over the key space (default for A/B) |
//! | [`LatestGenerator`] | `SkewedLatestGenerator` | workload D: most-recent records are hottest |
//! | [`HotspotGenerator`] | `HotspotIntegerGenerator` | x% of ops on y% of keys |
//! | [`ExponentialGenerator`] | `ExponentialGenerator` | workload E insert-order skew |
//! | [`SequentialGenerator`] | `SequentialGenerator` | data loading |
//! | [`CounterGenerator`] | `CounterGenerator` | insert key allocation |
//! | [`DiscreteGenerator`] | `DiscreteGenerator` | choosing the next operation type |

mod discrete;
mod exponential;
mod hotspot;
mod latest;
mod scrambled;
mod sequential;
mod uniform;
mod zipfian;

pub use discrete::DiscreteGenerator;
pub use exponential::ExponentialGenerator;
pub use hotspot::HotspotGenerator;
pub use latest::LatestGenerator;
pub use scrambled::ScrambledZipfianGenerator;
pub use sequential::{CounterGenerator, SequentialGenerator};
pub use uniform::UniformGenerator;
pub use zipfian::ZipfianGenerator;

use concord_sim::SimRng;

/// A generator of item indices.
///
/// Generators are deliberately decoupled from the RNG so that a single
/// deterministic RNG stream can drive several generators (as YCSB does with
/// its thread-local `Random`).
pub trait ItemGenerator {
    /// Draw the next item index.
    fn next(&mut self, rng: &mut SimRng) -> u64;

    /// The most recently returned value, if any. Used by read-modify-write
    /// style compositions; mirrors YCSB's `lastValue()`.
    fn last(&self) -> Option<u64>;
}

/// The request-distribution choices exposed in workload configuration files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RequestDistribution {
    /// Every record equally likely.
    Uniform,
    /// Zipf-distributed popularity, scrambled across the key space.
    Zipfian,
    /// Most recently inserted records are the most popular.
    Latest,
    /// A hot set of records receives a configurable share of requests.
    Hotspot,
    /// Exponentially decaying popularity by record index.
    Exponential,
    /// Records accessed in sequential order (scans / loads).
    Sequential,
}

impl RequestDistribution {
    /// Instantiate the generator for `item_count` records.
    pub fn build(self, item_count: u64) -> Box<dyn ItemGenerator + Send> {
        match self {
            RequestDistribution::Uniform => Box::new(UniformGenerator::new(item_count)),
            RequestDistribution::Zipfian => Box::new(ScrambledZipfianGenerator::new(item_count)),
            RequestDistribution::Latest => Box::new(LatestGenerator::new(item_count)),
            RequestDistribution::Hotspot => Box::new(HotspotGenerator::new(item_count, 0.2, 0.8)),
            RequestDistribution::Exponential => {
                Box::new(ExponentialGenerator::percentile(item_count, 0.95, 0.8571))
            }
            RequestDistribution::Sequential => Box::new(SequentialGenerator::new(item_count)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_distribution_builds_all_variants() {
        let mut rng = SimRng::new(1);
        for dist in [
            RequestDistribution::Uniform,
            RequestDistribution::Zipfian,
            RequestDistribution::Latest,
            RequestDistribution::Hotspot,
            RequestDistribution::Exponential,
            RequestDistribution::Sequential,
        ] {
            let mut g = dist.build(1000);
            for _ in 0..200 {
                assert!(g.next(&mut rng) < 1000, "{dist:?} out of range");
            }
            assert!(g.last().is_some());
        }
    }
}
