//! Key- and value-selection generators, modeled after YCSB's generator
//! package.
//!
//! Every generator produces `u64` item indices in `[0, item_count)` (or, for
//! [`DiscreteGenerator`], an arbitrary labeled choice). The distributions
//! implemented here are the ones YCSB ships and the paper's workloads use:
//!
//! | Generator | YCSB equivalent | Typical use |
//! |---|---|---|
//! | [`UniformGenerator`] | `UniformLongGenerator` | workload C-style uniform reads |
//! | [`ZipfianGenerator`] | `ZipfianGenerator` | skewed popularity (θ = 0.99) |
//! | [`ScrambledZipfianGenerator`] | `ScrambledZipfianGenerator` | skewed but spread over the key space (default for A/B) |
//! | [`LatestGenerator`] | `SkewedLatestGenerator` | workload D: most-recent records are hottest |
//! | [`HotspotGenerator`] | `HotspotIntegerGenerator` | x% of ops on y% of keys |
//! | [`ExponentialGenerator`] | `ExponentialGenerator` | workload E insert-order skew |
//! | [`SequentialGenerator`] | `SequentialGenerator` | data loading |
//! | [`CounterGenerator`] | `CounterGenerator` | insert key allocation |
//! | [`DiscreteGenerator`] | `DiscreteGenerator` | choosing the next operation type |
//!
//! ## The key-density contract
//!
//! Record ids are **dense**: every key generator yields ids strictly below
//! its configured item count, and inserts allocate the next contiguous id
//! (growing the count). The cluster's per-key state — the replica store, the
//! staleness oracle, the placement cache — is direct-indexed on that
//! contract (paged tables instead of hash maps), so a generator silently
//! escaping its range would quietly grow sparse tables instead of being a
//! distribution bug you can see. Every generator therefore **asserts** the
//! contract on each draw and panics loudly on violation ([`CounterGenerator`]
//! is exempt: it *allocates* new ids, which by construction extend the dense
//! space by one).

mod discrete;
mod exponential;
mod hotspot;
mod latest;
mod scrambled;
mod sequential;
mod uniform;
mod zipfian;

pub use discrete::DiscreteGenerator;
pub use exponential::ExponentialGenerator;
pub use hotspot::HotspotGenerator;
pub use latest::LatestGenerator;
pub use scrambled::ScrambledZipfianGenerator;
pub use sequential::{CounterGenerator, SequentialGenerator};
pub use uniform::UniformGenerator;
pub use zipfian::ZipfianGenerator;

use concord_sim::SimRng;

/// Enforce the key-density contract: a generated record id must lie in
/// `[0, item_count)`. Returns the id so call sites stay expression-shaped.
///
/// # Panics
/// Panics (loudly, with the offending generator named) when the id escapes
/// the dense key space — the direct-indexed per-key tables downstream would
/// otherwise silently grow sparse.
#[inline]
pub(crate) fn assert_dense(generator: &str, id: u64, item_count: u64) -> u64 {
    assert!(
        id < item_count,
        "{generator} violated the key-density contract: record id {id} is outside \
         [0, {item_count}) — dense record ids are what the direct-indexed replica \
         store, staleness oracle and placement cache rely on"
    );
    id
}

/// A generator of item indices.
///
/// Generators are deliberately decoupled from the RNG so that a single
/// deterministic RNG stream can drive several generators (as YCSB does with
/// its thread-local `Random`).
pub trait ItemGenerator {
    /// Draw the next item index.
    fn next(&mut self, rng: &mut SimRng) -> u64;

    /// The most recently returned value, if any. Used by read-modify-write
    /// style compositions; mirrors YCSB's `lastValue()`.
    fn last(&self) -> Option<u64>;
}

/// The request-distribution choices exposed in workload configuration files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RequestDistribution {
    /// Every record equally likely.
    Uniform,
    /// Zipf-distributed popularity, scrambled across the key space.
    Zipfian,
    /// Most recently inserted records are the most popular.
    Latest,
    /// A hot set of records receives a configurable share of requests.
    Hotspot,
    /// Exponentially decaying popularity by record index.
    Exponential,
    /// Records accessed in sequential order (scans / loads).
    Sequential,
}

impl RequestDistribution {
    /// Instantiate the generator for `item_count` records.
    pub fn build(self, item_count: u64) -> Box<dyn ItemGenerator + Send> {
        match self {
            RequestDistribution::Uniform => Box::new(UniformGenerator::new(item_count)),
            RequestDistribution::Zipfian => Box::new(ScrambledZipfianGenerator::new(item_count)),
            RequestDistribution::Latest => Box::new(LatestGenerator::new(item_count)),
            RequestDistribution::Hotspot => Box::new(HotspotGenerator::new(item_count, 0.2, 0.8)),
            RequestDistribution::Exponential => {
                Box::new(ExponentialGenerator::percentile(item_count, 0.95, 0.8571))
            }
            RequestDistribution::Sequential => Box::new(SequentialGenerator::new(item_count)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_distribution_builds_all_variants() {
        let mut rng = SimRng::new(1);
        for dist in [
            RequestDistribution::Uniform,
            RequestDistribution::Zipfian,
            RequestDistribution::Latest,
            RequestDistribution::Hotspot,
            RequestDistribution::Exponential,
            RequestDistribution::Sequential,
        ] {
            let mut g = dist.build(1000);
            for _ in 0..200 {
                assert!(g.next(&mut rng) < 1000, "{dist:?} out of range");
            }
            assert!(g.last().is_some());
        }
    }
}
