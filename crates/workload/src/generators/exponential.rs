//! Exponentially decaying item popularity (YCSB's `ExponentialGenerator`).

use super::ItemGenerator;
use concord_sim::SimRng;

/// Item `i` is selected with probability proportional to `exp(-γ·i)`.
///
/// YCSB parameterizes γ by "`percentile` of the accesses fall in the first
/// `frac` fraction of the key space"; the same construction is offered via
/// [`ExponentialGenerator::percentile`].
#[derive(Debug, Clone)]
pub struct ExponentialGenerator {
    items: u64,
    gamma: f64,
    last: Option<u64>,
}

impl ExponentialGenerator {
    /// Create a generator with an explicit decay rate γ (> 0).
    pub fn new(item_count: u64, gamma: f64) -> Self {
        assert!(item_count > 0);
        assert!(gamma > 0.0);
        ExponentialGenerator {
            items: item_count,
            gamma,
            last: None,
        }
    }

    /// Create a generator where `percentile` (e.g. 0.95) of the draws fall
    /// within the first `frac` (e.g. 0.8571) fraction of the item space —
    /// YCSB's default parameterization for workload E.
    pub fn percentile(item_count: u64, percentile: f64, frac: f64) -> Self {
        assert!(percentile > 0.0 && percentile < 1.0);
        assert!(frac > 0.0 && frac <= 1.0);
        let gamma = -(1.0 - percentile).ln() / (item_count as f64 * frac);
        Self::new(item_count, gamma)
    }

    /// The decay rate γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl ItemGenerator for ExponentialGenerator {
    fn next(&mut self, rng: &mut SimRng) -> u64 {
        // Inverse-transform sampling of a truncated exponential.
        loop {
            let x = rng.exponential(self.gamma);
            let v = x as u64;
            if v < self.items {
                let v = super::assert_dense("ExponentialGenerator", v, self.items);
                self.last = Some(v);
                return v;
            }
            // Re-draw on the (rare) overflow past the last item.
        }
    }

    fn last(&self) -> Option<u64> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_in_range() {
        let mut g = ExponentialGenerator::percentile(1000, 0.95, 0.8571);
        let mut rng = SimRng::new(1);
        for _ in 0..20_000 {
            assert!(g.next(&mut rng) < 1000);
        }
    }

    #[test]
    fn key_density_contract_holds() {
        // Heavy-tailed draws with a small item space force the re-draw path;
        // every returned id must still be dense.
        let mut g = ExponentialGenerator::new(7, 0.01);
        let mut rng = SimRng::new(21);
        for _ in 0..20_000 {
            assert!(g.next(&mut rng) < 7);
        }
    }

    #[test]
    fn low_ids_dominate() {
        let mut g = ExponentialGenerator::percentile(1000, 0.95, 0.5);
        let mut rng = SimRng::new(2);
        let n = 100_000;
        let in_first_half = (0..n).filter(|_| g.next(&mut rng) < 500).count();
        let share = in_first_half as f64 / n as f64;
        assert!(share > 0.9, "share={share}");
    }

    #[test]
    fn percentile_parameterization_matches() {
        // γ is chosen so that an *unbounded* exponential puts 95% of its mass
        // in the first 80% of 10_000 items; the generator truncates at the
        // item count by re-drawing, so the observed share is the conditional
        // probability P(X < 0.8·N | X < N).
        let percentile = 0.95f64;
        let frac = 0.8f64;
        let mut g = ExponentialGenerator::percentile(10_000, percentile, frac);
        let mut rng = SimRng::new(3);
        let n = 200_000;
        let hits = (0..n).filter(|_| g.next(&mut rng) < 8_000).count();
        let share = hits as f64 / n as f64;
        let expected = percentile / (1.0 - (1.0 - percentile).powf(1.0 / frac));
        assert!(
            (share - expected).abs() < 0.01,
            "share={share} expected={expected}"
        );
    }

    #[test]
    fn explicit_gamma_accessible() {
        let g = ExponentialGenerator::new(100, 0.05);
        assert_eq!(g.gamma(), 0.05);
    }
}
