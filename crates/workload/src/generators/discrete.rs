//! Weighted discrete choice (YCSB's `DiscreteGenerator`), used to pick the
//! next operation type according to the workload's read/update/insert/scan
//! proportions.

use concord_sim::SimRng;

/// Chooses among labeled values with the given (not necessarily normalized)
/// weights.
#[derive(Debug, Clone)]
pub struct DiscreteGenerator<T: Clone> {
    values: Vec<(T, f64)>,
    total: f64,
    last: Option<T>,
}

impl<T: Clone> Default for DiscreteGenerator<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> DiscreteGenerator<T> {
    /// Create an empty generator; add choices with [`add`](Self::add).
    pub fn new() -> Self {
        DiscreteGenerator {
            values: Vec::new(),
            total: 0.0,
            last: None,
        }
    }

    /// Add `value` with relative `weight` (non-negative). Zero-weight entries
    /// are accepted but never selected.
    pub fn add(&mut self, value: T, weight: f64) -> &mut Self {
        assert!(weight >= 0.0, "weights must be non-negative");
        self.total += weight;
        self.values.push((value, weight));
        self
    }

    /// Number of registered choices.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no choices are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Draw the next value.
    ///
    /// # Panics
    /// Panics if no choice with positive weight was registered.
    pub fn next(&mut self, rng: &mut SimRng) -> T {
        assert!(
            self.total > 0.0,
            "DiscreteGenerator needs at least one positive weight"
        );
        let mut x = rng.next_f64() * self.total;
        for (value, weight) in &self.values {
            if x < *weight {
                self.last = Some(value.clone());
                return value.clone();
            }
            x -= weight;
        }
        // Floating-point edge: fall back to the last positively weighted entry.
        let value = self
            .values
            .iter()
            .rev()
            .find(|(_, w)| *w > 0.0)
            .map(|(v, _)| v.clone())
            .expect("at least one positive weight");
        self.last = Some(value.clone());
        value
    }

    /// The most recently drawn value.
    pub fn last(&self) -> Option<&T> {
        self.last.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportions_are_respected() {
        let mut g = DiscreteGenerator::new();
        g.add("read", 0.95).add("update", 0.05);
        let mut rng = SimRng::new(1);
        let n = 100_000;
        let reads = (0..n).filter(|_| g.next(&mut rng) == "read").count();
        let share = reads as f64 / n as f64;
        assert!((share - 0.95).abs() < 0.01, "read share={share}");
    }

    #[test]
    fn zero_weight_never_selected() {
        let mut g = DiscreteGenerator::new();
        g.add("never", 0.0).add("always", 1.0);
        let mut rng = SimRng::new(2);
        for _ in 0..10_000 {
            assert_eq!(g.next(&mut rng), "always");
        }
    }

    #[test]
    fn weights_need_not_be_normalized() {
        let mut g = DiscreteGenerator::new();
        g.add(1u8, 3.0).add(2u8, 1.0);
        let mut rng = SimRng::new(3);
        let n = 100_000;
        let ones = (0..n).filter(|_| g.next(&mut rng) == 1).count();
        assert!((ones as f64 / n as f64 - 0.75).abs() < 0.01);
    }

    #[test]
    fn last_is_tracked() {
        let mut g = DiscreteGenerator::new();
        g.add("x", 1.0);
        assert!(g.last().is_none());
        let mut rng = SimRng::new(4);
        g.next(&mut rng);
        assert_eq!(g.last(), Some(&"x"));
        assert_eq!(g.len(), 1);
        assert!(!g.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn empty_generator_panics_on_next() {
        let mut g: DiscreteGenerator<u8> = DiscreteGenerator::new();
        let mut rng = SimRng::new(5);
        g.next(&mut rng);
    }
}
