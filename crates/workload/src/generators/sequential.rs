//! Sequential and counter generators (data loading, insert key allocation).

use super::ItemGenerator;
use concord_sim::SimRng;

/// Cycles through `0, 1, …, item_count-1, 0, …` deterministically.
#[derive(Debug, Clone)]
pub struct SequentialGenerator {
    items: u64,
    next: u64,
    last: Option<u64>,
}

impl SequentialGenerator {
    /// Create a generator over `item_count` items.
    pub fn new(item_count: u64) -> Self {
        assert!(item_count > 0);
        SequentialGenerator {
            items: item_count,
            next: 0,
            last: None,
        }
    }
}

impl ItemGenerator for SequentialGenerator {
    fn next(&mut self, _rng: &mut SimRng) -> u64 {
        let v = super::assert_dense("SequentialGenerator", self.next, self.items);
        self.next = (self.next + 1) % self.items;
        self.last = Some(v);
        v
    }

    fn last(&self) -> Option<u64> {
        self.last
    }
}

/// Monotonically increasing counter starting at `start` — YCSB uses this to
/// allocate the key of each newly inserted record.
#[derive(Debug, Clone)]
pub struct CounterGenerator {
    next: u64,
    last: Option<u64>,
}

impl CounterGenerator {
    /// Create a counter whose first value is `start`.
    pub fn new(start: u64) -> Self {
        CounterGenerator {
            next: start,
            last: None,
        }
    }

    /// The value the next call to `next` will return.
    pub fn peek(&self) -> u64 {
        self.next
    }
}

impl ItemGenerator for CounterGenerator {
    fn next(&mut self, _rng: &mut SimRng) -> u64 {
        let v = self.next;
        self.next += 1;
        self.last = Some(v);
        v
    }

    fn last(&self) -> Option<u64> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_density_contract_holds() {
        // The wrap-around never escapes the dense space; the counter is
        // exempt (it allocates the ids that *extend* the space).
        let mut g = SequentialGenerator::new(5);
        let mut rng = SimRng::new(23);
        for _ in 0..1_000 {
            assert!(g.next(&mut rng) < 5);
        }
        let mut c = CounterGenerator::new(5);
        assert_eq!(c.next(&mut rng), 5, "counter allocates the next dense id");
    }

    #[test]
    fn sequential_wraps_around() {
        let mut g = SequentialGenerator::new(3);
        let mut rng = SimRng::new(1);
        let vals: Vec<u64> = (0..7).map(|_| g.next(&mut rng)).collect();
        assert_eq!(vals, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(g.last(), Some(0));
    }

    #[test]
    fn counter_is_monotonic() {
        let mut g = CounterGenerator::new(100);
        let mut rng = SimRng::new(1);
        assert_eq!(g.peek(), 100);
        assert_eq!(g.next(&mut rng), 100);
        assert_eq!(g.next(&mut rng), 101);
        assert_eq!(g.last(), Some(101));
        assert_eq!(g.peek(), 102);
    }
}
