//! "Latest" selection: the most recently inserted items are the most
//! popular (YCSB's `SkewedLatestGenerator`, used by workload D).

use super::zipfian::ZipfianGenerator;
use super::ItemGenerator;
use concord_sim::SimRng;

/// Draws a zipfian rank and subtracts it from the newest item id, so item
/// `newest` is the hottest, `newest - 1` the second hottest, and so on.
#[derive(Debug, Clone)]
pub struct LatestGenerator {
    newest: u64,
    zipf: ZipfianGenerator,
    last: Option<u64>,
}

impl LatestGenerator {
    /// Create a generator where items `0..item_count` already exist.
    pub fn new(item_count: u64) -> Self {
        assert!(item_count > 0);
        LatestGenerator {
            newest: item_count - 1,
            zipf: ZipfianGenerator::new(item_count),
            last: None,
        }
    }

    /// Record that a new item was inserted (it becomes the hottest).
    pub fn record_insert(&mut self, item: u64) {
        if item > self.newest {
            self.newest = item;
        }
    }

    /// The current hottest (most recently inserted) item id.
    pub fn newest(&self) -> u64 {
        self.newest
    }
}

impl ItemGenerator for LatestGenerator {
    fn next(&mut self, rng: &mut SimRng) -> u64 {
        let count = self.newest + 1;
        let rank = self.zipf.next_with_count(rng, count);
        let v = super::assert_dense("LatestGenerator", self.newest - rank, count);
        self.last = Some(v);
        v
    }

    fn last(&self) -> Option<u64> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_in_range() {
        let mut g = LatestGenerator::new(1000);
        let mut rng = SimRng::new(1);
        for _ in 0..50_000 {
            assert!(g.next(&mut rng) < 1000);
        }
    }

    #[test]
    fn key_density_contract_holds() {
        let mut g = LatestGenerator::new(50);
        let mut rng = SimRng::new(11);
        for _ in 0..20_000 {
            assert!(g.next(&mut rng) < 50);
        }
        g.record_insert(50);
        g.record_insert(51);
        for _ in 0..20_000 {
            assert!(g.next(&mut rng) < 52);
        }
    }

    #[test]
    fn newest_items_are_hottest() {
        let mut g = LatestGenerator::new(1000);
        let mut rng = SimRng::new(2);
        let mut counts = vec![0usize; 1000];
        for _ in 0..300_000 {
            counts[g.next(&mut rng) as usize] += 1;
        }
        assert!(counts[999] > counts[500]);
        assert!(counts[999] > counts[0]);
        assert_eq!(
            counts
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| **c)
                .unwrap()
                .0,
            999
        );
    }

    #[test]
    fn inserts_shift_the_hot_spot() {
        let mut g = LatestGenerator::new(100);
        let mut rng = SimRng::new(3);
        for i in 100..200 {
            g.record_insert(i);
        }
        assert_eq!(g.newest(), 199);
        let mut counts = vec![0usize; 200];
        for _ in 0..200_000 {
            counts[g.next(&mut rng) as usize] += 1;
        }
        assert_eq!(
            counts
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| **c)
                .unwrap()
                .0,
            199,
            "hottest item must follow the insertion frontier"
        );
    }

    #[test]
    fn stale_insert_does_not_regress() {
        let mut g = LatestGenerator::new(50);
        g.record_insert(10); // older than the current newest
        assert_eq!(g.newest(), 49);
    }
}
