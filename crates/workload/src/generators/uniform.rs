//! Uniform item selection.

use super::ItemGenerator;
use concord_sim::SimRng;

/// Selects every item in `[0, item_count)` with equal probability.
#[derive(Debug, Clone)]
pub struct UniformGenerator {
    item_count: u64,
    last: Option<u64>,
}

impl UniformGenerator {
    /// Create a generator over `item_count` items (must be non-zero).
    pub fn new(item_count: u64) -> Self {
        assert!(item_count > 0, "item_count must be positive");
        UniformGenerator {
            item_count,
            last: None,
        }
    }

    /// Grow the item space (new items become selectable immediately).
    pub fn set_item_count(&mut self, item_count: u64) {
        assert!(item_count > 0);
        self.item_count = item_count;
    }
}

impl ItemGenerator for UniformGenerator {
    fn next(&mut self, rng: &mut SimRng) -> u64 {
        let v = super::assert_dense(
            "UniformGenerator",
            rng.next_bounded(self.item_count),
            self.item_count,
        );
        self.last = Some(v);
        v
    }

    fn last(&self) -> Option<u64> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_in_range() {
        let mut g = UniformGenerator::new(100);
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            assert!(g.next(&mut rng) < 100);
        }
    }

    #[test]
    fn roughly_uniform_frequencies() {
        let mut g = UniformGenerator::new(10);
        let mut rng = SimRng::new(2);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[g.next(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1_000.0);
        }
    }

    #[test]
    fn last_tracks_previous_value() {
        let mut g = UniformGenerator::new(5);
        let mut rng = SimRng::new(3);
        assert_eq!(g.last(), None);
        let v = g.next(&mut rng);
        assert_eq!(g.last(), Some(v));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_items_rejected() {
        UniformGenerator::new(0);
    }

    #[test]
    fn key_density_contract_holds() {
        // Dense-id contract: every draw stays below the configured count,
        // including right after the space grows.
        let mut g = UniformGenerator::new(17);
        let mut rng = SimRng::new(9);
        for _ in 0..20_000 {
            assert!(g.next(&mut rng) < 17);
        }
        g.set_item_count(1_000);
        for _ in 0..20_000 {
            assert!(g.next(&mut rng) < 1_000);
        }
    }
}
