//! Zipfian item selection, following the algorithm YCSB uses (Gray et al.,
//! "Quickly Generating Billion-Record Synthetic Databases", SIGMOD 1994).
//!
//! The generator returns item **ranks**: rank 0 is the most popular item,
//! rank 1 the second most popular, and so on. The skew is controlled by the
//! zipfian constant θ (YCSB default 0.99).

use super::ItemGenerator;
use concord_sim::SimRng;

/// The zipfian constant YCSB uses by default.
pub const DEFAULT_ZIPFIAN_CONSTANT: f64 = 0.99;

/// Zipf-distributed rank generator over `[0, item_count)`.
#[derive(Debug, Clone)]
pub struct ZipfianGenerator {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    zeta2theta: f64,
    eta: f64,
    /// Number of items `zetan` was computed for (to support growth).
    count_for_zeta: u64,
    last: Option<u64>,
}

impl ZipfianGenerator {
    /// Create a generator with the default zipfian constant 0.99.
    pub fn new(item_count: u64) -> Self {
        Self::with_constant(item_count, DEFAULT_ZIPFIAN_CONSTANT)
    }

    /// Create a generator with an explicit zipfian constant θ ∈ (0, 1).
    pub fn with_constant(item_count: u64, theta: f64) -> Self {
        assert!(item_count > 0, "item_count must be positive");
        assert!(
            theta > 0.0 && theta < 1.0,
            "zipfian constant must be in (0,1), got {theta}"
        );
        let zetan = Self::zeta(item_count, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / item_count as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        ZipfianGenerator {
            items: item_count,
            theta,
            alpha,
            zetan,
            zeta2theta,
            eta,
            count_for_zeta: item_count,
            last: None,
        }
    }

    /// The generalized harmonic number ζ(n, θ) = Σ_{i=1..n} 1/i^θ.
    ///
    /// For very large `n` (the scrambled-zipfian generator uses an internal
    /// item space of 10⁸) the sum is split into an exact prefix and an
    /// integral approximation of the tail, `∫ x^{-θ} dx`, whose relative
    /// error is far below anything observable in sampled frequencies.
    fn zeta(n: u64, theta: f64) -> f64 {
        const EXACT_PREFIX: u64 = 1_000_000;
        let exact_n = n.min(EXACT_PREFIX);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > exact_n {
            let a = exact_n as f64 + 0.5;
            let b = n as f64 + 0.5;
            sum += (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
        }
        sum
    }

    /// Incrementally extend ζ when the item space grows (avoids a full
    /// recomputation on every insert, exactly as YCSB does).
    fn extend_zeta(&mut self, new_count: u64) {
        if new_count <= self.count_for_zeta {
            return;
        }
        for i in (self.count_for_zeta + 1)..=new_count {
            self.zetan += 1.0 / (i as f64).powf(self.theta);
        }
        self.count_for_zeta = new_count;
        self.eta = (1.0 - (2.0 / new_count as f64).powf(1.0 - self.theta))
            / (1.0 - self.zeta2theta / self.zetan);
    }

    /// Number of items currently covered.
    pub fn item_count(&self) -> u64 {
        self.items
    }

    /// The zipfian constant θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Grow the item space to `item_count` items.
    pub fn set_item_count(&mut self, item_count: u64) {
        assert!(item_count >= self.items, "item space can only grow");
        self.items = item_count;
        self.extend_zeta(item_count);
    }

    /// Draw a rank for an explicit item count (used by [`LatestGenerator`]
    /// which re-targets the distribution at the newest item on every draw).
    ///
    /// [`LatestGenerator`]: super::LatestGenerator
    pub fn next_with_count(&mut self, rng: &mut SimRng, item_count: u64) -> u64 {
        assert!(item_count > 0);
        if item_count > self.count_for_zeta {
            self.items = item_count;
            self.extend_zeta(item_count);
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        let v = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            1
        } else {
            (item_count as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
        };
        let v = super::assert_dense("ZipfianGenerator", v.min(item_count - 1), item_count);
        self.last = Some(v);
        v
    }
}

impl ItemGenerator for ZipfianGenerator {
    fn next(&mut self, rng: &mut SimRng) -> u64 {
        let items = self.items;
        self.next_with_count(rng, items)
    }

    fn last(&self) -> Option<u64> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(items: u64, draws: usize, seed: u64) -> Vec<usize> {
        let mut g = ZipfianGenerator::new(items);
        let mut rng = SimRng::new(seed);
        let mut counts = vec![0usize; items as usize];
        for _ in 0..draws {
            counts[g.next(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn values_in_range() {
        let mut g = ZipfianGenerator::new(1000);
        let mut rng = SimRng::new(1);
        for _ in 0..50_000 {
            assert!(g.next(&mut rng) < 1000);
        }
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let counts = frequencies(100, 200_000, 2);
        let max = *counts.iter().max().unwrap();
        assert_eq!(counts[0], max, "rank 0 must be the hottest item");
        // Popularity should be (roughly) non-increasing over the first ranks.
        assert!(counts[0] > counts[5]);
        assert!(counts[1] > counts[20]);
    }

    #[test]
    fn skew_matches_zipf_ratio() {
        // For Zipf with θ, P(rank 1)/P(rank 2) = 2^θ.
        let counts = frequencies(1000, 1_000_000, 3);
        let ratio = counts[0] as f64 / counts[1] as f64;
        let expected = 2f64.powf(DEFAULT_ZIPFIAN_CONSTANT);
        assert!(
            (ratio - expected).abs() < 0.25,
            "ratio={ratio}, expected≈{expected}"
        );
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let mut mild = ZipfianGenerator::with_constant(1000, 0.5);
        let mut hot = ZipfianGenerator::with_constant(1000, 0.99);
        let mut rng1 = SimRng::new(4);
        let mut rng2 = SimRng::new(4);
        let n = 200_000;
        let mild_top = (0..n).filter(|_| mild.next(&mut rng1) == 0).count();
        let hot_top = (0..n).filter(|_| hot.next(&mut rng2) == 0).count();
        assert!(hot_top > mild_top * 2);
    }

    #[test]
    fn growth_extends_the_range() {
        let mut g = ZipfianGenerator::new(10);
        let mut rng = SimRng::new(5);
        g.set_item_count(1000);
        assert_eq!(g.item_count(), 1000);
        let seen_large = (0..100_000).any(|_| g.next(&mut rng) >= 10);
        assert!(seen_large, "growth must make new items reachable");
    }

    #[test]
    #[should_panic(expected = "grow")]
    fn shrinking_is_rejected() {
        let mut g = ZipfianGenerator::new(10);
        g.set_item_count(5);
    }

    #[test]
    fn key_density_contract_holds() {
        let mut g = ZipfianGenerator::with_constant(300, 0.7);
        let mut rng = SimRng::new(13);
        for _ in 0..50_000 {
            assert!(g.next(&mut rng) < 300);
        }
        g.set_item_count(5_000);
        for _ in 0..50_000 {
            assert!(g.next(&mut rng) < 5_000);
        }
    }

    #[test]
    fn deterministic_with_same_seed() {
        let mut a = ZipfianGenerator::new(500);
        let mut b = ZipfianGenerator::new(500);
        let mut r1 = SimRng::new(9);
        let mut r2 = SimRng::new(9);
        for _ in 0..1000 {
            assert_eq!(a.next(&mut r1), b.next(&mut r2));
        }
    }
}
