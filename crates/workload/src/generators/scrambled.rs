//! Scrambled zipfian selection: zipfian popularity spread uniformly over the
//! key space by hashing the zipfian rank (YCSB's default request
//! distribution for workloads A and B).

use super::zipfian::ZipfianGenerator;
use super::ItemGenerator;
use crate::hashing::fnv1a_64;
use concord_sim::SimRng;

/// Like YCSB's `ScrambledZipfianGenerator`: draws a zipfian rank from a large
/// internal item space and hashes it into `[0, item_count)`, so the hot items
/// are scattered across the key space rather than clustered at low ids.
#[derive(Debug, Clone)]
pub struct ScrambledZipfianGenerator {
    items: u64,
    inner: ZipfianGenerator,
    last: Option<u64>,
}

/// YCSB uses a fixed large internal item space so that the zeta constant can
/// be precomputed; we do the same (10 billion in YCSB; a smaller space keeps
/// construction instant while preserving the distribution shape over any
/// realistic record count).
const INTERNAL_ITEM_COUNT: u64 = 100_000_000;

impl ScrambledZipfianGenerator {
    /// Create a generator over `item_count` items with θ = 0.99.
    pub fn new(item_count: u64) -> Self {
        assert!(item_count > 0);
        ScrambledZipfianGenerator {
            items: item_count,
            inner: ZipfianGenerator::new(INTERNAL_ITEM_COUNT.max(item_count)),
            last: None,
        }
    }

    /// Number of items addressed.
    pub fn item_count(&self) -> u64 {
        self.items
    }

    /// Grow the addressed item space.
    pub fn set_item_count(&mut self, item_count: u64) {
        assert!(item_count > 0);
        self.items = item_count;
        if item_count > INTERNAL_ITEM_COUNT {
            self.inner.set_item_count(item_count);
        }
    }
}

impl ItemGenerator for ScrambledZipfianGenerator {
    fn next(&mut self, rng: &mut SimRng) -> u64 {
        let rank = self.inner.next(rng);
        let v = super::assert_dense(
            "ScrambledZipfianGenerator",
            fnv1a_64(rank) % self.items,
            self.items,
        );
        self.last = Some(v);
        v
    }

    fn last(&self) -> Option<u64> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_in_range() {
        let mut g = ScrambledZipfianGenerator::new(1_000);
        let mut rng = SimRng::new(1);
        for _ in 0..50_000 {
            assert!(g.next(&mut rng) < 1_000);
        }
    }

    #[test]
    fn key_density_contract_holds() {
        // Including growth: scattered hot ranks must keep landing inside the
        // (possibly grown) dense key space.
        let mut g = ScrambledZipfianGenerator::new(77);
        let mut rng = SimRng::new(5);
        for _ in 0..30_000 {
            assert!(g.next(&mut rng) < 77);
        }
        g.set_item_count(1_234);
        for _ in 0..30_000 {
            assert!(g.next(&mut rng) < 1_234);
        }
    }

    #[test]
    fn hot_keys_are_scattered_not_clustered() {
        let mut g = ScrambledZipfianGenerator::new(10_000);
        let mut rng = SimRng::new(2);
        let mut counts = vec![0usize; 10_000];
        for _ in 0..500_000 {
            counts[g.next(&mut rng) as usize] += 1;
        }
        // Find the ten hottest keys; they should NOT all be in the low id
        // range (that is the whole point of scrambling).
        let mut idx: Vec<usize> = (0..counts.len()).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
        let top10 = &idx[..10];
        assert!(
            top10.iter().any(|&i| i > 1_000),
            "hot keys must be spread over the key space: {top10:?}"
        );
        // Still heavily skewed: the hottest key gets far more than the mean.
        let mean = 500_000.0 / 10_000.0;
        assert!(counts[idx[0]] as f64 > mean * 20.0);
    }

    #[test]
    fn skew_survives_scrambling() {
        let mut g = ScrambledZipfianGenerator::new(1_000);
        let mut rng = SimRng::new(3);
        let mut counts = vec![0usize; 1_000];
        let n = 300_000;
        for _ in 0..n {
            counts[g.next(&mut rng) as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_10pct: usize = counts[..100].iter().sum();
        // Under a uniform distribution the top 10% of keys would absorb 10%
        // of accesses; the scrambled zipfian concentrates the hot ranks of a
        // 10⁸-item zipf onto these keys, so well over a quarter of all
        // accesses land there (the exact value depends on the internal item
        // space, ≈33% for 10⁸ items at θ = 0.99).
        assert!(
            top_10pct as f64 > 0.25 * n as f64,
            "top 10% of keys should absorb far more than a uniform share, got {}",
            top_10pct as f64 / n as f64
        );
    }

    #[test]
    fn growth_is_accepted() {
        let mut g = ScrambledZipfianGenerator::new(10);
        g.set_item_count(20);
        assert_eq!(g.item_count(), 20);
        let mut rng = SimRng::new(4);
        for _ in 0..1000 {
            assert!(g.next(&mut rng) < 20);
        }
    }
}
