//! # concord-workload — YCSB-like workload generation
//!
//! The paper drives Apache Cassandra with the Yahoo! Cloud Serving Benchmark
//! (YCSB). This crate is the from-scratch substitute: it reproduces YCSB's
//! key-selection generators (uniform, zipfian, scrambled zipfian, latest,
//! hotspot, exponential, sequential), its core-workload operation mix
//! machinery, the standard workloads A–F, and the paper's heavy read-update
//! workloads, plus access-trace capture / synthesis for the behavior-modeling
//! contribution.
//!
//! ## Quick example
//!
//! ```
//! use concord_workload::{CoreWorkload, presets};
//! use concord_sim::SimRng;
//!
//! // The paper's heavy read-update workload, scaled down 1000×.
//! let cfg = presets::harmony_ec2_workload(0.001);
//! let mut workload = CoreWorkload::new(cfg);
//! let mut rng = SimRng::new(42);
//! let op = workload.next_op(&mut rng);
//! assert!(op.key < workload.record_count());
//! ```

#![warn(missing_docs)]

pub mod arrival;
pub mod core_workload;
pub mod generators;
pub mod hashing;
pub mod presets;
pub mod trace;

pub use arrival::{ArrivalProcess, ArrivalSchedule};
pub use core_workload::{CoreWorkload, OperationType, TimedOps, WorkloadConfig, WorkloadOp};
pub use generators::{ItemGenerator, RequestDistribution};
pub use trace::{SyntheticTraceBuilder, Trace, TraceOp, TracePhase, TraceRecorder};
