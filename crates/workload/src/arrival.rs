//! Client arrival processes.
//!
//! The paper's YCSB runs use a closed loop (a fixed number of client threads,
//! each issuing the next operation as soon as the previous one completes) —
//! that is what drives throughput differences between consistency levels.
//! An open-loop Poisson process is also provided for experiments that need a
//! fixed offered load (e.g. sweeping the write rate for the staleness model).

use concord_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// How client operations arrive at the storage cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// `clients` independent clients, each issuing its next operation
    /// `think_time` after the previous one completed (think time may be 0).
    ClosedLoop {
        /// Number of concurrent clients (YCSB threads).
        clients: u32,
        /// Per-client pause between completion and the next request, in µs.
        think_time_us: u64,
    },
    /// Operations arrive following a Poisson process with the given mean
    /// rate, regardless of completions (open loop).
    OpenLoopPoisson {
        /// Mean arrival rate in operations per second.
        ops_per_sec: f64,
    },
    /// Operations arrive at an exactly regular interval (deterministic open
    /// loop), useful for reproducible micro-tests.
    OpenLoopUniform {
        /// Arrival rate in operations per second.
        ops_per_sec: f64,
    },
}

impl ArrivalProcess {
    /// A closed loop with zero think time — the YCSB default.
    pub fn closed(clients: u32) -> Self {
        ArrivalProcess::ClosedLoop {
            clients,
            think_time_us: 0,
        }
    }

    /// Number of concurrent clients the process keeps in flight
    /// (`None` for open-loop processes, which are unbounded).
    pub fn concurrency(&self) -> Option<u32> {
        match self {
            ArrivalProcess::ClosedLoop { clients, .. } => Some(*clients),
            _ => None,
        }
    }

    /// For closed loops: the think time before a client re-issues.
    pub fn think_time(&self) -> SimDuration {
        match self {
            ArrivalProcess::ClosedLoop { think_time_us, .. } => {
                SimDuration::from_micros(*think_time_us)
            }
            _ => SimDuration::ZERO,
        }
    }

    /// For open loops: draw the gap until the next arrival.
    /// Returns `None` for closed loops (arrivals are completion-driven).
    pub fn next_interarrival(&self, rng: &mut SimRng) -> Option<SimDuration> {
        match self {
            ArrivalProcess::ClosedLoop { .. } => None,
            ArrivalProcess::OpenLoopPoisson { ops_per_sec } => {
                let gap_s = rng.exponential(*ops_per_sec);
                Some(SimDuration::from_secs_f64(gap_s))
            }
            ArrivalProcess::OpenLoopUniform { ops_per_sec } => {
                Some(SimDuration::from_secs_f64(1.0 / ops_per_sec))
            }
        }
    }

    /// Advance `at` by one drawn inter-arrival gap and return the new
    /// arrival time. This is the single accumulation step behind every
    /// sorted open-loop schedule ([`ArrivalProcess::schedule`],
    /// `CoreWorkload::timed_ops`): gaps are non-negative, so the returned
    /// times are non-decreasing by construction.
    ///
    /// # Panics
    /// Panics for closed-loop processes (their arrivals are
    /// completion-driven).
    pub fn next_arrival(&self, at: &mut SimTime, rng: &mut SimRng) -> SimTime {
        let gap = self
            .next_interarrival(rng)
            .expect("closed-loop arrivals are completion-driven; an open-loop process is required");
        *at += gap;
        *at
    }

    /// A **sorted** arrival-time iterator for `count` open-loop operations
    /// starting after `start`: each yielded `SimTime` is the cumulative sum
    /// of drawn inter-arrival gaps, so the stream is non-decreasing by
    /// construction — exactly the contract bulk-load consumers
    /// (`Cluster::submit_batch`, the event queue's bulk lane) *assert*
    /// instead of silently falling back to per-event heap pushes.
    ///
    /// # Panics
    /// Panics for closed-loop processes, whose arrivals are
    /// completion-driven and have no a-priori schedule.
    pub fn schedule<'a>(
        &self,
        start: SimTime,
        count: u64,
        rng: &'a mut SimRng,
    ) -> ArrivalSchedule<'a> {
        assert!(
            !matches!(self, ArrivalProcess::ClosedLoop { .. }),
            "closed-loop arrivals are completion-driven; only open-loop \
             processes have an a-priori sorted schedule"
        );
        ArrivalSchedule {
            process: *self,
            rng,
            at: start,
            remaining: count,
        }
    }
}

/// Iterator over the sorted arrival times of an open-loop process
/// (see [`ArrivalProcess::schedule`]).
#[derive(Debug)]
pub struct ArrivalSchedule<'a> {
    process: ArrivalProcess,
    rng: &'a mut SimRng,
    at: SimTime,
    remaining: u64,
}

impl Iterator for ArrivalSchedule<'_> {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.process.next_arrival(&mut self.at, self.rng))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (n, Some(n))
    }
}

impl ExactSizeIterator for ArrivalSchedule<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_reports_concurrency_and_think_time() {
        let a = ArrivalProcess::closed(32);
        assert_eq!(a.concurrency(), Some(32));
        assert_eq!(a.think_time(), SimDuration::ZERO);
        let mut rng = SimRng::new(1);
        assert!(a.next_interarrival(&mut rng).is_none());

        let b = ArrivalProcess::ClosedLoop {
            clients: 4,
            think_time_us: 500,
        };
        assert_eq!(b.think_time(), SimDuration::from_micros(500));
    }

    #[test]
    fn poisson_interarrivals_match_rate() {
        let a = ArrivalProcess::OpenLoopPoisson { ops_per_sec: 200.0 };
        let mut rng = SimRng::new(2);
        let n = 100_000;
        let total: f64 = (0..n)
            .map(|_| a.next_interarrival(&mut rng).unwrap().as_secs_f64())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 1.0 / 200.0).abs() < 2e-4, "mean gap={mean}");
        assert_eq!(a.concurrency(), None);
    }

    #[test]
    fn uniform_open_loop_is_regular() {
        let a = ArrivalProcess::OpenLoopUniform { ops_per_sec: 100.0 };
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            assert_eq!(
                a.next_interarrival(&mut rng).unwrap(),
                SimDuration::from_millis(10)
            );
        }
    }

    #[test]
    fn schedule_is_sorted_and_exact_sized() {
        for process in [
            ArrivalProcess::OpenLoopPoisson { ops_per_sec: 500.0 },
            ArrivalProcess::OpenLoopUniform { ops_per_sec: 500.0 },
        ] {
            let mut rng = SimRng::new(7);
            let start = SimTime::from_millis(3);
            let schedule = process.schedule(start, 5_000, &mut rng);
            assert_eq!(schedule.len(), 5_000);
            let times: Vec<SimTime> = schedule.collect();
            assert_eq!(times.len(), 5_000);
            assert!(times[0] >= start);
            assert!(
                times.windows(2).all(|w| w[0] <= w[1]),
                "arrival schedule must be non-decreasing"
            );
        }
    }

    #[test]
    fn schedule_matches_manual_interarrival_accumulation() {
        let process = ArrivalProcess::OpenLoopPoisson { ops_per_sec: 100.0 };
        let mut rng_a = SimRng::new(11);
        let scheduled: Vec<SimTime> = process.schedule(SimTime::ZERO, 200, &mut rng_a).collect();
        let mut rng_b = SimRng::new(11);
        let mut at = SimTime::ZERO;
        let manual: Vec<SimTime> = (0..200)
            .map(|_| {
                at += process.next_interarrival(&mut rng_b).unwrap();
                at
            })
            .collect();
        assert_eq!(scheduled, manual, "same RNG draws, same times");
    }

    #[test]
    #[should_panic(expected = "completion-driven")]
    fn closed_loops_have_no_schedule() {
        let mut rng = SimRng::new(1);
        ArrivalProcess::closed(8).schedule(SimTime::ZERO, 10, &mut rng);
    }

    #[test]
    fn serde_round_trip() {
        let a = ArrivalProcess::OpenLoopPoisson { ops_per_sec: 42.0 };
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(a, serde_json::from_str(&json).unwrap());
    }
}
