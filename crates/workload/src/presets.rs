//! Standard workload presets: YCSB core workloads A–F and the
//! "heavy read-update" workloads used in the paper's evaluation.

use crate::core_workload::WorkloadConfig;
use crate::generators::RequestDistribution;

/// YCSB Workload A — update heavy: 50% reads, 50% updates, zipfian.
pub fn ycsb_a() -> WorkloadConfig {
    WorkloadConfig {
        read_proportion: 0.5,
        update_proportion: 0.5,
        insert_proportion: 0.0,
        scan_proportion: 0.0,
        read_modify_write_proportion: 0.0,
        request_distribution: RequestDistribution::Zipfian,
        ..WorkloadConfig::default()
    }
}

/// YCSB Workload B — read mostly: 95% reads, 5% updates, zipfian.
pub fn ycsb_b() -> WorkloadConfig {
    WorkloadConfig {
        read_proportion: 0.95,
        update_proportion: 0.05,
        request_distribution: RequestDistribution::Zipfian,
        ..WorkloadConfig::default()
    }
}

/// YCSB Workload C — read only: 100% reads, zipfian.
pub fn ycsb_c() -> WorkloadConfig {
    WorkloadConfig {
        read_proportion: 1.0,
        update_proportion: 0.0,
        request_distribution: RequestDistribution::Zipfian,
        ..WorkloadConfig::default()
    }
}

/// YCSB Workload D — read latest: 95% reads, 5% inserts, latest distribution.
pub fn ycsb_d() -> WorkloadConfig {
    WorkloadConfig {
        read_proportion: 0.95,
        update_proportion: 0.0,
        insert_proportion: 0.05,
        request_distribution: RequestDistribution::Latest,
        ..WorkloadConfig::default()
    }
}

/// YCSB Workload E — short ranges: 95% scans, 5% inserts, zipfian.
pub fn ycsb_e() -> WorkloadConfig {
    WorkloadConfig {
        read_proportion: 0.0,
        update_proportion: 0.0,
        insert_proportion: 0.05,
        scan_proportion: 0.95,
        request_distribution: RequestDistribution::Zipfian,
        max_scan_length: 100,
        ..WorkloadConfig::default()
    }
}

/// YCSB Workload F — read-modify-write: 50% reads, 50% RMW, zipfian.
pub fn ycsb_f() -> WorkloadConfig {
    WorkloadConfig {
        read_proportion: 0.5,
        update_proportion: 0.0,
        read_modify_write_proportion: 0.5,
        request_distribution: RequestDistribution::Zipfian,
        ..WorkloadConfig::default()
    }
}

/// Look up a core-workload preset by its YCSB letter (`"a"`–`"f"`, case
/// insensitive). This is the hook experiment binaries use for a
/// `--workload <letter>` override, so scenario sweeps can run the
/// latest-distribution (D) and short-scan (E) workloads next to the paper's
/// A-mix without code changes.
pub fn by_name(name: &str) -> Option<WorkloadConfig> {
    match name.to_ascii_lowercase().as_str() {
        "a" => Some(ycsb_a()),
        "b" => Some(ycsb_b()),
        "c" => Some(ycsb_c()),
        "d" => Some(ycsb_d()),
        "e" => Some(ycsb_e()),
        "f" => Some(ycsb_f()),
        _ => None,
    }
}

/// A preset resized to the given record and operation counts (the mix,
/// distribution and scan bounds are kept).
pub fn sized(preset: WorkloadConfig, record_count: u64, operation_count: u64) -> WorkloadConfig {
    WorkloadConfig {
        record_count,
        operation_count,
        ..preset
    }
}

/// The paper's "heavy read-update workload from YCSB" scaled to the
/// requested record and operation counts.
///
/// §IV of the paper uses a heavy read-update mix (a YCSB workload-A-style
/// 50/50 mix) with the data-set size and operation count varying per
/// experiment; this helper fills those two knobs.
pub fn paper_heavy_read_update(record_count: u64, operation_count: u64) -> WorkloadConfig {
    WorkloadConfig {
        record_count,
        operation_count,
        ..ycsb_a()
    }
}

/// Harmony Grid'5000 experiment workload (§IV-A): 14.3 GB data set,
/// 3 million operations. With YCSB's 1 KB records, 14.3 GB ≈ 15 M records.
/// `scale` in (0, 1] shrinks both counts proportionally so the experiment can
/// run quickly on a laptop while preserving the rates that drive Harmony.
pub fn harmony_grid5000_workload(scale: f64) -> WorkloadConfig {
    scaled(15_000_000, 3_000_000, scale)
}

/// Harmony EC2 experiment workload (§IV-A): 23.85 GB ≈ 25 M records,
/// 5 million operations.
pub fn harmony_ec2_workload(scale: f64) -> WorkloadConfig {
    scaled(25_000_000, 5_000_000, scale)
}

/// Cost experiments workload (§IV-B): 23.84 GB ≈ 25 M records, 10 million
/// operations.
pub fn cost_workload(scale: f64) -> WorkloadConfig {
    scaled(25_000_000, 10_000_000, scale)
}

fn scaled(records: u64, ops: u64, scale: f64) -> WorkloadConfig {
    let scale = scale.clamp(1e-6, 1.0);
    paper_heavy_read_update(
        ((records as f64 * scale) as u64).max(100),
        ((ops as f64 * scale) as u64).max(100),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_are_valid() {
        for cfg in [ycsb_a(), ycsb_b(), ycsb_c(), ycsb_d(), ycsb_e(), ycsb_f()] {
            assert!(cfg.validate().is_ok(), "{cfg:?}");
        }
    }

    #[test]
    fn preset_mixes_match_ycsb_definitions() {
        assert_eq!(ycsb_a().read_proportion, 0.5);
        assert_eq!(ycsb_a().update_proportion, 0.5);
        assert_eq!(ycsb_b().read_proportion, 0.95);
        assert_eq!(ycsb_c().read_proportion, 1.0);
        assert_eq!(ycsb_d().insert_proportion, 0.05);
        assert_eq!(ycsb_d().request_distribution, RequestDistribution::Latest);
        assert_eq!(ycsb_e().scan_proportion, 0.95);
        assert_eq!(ycsb_f().read_modify_write_proportion, 0.5);
    }

    #[test]
    fn by_name_resolves_every_letter() {
        for name in ["a", "b", "c", "d", "e", "f", "D", "E"] {
            let cfg = by_name(name).unwrap_or_else(|| panic!("preset {name}"));
            assert!(cfg.validate().is_ok());
        }
        assert_eq!(by_name("d").unwrap(), ycsb_d());
        assert_eq!(by_name("E").unwrap(), ycsb_e());
        assert!(by_name("g").is_none());
        assert!(by_name("").is_none());
    }

    #[test]
    fn sized_keeps_the_mix() {
        let cfg = sized(ycsb_e(), 5_000, 20_000);
        assert_eq!(cfg.record_count, 5_000);
        assert_eq!(cfg.operation_count, 20_000);
        assert_eq!(cfg.scan_proportion, 0.95);
        assert_eq!(cfg.max_scan_length, 100);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn paper_workloads_scale() {
        let full = harmony_ec2_workload(1.0);
        assert_eq!(full.record_count, 25_000_000);
        assert_eq!(full.operation_count, 5_000_000);
        // 25 M × 1 KB ≈ 23.8 GB, matching the paper's 23.85 GB data set.
        assert!((full.dataset_bytes() as f64 / 1e9 - 25.0).abs() < 0.5);

        let small = harmony_ec2_workload(0.001);
        assert_eq!(small.record_count, 25_000);
        assert_eq!(small.operation_count, 5_000);
        assert!(small.validate().is_ok());

        let g5k = harmony_grid5000_workload(1.0);
        assert_eq!(g5k.operation_count, 3_000_000);
        let cost = cost_workload(1.0);
        assert_eq!(cost.operation_count, 10_000_000);
    }

    #[test]
    fn scale_is_clamped() {
        let tiny = cost_workload(0.0);
        assert!(tiny.record_count >= 100);
        assert!(tiny.validate().is_ok());
    }
}
