//! Virtual time for the discrete-event simulation.
//!
//! All simulated timestamps are expressed in **microseconds** since the start
//! of the simulation. Microsecond resolution is sufficient to model
//! intra-datacenter latencies (hundreds of microseconds) and coarse enough
//! that a `u64` never overflows for any realistic experiment length
//! (≈ 584 000 years).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, measured in microseconds from simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of virtual time, measured in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from fractional seconds (saturating at zero for negatives).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e6).round() as u64)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier` (saturating at zero).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional milliseconds (saturating at zero for negatives).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1e3).round() as u64)
    }

    /// Construct from fractional seconds (saturating at zero for negatives).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative floating-point factor.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}µs", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1);
        let d = SimDuration::from_millis(500);
        assert_eq!((t + d).as_micros(), 1_500_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), SimDuration::ZERO, "saturates at zero");
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(2.5), SimDuration::from_micros(25_000));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12µs");
        assert_eq!(format!("{}", SimDuration::from_micros(1_500)), "1.500ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn ordering_and_sum() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        let total: SimDuration = [SimDuration::from_millis(1), SimDuration::from_millis(2)]
            .into_iter()
            .sum();
        assert_eq!(total, SimDuration::from_millis(3));
    }
}
