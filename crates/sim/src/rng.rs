//! Deterministic random number generation for reproducible simulations.
//!
//! Every stochastic component of the simulator draws from a [`SimRng`], a
//! small, fast, splittable PRNG (xoshiro256** seeded through SplitMix64).
//! Determinism matters here: the same seed must produce the same event
//! ordering, the same workload and the same staleness measurements on every
//! run, so experiments and property tests are exactly reproducible.
//!
//! `SimRng` implements [`rand::RngCore`] so it can be plugged into any
//! distribution from `rand`/`rand_distr`.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 step, used to expand a single `u64` seed into a full state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, splittable xoshiro256** PRNG.
///
/// Not cryptographically secure — it is a simulation RNG. The generator is
/// *splittable*: [`SimRng::split`] derives an independent child stream, which
/// lets each simulated component (workload generator, per-link latency
/// sampler, failure injector, …) own its own stream so that adding draws in
/// one component does not perturb any other component.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            SimRng::new(0xDEAD_BEEF_CAFE_F00D)
        } else {
            SimRng { s }
        }
    }

    /// Derive an independent child generator.
    ///
    /// The child is seeded from the parent's output, and the parent advances,
    /// so successive splits yield distinct streams.
    pub fn split(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// The deterministic per-shard stream family of the parallel sharded
    /// engine: `shard_stream(seed, shard)` mixes the shard index into the
    /// master seed through SplitMix64, so each shard owns an independent
    /// stream that is a pure function of `(seed, shard)` — reproducible at
    /// any worker-thread count, and stable as long as the shard *count*
    /// (and therefore the shard map) is stable.
    ///
    /// This family is deliberately distinct from [`SimRng::new`]: the serial
    /// `shards=1` engine keeps consuming `new(seed)` unchanged (the stream
    /// the golden digests pin), while `shards>1` runs draw from
    /// `shard_stream(seed, 0..=shards)` — stream `shards` is the control
    /// plane's (repair timers, fault ticks).
    pub fn shard_stream(master_seed: u64, shard: u64) -> SimRng {
        let mut sm = master_seed;
        let base = splitmix64(&mut sm);
        let mut mix = base ^ shard.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(splitmix64(&mut mix))
    }

    /// Derive a child generator for a named component. The same
    /// `(seed, label)` pair always yields the same stream regardless of how
    /// many other splits were performed — useful to keep component streams
    /// stable as the simulator evolves.
    pub fn fork_labeled(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a 64 offset basis
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SimRng::new(self.s[0] ^ h.rotate_left(17))
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection method (bias-free).
        let mut x = self.next();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_bounded(hi - lo + 1)
    }

    /// Bernoulli draw with probability `p` of returning `true`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given rate (mean `1/rate`).
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        let u = 1.0 - self.next_f64(); // avoid ln(0)
        -u.ln() / rate
    }

    /// Pick a uniformly random element index from a slice length.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.next_bounded(len as u64) as usize
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..len` (k ≤ len), in random order.
    pub fn sample_indices(&mut self, len: usize, k: usize) -> Vec<usize> {
        debug_assert!(k <= len);
        // Partial Fisher–Yates over an index vector; O(len) setup, fine for
        // the small replica sets we sample in the simulator.
        let mut idx: Vec<usize> = (0..len).collect();
        for i in 0..k {
            let j = i + self.next_bounded((len - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SimRng::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        SimRng::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        let mut c1 = parent1.split();
        let mut c2 = parent2.split();
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // Parent and child streams should not be identical.
        let mut p = SimRng::new(7);
        let mut c = p.clone().split();
        let same = (0..100).filter(|_| p.next_u64() == c.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn labeled_fork_is_stable() {
        let root = SimRng::new(99);
        let mut a = root.fork_labeled("workload");
        let mut b = root.fork_labeled("workload");
        let mut c = root.fork_labeled("network");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_respects_bound() {
        let mut r = SimRng::new(5);
        for bound in [1u64, 2, 3, 7, 100, 1 << 33] {
            for _ in 0..500 {
                assert!(r.next_bounded(bound) < bound);
            }
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut r = SimRng::new(11);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.next_bounded(10) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 10.0;
            assert!((c as f64 - expected).abs() < expected * 0.1);
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = SimRng::new(13);
        let rate = 4.0;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = SimRng::new(17);
        for _ in 0..200 {
            let s = r.sample_indices(10, 4);
            assert_eq!(s.len(), 4);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "indices must be distinct: {s:?}");
            assert!(s.iter().all(|&i| i < 10));
        }
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut r = SimRng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = SimRng::new(29);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
