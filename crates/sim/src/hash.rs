//! Fast, DoS-oblivious hashing for simulator-internal maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which is the right
//! call for hash-flooding resistance but costs tens of nanoseconds per
//! operation — noticeable when the cluster simulator performs several map
//! lookups per simulated event. Simulation keys are internal (record keys,
//! version numbers), never attacker-controlled, so the simulator uses the
//! FxHash multiply-rotate mix (the rustc hash): one multiply per 8 input
//! bytes, dependency-free.

use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant of FxHash (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash / rustc-hash hasher: `hash = (rotl5(hash) ^ word) * SEED` per
/// 8-byte word. Not cryptographic, not flood-resistant — simulation only.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`] — drop-in for simulator-internal maps.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_values() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for k in 0..10_000u64 {
            m.insert(k, k * 3);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m.get(&k), Some(&(k * 3)));
        }
        for k in (0..10_000u64).step_by(2) {
            assert_eq!(m.remove(&k), Some(k * 3));
        }
        assert_eq!(m.len(), 5_000);
    }

    #[test]
    fn hashes_are_deterministic_and_spread() {
        let hash_one = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(hash_one(42), hash_one(42));
        // Low bits must differ across consecutive keys (bucket selection).
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for k in 0..1024u64 {
            low_bits.insert(hash_one(k) & 0x3FF);
        }
        assert!(
            low_bits.len() > 500,
            "only {} distinct buckets",
            low_bits.len()
        );
    }

    #[test]
    fn byte_stream_matches_word_writes_for_exact_words() {
        let mut a = FxHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}
