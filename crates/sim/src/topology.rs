//! Cluster topology and network latency model.
//!
//! A [`Topology`] places simulated nodes into datacenters (availability
//! zones / Grid'5000 sites) and regions, and a [`NetworkModel`] maps each
//! pair of nodes to a latency distribution according to the *link class*
//! connecting them (same node, same datacenter, different datacenters of the
//! same region, or different regions).

use crate::distributions::DelayDistribution;
use crate::rng::SimRng;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a simulated storage node.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of a datacenter (an EC2 availability zone or a Grid'5000 site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DcId(pub u16);

impl fmt::Display for DcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dc{}", self.0)
    }
}

/// Identifier of a geographical region (e.g. `us-east-1`, or "France").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u16);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region{}", self.0)
    }
}

/// Description of one datacenter in the topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Datacenter {
    /// The datacenter's id.
    pub id: DcId,
    /// Human-readable name (e.g. `us-east-1a`, `rennes`).
    pub name: String,
    /// The region this datacenter belongs to.
    pub region: RegionId,
}

/// Classification of the network path between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Same node (loopback).
    Local,
    /// Different nodes in the same datacenter.
    IntraDc,
    /// Different datacenters within the same region (e.g. two availability
    /// zones of `us-east-1`, or two Grid'5000 sites connected by Renater).
    InterDc,
    /// Different regions (true wide-area path).
    InterRegion,
}

impl fmt::Display for LinkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkClass::Local => "local",
            LinkClass::IntraDc => "intra-dc",
            LinkClass::InterDc => "inter-dc",
            LinkClass::InterRegion => "inter-region",
        };
        f.write_str(s)
    }
}

/// Placement of every node into a datacenter/region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    datacenters: Vec<Datacenter>,
    /// `node_dc[i]` is the datacenter of node `i`.
    node_dc: Vec<DcId>,
}

impl Topology {
    /// Build a topology from datacenter descriptions and a per-node placement.
    ///
    /// # Panics
    /// Panics if a node references an unknown datacenter.
    pub fn new(datacenters: Vec<Datacenter>, node_dc: Vec<DcId>) -> Self {
        for dc in &node_dc {
            assert!(
                datacenters.iter().any(|d| d.id == *dc),
                "node placed in unknown datacenter {dc}"
            );
        }
        Topology {
            datacenters,
            node_dc,
        }
    }

    /// A single-datacenter topology with `nodes` nodes — the simplest setup.
    pub fn single_dc(nodes: usize) -> Self {
        let dc = Datacenter {
            id: DcId(0),
            name: "dc0".to_string(),
            region: RegionId(0),
        };
        Topology::new(vec![dc], vec![DcId(0); nodes])
    }

    /// A topology that spreads `nodes` nodes round-robin over `dc_names`
    /// datacenters, all placed in the given per-datacenter regions.
    ///
    /// `dcs` is a list of `(name, region)` pairs.
    pub fn spread(nodes: usize, dcs: &[(&str, RegionId)]) -> Self {
        assert!(!dcs.is_empty());
        let datacenters: Vec<Datacenter> = dcs
            .iter()
            .enumerate()
            .map(|(i, (name, region))| Datacenter {
                id: DcId(i as u16),
                name: (*name).to_string(),
                region: *region,
            })
            .collect();
        let node_dc = (0..nodes).map(|i| DcId((i % dcs.len()) as u16)).collect();
        Topology::new(datacenters, node_dc)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_dc.len()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_dc.len() as u32).map(NodeId)
    }

    /// The datacenters of the topology.
    pub fn datacenters(&self) -> &[Datacenter] {
        &self.datacenters
    }

    /// Number of datacenters.
    pub fn dc_count(&self) -> usize {
        self.datacenters.len()
    }

    /// Datacenter of a node.
    pub fn dc_of(&self, node: NodeId) -> DcId {
        self.node_dc[node.0 as usize]
    }

    /// Region of a node.
    pub fn region_of(&self, node: NodeId) -> RegionId {
        let dc = self.dc_of(node);
        self.datacenters
            .iter()
            .find(|d| d.id == dc)
            .map(|d| d.region)
            .expect("datacenter exists by construction")
    }

    /// All nodes located in `dc`.
    pub fn nodes_in_dc(&self, dc: DcId) -> Vec<NodeId> {
        self.node_dc
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == dc)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Number of nodes per datacenter.
    pub fn dc_sizes(&self) -> BTreeMap<DcId, usize> {
        let mut m = BTreeMap::new();
        for dc in &self.node_dc {
            *m.entry(*dc).or_insert(0) += 1;
        }
        m
    }

    /// Classify the network path between two nodes.
    pub fn link_class(&self, a: NodeId, b: NodeId) -> LinkClass {
        if a == b {
            return LinkClass::Local;
        }
        let (dca, dcb) = (self.dc_of(a), self.dc_of(b));
        if dca == dcb {
            return LinkClass::IntraDc;
        }
        if self.region_of(a) == self.region_of(b) {
            LinkClass::InterDc
        } else {
            LinkClass::InterRegion
        }
    }
}

/// Maps link classes to latency distributions (one-way message delay).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Loopback delay (message to self), normally (near-)zero.
    pub local: DelayDistribution,
    /// Delay between two nodes of the same datacenter.
    pub intra_dc: DelayDistribution,
    /// Delay between two datacenters of the same region.
    pub inter_dc: DelayDistribution,
    /// Delay between regions.
    pub inter_region: DelayDistribution,
}

impl NetworkModel {
    /// A LAN-only model: sub-millisecond everywhere. Useful for unit tests.
    pub fn lan() -> Self {
        NetworkModel {
            local: DelayDistribution::constant(0.02),
            intra_dc: DelayDistribution::wan(0.3, 0.1),
            inter_dc: DelayDistribution::wan(0.3, 0.1),
            inter_region: DelayDistribution::wan(0.3, 0.1),
        }
    }

    /// An EC2-multi-AZ-like model: ~0.5 ms intra-AZ, ~1.5 ms inter-AZ,
    /// ~80 ms inter-region.
    pub fn ec2_like() -> Self {
        NetworkModel {
            local: DelayDistribution::constant(0.02),
            intra_dc: DelayDistribution::LogNormal {
                median_ms: 0.5,
                sigma: 0.35,
            },
            inter_dc: DelayDistribution::LogNormal {
                median_ms: 1.6,
                sigma: 0.35,
            },
            inter_region: DelayDistribution::wan(75.0, 8.0),
        }
    }

    /// A Grid'5000-like model: 10-gigabit LAN inside a site, ~10–20 ms
    /// between sites over Renater.
    pub fn grid5000_like() -> Self {
        NetworkModel {
            local: DelayDistribution::constant(0.02),
            intra_dc: DelayDistribution::LogNormal {
                median_ms: 0.25,
                sigma: 0.3,
            },
            inter_dc: DelayDistribution::wan(12.0, 3.0),
            inter_region: DelayDistribution::wan(12.0, 3.0),
        }
    }

    /// The distribution used for a given link class.
    pub fn for_class(&self, class: LinkClass) -> &DelayDistribution {
        match class {
            LinkClass::Local => &self.local,
            LinkClass::IntraDc => &self.intra_dc,
            LinkClass::InterDc => &self.inter_dc,
            LinkClass::InterRegion => &self.inter_region,
        }
    }

    /// Sample the one-way delay between two nodes of `topology`.
    pub fn sample(
        &self,
        topology: &Topology,
        from: NodeId,
        to: NodeId,
        rng: &mut SimRng,
    ) -> SimDuration {
        self.for_class(topology.link_class(from, to)).sample(rng)
    }

    /// Mean one-way delay between two nodes, in milliseconds.
    pub fn mean_ms(&self, topology: &Topology, from: NodeId, to: NodeId) -> f64 {
        self.for_class(topology.link_class(from, to)).mean_ms()
    }

    /// Return a copy with every distribution scaled by `factor` (e.g. to
    /// model a degraded network).
    pub fn scaled(&self, factor: f64) -> Self {
        NetworkModel {
            local: self.local.scaled(factor),
            intra_dc: self.intra_dc.scaled(factor),
            inter_dc: self.inter_dc.scaled(factor),
            inter_region: self.inter_region.scaled(factor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_dc_links_are_intra() {
        let t = Topology::single_dc(4);
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.dc_count(), 1);
        assert_eq!(t.link_class(NodeId(0), NodeId(0)), LinkClass::Local);
        assert_eq!(t.link_class(NodeId(0), NodeId(3)), LinkClass::IntraDc);
    }

    #[test]
    fn spread_round_robins_nodes() {
        let t = Topology::spread(10, &[("az-a", RegionId(0)), ("az-b", RegionId(0))]);
        assert_eq!(t.dc_count(), 2);
        let sizes = t.dc_sizes();
        assert_eq!(sizes[&DcId(0)], 5);
        assert_eq!(sizes[&DcId(1)], 5);
        assert_eq!(t.dc_of(NodeId(0)), DcId(0));
        assert_eq!(t.dc_of(NodeId(1)), DcId(1));
        assert_eq!(t.link_class(NodeId(0), NodeId(2)), LinkClass::IntraDc);
        assert_eq!(t.link_class(NodeId(0), NodeId(1)), LinkClass::InterDc);
    }

    #[test]
    fn regions_distinguish_inter_region_links() {
        let t = Topology::spread(
            4,
            &[("us-east-1a", RegionId(0)), ("eu-west-1a", RegionId(1))],
        );
        assert_eq!(t.link_class(NodeId(0), NodeId(1)), LinkClass::InterRegion);
        assert_eq!(t.region_of(NodeId(0)), RegionId(0));
        assert_eq!(t.region_of(NodeId(1)), RegionId(1));
    }

    #[test]
    fn nodes_in_dc_lists_members() {
        let t = Topology::spread(
            6,
            &[("a", RegionId(0)), ("b", RegionId(0)), ("c", RegionId(0))],
        );
        assert_eq!(t.nodes_in_dc(DcId(1)), vec![NodeId(1), NodeId(4)]);
    }

    #[test]
    #[should_panic(expected = "unknown datacenter")]
    fn unknown_dc_panics() {
        Topology::new(
            vec![Datacenter {
                id: DcId(0),
                name: "a".into(),
                region: RegionId(0),
            }],
            vec![DcId(5)],
        );
    }

    #[test]
    fn network_model_orders_link_classes() {
        let t = Topology::spread(
            4,
            &[("us-east-1a", RegionId(0)), ("eu-west-1a", RegionId(1))],
        );
        let net = NetworkModel::ec2_like();
        let intra = net.mean_ms(&t, NodeId(0), NodeId(2));
        let inter_region = net.mean_ms(&t, NodeId(0), NodeId(1));
        assert!(intra < inter_region);
        let mut rng = SimRng::new(1);
        let d = net.sample(&t, NodeId(0), NodeId(1), &mut rng);
        assert!(d >= SimDuration::from_millis(50));
    }

    #[test]
    fn grid5000_intersite_is_slower_than_lan() {
        let net = NetworkModel::grid5000_like();
        assert!(net.inter_dc.mean_ms() > net.intra_dc.mean_ms() * 10.0);
    }

    #[test]
    fn scaling_network_model() {
        let net = NetworkModel::lan().scaled(2.0);
        assert!((net.intra_dc.mean_ms() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn topology_serde_round_trip() {
        let t = Topology::spread(5, &[("a", RegionId(0)), ("b", RegionId(0))]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
