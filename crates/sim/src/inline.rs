//! A tiny inline vector for hot-path collections of `Copy` items.
//!
//! The cluster simulator keeps a handful of node ids per in-flight operation
//! (the replicas a read contacted). Replication factors are almost always
//! ≤ 8, so the list lives inline in the owning struct; the rare larger set
//! spills to the heap transparently. This removes one heap allocation per
//! simulated read.

/// Inline storage capacity before spilling to the heap.
pub const INLINE_CAP: usize = 8;

/// A vector of `Copy` items that stores up to [`INLINE_CAP`] elements inline.
#[derive(Debug, Clone)]
pub struct InlineVec<T: Copy + Default> {
    len: u32,
    buf: [T; INLINE_CAP],
    spill: Vec<T>,
}

impl<T: Copy + Default> Default for InlineVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default> InlineVec<T> {
    /// An empty vector (no allocation).
    pub fn new() -> Self {
        InlineVec {
            len: 0,
            buf: [T::default(); INLINE_CAP],
            spill: Vec::new(),
        }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.len as usize + self.spill.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append an element.
    pub fn push(&mut self, value: T) {
        if (self.len as usize) < INLINE_CAP {
            self.buf[self.len as usize] = value;
            self.len += 1;
        } else {
            self.spill.push(value);
        }
    }

    /// Copy every element of `src` into the vector.
    pub fn extend_from_slice(&mut self, src: &[T]) {
        for &v in src {
            self.push(v);
        }
    }

    /// Remove all elements, keeping any spill capacity.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// The element at `idx` (insertion order), if present.
    pub fn get(&self, idx: usize) -> Option<&T> {
        if idx < self.len as usize {
            Some(&self.buf[idx])
        } else {
            self.spill.get(idx - self.len as usize)
        }
    }

    /// The mutable element at `idx` (insertion order), if present.
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut T> {
        if idx < self.len as usize {
            Some(&mut self.buf[idx])
        } else {
            self.spill.get_mut(idx - self.len as usize)
        }
    }

    /// Iterate over the elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[..self.len as usize]
            .iter()
            .chain(self.spill.iter())
    }

    /// Iterate mutably over the elements in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.buf[..self.len as usize]
            .iter_mut()
            .chain(self.spill.iter_mut())
    }
}

impl<T: Copy + Default> FromIterator<T> for InlineVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = InlineVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u32> = InlineVec::new();
        for i in 0..INLINE_CAP as u32 {
            v.push(i);
        }
        assert_eq!(v.len(), INLINE_CAP);
        assert!(v.spill.is_empty(), "no heap allocation under the cap");
        let collected: Vec<u32> = v.iter().copied().collect();
        assert_eq!(collected, (0..INLINE_CAP as u32).collect::<Vec<_>>());
    }

    #[test]
    fn spills_transparently_beyond_capacity() {
        let v: InlineVec<u32> = (0..20u32).collect();
        assert_eq!(v.len(), 20);
        let collected: Vec<u32> = v.iter().copied().collect();
        assert_eq!(collected, (0..20u32).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_access_spans_inline_and_spill() {
        let mut v: InlineVec<u32> = (0..12u32).collect();
        assert_eq!(v.get(0), Some(&0));
        assert_eq!(v.get(7), Some(&7), "last inline element");
        assert_eq!(v.get(8), Some(&8), "first spilled element");
        assert_eq!(v.get(11), Some(&11));
        assert_eq!(v.get(12), None);
        *v.get_mut(3).unwrap() = 30;
        *v.get_mut(10).unwrap() = 100;
        let collected: Vec<u32> = v.iter().copied().collect();
        assert_eq!(collected, vec![0, 1, 2, 30, 4, 5, 6, 7, 8, 9, 100, 11]);
    }

    #[test]
    fn clear_resets() {
        let mut v: InlineVec<u32> = (0..20u32).collect();
        v.clear();
        assert!(v.is_empty());
        v.push(7);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![7]);
    }
}
