//! Event queue and simulation clock.
//!
//! The engine is a classic calendar/priority-queue discrete-event simulator:
//! events carry a firing time, the queue pops them in time order (FIFO within
//! the same instant thanks to a monotonically increasing sequence number) and
//! the clock jumps to each event's timestamp.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// A heap entry: the scheduling key plus the slot of the event payload.
///
/// The firing time and the insertion sequence number are packed into one
/// `u128` key (`time << 64 | seq`), so the heap's sift comparisons are a
/// single integer compare instead of a two-field lexicographic chain — this
/// is the hottest comparison in the whole simulator. The event payload
/// itself lives in a side slab and is written exactly once: sift operations
/// move these small fixed-size entries, not the (potentially much larger)
/// user event type.
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    key: u128,
    slot: u32,
}

#[inline]
const fn pack(time: SimTime, seq: u64) -> u128 {
    ((time.as_micros() as u128) << 64) | seq as u128
}

#[inline]
const fn unpack_time(key: u128) -> SimTime {
    SimTime::from_micros((key >> 64) as u64)
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, breaking ties by insertion order (stable / deterministic).
        other.key.cmp(&self.key)
    }
}

/// A deterministic discrete-event queue with an embedded virtual clock.
///
/// The queue guarantees:
/// * events are delivered in non-decreasing time order;
/// * events scheduled for the same instant are delivered in the order they
///   were scheduled (FIFO), which keeps simulations deterministic;
/// * scheduling an event in the past is clamped to "now" (a common and safe
///   convention for zero-latency local interactions).
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled>,
    /// Event payloads addressed by `Scheduled::slot`; vacant slots are
    /// recycled through `free`.
    events: Vec<Option<E>>,
    free: Vec<u32>,
    /// The FIFO lane: events whose firing times are non-decreasing in
    /// scheduling order (fixed-delay timeouts, mostly). Kept out of the heap
    /// entirely — O(1) scheduling and popping, and the heap stays small
    /// enough for its sift path to remain cache-resident. Entries are
    /// `(packed key, event)`, sorted by construction.
    fifo: VecDeque<(u128, E)>,
    /// The bulk lane: a second sorted FIFO for pre-sorted open-loop arrival
    /// streams loaded up front ([`EventQueue::bulk_push_sorted`]). A separate
    /// lane because bulk loads front-run the whole simulated timeline — if
    /// arrivals shared the timeout lane, every later timeout (scheduled at
    /// `now + constant` ≪ the last arrival) would violate that lane's
    /// sortedness and fall back to the heap, forfeiting the O(1) path the
    /// lane exists for.
    bulk: VecDeque<(u128, E)>,
    now: SimTime,
    next_seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            events: Vec::new(),
            free: Vec::new(),
            fifo: VecDeque::new(),
            bulk: VecDeque::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len() + self.fifo.len() + self.bulk.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.fifo.is_empty() && self.bulk.is_empty()
    }

    /// Total number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule `event` to fire at absolute time `at`. Times in the past are
    /// clamped to the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let time = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.events[slot as usize] = Some(event);
                slot
            }
            None => {
                let slot = u32::try_from(self.events.len()).expect("more than 2^32 pending events");
                self.events.push(Some(event));
                slot
            }
        };
        self.heap.push(Scheduled {
            key: pack(time, seq),
            slot,
        });
    }

    /// Schedule `event` to fire `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedule `event` at `at` on the FIFO lane: for event streams whose
    /// firing times never decrease across calls (the classic case is a
    /// fixed timeout delay added to the advancing clock). Such events bypass
    /// the heap for O(1) scheduling and popping; ordering relative to
    /// heap-scheduled events at the same instant is still exact FIFO, since
    /// both lanes share the sequence counter.
    ///
    /// An out-of-order `at` (earlier than the last FIFO event) falls back to
    /// the heap lane — still delivered in correct time order, just without
    /// the O(1) fast path.
    pub fn schedule_fifo(&mut self, at: SimTime, event: E) {
        let time = at.max(self.now);
        if self
            .fifo
            .back()
            .is_some_and(|&(back, _)| unpack_time(back) > time)
        {
            // Would break the lane's sortedness; the heap handles any order.
            self.schedule_at(time, event);
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.fifo.push_back((pack(time, seq), event));
    }

    /// Schedule `event` to fire immediately (at the current clock, after any
    /// events already scheduled for this instant).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Append `event` at `at` to the **bulk lane**: the O(1) path for
    /// pre-sorted open-loop arrival streams loaded before (or during) a run.
    ///
    /// The caller guarantees firing times are non-decreasing across bulk
    /// pushes; producers derive their schedule from a sorted arrival-time
    /// iterator, so a violation is a logic error upstream, not an input to
    /// tolerate — the method **panics** rather than silently degrading to
    /// the heap. Delivery order relative to the other lanes is exact global
    /// FIFO per instant, since all three lanes share one sequence counter.
    ///
    /// # Panics
    /// Panics if `at` precedes the current clock or the previously pushed
    /// bulk event.
    pub fn bulk_push_sorted(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "bulk lane: arrival at {}us precedes the clock ({}us)",
            at.as_micros(),
            self.now.as_micros()
        );
        if let Some(&(back, _)) = self.bulk.back() {
            assert!(
                at >= unpack_time(back),
                "bulk lane: arrival at {}us precedes the previous arrival ({}us); \
                 bulk loads require a sorted arrival stream",
                at.as_micros(),
                unpack_time(back).as_micros()
            );
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.bulk.push_back((pack(at, seq), event));
    }

    /// Bulk-load a pre-sorted stream of `(time, event)` pairs through the
    /// bulk lane (see [`EventQueue::bulk_push_sorted`]).
    ///
    /// # Panics
    /// Panics if the stream's firing times are not non-decreasing.
    pub fn bulk_load_sorted(&mut self, items: impl IntoIterator<Item = (SimTime, E)>) {
        let iter = items.into_iter();
        let (lower, _) = iter.size_hint();
        self.bulk.reserve(lower);
        for (at, event) in iter {
            self.bulk_push_sorted(at, event);
        }
    }

    /// The packed key of the next pending event, if any (minimum over the
    /// heap, FIFO and bulk lanes).
    #[inline]
    fn peek_key(&self) -> Option<u128> {
        let mut key = self.heap.peek().map(|s| s.key);
        for lane_key in [
            self.fifo.front().map(|&(k, _)| k),
            self.bulk.front().map(|&(k, _)| k),
        ]
        .into_iter()
        .flatten()
        {
            key = Some(key.map_or(lane_key, |k: u128| k.min(lane_key)));
        }
        key
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.peek_key().map(unpack_time)
    }

    /// Pop the next event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // Pick the earliest of the three lanes; the shared sequence counter
        // makes the packed keys totally ordered (and unique) across all.
        let next = self.peek_key()?;
        let fifo_next = self.fifo.front().is_some_and(|&(k, _)| k == next);
        let (key, event) = if fifo_next {
            self.fifo.pop_front().expect("fifo front exists")
        } else if self.bulk.front().is_some_and(|&(k, _)| k == next) {
            self.bulk.pop_front().expect("bulk front exists")
        } else {
            let s = self.heap.pop().expect("heap top exists");
            let event = self.events[s.slot as usize]
                .take()
                .expect("heap entry addresses a live event");
            self.free.push(s.slot);
            (s.key, event)
        };
        let time = unpack_time(key);
        debug_assert!(time >= self.now, "time must be monotonic");
        self.now = time;
        self.processed += 1;
        Some((time, event))
    }

    /// Pop the next event only if it fires at or before `deadline`. This is
    /// the fused peek-then-pop used by the run loops: the peek is a single
    /// O(1) key read, and the heap sift happens at most once.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_key() {
            Some(key) if unpack_time(key) <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Advance the clock to `at` without processing events. Panics in debug
    /// builds if events earlier than `at` are still pending (that would break
    /// causality).
    pub fn advance_to(&mut self, at: SimTime) {
        debug_assert!(
            self.peek_time().is_none_or(|t| t >= at),
            "cannot skip over pending events"
        );
        if at > self.now {
            self.now = at;
        }
    }

    /// Drop all pending events (the clock is left untouched).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.events.clear();
        self.free.clear();
        self.fifo.clear();
        self.bulk.clear();
    }
}

/// Outcome of driving a queue with [`run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The queue drained completely.
    Drained,
    /// The time limit was reached with events still pending.
    DeadlineReached,
    /// The event-count limit was reached with events still pending.
    EventLimitReached,
    /// The handler requested an early stop.
    Stopped,
}

/// Control value returned by an event handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Control {
    /// Keep processing events.
    #[default]
    Continue,
    /// Stop the run after this event.
    Stop,
}

/// Drive `queue` by repeatedly popping events and passing them to `handler`
/// until the queue drains, `deadline` is passed, `max_events` are processed,
/// or the handler returns [`Control::Stop`].
///
/// The handler receives the queue itself so it can schedule follow-up events.
pub fn run<E, F>(
    queue: &mut EventQueue<E>,
    deadline: SimTime,
    max_events: u64,
    mut handler: F,
) -> RunOutcome
where
    F: FnMut(&mut EventQueue<E>, SimTime, E) -> Control,
{
    let mut count = 0u64;
    loop {
        if count >= max_events {
            return RunOutcome::EventLimitReached;
        }
        // Fused peek/pop: one heap access decides drain-vs-deadline-vs-fire.
        let Some((t, ev)) = queue.pop_before(deadline) else {
            return if queue.is_empty() {
                RunOutcome::Drained
            } else {
                RunOutcome::DeadlineReached
            };
        };
        count += 1;
        if handler(queue, t, ev) == Control::Stop {
            return RunOutcome::Stopped;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), "c");
        q.schedule_at(SimTime::from_millis(10), "a");
        q.schedule_at(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn past_schedules_are_clamped() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "later");
        q.pop();
        q.schedule_at(SimTime::from_secs(1), "past");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "past");
        assert_eq!(t, SimTime::from_secs(10), "clamped to now");
    }

    #[test]
    fn schedule_in_uses_relative_delay() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(2), "first");
        q.pop();
        q.schedule_in(SimDuration::from_secs(3), "second");
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs(5));
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), 1);
        q.schedule_at(SimTime::from_secs(5), 2);
        assert_eq!(q.pop_before(SimTime::from_secs(2)).unwrap().1, 1);
        assert!(q.pop_before(SimTime::from_secs(2)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn run_until_drained() {
        let mut q = EventQueue::new();
        for i in 0..5u32 {
            q.schedule_at(SimTime::from_secs(i as u64), i);
        }
        let mut seen = vec![];
        let outcome = run(&mut q, SimTime::MAX, u64::MAX, |_, _, e| {
            seen.push(e);
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn run_respects_deadline_and_limit() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule_at(SimTime::from_secs(i), i);
        }
        let outcome = run(&mut q, SimTime::from_secs(4), u64::MAX, |_, _, _| {
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::DeadlineReached);
        assert_eq!(q.len(), 5);

        let mut q2: EventQueue<u64> = EventQueue::new();
        for i in 0..10u64 {
            q2.schedule_at(SimTime::from_secs(i), i);
        }
        let outcome = run(&mut q2, SimTime::MAX, 3, |_, _, _| Control::Continue);
        assert_eq!(outcome, RunOutcome::EventLimitReached);
        assert_eq!(q2.len(), 7);
    }

    #[test]
    fn handler_can_schedule_followups_and_stop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), 0u32);
        let mut count = 0;
        let outcome = run(&mut q, SimTime::MAX, u64::MAX, |q, t, e| {
            count += 1;
            if e < 4 {
                q.schedule_at(t + SimDuration::from_secs(1), e + 1);
                Control::Continue
            } else {
                Control::Stop
            }
        });
        assert_eq!(outcome, RunOutcome::Stopped);
        assert_eq!(count, 5);
    }

    #[test]
    fn fifo_lane_interleaves_with_heap_in_seq_order() {
        let mut q = EventQueue::new();
        // Heap event then FIFO event at the same instant: FIFO-by-seq.
        q.schedule_at(SimTime::from_millis(10), "heap-1");
        q.schedule_fifo(SimTime::from_millis(10), "fifo-1");
        q.schedule_at(SimTime::from_millis(5), "heap-0");
        q.schedule_fifo(SimTime::from_millis(20), "fifo-2");
        q.schedule_at(SimTime::from_millis(15), "heap-2");
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec!["heap-0", "heap-1", "fifo-1", "heap-2", "fifo-2"]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_lane_respects_deadlines_and_clear() {
        let mut q = EventQueue::new();
        q.schedule_fifo(SimTime::from_secs(1), 1);
        q.schedule_fifo(SimTime::from_secs(5), 2);
        assert_eq!(q.pop_before(SimTime::from_secs(2)).unwrap().1, 1);
        assert!(q.pop_before(SimTime::from_secs(2)).is_none());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn out_of_order_fifo_schedules_fall_back_to_the_heap() {
        let mut q = EventQueue::new();
        q.schedule_fifo(SimTime::from_secs(5), "late");
        q.schedule_fifo(SimTime::from_secs(1), "early"); // violates the lane order
        q.schedule_fifo(SimTime::from_secs(7), "later");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["early", "late", "later"]);
    }

    #[test]
    fn fifo_lane_clamps_past_times_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "later");
        q.pop();
        q.schedule_fifo(SimTime::from_secs(1), "past");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "past");
        assert_eq!(t, SimTime::from_secs(10), "clamped to now");
    }

    #[test]
    fn bulk_lane_interleaves_with_heap_and_fifo() {
        let mut q = EventQueue::new();
        // Bulk-load a whole arrival timeline up front…
        q.bulk_load_sorted([
            (SimTime::from_millis(1), "arrive-1"),
            (SimTime::from_millis(10), "arrive-2"),
            (SimTime::from_millis(10), "arrive-3"),
            (SimTime::from_millis(30), "arrive-4"),
        ]);
        // …then heap and timeout-lane events land in between.
        q.schedule_at(SimTime::from_millis(5), "heap");
        q.schedule_fifo(SimTime::from_millis(10), "timeout");
        assert_eq!(q.len(), 6);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        // Same-instant ties break by scheduling order (bulk pushes first).
        assert_eq!(
            order,
            vec!["arrive-1", "heap", "arrive-2", "arrive-3", "timeout", "arrive-4"]
        );
        assert!(q.is_empty());
        assert_eq!(q.processed(), 6);
    }

    #[test]
    fn bulk_lane_matches_heap_scheduling_exactly() {
        // The same sorted arrival stream through the heap and through the
        // bulk lane must deliver identically (same times, same order).
        let mut rng = crate::rng::SimRng::new(9);
        let mut arrivals: Vec<(SimTime, u64)> = (0..1_000)
            .map(|i| (SimTime::from_micros(rng.next_bounded(500_000)), i))
            .collect();
        arrivals.sort_by_key(|&(t, i)| (t, i));

        let mut heap_q = EventQueue::new();
        for &(t, i) in &arrivals {
            heap_q.schedule_at(t, i);
        }
        let mut bulk_q = EventQueue::new();
        bulk_q.bulk_load_sorted(arrivals.iter().copied());

        let via_heap: Vec<_> = std::iter::from_fn(|| heap_q.pop()).collect();
        let via_bulk: Vec<_> = std::iter::from_fn(|| bulk_q.pop()).collect();
        assert_eq!(via_heap, via_bulk);
    }

    #[test]
    #[should_panic(expected = "sorted arrival stream")]
    fn bulk_lane_rejects_unsorted_streams() {
        let mut q = EventQueue::new();
        q.bulk_push_sorted(SimTime::from_secs(5), "late");
        q.bulk_push_sorted(SimTime::from_secs(1), "early");
    }

    #[test]
    #[should_panic(expected = "precedes the clock")]
    fn bulk_lane_rejects_past_times() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "later");
        q.pop();
        q.bulk_push_sorted(SimTime::from_secs(1), "past");
    }

    #[test]
    fn bulk_lane_respects_deadlines_and_clear() {
        let mut q = EventQueue::new();
        q.bulk_load_sorted([(SimTime::from_secs(1), 1), (SimTime::from_secs(5), 2)]);
        assert_eq!(q.pop_before(SimTime::from_secs(2)).unwrap().1, 1);
        assert!(q.pop_before(SimTime::from_secs(2)).is_none());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn many_events_stay_sorted() {
        let mut rng = crate::rng::SimRng::new(1);
        let mut q = EventQueue::new();
        for _ in 0..10_000 {
            q.schedule_at(SimTime::from_micros(rng.next_bounded(1_000_000)), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(q.processed(), 10_000);
    }
}
