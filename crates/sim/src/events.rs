//! Event queue and simulation clock.
//!
//! The engine is a classic calendar/priority-queue discrete-event simulator:
//! events carry a firing time, the queue pops them in time order (FIFO within
//! the same instant thanks to a monotonically increasing sequence number) and
//! the clock jumps to each event's timestamp.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Bits per timer-wheel level: each level resolves one 6-bit digit of the
/// firing time in microseconds, so a level holds 64 slots.
const WHEEL_GROUP_BITS: u32 = 6;
/// Slots per timer-wheel level (`2^WHEEL_GROUP_BITS`).
const WHEEL_SLOTS: usize = 1 << WHEEL_GROUP_BITS;
/// Levels needed to cover the full 64-bit microsecond range (`ceil(64/6)`).
const WHEEL_LEVELS: usize = 11;

/// One level of the [`TimerWheel`]: 64 slots plus an occupancy bitmap so the
/// earliest non-empty slot is a single `trailing_zeros`.
#[derive(Debug, Clone)]
struct WheelLevel<E> {
    occupied: u64,
    slots: [VecDeque<(u128, E)>; WHEEL_SLOTS],
    /// Cached minimum key per slot (`u128::MAX` when empty), maintained in
    /// O(1): inserts take a `min`, and the only removals are wholesale
    /// cascades and front pops of level-0 slots (which are key-sorted, see
    /// [`TimerWheel::pop_min`]).
    slot_min: [u128; WHEEL_SLOTS],
}

impl<E> WheelLevel<E> {
    fn new() -> Self {
        WheelLevel {
            occupied: 0,
            slots: std::array::from_fn(|_| VecDeque::new()),
            slot_min: [u128::MAX; WHEEL_SLOTS],
        }
    }
}

/// A hierarchical timer wheel over packed `time‖seq` keys.
///
/// This is the timeout lane of the [`EventQueue`]. Its predecessor was a
/// plain FIFO that required firing times to be non-decreasing in scheduling
/// order — true for one constant `op_timeout`, false the moment timeouts
/// become heterogeneous (per-operation timeouts, fault-recovery timers,
/// retry backoff). The wheel keeps O(1) amortized scheduling for *arbitrary*
/// timeout patterns:
///
/// * level `l` buckets entries by the `l`-th 6-bit digit of their firing
///   time (µs), so an entry lands `O(1)` at the level of its highest digit
///   differing from the wheel's base time;
/// * the wheel's base advances with the queue clock; entries cascade at most
///   one level per 64-fold horizon crossing (amortized `O(levels)` per
///   entry over its lifetime);
/// * the minimum pending key is cached, so the queue's fused peek/pop reads
///   it in `O(1)` exactly like the old FIFO front.
///
/// **Ordering is identical to the heap lane by construction**: the queue
/// always pops the globally smallest packed `time‖seq` key across all lanes,
/// and the wheel's invariants guarantee its cached minimum is exact —
/// * all entries at level `l` agree with `base` on every digit above `l`
///   (established at insert, re-established by cascading), hence entries at
///   a lower level always fire before entries at a higher level;
/// * within a level, slot index equals the level digit of the firing time,
///   so the lowest occupied slot holds the earliest entries;
/// * within a level-0 slot all firing times are equal and the insertion
///   sequence number breaks ties, exactly like the heap.
#[derive(Debug, Clone)]
struct TimerWheel<E> {
    levels: Vec<WheelLevel<E>>,
    /// Wheel reference time in µs; all pending entries fire at or after it.
    base: u64,
    len: usize,
    /// Cached smallest pending key (`None` when empty).
    min_key: Option<u128>,
}

impl<E> TimerWheel<E> {
    fn new() -> Self {
        TimerWheel {
            levels: (0..WHEEL_LEVELS).map(|_| WheelLevel::new()).collect(),
            base: 0,
            len: 0,
            min_key: None,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn slot_of(level: usize, time: u64) -> usize {
        ((time >> (WHEEL_GROUP_BITS as usize * level)) & (WHEEL_SLOTS as u64 - 1)) as usize
    }

    /// The level an entry firing at `time` belongs to, relative to the
    /// current base: the position of the highest 6-bit digit in which `time`
    /// and `base` differ (0 when they are equal).
    #[inline]
    fn level_of(&self, time: u64) -> usize {
        let diff = time ^ self.base;
        if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / WHEEL_GROUP_BITS) as usize
        }
    }

    fn insert(&mut self, key: u128, event: E) {
        let time = (key >> 64) as u64;
        debug_assert!(time >= self.base, "timer scheduled before the wheel base");
        let l = self.level_of(time);
        let s = Self::slot_of(l, time);
        let level = &mut self.levels[l];
        level.slots[s].push_back((key, event));
        level.occupied |= 1u64 << s;
        level.slot_min[s] = level.slot_min[s].min(key);
        self.len += 1;
        // Membership only grows here, so the cached minimum can only drop.
        self.min_key = Some(self.min_key.map_or(key, |m| m.min(key)));
    }

    #[inline]
    fn peek_min(&self) -> Option<u128> {
        self.min_key
    }

    /// Advance the wheel base to `now` (µs), cascading entries whose level
    /// digit has been reached down to finer levels. The queue calls this on
    /// every clock advance; `now` never precedes a pending entry (it is the
    /// globally earliest event time), which is what guarantees that every
    /// level below the highest changed digit is already empty.
    fn advance(&mut self, now: u64) {
        if now <= self.base {
            return;
        }
        if self.len == 0 {
            self.base = now;
            return;
        }
        // Highest digit in which the base changes; levels below it hold no
        // entries (they would have to fire before `now`).
        let h = self.level_of(now);
        self.base = now;
        for l in (1..=h).rev() {
            let s = Self::slot_of(l, now);
            if self.levels[l].occupied & (1u64 << s) != 0 {
                let entries = std::mem::take(&mut self.levels[l].slots[s]);
                self.levels[l].occupied &= !(1u64 << s);
                self.levels[l].slot_min[s] = u128::MAX;
                self.len -= entries.len();
                // Re-inserting relative to the new base sends each entry to
                // a finer level; the cached minimum is unchanged because
                // membership is unchanged.
                for (key, event) in entries {
                    self.insert(key, event);
                }
            }
        }
    }

    fn recompute_min(&mut self) {
        // The lowest occupied level holds the globally earliest entries, and
        // within it the lowest occupied slot (slot index == level digit of
        // the firing time; digits above agree with the base for every entry
        // in the level). The per-slot minimum is cached, so this is a few
        // bitmap reads, never a slot scan.
        self.min_key = None;
        for level in &self.levels {
            if level.occupied != 0 {
                let s = level.occupied.trailing_zeros() as usize;
                self.min_key = Some(level.slot_min[s]);
                return;
            }
        }
    }

    /// Remove and return the earliest entry. The caller (the queue's pop)
    /// advances the wheel to the entry's firing time first, so the minimum
    /// always sits in a **level-0 slot** — and level-0 slots are key-sorted
    /// by construction: all entries of a level-0 slot fire in the same
    /// microsecond, direct inserts append with a monotonically growing
    /// sequence number, and a cascade (which happens at most once per slot,
    /// when the base first enters the slot's 64 µs window) preserves the
    /// seq-sorted order of its source slot. The front pop is therefore O(1);
    /// a scan remains as a defensive fallback.
    fn pop_min(&mut self) -> Option<(u128, E)> {
        let key = self.min_key?;
        let time = (key >> 64) as u64;
        let l = self.level_of(time);
        let s = Self::slot_of(l, time);
        let level = &mut self.levels[l];
        let slot = &mut level.slots[s];
        debug_assert_eq!(l, 0, "the wheel minimum fires at the (advanced) base");
        let popped_front = slot.front().is_some_and(|&(k, _)| k == key);
        let entry = if popped_front {
            slot.pop_front().expect("front exists")
        } else {
            // Defensive: never expected for level-0 slots (see above).
            let idx = slot
                .iter()
                .position(|&(k, _)| k == key)
                .expect("cached minimum key addresses a live entry");
            slot.remove(idx).expect("index is in bounds")
        };
        if slot.is_empty() {
            level.occupied &= !(1u64 << s);
            level.slot_min[s] = u128::MAX;
        } else if popped_front {
            level.slot_min[s] = slot.front().expect("slot is non-empty").0;
        } else {
            level.slot_min[s] = slot
                .iter()
                .map(|&(k, _)| k)
                .min()
                .expect("slot is non-empty");
        }
        self.len -= 1;
        self.recompute_min();
        Some(entry)
    }

    fn clear(&mut self) {
        for level in &mut self.levels {
            while level.occupied != 0 {
                let s = level.occupied.trailing_zeros() as usize;
                level.slots[s].clear();
                level.slot_min[s] = u128::MAX;
                level.occupied &= level.occupied - 1;
            }
        }
        self.len = 0;
        self.min_key = None;
    }
}

/// A heap entry: the scheduling key plus the event payload, inline.
///
/// The firing time and the insertion sequence number are packed into one
/// `u128` key (`time << 64 | seq`), so the heap's sift comparisons are a
/// single integer compare instead of a two-field lexicographic chain — this
/// is the hottest comparison in the whole simulator. The payload lives
/// inline in the entry: simulator events are small (32 bytes), so moving
/// them during sifts costs less than the former side-slab's two extra
/// random-access writes (slot alloc + take) and free-list traffic per
/// event.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    key: u128,
    event: E,
}

/// Which lane of the [`EventQueue`] holds a pending event (see
/// [`EventQueue::min_lane`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lane {
    Heap,
    Timer,
    TimeoutFifo,
    Bulk,
}

/// Pack a firing time and a sequence number into the queue's `u128` ordering
/// key (`time(µs) << 64 | seq`). Public so window-driven engines (the
/// parallel sharded cluster) can compute window-edge bounds for
/// [`EventQueue::pop_before_key`].
#[inline]
pub const fn pack(time: SimTime, seq: u64) -> u128 {
    ((time.as_micros() as u128) << 64) | seq as u128
}

/// The firing time encoded in a packed `time‖seq` key (see [`pack`]).
#[inline]
pub const fn unpack_time(key: u128) -> SimTime {
    SimTime::from_micros((key >> 64) as u64)
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, breaking ties by insertion order (stable / deterministic).
        other.key.cmp(&self.key)
    }
}

/// A deterministic discrete-event queue with an embedded virtual clock.
///
/// The queue guarantees:
/// * events are delivered in non-decreasing time order;
/// * events scheduled for the same instant are delivered in the order they
///   were scheduled (FIFO), which keeps simulations deterministic;
/// * scheduling an event in the past is clamped to "now" (a common and safe
///   convention for zero-latency local interactions).
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    /// The timeout lane's wheel: a hierarchical [`TimerWheel`] holding
    /// *heterogeneous* per-operation and fault/retry timers — O(1) amortized
    /// scheduling and popping for arbitrary (out-of-order) timeout patterns,
    /// kept out of the heap entirely. (Until the wheel, this lane was a
    /// plain FIFO that only handled one constant timeout delay.)
    timers: TimerWheel<E>,
    /// The timeout lane's sorted fast path: one constant `op_timeout` (by
    /// far the common configuration) makes `schedule_timeout` calls arrive
    /// in non-decreasing key order, and a sorted stream deserves a plain
    /// FIFO — appends and front pops are O(1) with none of the wheel's
    /// cascade bookkeeping. A timeout that *does* precede this lane's tail
    /// (heterogeneous per-op timeouts, retry backoff) falls back to the
    /// wheel; ordering across the lanes is exact either way (global-min
    /// pop over the shared sequence counter).
    timeout_fifo: VecDeque<(u128, E)>,
    /// The bulk lane: a sorted FIFO for pre-sorted open-loop arrival
    /// streams loaded up front ([`EventQueue::bulk_push_sorted`]). A
    /// separate lane because a pre-sorted stream deserves a plain queue:
    /// popping its front is one `VecDeque` read, with none of the wheel's
    /// level bookkeeping, and bulk loads front-running the whole simulated
    /// timeline never interact with the short-horizon timers.
    bulk: VecDeque<(u128, E)>,
    now: SimTime,
    next_seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            timers: TimerWheel::new(),
            timeout_fifo: VecDeque::new(),
            bulk: VecDeque::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len() + self.timers.len() + self.timeout_fifo.len() + self.bulk.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
            && self.timers.len() == 0
            && self.timeout_fifo.is_empty()
            && self.bulk.is_empty()
    }

    /// Total number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule `event` to fire at absolute time `at`. Times in the past are
    /// clamped to the current clock.
    ///
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let time = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            key: pack(time, seq),
            event,
        });
    }

    /// Schedule `event` to fire `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedule `event` at `at` on the **timeout lane**. The classic
    /// producers are per-operation timeouts, fault-recovery timers and retry
    /// deadlines: high-volume, and fired long after scheduling. The lane has
    /// two data structures behind one interface: timeouts arriving in
    /// non-decreasing key order (a single constant `op_timeout` — the common
    /// configuration — produces exactly that) append to a sorted FIFO in
    /// O(1) with no further bookkeeping, and out-of-order timeouts
    /// (heterogeneous per-op deadlines, staggered retries) take the
    /// hierarchical timer wheel, which is O(1) amortized for arbitrary
    /// patterns. Either way one-pending-timer-per-operation stays out of the
    /// heap, and ordering relative to every other lane is exact FIFO per
    /// instant, since all lanes share the sequence counter.
    pub fn schedule_timeout(&mut self, at: SimTime, event: E) {
        let time = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = pack(time, seq);
        if self
            .timeout_fifo
            .back()
            .is_none_or(|&(back, _)| key >= back)
        {
            self.timeout_fifo.push_back((key, event));
        } else {
            self.timers.insert(key, event);
        }
    }

    /// Schedule `event` to fire immediately (at the current clock, after any
    /// events already scheduled for this instant).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Append `event` at `at` to the **bulk lane**: the O(1) path for
    /// pre-sorted open-loop arrival streams loaded before (or during) a run.
    ///
    /// The caller guarantees firing times are non-decreasing across bulk
    /// pushes; producers derive their schedule from a sorted arrival-time
    /// iterator, so a violation is a logic error upstream, not an input to
    /// tolerate — the method **panics** rather than silently degrading to
    /// the heap. Delivery order relative to the other lanes is exact global
    /// FIFO per instant, since all three lanes share one sequence counter.
    ///
    /// # Panics
    /// Panics if `at` precedes the current clock or the previously pushed
    /// bulk event.
    pub fn bulk_push_sorted(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "bulk lane: arrival at {}us precedes the clock ({}us)",
            at.as_micros(),
            self.now.as_micros()
        );
        if let Some(&(back, _)) = self.bulk.back() {
            assert!(
                at >= unpack_time(back),
                "bulk lane: arrival at {}us precedes the previous arrival ({}us); \
                 bulk loads require a sorted arrival stream",
                at.as_micros(),
                unpack_time(back).as_micros()
            );
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.bulk.push_back((pack(at, seq), event));
    }

    /// Bulk-load a pre-sorted stream of `(time, event)` pairs through the
    /// bulk lane (see [`EventQueue::bulk_push_sorted`]).
    ///
    /// # Panics
    /// Panics if the stream's firing times are not non-decreasing.
    pub fn bulk_load_sorted(&mut self, items: impl IntoIterator<Item = (SimTime, E)>) {
        let iter = items.into_iter();
        let (lower, _) = iter.size_hint();
        self.bulk.reserve(lower);
        for (at, event) in iter {
            self.bulk_push_sorted(at, event);
        }
    }

    /// The packed `time‖seq` key of the next pending event, if any. This is
    /// the sharded engine's window-anchor primitive: the minimum over the
    /// per-shard lane minima anchors the next lookahead window, each an O(1)
    /// cached key read.
    #[inline]
    pub fn peek_key_packed(&self) -> Option<u128> {
        self.peek_key()
    }

    /// The lane holding the next pending event and its packed key, if any
    /// (argmin over the heap, timer-wheel, timeout-FIFO and bulk lanes —
    /// one pass, so pops decide "which lane" and "which key" in a single
    /// peek).
    #[inline]
    fn min_lane(&self) -> Option<(u128, Lane)> {
        let mut best: Option<(u128, Lane)> = self.heap.peek().map(|s| (s.key, Lane::Heap));
        if let Some(k) = self.timers.peek_min() {
            if best.is_none_or(|(b, _)| k < b) {
                best = Some((k, Lane::Timer));
            }
        }
        if let Some(&(k, _)) = self.timeout_fifo.front() {
            if best.is_none_or(|(b, _)| k < b) {
                best = Some((k, Lane::TimeoutFifo));
            }
        }
        if let Some(&(k, _)) = self.bulk.front() {
            if best.is_none_or(|(b, _)| k < b) {
                best = Some((k, Lane::Bulk));
            }
        }
        best
    }

    /// The packed key of the next pending event, if any.
    #[inline]
    fn peek_key(&self) -> Option<u128> {
        self.min_lane().map(|(k, _)| k)
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.peek_key().map(unpack_time)
    }

    /// Extract the event with packed key `key` from `lane`, advancing the
    /// clock. `(key, lane)` must come from [`EventQueue::min_lane`].
    fn pop_lane(&mut self, key: u128, lane: Lane) -> (SimTime, E) {
        // Keep the wheel's base on the clock before extracting: `key` is
        // the globally earliest pending instant, which is exactly the
        // precondition the wheel's cascade relies on — and when the wheel
        // itself holds the minimum, advancing first cascades that entry down
        // to a level-0 slot, so the extraction scan only ever touches
        // same-microsecond entries.
        let time = unpack_time(key);
        self.timers.advance(time.as_micros());
        let (_key, event) = match lane {
            Lane::Timer => self.timers.pop_min().expect("wheel minimum exists"),
            Lane::TimeoutFifo => self
                .timeout_fifo
                .pop_front()
                .expect("timeout-FIFO front exists"),
            Lane::Bulk => self.bulk.pop_front().expect("bulk front exists"),
            Lane::Heap => {
                let s = self.heap.pop().expect("heap top exists");
                (s.key, s.event)
            }
        };
        debug_assert!(time >= self.now, "time must be monotonic");
        self.now = time;
        self.processed += 1;
        (time, event)
    }

    /// Pop the next event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // Pick the earliest of the lanes; the shared sequence counter makes
        // the packed keys totally ordered (and unique) across all.
        let (key, lane) = self.min_lane()?;
        Some(self.pop_lane(key, lane))
    }

    /// Pop the next event only if it fires at or before `deadline`. This is
    /// the fused peek-then-pop used by the run loops: the peek is a single
    /// O(1) key read, and the heap sift happens at most once.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.min_lane() {
            Some((key, lane)) if unpack_time(key) <= deadline => Some(self.pop_lane(key, lane)),
            _ => None,
        }
    }

    /// Pop the next event only if its packed key is **strictly below**
    /// `end_key`. This is the batch primitive of the parallel sharded
    /// engine: a lookahead window `[W, W+L)` drains each shard's lane with
    /// `pop_before_key(pack(W+L, 0))`, so every event below the window edge
    /// fires and everything at or beyond it waits for the barrier.
    pub fn pop_before_key(&mut self, end_key: u128) -> Option<(SimTime, E)> {
        match self.min_lane() {
            Some((key, lane)) if key < end_key => Some(self.pop_lane(key, lane)),
            _ => None,
        }
    }

    /// Advance the clock to `at` without processing events. Panics in debug
    /// builds if events earlier than `at` are still pending (that would break
    /// causality).
    pub fn advance_to(&mut self, at: SimTime) {
        debug_assert!(
            self.peek_time().is_none_or(|t| t >= at),
            "cannot skip over pending events"
        );
        if at > self.now {
            self.now = at;
            self.timers.advance(at.as_micros());
        }
    }

    /// Drop all pending events (the clock is left untouched).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.timers.clear();
        self.timeout_fifo.clear();
        self.bulk.clear();
    }
}

/// Outcome of driving a queue with [`run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The queue drained completely.
    Drained,
    /// The time limit was reached with events still pending.
    DeadlineReached,
    /// The event-count limit was reached with events still pending.
    EventLimitReached,
    /// The handler requested an early stop.
    Stopped,
}

/// Control value returned by an event handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Control {
    /// Keep processing events.
    #[default]
    Continue,
    /// Stop the run after this event.
    Stop,
}

/// Drive `queue` by repeatedly popping events and passing them to `handler`
/// until the queue drains, `deadline` is passed, `max_events` are processed,
/// or the handler returns [`Control::Stop`].
///
/// The handler receives the queue itself so it can schedule follow-up events.
pub fn run<E, F>(
    queue: &mut EventQueue<E>,
    deadline: SimTime,
    max_events: u64,
    mut handler: F,
) -> RunOutcome
where
    F: FnMut(&mut EventQueue<E>, SimTime, E) -> Control,
{
    let mut count = 0u64;
    loop {
        if count >= max_events {
            return RunOutcome::EventLimitReached;
        }
        // Fused peek/pop: one heap access decides drain-vs-deadline-vs-fire.
        let Some((t, ev)) = queue.pop_before(deadline) else {
            return if queue.is_empty() {
                RunOutcome::Drained
            } else {
                RunOutcome::DeadlineReached
            };
        };
        count += 1;
        if handler(queue, t, ev) == Control::Stop {
            return RunOutcome::Stopped;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), "c");
        q.schedule_at(SimTime::from_millis(10), "a");
        q.schedule_at(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn past_schedules_are_clamped() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "later");
        q.pop();
        q.schedule_at(SimTime::from_secs(1), "past");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "past");
        assert_eq!(t, SimTime::from_secs(10), "clamped to now");
    }

    #[test]
    fn schedule_in_uses_relative_delay() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(2), "first");
        q.pop();
        q.schedule_in(SimDuration::from_secs(3), "second");
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs(5));
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), 1);
        q.schedule_at(SimTime::from_secs(5), 2);
        assert_eq!(q.pop_before(SimTime::from_secs(2)).unwrap().1, 1);
        assert!(q.pop_before(SimTime::from_secs(2)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn run_until_drained() {
        let mut q = EventQueue::new();
        for i in 0..5u32 {
            q.schedule_at(SimTime::from_secs(i as u64), i);
        }
        let mut seen = vec![];
        let outcome = run(&mut q, SimTime::MAX, u64::MAX, |_, _, e| {
            seen.push(e);
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn run_respects_deadline_and_limit() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule_at(SimTime::from_secs(i), i);
        }
        let outcome = run(&mut q, SimTime::from_secs(4), u64::MAX, |_, _, _| {
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::DeadlineReached);
        assert_eq!(q.len(), 5);

        let mut q2: EventQueue<u64> = EventQueue::new();
        for i in 0..10u64 {
            q2.schedule_at(SimTime::from_secs(i), i);
        }
        let outcome = run(&mut q2, SimTime::MAX, 3, |_, _, _| Control::Continue);
        assert_eq!(outcome, RunOutcome::EventLimitReached);
        assert_eq!(q2.len(), 7);
    }

    #[test]
    fn handler_can_schedule_followups_and_stop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), 0u32);
        let mut count = 0;
        let outcome = run(&mut q, SimTime::MAX, u64::MAX, |q, t, e| {
            count += 1;
            if e < 4 {
                q.schedule_at(t + SimDuration::from_secs(1), e + 1);
                Control::Continue
            } else {
                Control::Stop
            }
        });
        assert_eq!(outcome, RunOutcome::Stopped);
        assert_eq!(count, 5);
    }

    #[test]
    fn timeout_lane_interleaves_with_heap_in_seq_order() {
        let mut q = EventQueue::new();
        // Heap event then wheel event at the same instant: FIFO-by-seq.
        q.schedule_at(SimTime::from_millis(10), "heap-1");
        q.schedule_timeout(SimTime::from_millis(10), "timer-1");
        q.schedule_at(SimTime::from_millis(5), "heap-0");
        q.schedule_timeout(SimTime::from_millis(20), "timer-2");
        q.schedule_at(SimTime::from_millis(15), "heap-2");
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec!["heap-0", "heap-1", "timer-1", "heap-2", "timer-2"]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn timeout_lane_respects_deadlines_and_clear() {
        let mut q = EventQueue::new();
        q.schedule_timeout(SimTime::from_secs(1), 1);
        q.schedule_timeout(SimTime::from_secs(5), 2);
        assert_eq!(q.pop_before(SimTime::from_secs(2)).unwrap().1, 1);
        assert!(q.pop_before(SimTime::from_secs(2)).is_none());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn out_of_order_timeouts_are_native_to_the_wheel() {
        // The old FIFO lane had to bounce these to the heap; the wheel takes
        // arbitrary orders directly.
        let mut q = EventQueue::new();
        q.schedule_timeout(SimTime::from_secs(5), "late");
        q.schedule_timeout(SimTime::from_secs(1), "early");
        q.schedule_timeout(SimTime::from_secs(7), "later");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["early", "late", "later"]);
    }

    #[test]
    fn timeout_lane_clamps_past_times_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "later");
        q.pop();
        q.schedule_timeout(SimTime::from_secs(1), "past");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "past");
        assert_eq!(t, SimTime::from_secs(10), "clamped to now");
    }

    #[test]
    fn wheel_matches_heap_scheduling_exactly() {
        // The same randomized schedule through the heap lane and through the
        // timer wheel must deliver identically: the queue always pops the
        // globally smallest packed time‖seq key, so the wheel is a pure
        // data-structure change. Interleave pops with inserts so cascading
        // across level horizons is exercised.
        let mut rng = crate::rng::SimRng::new(77);
        let mut heap_q = EventQueue::new();
        let mut wheel_q = EventQueue::new();
        let mut heap_out = Vec::new();
        let mut wheel_out = Vec::new();
        for round in 0..50u64 {
            for i in 0..200u64 {
                // Mix short, long and far-future delays across all levels.
                let delay = match i % 4 {
                    0 => rng.next_bounded(64),
                    1 => rng.next_bounded(10_000),
                    2 => rng.next_bounded(10_000_000),
                    _ => rng.next_bounded(10_000_000_000),
                };
                let at = SimTime::from_micros(heap_q.now().as_micros() + delay);
                heap_q.schedule_at(at, (round, i));
                wheel_q.schedule_timeout(at, (round, i));
            }
            for _ in 0..150 {
                heap_out.push(heap_q.pop().unwrap());
                wheel_out.push(wheel_q.pop().unwrap());
            }
            assert_eq!(heap_q.now(), wheel_q.now());
        }
        heap_out.extend(std::iter::from_fn(|| heap_q.pop()));
        wheel_out.extend(std::iter::from_fn(|| wheel_q.pop()));
        assert_eq!(heap_out, wheel_out);
        assert_eq!(heap_out.len(), 10_000);
    }

    #[test]
    fn wheel_handles_same_instant_bursts_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(123_456);
        for i in 0..100 {
            q.schedule_timeout(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn wheel_cascades_across_far_horizons() {
        let mut q = EventQueue::new();
        // One timer per wheel level, from 1 µs out to decades.
        let mut expected = Vec::new();
        for l in 0..10u32 {
            let at = SimTime::from_micros(1 + (1u64 << (6 * l)));
            q.schedule_timeout(at, l);
            expected.push((at, l));
        }
        expected.sort_by_key(|&(t, _)| t);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn wheel_interleaves_with_bulk_and_heap_lanes() {
        let mut q = EventQueue::new();
        q.bulk_load_sorted([
            (SimTime::from_millis(2), "bulk"),
            (SimTime::from_millis(8), "bulk2"),
        ]);
        q.schedule_timeout(SimTime::from_millis(5), "timer");
        q.schedule_at(SimTime::from_millis(3), "heap");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["bulk", "heap", "timer", "bulk2"]);
    }

    #[test]
    fn bulk_lane_interleaves_with_heap_and_fifo() {
        let mut q = EventQueue::new();
        // Bulk-load a whole arrival timeline up front…
        q.bulk_load_sorted([
            (SimTime::from_millis(1), "arrive-1"),
            (SimTime::from_millis(10), "arrive-2"),
            (SimTime::from_millis(10), "arrive-3"),
            (SimTime::from_millis(30), "arrive-4"),
        ]);
        // …then heap and timeout-lane events land in between.
        q.schedule_at(SimTime::from_millis(5), "heap");
        q.schedule_timeout(SimTime::from_millis(10), "timeout");
        assert_eq!(q.len(), 6);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        // Same-instant ties break by scheduling order (bulk pushes first).
        assert_eq!(
            order,
            vec!["arrive-1", "heap", "arrive-2", "arrive-3", "timeout", "arrive-4"]
        );
        assert!(q.is_empty());
        assert_eq!(q.processed(), 6);
    }

    #[test]
    fn bulk_lane_matches_heap_scheduling_exactly() {
        // The same sorted arrival stream through the heap and through the
        // bulk lane must deliver identically (same times, same order).
        let mut rng = crate::rng::SimRng::new(9);
        let mut arrivals: Vec<(SimTime, u64)> = (0..1_000)
            .map(|i| (SimTime::from_micros(rng.next_bounded(500_000)), i))
            .collect();
        arrivals.sort_by_key(|&(t, i)| (t, i));

        let mut heap_q = EventQueue::new();
        for &(t, i) in &arrivals {
            heap_q.schedule_at(t, i);
        }
        let mut bulk_q = EventQueue::new();
        bulk_q.bulk_load_sorted(arrivals.iter().copied());

        let via_heap: Vec<_> = std::iter::from_fn(|| heap_q.pop()).collect();
        let via_bulk: Vec<_> = std::iter::from_fn(|| bulk_q.pop()).collect();
        assert_eq!(via_heap, via_bulk);
    }

    #[test]
    #[should_panic(expected = "sorted arrival stream")]
    fn bulk_lane_rejects_unsorted_streams() {
        let mut q = EventQueue::new();
        q.bulk_push_sorted(SimTime::from_secs(5), "late");
        q.bulk_push_sorted(SimTime::from_secs(1), "early");
    }

    #[test]
    #[should_panic(expected = "precedes the clock")]
    fn bulk_lane_rejects_past_times() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "later");
        q.pop();
        q.bulk_push_sorted(SimTime::from_secs(1), "past");
    }

    #[test]
    fn bulk_lane_respects_deadlines_and_clear() {
        let mut q = EventQueue::new();
        q.bulk_load_sorted([(SimTime::from_secs(1), 1), (SimTime::from_secs(5), 2)]);
        assert_eq!(q.pop_before(SimTime::from_secs(2)).unwrap().1, 1);
        assert!(q.pop_before(SimTime::from_secs(2)).is_none());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn lane_routing_never_reorders_delivery() {
        // Interleave sorted runs, regressions, timeouts (which split between
        // the sorted timeout FIFO and the wheel) and pops; delivery must be
        // exactly the (time, scheduling order) sort of the whole stream —
        // lane routing is invisible.
        let mut rng = crate::rng::SimRng::new(41);
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, u64)> = Vec::new(); // (time_us, seq)
        let mut seq = 0u64;
        let mut out = Vec::new();
        for round in 0..200u64 {
            let base = q.now().as_micros();
            // A sorted run of arrivals…
            let mut at = base;
            for _ in 0..10 {
                at += rng.next_bounded(300);
                q.schedule_at(SimTime::from_micros(at), seq);
                expected.push((at, seq));
                seq += 1;
            }
            // …a few reactive events that regress behind the run's tail…
            for _ in 0..5 {
                let t = base + rng.next_bounded(500);
                q.schedule_at(SimTime::from_micros(t), seq);
                expected.push((t, seq));
                seq += 1;
            }
            // …a timer…
            let t = base + rng.next_bounded(5_000);
            q.schedule_timeout(SimTime::from_micros(t), seq);
            expected.push((t, seq));
            seq += 1;
            // …and a burst of backoff-style retries: exponentially spread
            // nominal delays (spanning several wheel levels) with random
            // jitter on top, exactly the heterogeneous key pattern the
            // resilience layer's `backoff_delay` feeds the wheel. These
            // must interleave with everything above in pure time order.
            for _ in 0..3 {
                let backoff = (100u64 << rng.next_bounded(10)) + rng.next_bounded(1_000);
                let t = base + backoff;
                q.schedule_timeout(SimTime::from_micros(t), seq);
                expected.push((t, seq));
                seq += 1;
            }
            for _ in 0..12 {
                if let Some((t, v)) = q.pop() {
                    out.push((t.as_micros(), v));
                }
            }
            let _ = round;
        }
        out.extend(std::iter::from_fn(|| q.pop()).map(|(t, v)| (t.as_micros(), v)));
        expected.sort_by_key(|&(t, s)| (t, s));
        // Popped times are clamped to the clock, never reordered: compare
        // the value (scheduling-order) sequence, which pins exact order.
        let expected_vals: Vec<u64> = expected.iter().map(|&(_, s)| s).collect();
        let out_vals: Vec<u64> = out.iter().map(|&(_, s)| s).collect();
        assert_eq!(out_vals, expected_vals);
        assert_eq!(out.len(), 200 * 19);
    }

    #[test]
    fn many_events_stay_sorted() {
        let mut rng = crate::rng::SimRng::new(1);
        let mut q = EventQueue::new();
        for _ in 0..10_000 {
            q.schedule_at(SimTime::from_micros(rng.next_bounded(1_000_000)), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(q.processed(), 10_000);
    }
}
