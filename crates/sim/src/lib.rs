//! # concord-sim — deterministic discrete-event simulation substrate
//!
//! This crate provides the simulation substrate on which the Concord
//! geo-replicated storage simulator (`concord-cluster`) and the adaptive
//! consistency controllers (`concord-core`) run:
//!
//! * [`SimTime`] / [`SimDuration`] — a virtual clock with microsecond
//!   resolution;
//! * [`EventQueue`] — a deterministic calendar queue (priority queue +
//!   monotonic sequence numbers for FIFO tie-breaking);
//! * [`ShardMetrics`] — synchronization counters of the conservative-PDES
//!   sharded engine (`concord-cluster`): per-shard lanes advance in
//!   lookahead windows bounded by the minimum cross-shard link delay,
//!   handler batches execute in parallel on the work-stealing pool, and
//!   cross-shard events are staged per shard and folded at window barriers
//!   in fixed shard order, so output is a pure function of `(seed, shards)`
//!   at any worker-thread count;
//! * [`SimRng`] — a fast, splittable, seedable PRNG so every experiment is
//!   exactly reproducible;
//! * [`DelayDistribution`] — serializable latency models (constant, uniform,
//!   exponential, shifted-exponential WAN, normal, log-normal, empirical);
//! * [`Topology`] / [`NetworkModel`] — node placement into datacenters and
//!   regions plus per-link-class latency distributions (EC2-like and
//!   Grid'5000-like presets);
//! * [`RunningStats`] / [`percentile`] — one-pass statistics helpers.
//!
//! The paper's experiments ran on Amazon EC2 and Grid'5000; this crate is the
//! substitute testbed: a virtual-time cluster whose WAN behaviour is
//! parameterized by the same quantities that drive the paper's trade-offs
//! (propagation latency between replicas, intra- vs. inter-datacenter paths).
//!
//! ## Example
//!
//! ```
//! use concord_sim::{EventQueue, SimDuration, SimTime, SimRng, NetworkModel, Topology, RegionId, NodeId};
//!
//! // A two-availability-zone topology like the paper's EC2 deployment.
//! let topo = Topology::spread(6, &[("us-east-1a", RegionId(0)), ("us-east-1b", RegionId(0))]);
//! let net = NetworkModel::ec2_like();
//! let mut rng = SimRng::new(42);
//!
//! // Schedule a message between two replicas and run the event loop.
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! let delay = net.sample(&topo, NodeId(0), NodeId(1), &mut rng);
//! queue.schedule_in(delay, "replica-update");
//! let (arrival, event) = queue.pop().unwrap();
//! assert_eq!(event, "replica-update");
//! assert!(arrival > SimTime::ZERO && arrival < SimTime::ZERO + SimDuration::from_secs(1));
//! ```

#![warn(missing_docs)]

pub mod distributions;
pub mod events;
pub mod hash;
pub mod inline;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod topology;

pub use distributions::{CompiledDelay, DelayDistribution};
pub use events::{run, Control, EventQueue, RunOutcome};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use inline::InlineVec;
pub use rng::SimRng;
pub use shard::ShardMetrics;
pub use stats::{mean, percentile, percentile_sorted, RunningStats};
pub use time::{SimDuration, SimTime};
pub use topology::{Datacenter, DcId, LinkClass, NetworkModel, NodeId, RegionId, Topology};
