//! Latency / delay distributions used throughout the simulator.
//!
//! Network links, disk accesses and replica propagation delays are all
//! described by a [`DelayDistribution`], a serializable, deterministic
//! description of a positive random variable. Sampling draws from a
//! [`SimRng`], so a fixed seed reproduces the exact same delays.

use crate::rng::SimRng;
use crate::time::SimDuration;
use rand_distr::{Distribution, LogNormal, Normal};
use serde::{Deserialize, Serialize};

/// A distribution over non-negative delays, in milliseconds.
///
/// All parameters are expressed in **milliseconds** because that is the
/// natural unit for WAN latencies; samples are converted to [`SimDuration`]
/// (microsecond resolution) on draw.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // variant field names are self-describing (ms units)
pub enum DelayDistribution {
    /// Always exactly `ms`.
    Constant { ms: f64 },
    /// Uniform between `lo_ms` and `hi_ms`.
    Uniform { lo_ms: f64, hi_ms: f64 },
    /// Exponential with the given mean (common model for queueing delays).
    Exponential { mean_ms: f64 },
    /// `base_ms` plus an exponential tail of mean `tail_mean_ms` — a good
    /// model for a WAN link: a propagation floor plus congestion jitter.
    ShiftedExponential { base_ms: f64, tail_mean_ms: f64 },
    /// Normal distribution truncated at zero.
    Normal { mean_ms: f64, std_ms: f64 },
    /// Log-normal parameterized by the *median* and the multiplicative
    /// spread `sigma` (σ of the underlying normal) — the classic heavy-tailed
    /// latency model.
    LogNormal { median_ms: f64, sigma: f64 },
    /// Resample uniformly from an empirical set of observations.
    Empirical { samples_ms: Vec<f64> },
}

impl DelayDistribution {
    /// A constant delay of `ms` milliseconds.
    pub fn constant(ms: f64) -> Self {
        DelayDistribution::Constant { ms }
    }

    /// Shifted-exponential WAN model: `base + Exp(tail_mean)`.
    pub fn wan(base_ms: f64, tail_mean_ms: f64) -> Self {
        DelayDistribution::ShiftedExponential {
            base_ms,
            tail_mean_ms,
        }
    }

    /// Draw one delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_millis_f64(self.sample_ms(rng))
    }

    /// Draw one delay as fractional milliseconds.
    pub fn sample_ms(&self, rng: &mut SimRng) -> f64 {
        let v = match self {
            DelayDistribution::Constant { ms } => *ms,
            DelayDistribution::Uniform { lo_ms, hi_ms } => {
                debug_assert!(hi_ms >= lo_ms);
                lo_ms + rng.next_f64() * (hi_ms - lo_ms)
            }
            DelayDistribution::Exponential { mean_ms } => {
                if *mean_ms <= 0.0 {
                    0.0
                } else {
                    rng.exponential(1.0 / mean_ms)
                }
            }
            DelayDistribution::ShiftedExponential {
                base_ms,
                tail_mean_ms,
            } => {
                let tail = if *tail_mean_ms <= 0.0 {
                    0.0
                } else {
                    rng.exponential(1.0 / tail_mean_ms)
                };
                base_ms + tail
            }
            DelayDistribution::Normal { mean_ms, std_ms } => {
                if *std_ms <= 0.0 {
                    *mean_ms
                } else {
                    let n = Normal::new(*mean_ms, *std_ms).expect("valid normal params");
                    n.sample(rng)
                }
            }
            DelayDistribution::LogNormal { median_ms, sigma } => {
                if *median_ms <= 0.0 {
                    0.0
                } else if *sigma <= 0.0 {
                    *median_ms
                } else {
                    let ln = LogNormal::new(median_ms.ln(), *sigma).expect("valid lognormal");
                    ln.sample(rng)
                }
            }
            DelayDistribution::Empirical { samples_ms } => {
                if samples_ms.is_empty() {
                    0.0
                } else {
                    samples_ms[rng.index(samples_ms.len())]
                }
            }
        };
        v.max(0.0)
    }

    /// The analytical mean of the distribution, in milliseconds.
    ///
    /// For the truncated normal this returns the untruncated mean — the
    /// truncation error is negligible for the mean≫std latency settings the
    /// simulator uses, and tests tolerate the difference.
    pub fn mean_ms(&self) -> f64 {
        match self {
            DelayDistribution::Constant { ms } => *ms,
            DelayDistribution::Uniform { lo_ms, hi_ms } => (lo_ms + hi_ms) / 2.0,
            DelayDistribution::Exponential { mean_ms } => *mean_ms,
            DelayDistribution::ShiftedExponential {
                base_ms,
                tail_mean_ms,
            } => base_ms + tail_mean_ms,
            DelayDistribution::Normal { mean_ms, .. } => *mean_ms,
            DelayDistribution::LogNormal { median_ms, sigma } => {
                median_ms * (sigma * sigma / 2.0).exp()
            }
            DelayDistribution::Empirical { samples_ms } => {
                if samples_ms.is_empty() {
                    0.0
                } else {
                    samples_ms.iter().sum::<f64>() / samples_ms.len() as f64
                }
            }
        }
    }

    /// The infimum of the distribution's support, in milliseconds — no
    /// sample is ever smaller. This is the conservative-PDES **lookahead
    /// bound**: the minimum delay of a cross-shard link class lower-bounds
    /// how far ahead of its neighbours a shard may safely advance, so the
    /// sharded engine sizes its windows from the minimum `min_ms` over all
    /// cross-shard link classes. Unbounded-below tails (exponential,
    /// truncated normal, log-normal) return 0; callers degrade to minimal
    /// windows rather than unsound ones.
    pub fn min_ms(&self) -> f64 {
        let v = match self {
            DelayDistribution::Constant { ms } => *ms,
            DelayDistribution::Uniform { lo_ms, .. } => *lo_ms,
            DelayDistribution::Exponential { .. } => 0.0,
            DelayDistribution::ShiftedExponential { base_ms, .. } => *base_ms,
            DelayDistribution::Normal { mean_ms, std_ms } => {
                // The sampler truncates at zero; a degenerate std folds to
                // the constant mean.
                if *std_ms <= 0.0 {
                    *mean_ms
                } else {
                    0.0
                }
            }
            DelayDistribution::LogNormal { median_ms, sigma } => {
                if *median_ms <= 0.0 {
                    0.0
                } else if *sigma <= 0.0 {
                    *median_ms
                } else {
                    0.0
                }
            }
            // An empty sample set folds to +inf, which the finiteness check
            // below maps to 0 (matching its 0-valued draws).
            DelayDistribution::Empirical { samples_ms } => {
                samples_ms.iter().copied().fold(f64::INFINITY, f64::min)
            }
        };
        if v.is_finite() {
            v.max(0.0)
        } else {
            0.0
        }
    }

    /// Compile the distribution into its hot-path sampler: parameter
    /// validation, derived constants (`ln(median)` for the log-normal) and
    /// the zero/degenerate-parameter branches are resolved once instead of
    /// on every draw. The compiled sampler consumes the RNG stream
    /// identically to [`DelayDistribution::sample`] — same draws, same
    /// floating-point operations, bit-identical delays.
    pub fn compiled(&self) -> CompiledDelay {
        match self {
            DelayDistribution::Constant { ms } => CompiledDelay::Constant { ms: ms.max(0.0) },
            DelayDistribution::Uniform { lo_ms, hi_ms } => CompiledDelay::Uniform {
                lo_ms: *lo_ms,
                span_ms: hi_ms - lo_ms,
            },
            DelayDistribution::Exponential { mean_ms } => {
                if *mean_ms <= 0.0 {
                    CompiledDelay::Constant { ms: 0.0 }
                } else {
                    CompiledDelay::Exponential {
                        rate: 1.0 / mean_ms,
                    }
                }
            }
            DelayDistribution::ShiftedExponential {
                base_ms,
                tail_mean_ms,
            } => {
                if *tail_mean_ms <= 0.0 {
                    CompiledDelay::Constant {
                        ms: base_ms.max(0.0),
                    }
                } else {
                    CompiledDelay::ShiftedExponential {
                        base_ms: *base_ms,
                        tail_rate: 1.0 / tail_mean_ms,
                    }
                }
            }
            DelayDistribution::Normal { mean_ms, std_ms } => {
                if *std_ms <= 0.0 {
                    CompiledDelay::Constant {
                        ms: mean_ms.max(0.0),
                    }
                } else {
                    CompiledDelay::Normal {
                        mean_ms: *mean_ms,
                        std_ms: *std_ms,
                    }
                }
            }
            DelayDistribution::LogNormal { median_ms, sigma } => {
                if *median_ms <= 0.0 {
                    CompiledDelay::Constant { ms: 0.0 }
                } else if *sigma <= 0.0 {
                    CompiledDelay::Constant {
                        ms: median_ms.max(0.0),
                    }
                } else {
                    CompiledDelay::LogNormal {
                        mu: median_ms.ln(),
                        sigma: *sigma,
                    }
                }
            }
            DelayDistribution::Empirical { samples_ms } => CompiledDelay::Empirical {
                samples_ms: samples_ms.clone(),
            },
        }
    }

    /// Scale every delay by a positive factor, returning a new distribution.
    /// Useful to derive "slow network" variants of a baseline topology.
    pub fn scaled(&self, factor: f64) -> Self {
        let f = factor.max(0.0);
        match self {
            DelayDistribution::Constant { ms } => DelayDistribution::Constant { ms: ms * f },
            DelayDistribution::Uniform { lo_ms, hi_ms } => DelayDistribution::Uniform {
                lo_ms: lo_ms * f,
                hi_ms: hi_ms * f,
            },
            DelayDistribution::Exponential { mean_ms } => DelayDistribution::Exponential {
                mean_ms: mean_ms * f,
            },
            DelayDistribution::ShiftedExponential {
                base_ms,
                tail_mean_ms,
            } => DelayDistribution::ShiftedExponential {
                base_ms: base_ms * f,
                tail_mean_ms: tail_mean_ms * f,
            },
            DelayDistribution::Normal { mean_ms, std_ms } => DelayDistribution::Normal {
                mean_ms: mean_ms * f,
                std_ms: std_ms * f,
            },
            DelayDistribution::LogNormal { median_ms, sigma } => DelayDistribution::LogNormal {
                median_ms: median_ms * f,
                sigma: *sigma,
            },
            DelayDistribution::Empirical { samples_ms } => DelayDistribution::Empirical {
                samples_ms: samples_ms.iter().map(|s| s * f).collect(),
            },
        }
    }
}

/// A [`DelayDistribution`] compiled for hot-path sampling: degenerate cases
/// folded to constants, derived parameters precomputed. Produced by
/// [`DelayDistribution::compiled`]; draws are bit-identical to the source
/// distribution's [`DelayDistribution::sample`].
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledDelay {
    /// Always exactly `ms` (also the folding of degenerate parameters).
    Constant {
        /// The delay, already clamped non-negative.
        ms: f64,
    },
    /// Uniform over `[lo_ms, lo_ms + span_ms)`.
    Uniform {
        /// Lower bound.
        lo_ms: f64,
        /// Width of the interval.
        span_ms: f64,
    },
    /// Exponential with precomputed rate.
    Exponential {
        /// `1 / mean`.
        rate: f64,
    },
    /// Base plus exponential tail with precomputed tail rate.
    ShiftedExponential {
        /// Propagation floor.
        base_ms: f64,
        /// `1 / tail_mean`.
        tail_rate: f64,
    },
    /// Normal, truncated at zero on draw.
    Normal {
        /// Mean.
        mean_ms: f64,
        /// Standard deviation (positive).
        std_ms: f64,
    },
    /// Log-normal with precomputed `mu = ln(median)`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Std-dev of the underlying normal (positive).
        sigma: f64,
    },
    /// Resample from an empirical set.
    Empirical {
        /// The observations.
        samples_ms: Vec<f64>,
    },
}

impl CompiledDelay {
    /// Draw one delay as fractional milliseconds. Normal/log-normal draws go
    /// through the same `rand_distr` sampler as the uncompiled path (only the
    /// parameter validation and `ln(median)` are hoisted into `compiled()`),
    /// so the two paths cannot drift apart.
    #[inline]
    pub fn sample_ms(&self, rng: &mut SimRng) -> f64 {
        let v = match self {
            CompiledDelay::Constant { ms } => return *ms,
            CompiledDelay::Uniform { lo_ms, span_ms } => lo_ms + rng.next_f64() * span_ms,
            CompiledDelay::Exponential { rate } => rng.exponential(*rate),
            CompiledDelay::ShiftedExponential { base_ms, tail_rate } => {
                base_ms + rng.exponential(*tail_rate)
            }
            CompiledDelay::Normal { mean_ms, std_ms } => {
                let n = Normal::new(*mean_ms, *std_ms).expect("validated by compiled()");
                n.sample(rng)
            }
            CompiledDelay::LogNormal { mu, sigma } => {
                let ln = LogNormal::new(*mu, *sigma).expect("validated by compiled()");
                ln.sample(rng)
            }
            CompiledDelay::Empirical { samples_ms } => {
                if samples_ms.is_empty() {
                    0.0
                } else {
                    samples_ms[rng.index(samples_ms.len())]
                }
            }
        };
        v.max(0.0)
    }

    /// Draw one delay.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_millis_f64(self.sample_ms(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(d: &DelayDistribution, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| d.sample_ms(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = DelayDistribution::constant(7.5);
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(d.sample_ms(&mut rng), 7.5);
        }
        assert_eq!(d.mean_ms(), 7.5);
    }

    #[test]
    fn uniform_within_bounds() {
        let d = DelayDistribution::Uniform {
            lo_ms: 2.0,
            hi_ms: 4.0,
        };
        let mut rng = SimRng::new(2);
        for _ in 0..10_000 {
            let s = d.sample_ms(&mut rng);
            assert!((2.0..4.0).contains(&s));
        }
        assert!((empirical_mean(&d, 50_000, 3) - 3.0).abs() < 0.05);
    }

    #[test]
    fn exponential_and_shifted_means() {
        let exp = DelayDistribution::Exponential { mean_ms: 10.0 };
        assert!((empirical_mean(&exp, 100_000, 4) - 10.0).abs() < 0.3);

        let wan = DelayDistribution::wan(50.0, 5.0);
        assert_eq!(wan.mean_ms(), 55.0);
        let m = empirical_mean(&wan, 100_000, 5);
        assert!((m - 55.0).abs() < 0.5, "mean={m}");
        // All samples must respect the base floor.
        let mut rng = SimRng::new(6);
        for _ in 0..1_000 {
            assert!(wan.sample_ms(&mut rng) >= 50.0);
        }
    }

    #[test]
    fn lognormal_mean_formula() {
        let d = DelayDistribution::LogNormal {
            median_ms: 20.0,
            sigma: 0.5,
        };
        let analytic = d.mean_ms();
        let measured = empirical_mean(&d, 200_000, 7);
        assert!(
            (measured - analytic).abs() / analytic < 0.03,
            "measured={measured} analytic={analytic}"
        );
    }

    #[test]
    fn normal_truncated_at_zero() {
        let d = DelayDistribution::Normal {
            mean_ms: 1.0,
            std_ms: 2.0,
        };
        let mut rng = SimRng::new(8);
        for _ in 0..10_000 {
            assert!(d.sample_ms(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn empirical_resamples_observations() {
        let d = DelayDistribution::Empirical {
            samples_ms: vec![1.0, 2.0, 3.0],
        };
        let mut rng = SimRng::new(9);
        for _ in 0..100 {
            let s = d.sample_ms(&mut rng);
            assert!([1.0, 2.0, 3.0].contains(&s));
        }
        assert_eq!(d.mean_ms(), 2.0);
        let empty = DelayDistribution::Empirical { samples_ms: vec![] };
        assert_eq!(empty.sample_ms(&mut rng), 0.0);
    }

    #[test]
    fn scaling_scales_mean() {
        let d = DelayDistribution::wan(10.0, 2.0).scaled(3.0);
        assert!((d.mean_ms() - 36.0).abs() < 1e-9);
        let c = DelayDistribution::constant(4.0).scaled(0.5);
        assert_eq!(c.mean_ms(), 2.0);
    }

    #[test]
    fn compiled_sampler_is_bit_identical() {
        let dists = vec![
            DelayDistribution::constant(7.5),
            DelayDistribution::Uniform {
                lo_ms: 2.0,
                hi_ms: 4.0,
            },
            DelayDistribution::Exponential { mean_ms: 10.0 },
            DelayDistribution::Exponential { mean_ms: 0.0 },
            DelayDistribution::wan(50.0, 5.0),
            DelayDistribution::wan(50.0, 0.0),
            DelayDistribution::Normal {
                mean_ms: 1.0,
                std_ms: 2.0,
            },
            DelayDistribution::Normal {
                mean_ms: 3.0,
                std_ms: 0.0,
            },
            DelayDistribution::LogNormal {
                median_ms: 12.0,
                sigma: 0.4,
            },
            DelayDistribution::LogNormal {
                median_ms: 12.0,
                sigma: 0.0,
            },
            DelayDistribution::Empirical {
                samples_ms: vec![1.0, 2.0, 3.0],
            },
        ];
        for d in dists {
            let compiled = d.compiled();
            let mut a = SimRng::new(99);
            let mut b = SimRng::new(99);
            for i in 0..2_000 {
                let orig = d.sample_ms(&mut a);
                let fast = compiled.sample_ms(&mut b);
                assert_eq!(
                    orig.to_bits(),
                    fast.to_bits(),
                    "draw {i} of {d:?}: {orig} != {fast}"
                );
            }
        }
    }

    #[test]
    fn min_ms_lower_bounds_every_sample() {
        let dists = vec![
            DelayDistribution::constant(7.5),
            DelayDistribution::Uniform {
                lo_ms: 2.0,
                hi_ms: 4.0,
            },
            DelayDistribution::Exponential { mean_ms: 10.0 },
            DelayDistribution::wan(50.0, 5.0),
            DelayDistribution::Normal {
                mean_ms: 1.0,
                std_ms: 2.0,
            },
            DelayDistribution::Normal {
                mean_ms: 3.0,
                std_ms: 0.0,
            },
            DelayDistribution::LogNormal {
                median_ms: 12.0,
                sigma: 0.4,
            },
            DelayDistribution::LogNormal {
                median_ms: 12.0,
                sigma: 0.0,
            },
            DelayDistribution::Empirical {
                samples_ms: vec![3.0, 1.5, 2.0],
            },
        ];
        for d in dists {
            let floor = d.min_ms();
            assert!(floor >= 0.0, "{d:?}");
            let mut rng = SimRng::new(123);
            for _ in 0..5_000 {
                let s = d.sample_ms(&mut rng);
                assert!(
                    s >= floor - 1e-12,
                    "{d:?}: sample {s} below declared floor {floor}"
                );
            }
        }
        assert_eq!(
            DelayDistribution::Empirical { samples_ms: vec![] }.min_ms(),
            0.0
        );
        assert_eq!(DelayDistribution::wan(12.0, 3.0).min_ms(), 12.0);
        assert_eq!(
            DelayDistribution::Uniform {
                lo_ms: 0.05,
                hi_ms: 0.3
            }
            .min_ms(),
            0.05
        );
    }

    #[test]
    fn serde_round_trip() {
        let d = DelayDistribution::LogNormal {
            median_ms: 12.0,
            sigma: 0.4,
        };
        let json = serde_json::to_string(&d).unwrap();
        let back: DelayDistribution = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn samples_convert_to_duration() {
        let d = DelayDistribution::constant(1.5);
        let mut rng = SimRng::new(10);
        assert_eq!(d.sample(&mut rng), SimDuration::from_micros(1_500));
    }
}
