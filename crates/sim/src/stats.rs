//! Small statistics helpers shared across the workspace.
//!
//! [`RunningStats`] accumulates count/mean/variance/min/max in one pass using
//! Welford's algorithm; [`percentile`] computes order statistics over a
//! sample vector. Both are deliberately simple — heavier machinery (windowed
//! rates, histograms) lives in `concord-monitor`.

use serde::{Deserialize, Serialize};

/// One-pass running statistics (Welford's online algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel-friendly).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

/// Compute the `p`-quantile (0 ≤ p ≤ 1) of `samples` using linear
/// interpolation between closest ranks. The input does **not** need to be
/// sorted; a sorted copy is made internally. Returns `None` on empty input.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    Some(percentile_sorted(&sorted, p))
}

/// Same as [`percentile`] but assumes `sorted` is already ascending.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let p = p.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Arithmetic mean of a slice (0 for an empty slice).
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut all = RunningStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..400] {
            a.push(x);
        }
        for &x in &data[400..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = RunningStats::new();
        a.push(1.0);
        let empty = RunningStats::new();
        let mut b = a;
        b.merge(&empty);
        assert_eq!(b, a);
        let mut c = RunningStats::new();
        c.merge(&a);
        assert_eq!(c, a);
    }

    #[test]
    fn percentile_interpolates() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(100.0));
        let p50 = percentile(&v, 0.5).unwrap();
        assert!((p50 - 50.5).abs() < 1e-9);
        let p99 = percentile(&v, 0.99).unwrap();
        assert!((p99 - 99.01).abs() < 1e-9);
    }

    #[test]
    fn percentile_handles_small_inputs() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.99), Some(7.0));
        assert_eq!(percentile(&[1.0, 3.0], 0.5), Some(2.0));
    }

    #[test]
    fn percentile_on_unsorted_input() {
        let v = vec![9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(percentile(&v, 0.5), Some(5.0));
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
