//! Conservative-PDES sharding of the event queue.
//!
//! [`ShardedEventQueue`] partitions the pending-event set into per-shard
//! [`EventQueue`] lanes (one per node group of the simulated cluster) and
//! advances them in **lookahead windows**: a window `[W, W + L)` is anchored
//! at the earliest pending key `W` and extends by the lookahead bound `L`,
//! the infimum of the cross-shard link delay
//! ([`crate::DelayDistribution::min_ms`]). A handler executing on shard `s`
//! that schedules an event for shard `d ≠ s` firing at or after the window
//! edge does not touch `d`'s lane directly: the event is **staged in a
//! cross-shard mailbox** and flushed into `d`'s lane when the engine crosses
//! the barrier at `W + L` — the classic conservative synchronization
//! protocol (null-message-free, barrier-window variant).
//!
//! ## Exact merge, byte-identical output
//!
//! The facade owns the **global clock and the global sequence counter**:
//! every schedule call draws its packed `time‖seq` key from the facade in
//! call order, exactly as the sequential [`EventQueue`] would, and every pop
//! takes the global argmin over the per-shard lane minima (each an O(1)
//! cached key read). Keys are assigned at *schedule* time and never
//! reassigned at mailbox flush, so routing an event through a lane or a
//! mailbox is invisible to delivery: the popped stream is byte-identical to
//! the sequential engine's at **any shard count** — the property the
//! cluster's golden digests pin.
//!
//! The flip side of that contract is honesty about what is parallel: the
//! simulator's handlers consume one serial RNG stream in global pop order
//! (coordinator picks, link-delay draws), so handler *execution* stays
//! serialized on the merged order. The sharded engine parallelizes the
//! queue's data structures (per-shard heaps, wheels and FIFOs stay small and
//! cache-resident) and stages cross-shard traffic exactly as a parallel
//! conservative engine would — windows, barriers and the lookahead bound are
//! all real and all metered ([`ShardMetrics`]) — but it does not run
//! handlers concurrently. See the "sharded execution model" section of the
//! `concord-bench` crate docs for the full argument.
//!
//! ## Safety of the window rule
//!
//! Staging is unconditionally safe: an event staged for shard `d` carries a
//! key at or after the current window edge, and the engine only crosses the
//! edge after every lane minimum has moved past it — at which point the
//! mailboxes flush *before* the next argmin is taken, so a staged event can
//! never be skipped over. A cross-shard event scheduled *below* the window
//! edge (a sampled delay under the lookahead bound: zero-infimum delay
//! distributions, or a degraded link invalidating the precomputed bound) is
//! inserted directly into the destination lane — still exact, since keys are
//! global — and counted in [`ShardMetrics::violations`]: a nonzero count
//! measures how far the topology is from supporting that lookahead in a
//! truly concurrent run.

use crate::events::{pack, unpack_time, EventQueue};
use crate::time::{SimDuration, SimTime};

/// Which lane of the destination [`EventQueue`] a staged cross-shard event
/// belongs to; recorded at schedule time so a mailbox flush replays the
/// exact lane routing the sequential engine would have used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MailLane {
    Heap,
    Timeout,
}

/// Counters of the sharded engine's synchronization behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardMetrics {
    /// Lookahead windows opened (barrier crossings). Each crossing flushes
    /// the cross-shard mailboxes and re-anchors the window at the earliest
    /// pending key.
    pub windows: u64,
    /// Cross-shard events staged in a mailbox and delivered at a barrier.
    pub staged: u64,
    /// Cross-shard events that fired *below* the window edge and had to be
    /// inserted directly into the destination lane: sampled delays under the
    /// lookahead bound. Zero means the lookahead was sound for the whole
    /// run; nonzero runs are still byte-exact (keys are global), but a truly
    /// concurrent engine would have needed a smaller window.
    pub violations: u64,
}

/// A sharded [`EventQueue`]: per-shard lanes, cross-shard mailboxes flushed
/// at lookahead-window barriers, and an exact global `time‖seq` merge — see
/// the module docs for the synchronization protocol and the byte-identity
/// argument.
///
/// With one shard the facade degenerates to a thin wrapper over a single
/// [`EventQueue`]: no window bookkeeping, no mailbox, same complexity as the
/// unsharded engine.
#[derive(Debug, Clone)]
pub struct ShardedEventQueue<E> {
    lanes: Vec<EventQueue<E>>,
    /// One staging mailbox per destination shard; entries keep the key
    /// assigned at schedule time.
    mailboxes: Vec<Vec<(u128, MailLane, E)>>,
    /// Smallest key currently staged across all mailboxes (`u128::MAX` when
    /// none), so peeks never scan the mailboxes.
    mailbox_min: u128,
    /// Entries currently staged (not cumulative — see
    /// [`ShardMetrics::staged`] for the running total).
    staged_now: usize,
    /// Global virtual clock (max over popped keys).
    now: SimTime,
    /// Global sequence counter shared by every lane: the single source of
    /// the FIFO-per-instant tie-break, and the reason the merged pop order
    /// is byte-identical to the sequential engine.
    next_seq: u64,
    processed: u64,
    /// End of the current lookahead window, in µs (0 before the first pop:
    /// the first pop opens the first window).
    window_end: u64,
    /// Window length: the minimum cross-shard link delay, floored at 1 µs so
    /// zero-infimum topologies degrade to per-event windows instead of
    /// zero-width ones.
    lookahead: SimDuration,
    /// The shard whose event is currently being handled (the source of
    /// subsequent schedule calls); updated by every pop.
    current_shard: usize,
    /// Tail of the global bulk arrival stream, for the cross-shard
    /// sortedness assertion (per-lane asserts only see their subsequence).
    bulk_tail_us: u64,
    metrics: ShardMetrics,
}

impl<E> ShardedEventQueue<E> {
    /// Create a queue with `shards` lanes and the given lookahead window
    /// (clamped to at least 1 µs — the clock's resolution — so a zero bound
    /// degrades to minimal windows rather than zero-width ones).
    ///
    /// # Panics
    /// Panics if `shards` is 0.
    pub fn new(shards: usize, lookahead: SimDuration) -> Self {
        assert!(shards >= 1, "a sharded queue needs at least one shard");
        ShardedEventQueue {
            lanes: (0..shards).map(|_| EventQueue::new()).collect(),
            mailboxes: (0..shards).map(|_| Vec::new()).collect(),
            mailbox_min: u128::MAX,
            staged_now: 0,
            now: SimTime::ZERO,
            next_seq: 0,
            processed: 0,
            window_end: 0,
            lookahead: SimDuration::from_micros(lookahead.as_micros().max(1)),
            current_shard: 0,
            bulk_tail_us: 0,
            metrics: ShardMetrics::default(),
        }
    }

    /// Number of shards (lanes).
    pub fn shards(&self) -> usize {
        self.lanes.len()
    }

    /// Current lookahead window length.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Replace the lookahead bound (clamped to ≥ 1 µs). Called when a fault
    /// rescales link delays (`DegradeLink`): the window must shrink with the
    /// smallest cross-shard delay or staging decisions would be recorded
    /// against a stale bound. Takes effect at the next barrier; the current
    /// window's edge is already fixed.
    pub fn set_lookahead(&mut self, lookahead: SimDuration) {
        self.lookahead = SimDuration::from_micros(lookahead.as_micros().max(1));
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total pending events, staged mailbox entries included.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.len()).sum::<usize>() + self.staged_now
    }

    /// True if no events are pending anywhere (lanes and mailboxes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Synchronization counters (windows, staged events, violations).
    pub fn metrics(&self) -> ShardMetrics {
        self.metrics
    }

    /// Assign the next global key for an event firing at `at` (clamped to
    /// the clock, exactly like [`EventQueue::schedule_at`]).
    #[inline]
    fn next_key(&mut self, at: SimTime) -> u128 {
        let time = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        pack(time, seq)
    }

    /// True when a handler-originated event for `shard` must be staged
    /// (cross-shard, firing at or after the window edge); counts the
    /// violation otherwise.
    #[inline]
    fn should_stage(&mut self, shard: usize, key: u128) -> bool {
        if self.lanes.len() == 1 || shard == self.current_shard {
            return false;
        }
        if (key >> 64) as u64 >= self.window_end {
            return true;
        }
        self.metrics.violations += 1;
        false
    }

    #[inline]
    fn stage(&mut self, shard: usize, key: u128, lane: MailLane, event: E) {
        self.mailboxes[shard].push((key, lane, event));
        self.mailbox_min = self.mailbox_min.min(key);
        self.staged_now += 1;
        self.metrics.staged += 1;
    }

    /// Schedule a handler-originated message for `shard` at `at` on the heap
    /// lane: staged in the cross-shard mailbox when the window rule allows,
    /// inserted directly (and metered as a violation) when it does not.
    pub fn schedule_at(&mut self, shard: usize, at: SimTime, event: E) {
        let key = self.next_key(at);
        if self.should_stage(shard, key) {
            self.stage(shard, key, MailLane::Heap, event);
        } else {
            self.lanes[shard].insert_prekeyed(key, event);
        }
    }

    /// Schedule a handler-originated timer for `shard` at `at` on the
    /// timeout lane (sorted-FIFO fast path or timer wheel, decided by the
    /// destination lane), with the same staging rule as
    /// [`ShardedEventQueue::schedule_at`].
    pub fn schedule_timeout(&mut self, shard: usize, at: SimTime, event: E) {
        let key = self.next_key(at);
        if self.should_stage(shard, key) {
            self.stage(shard, key, MailLane::Timeout, event);
        } else {
            self.lanes[shard].insert_timeout_prekeyed(key, event);
        }
    }

    /// Inject an event that does not model a cross-shard message: external
    /// client arrivals (generated at their home shard by construction) and
    /// barrier-edge control broadcasts (fault ticks, recovery syncs applied
    /// under the global barrier). Inserted directly into `shard`'s lane —
    /// never staged, never a violation.
    pub fn schedule_arrival(&mut self, shard: usize, at: SimTime, event: E) {
        let key = self.next_key(at);
        self.lanes[shard].insert_prekeyed(key, event);
    }

    /// [`ShardedEventQueue::schedule_arrival`] at the current clock (after
    /// everything already scheduled for this instant).
    pub fn schedule_arrival_now(&mut self, shard: usize, event: E) {
        self.schedule_arrival(shard, self.now, event);
    }

    /// Append a pre-sorted open-loop arrival for `shard` through its bulk
    /// lane. Arrivals are external injections (see
    /// [`ShardedEventQueue::schedule_arrival`]); the global stream must be
    /// sorted — each lane only sees its own subsequence, so the facade
    /// asserts global order here.
    ///
    /// # Panics
    /// Panics if `at` precedes the current clock or the previously pushed
    /// bulk arrival (matching [`EventQueue::bulk_push_sorted`]).
    pub fn bulk_push_sorted(&mut self, shard: usize, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "bulk lane: arrival at {}us precedes the clock ({}us)",
            at.as_micros(),
            self.now.as_micros()
        );
        assert!(
            at.as_micros() >= self.bulk_tail_us,
            "bulk lane: arrival at {}us precedes the previous arrival ({}us); \
             bulk loads require a sorted arrival stream",
            at.as_micros(),
            self.bulk_tail_us
        );
        self.bulk_tail_us = at.as_micros();
        let key = self.next_key(at);
        self.lanes[shard].insert_bulk_prekeyed(key, event);
    }

    /// The global argmin over the per-shard lane minima: the exact key the
    /// sequential engine would pop next (mailboxes excluded — their entries
    /// only become poppable after the barrier flush).
    #[inline]
    fn min_lane(&self) -> Option<(u128, usize)> {
        let mut best: Option<(u128, usize)> = None;
        for (i, lane) in self.lanes.iter().enumerate() {
            if let Some(k) = lane.peek_key_packed() {
                if best.is_none_or(|(b, _)| k < b) {
                    best = Some((k, i));
                }
            }
        }
        best
    }

    /// Flush every mailbox into its destination lane, keys unchanged. Each
    /// mailbox is drained in key order so the timeout FIFO fast path sees
    /// sorted appends where possible; order of *delivery* is unaffected
    /// either way (global argmin over exact keys).
    fn flush_mailboxes(&mut self) {
        for shard in 0..self.mailboxes.len() {
            if self.mailboxes[shard].is_empty() {
                continue;
            }
            let mut mail = std::mem::take(&mut self.mailboxes[shard]);
            mail.sort_unstable_by_key(|&(key, _, _)| key);
            for (key, lane, event) in mail.drain(..) {
                match lane {
                    MailLane::Heap => self.lanes[shard].insert_prekeyed(key, event),
                    MailLane::Timeout => self.lanes[shard].insert_timeout_prekeyed(key, event),
                }
            }
            // Hand the drained buffer back so mailboxes stay allocation-free
            // across windows.
            self.mailboxes[shard] = mail;
        }
        self.staged_now = 0;
        self.mailbox_min = u128::MAX;
    }

    /// The key and shard of the next event to pop, crossing the window
    /// barrier (mailbox flush + window re-anchor) if the current window is
    /// exhausted.
    fn next_poppable(&mut self) -> Option<(u128, usize)> {
        let mut best = self.min_lane();
        let cross = match best {
            Some((key, _)) => (key >> 64) as u64 >= self.window_end,
            None => self.staged_now > 0,
        };
        if cross {
            self.flush_mailboxes();
            self.metrics.windows += 1;
            best = self.min_lane();
            if let Some((key, _)) = best {
                self.window_end = ((key >> 64) as u64).saturating_add(self.lookahead.as_micros());
            }
        }
        best
    }

    #[inline]
    fn pop_shard(&mut self, key: u128, shard: usize) -> (SimTime, E) {
        let (t, e) = self.lanes[shard].pop().expect("argmin lane has an event");
        debug_assert_eq!(t, unpack_time(key));
        self.current_shard = shard;
        self.now = t;
        self.processed += 1;
        (t, e)
    }

    /// Time of the next pending event (staged entries included), if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        let lane_min = self.min_lane().map(|(k, _)| k);
        let min = match lane_min {
            Some(k) if (k >> 64) as u64 >= self.window_end => k.min(self.mailbox_min),
            Some(k) => k,
            None if self.staged_now > 0 => self.mailbox_min,
            None => return None,
        };
        Some(unpack_time(min))
    }

    /// Pop the next event in global `time‖seq` order, advancing the clock —
    /// and crossing a window barrier first if the current window is
    /// exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.lanes.len() == 1 {
            let (t, e) = self.lanes[0].pop()?;
            self.now = t;
            self.processed += 1;
            return Some((t, e));
        }
        let (key, shard) = self.next_poppable()?;
        Some(self.pop_shard(key, shard))
    }

    /// Pop the next event only if it fires at or before `deadline` (the
    /// fused peek-then-pop of the run loops). A barrier crossing triggered
    /// by the peek is kept even when the event is beyond the deadline —
    /// flushing early is always safe, the window simply re-anchors.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.lanes.len() == 1 {
            let (t, e) = self.lanes[0].pop_before(deadline)?;
            self.now = t;
            self.processed += 1;
            return Some((t, e));
        }
        let (key, shard) = self.next_poppable()?;
        if unpack_time(key) > deadline {
            return None;
        }
        Some(self.pop_shard(key, shard))
    }

    /// Drop all pending events, staged entries included (clock, counters and
    /// metrics are left untouched).
    pub fn clear(&mut self) {
        for lane in &mut self.lanes {
            lane.clear();
        }
        for mail in &mut self.mailboxes {
            mail.clear();
        }
        self.staged_now = 0;
        self.mailbox_min = u128::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    /// Drive the same randomized schedule through the sequential queue and a
    /// sharded one; the popped streams must match exactly.
    fn assert_matches_sequential(shards: usize, seed: u64) {
        let mut rng = SimRng::new(seed);
        let mut seq_q: EventQueue<u64> = EventQueue::new();
        let mut shard_q: ShardedEventQueue<u64> =
            ShardedEventQueue::new(shards, SimDuration::from_micros(700));
        let mut seq_out = Vec::new();
        let mut shard_out = Vec::new();
        let mut id = 0u64;
        for _round in 0..100 {
            for i in 0..40u64 {
                let delay = match i % 3 {
                    0 => rng.next_bounded(500),
                    1 => rng.next_bounded(5_000),
                    _ => rng.next_bounded(2_000_000),
                };
                let at = SimTime::from_micros(seq_q.now().as_micros() + delay);
                let dest = (rng.next_bounded(shards as u64)) as usize;
                match i % 4 {
                    3 => {
                        seq_q.schedule_timeout(at, id);
                        shard_q.schedule_timeout(dest, at, id);
                    }
                    _ => {
                        seq_q.schedule_at(at, id);
                        shard_q.schedule_at(dest, at, id);
                    }
                }
                id += 1;
            }
            for _ in 0..30 {
                seq_out.push(seq_q.pop().unwrap());
                shard_out.push(shard_q.pop().unwrap());
            }
            assert_eq!(seq_q.now(), shard_q.now());
        }
        seq_out.extend(std::iter::from_fn(|| seq_q.pop()));
        shard_out.extend(std::iter::from_fn(|| shard_q.pop()));
        assert_eq!(seq_out, shard_out);
        assert_eq!(shard_q.processed(), seq_out.len() as u64);
        assert!(shard_q.is_empty());
    }

    #[test]
    fn sharded_pops_match_sequential_queue_exactly() {
        for shards in [1, 2, 3, 4, 8] {
            assert_matches_sequential(shards, 42 + shards as u64);
        }
    }

    #[test]
    fn mailbox_staging_preserves_delivery_order() {
        // Lookahead larger than every delay: all cross-shard traffic stages.
        let mut q: ShardedEventQueue<u32> =
            ShardedEventQueue::new(2, SimDuration::from_millis(100));
        // Pop an event on shard 0 so current_shard == 0, then schedule
        // cross-shard events beyond the window edge.
        q.schedule_arrival(0, SimTime::from_micros(1), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        let w = q.metrics().windows;
        for i in 0..10u32 {
            q.schedule_at(
                1,
                SimTime::from_millis(200) + SimDuration::from_micros(i as u64),
                i + 1,
            );
        }
        assert_eq!(q.metrics().staged, 10);
        assert_eq!(q.len(), 10);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(200)));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (1..=10).collect::<Vec<_>>());
        assert!(
            q.metrics().windows > w,
            "draining staged events crosses a barrier"
        );
        assert_eq!(q.metrics().violations, 0);
    }

    #[test]
    fn sub_lookahead_cross_shard_events_are_violations_but_exact() {
        let mut q: ShardedEventQueue<&str> =
            ShardedEventQueue::new(2, SimDuration::from_millis(50));
        q.schedule_arrival(0, SimTime::from_millis(10), "anchor");
        q.pop(); // opens a window [10ms, 60ms)
        q.schedule_at(1, SimTime::from_millis(20), "early"); // below the edge
        assert_eq!(q.metrics().violations, 1);
        assert_eq!(q.metrics().staged, 0);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_millis(20), "early"));
    }

    #[test]
    fn one_shard_degenerates_to_plain_queue() {
        let mut q: ShardedEventQueue<u32> = ShardedEventQueue::new(1, SimDuration::ZERO);
        q.schedule_at(0, SimTime::from_millis(3), 3);
        q.schedule_at(0, SimTime::from_millis(1), 1);
        q.schedule_timeout(0, SimTime::from_millis(2), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(q.metrics(), ShardMetrics::default());
    }

    #[test]
    fn bulk_lane_routes_per_shard_and_asserts_global_order() {
        let mut q: ShardedEventQueue<u32> = ShardedEventQueue::new(2, SimDuration::from_micros(10));
        q.bulk_push_sorted(0, SimTime::from_millis(1), 1);
        q.bulk_push_sorted(1, SimTime::from_millis(2), 2);
        q.bulk_push_sorted(0, SimTime::from_millis(3), 3);
        q.schedule_arrival(1, SimTime::from_millis(2), 20);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        // Same instant (2ms): bulk push seq precedes the later arrival's.
        assert_eq!(order, vec![1, 2, 20, 3]);
    }

    #[test]
    #[should_panic(expected = "sorted arrival stream")]
    fn bulk_lane_rejects_globally_unsorted_streams() {
        let mut q: ShardedEventQueue<u32> = ShardedEventQueue::new(2, SimDuration::from_micros(10));
        // Each lane's subsequence would be sorted; the global stream is not.
        q.bulk_push_sorted(0, SimTime::from_millis(5), 1);
        q.bulk_push_sorted(1, SimTime::from_millis(1), 2);
    }

    #[test]
    fn pop_before_respects_deadline_across_shards() {
        let mut q: ShardedEventQueue<u32> = ShardedEventQueue::new(3, SimDuration::from_micros(10));
        q.schedule_arrival(1, SimTime::from_secs(1), 1);
        q.schedule_arrival(2, SimTime::from_secs(5), 2);
        assert_eq!(q.pop_before(SimTime::from_secs(2)).unwrap().1, 1);
        assert!(q.pop_before(SimTime::from_secs(2)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_before(SimTime::from_secs(5)).unwrap().1, 2);
    }

    #[test]
    fn timeout_staging_keeps_wheel_and_fifo_routing_exact() {
        // Cross-shard timeouts staged out of order must still deliver in
        // key order after the flush (the destination lane falls back to its
        // wheel when a flushed key regresses behind the FIFO tail).
        let mut q: ShardedEventQueue<u32> =
            ShardedEventQueue::new(2, SimDuration::from_millis(100));
        q.schedule_arrival(0, SimTime::from_micros(1), 0);
        q.pop();
        // Direct same-shard timeout first (lands in shard 0's FIFO)…
        q.schedule_timeout(0, SimTime::from_millis(300), 30);
        // …then cross-shard timeouts for shard 1, deliberately out of order.
        q.schedule_timeout(1, SimTime::from_millis(250), 25);
        q.schedule_timeout(1, SimTime::from_millis(150), 15);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![15, 25, 30]);
    }

    #[test]
    fn clear_drops_staged_entries_too() {
        let mut q: ShardedEventQueue<u32> =
            ShardedEventQueue::new(2, SimDuration::from_millis(100));
        q.schedule_arrival(0, SimTime::from_micros(1), 0);
        q.pop();
        q.schedule_at(1, SimTime::from_secs(1), 1);
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
