//! Synchronization metrics of the conservative-PDES sharded engine.
//!
//! Until PR 8 this module also held `ShardedEventQueue`, a serial facade
//! that *simulated* sharded execution: per-shard lanes, mailboxes and
//! lookahead windows, but with every handler running on the caller's
//! thread and delivery merged back into exact global `time‖seq` order. The
//! parallel engine in `concord-cluster` replaced it — each shard now owns
//! a plain [`EventQueue`](crate::EventQueue) lane, and a lookahead
//! window's shard batches execute concurrently on the work-stealing pool,
//! with cross-shard effects staged per shard and folded at the serial
//! window barrier in fixed shard order. Since PR 10 the fold itself is
//! *elidable*: cross-shard deliveries still happen at every window close,
//! but the serial control-plane fold (oracle updates, deferred read
//! classification, output publication) only runs when staged control
//! effects or the deferred-completion buffer demand it. What remains here
//! is the counter block the engine reports, because it is substrate-level
//! vocabulary: windows, staging, violations, (PR 8) how parallel the
//! window dispatch actually was, and (PR 10) how much synchronization the
//! run actually paid for.
//!
//! ## Determinism contract
//!
//! * `shards = 1` bypasses window bookkeeping entirely — the single lane
//!   is popped directly, so the serial engine's counters stay zero and its
//!   output is byte-identical to the pre-sharding engine.
//! * For a fixed shard count `> 1`, every counter (and the simulation
//!   output it summarizes) is a pure function of the seed: handler batches
//!   touch only shard-owned state, and barrier folds run serially in shard
//!   order, so the worker-thread count never changes a value. Outputs may
//!   differ *between* shard counts (per-shard RNG streams, window
//!   clamping), which is why golden digests are captured per shard count.

/// Counters describing how a sharded run synchronized, and how parallel it
/// was. All zeros for a serial (`shards = 1`) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardMetrics {
    /// Lookahead windows executed (barrier crossings). Each window anchors
    /// at the earliest pending key and extends by the lookahead bound.
    pub windows: u64,
    /// Cross-shard events staged in a per-shard outbox and delivered at a
    /// window barrier.
    pub staged: u64,
    /// Staged events whose timestamp fell *inside* the window being sealed
    /// (a lookahead violation): delivery was clamped to the window
    /// boundary. A nonzero count means the configured lookahead bound was
    /// optimistic for the traffic actually observed (zero-infimum delay
    /// distributions, or a degraded link invalidating the precomputed
    /// bound).
    pub violations: u64,
    /// Windows in which at least two shards had non-empty handler batches —
    /// windows where the parallel dispatch had actual concurrency to
    /// exploit. Depends only on the shard count, never the thread count.
    pub parallel_batches: u64,
    /// Serial barrier folds executed. Until PR 10 every window folded
    /// exactly once; with barrier elision a fold only runs when deferred
    /// control-plane work demands it (staged control effects, or the
    /// deferred completion buffer reaching its flush threshold), so
    /// `barrier_folds + elided_barriers >= windows` is the invariant —
    /// flushes forced between windows (before a control event, at a
    /// deadline, or when the queues drain) count here too.
    pub barrier_folds: u64,
    /// Largest number of events any single shard handled inside one
    /// window — the granularity knob for judging dispatch overhead against
    /// useful work per batch.
    pub max_batch_len: u64,
    /// Windows closed *without* a serial fold: cross-shard deliveries were
    /// applied, but completion classification / oracle updates were
    /// deferred because nothing in the window demanded fold-time work.
    pub elided_barriers: u64,
    /// Windows whose start cursor jumped past quiet simulated time: the
    /// global next-event floor was beyond the previous window's boundary,
    /// so the engine fast-forwarded instead of marching barrier-by-barrier
    /// through empty windows.
    pub fast_forwards: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_zero() {
        let m = ShardMetrics::default();
        assert_eq!(
            (m.windows, m.staged, m.violations),
            (0, 0, 0),
            "serial runs must report untouched sync metrics"
        );
        assert_eq!(
            (m.parallel_batches, m.barrier_folds, m.max_batch_len),
            (0, 0, 0)
        );
        assert_eq!(
            (m.elided_barriers, m.fast_forwards),
            (0, 0),
            "barrier-elision counters must stay zero for serial runs"
        );
    }
}
