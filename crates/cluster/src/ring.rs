//! Partitioning and replica placement: the consistent-hash token ring and
//! the ordered (contiguous key-range) partitioner.
//!
//! Like Cassandra, placement starts from a [`Partitioner`]:
//!
//! * [`Partitioner::Hash`] — keys are hashed onto a token ring; each node
//!   owns a set of virtual-node tokens, and the replicas of a key are the
//!   owners of the first distinct nodes encountered walking the ring
//!   clockwise from the key's token (Cassandra's random/Murmur3
//!   partitioner). Consecutive record ids scatter over the ring, so a range
//!   scan finds only a subset of its range on any one replica.
//! * [`Partitioner::Ordered`] — the dense key space is cut into contiguous
//!   4096-key *slices* ([`ORDERED_SLICE_BITS`], aligned with the paged
//!   tables' page size); every key of a slice has the same replica set, so
//!   a node owns contiguous key ranges (Cassandra's ordered partitioner).
//!   Range scans are coverage-faithful: the owners of a slice hold *every*
//!   record in it, and a scan that straddles a slice boundary gathers the
//!   remainder from the next slice's owners. Computed placements are
//!   memoized per slice in a [`PagedTable`] range index (the fourth user of
//!   the shared paged substrate), invalidated wholesale when the ring is
//!   rebuilt.
//!
//! On top of either partitioner, two placement strategies are provided:
//!
//! * [`ReplicationStrategy::Simple`] — the next `RF` distinct nodes in walk
//!   order, regardless of datacenter (Cassandra's `SimpleStrategy`);
//! * [`ReplicationStrategy::NetworkTopology`] — replicas spread over
//!   datacenters as evenly as possible (Cassandra's
//!   `NetworkTopologyStrategy`), which is how the paper deploys Cassandra
//!   over two availability zones / two Grid'5000 sites.

use crate::paged::PagedTable;
use crate::types::Key;
use concord_sim::{DcId, InlineVec, NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// How keys are mapped to owning nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Partitioner {
    /// Consistent-hash token ring (Cassandra's random partitioner). The
    /// default; all pre-existing behaviour.
    #[default]
    Hash,
    /// Contiguous key-range ownership per node (Cassandra's ordered
    /// partitioner): the key space is cut into 4096-key slices, adjacent
    /// slices round-robin over the nodes, and crashed nodes' slices fall to
    /// the next surviving node in id order.
    Ordered,
}

impl Partitioner {
    /// Parse a command-line name (`hash` | `ordered`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "hash" => Some(Partitioner::Hash),
            "ordered" => Some(Partitioner::Ordered),
            _ => None,
        }
    }

    /// Short label for banners and tables.
    pub fn label(&self) -> &'static str {
        match self {
            Partitioner::Hash => "hash",
            Partitioner::Ordered => "ordered",
        }
    }
}

/// How replicas are placed across the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicationStrategy {
    /// Next `RF` distinct nodes on the ring.
    Simple,
    /// Replicas balanced across datacenters (round-robin over DCs while
    /// walking the ring).
    NetworkTopology,
}

/// Keys per ordered-partitioner slice, as a shift (2^12 = 4096, matching the
/// paged tables' page size, so a scan crossing an ownership boundary is also
/// crossing a page boundary in every per-key table).
pub const ORDERED_SLICE_BITS: u32 = 12;
/// Number of consecutive keys in one ordered-partitioner slice.
pub const ORDERED_SLICE_KEYS: u64 = 1 << ORDERED_SLICE_BITS;

/// Slices the ordered partitioner's range index memoizes (2^22 slices =
/// 2^34 keys, far beyond any dense-contract record count). Probing a slice
/// past this bound — arbitrary keys from tests or tools — computes the
/// placement without caching, so the direct-indexed memo can never be blown
/// up by one stray sparse key.
const MEMOIZED_SLICES: u64 = 1 << 22;

/// 64-bit mixer used as the ring hash (SplitMix64 finalizer — well-spread,
/// deterministic, dependency-free).
#[inline]
fn ring_hash(value: u64) -> u64 {
    let mut z = value.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The ordered partitioner's state: which nodes are in the ring, plus the
/// per-slice range index memoizing computed placements.
#[derive(Debug)]
struct OrderedIndex {
    /// `alive[node_id]` — false for nodes withdrawn from the ring. Slices of
    /// a withdrawn node fall to the next alive node in id order, so
    /// survivors keep their ranges across reconfigurations (mirroring the
    /// token ring's stable-token property).
    alive: Vec<bool>,
    /// The per-slice range index: `slice → [node; RF]` with `u32::MAX` as
    /// the not-yet-computed sentinel, RF lanes per slot. A [`PagedTable`]
    /// like every other dense-key table; rebuilt rings start a fresh index.
    /// Interior-mutable because placement lookups go through `&Ring`; a
    /// `Mutex` (not `RefCell`) because the ring is shared read-only across
    /// shard handlers inside a parallel window, and a first-touch lookup
    /// fills the memo. The memoized entry is a pure function of the ring,
    /// so fill order across threads never changes a lookup's result — the
    /// lock only serializes the memo write, and steady-state lookups hit
    /// the per-shard [`ReplicaCache`](crate::cluster) first anyway.
    range_index: Mutex<PagedTable<u32>>,
}

impl Clone for OrderedIndex {
    fn clone(&self) -> Self {
        OrderedIndex {
            alive: self.alive.clone(),
            range_index: Mutex::new(self.range_index.lock().expect("range index lock").clone()),
        }
    }
}

/// The partitioner state plus placement configuration.
///
/// For the hash partitioner, tokens are kept in a flat sorted array: a
/// replica lookup is one binary search plus a clockwise walk over contiguous
/// memory, instead of a B-tree range traversal — this lookup runs once per
/// simulated write *and* read, so it is squarely on the hot path. The
/// ordered partitioner keeps no tokens; its lookup is a shift plus a memo
/// probe of the range index.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(token, owning node)`, sorted by token (hash partitioner only).
    tokens: Vec<(u64, NodeId)>,
    /// Ordered-partitioner state; `None` under [`Partitioner::Hash`].
    ordered: Option<OrderedIndex>,
    partitioner: Partitioner,
    replication_factor: u32,
    strategy: ReplicationStrategy,
    /// Node → datacenter, copied from the topology for placement decisions.
    node_dc: Vec<DcId>,
    dc_count: usize,
}

impl Ring {
    /// Build a ring for all nodes of `topology` with `vnodes` virtual nodes
    /// per physical node.
    pub fn new(
        topology: &Topology,
        replication_factor: u32,
        strategy: ReplicationStrategy,
        vnodes: u32,
        partitioner: Partitioner,
    ) -> Self {
        assert!(replication_factor >= 1, "replication factor must be ≥ 1");
        assert!(
            replication_factor as usize <= topology.node_count(),
            "replication factor {replication_factor} exceeds node count {}",
            topology.node_count()
        );
        assert!(vnodes >= 1);
        Self::excluding(
            topology,
            replication_factor,
            strategy,
            vnodes,
            partitioner,
            |_| false,
        )
    }

    /// Build a ring over the nodes of `topology` for which `excluded`
    /// returns `false` — the reconfiguration path for permanent node
    /// crashes: a crashed node's vnode tokens (hash) or key slices
    /// (ordered) are withdrawn, so its former ranges fall to the next nodes
    /// in walk order (exactly what removing a Cassandra node does to
    /// ownership).
    ///
    /// Unlike [`Ring::new`] this is lenient: if fewer than
    /// `replication_factor` nodes survive, the effective replication factor
    /// is clamped to the survivor count (and a fully crashed cluster yields
    /// an empty ring that maps every key to zero replicas).
    pub fn excluding(
        topology: &Topology,
        replication_factor: u32,
        strategy: ReplicationStrategy,
        vnodes: u32,
        partitioner: Partitioner,
        excluded: impl Fn(NodeId) -> bool,
    ) -> Self {
        assert!(vnodes >= 1);
        // Build through a BTreeMap to keep the original "last writer wins on
        // token collision" semantics, then flatten to a sorted array.
        let mut token_map = BTreeMap::new();
        let mut alive_flags = vec![false; topology.node_count()];
        let mut alive = 0u32;
        for node in topology.nodes() {
            if excluded(node) {
                continue;
            }
            alive += 1;
            alive_flags[node.0 as usize] = true;
            for v in 0..vnodes {
                // Derive deterministic, well-spread tokens per (node, vnode).
                // Tokens depend only on (node, vnode), so the surviving
                // nodes keep their positions across reconfigurations.
                let token = ring_hash(((node.0 as u64) << 32) ^ (v as u64) ^ 0xA5A5_5A5A);
                token_map.insert(token, node);
            }
        }
        let node_dc = topology.nodes().map(|n| topology.dc_of(n)).collect();
        let replication_factor = replication_factor.min(alive);
        let ordered = match partitioner {
            Partitioner::Hash => None,
            Partitioner::Ordered => Some(OrderedIndex {
                alive: alive_flags,
                range_index: Mutex::new(PagedTable::with_lanes(
                    u32::MAX,
                    (replication_factor as usize).max(1),
                )),
            }),
        };
        Ring {
            tokens: token_map.into_iter().collect(),
            ordered,
            partitioner,
            replication_factor,
            strategy,
            node_dc,
            dc_count: topology.dc_count(),
        }
    }

    /// The replication factor.
    pub fn replication_factor(&self) -> u32 {
        self.replication_factor
    }

    /// The placement strategy.
    pub fn strategy(&self) -> ReplicationStrategy {
        self.strategy
    }

    /// The partitioner in effect.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// The ordered-partitioner slice a key belongs to (keys of one slice
    /// share a replica set). Meaningful for any partitioner, used only by
    /// the ordered one.
    #[inline]
    pub fn slice_of(key: Key) -> u64 {
        key.0 >> ORDERED_SLICE_BITS
    }

    /// The token a key hashes to.
    pub fn token_of(&self, key: Key) -> u64 {
        ring_hash(key.0 ^ 0x5117_BEEF_0000_0001)
    }

    /// The ordered list of replica nodes for `key` (primary first).
    pub fn replicas(&self, key: Key) -> Vec<NodeId> {
        let mut replicas = Vec::with_capacity(self.replication_factor as usize);
        self.replicas_into(key, &mut replicas);
        replicas
    }

    /// Fill `replicas` with the ordered replica nodes for `key` (primary
    /// first) without allocating: the hot-path variant of
    /// [`Ring::replicas`] — callers keep a scratch buffer alive across
    /// operations.
    pub fn replicas_into(&self, key: Key, replicas: &mut Vec<NodeId>) {
        match self.partitioner {
            Partitioner::Hash => self.hash_replicas_into(key, replicas),
            Partitioner::Ordered => self.ordered_replicas_into(Self::slice_of(key), replicas),
        }
    }

    /// Hash-partitioner placement: binary-search the key's token, walk the
    /// ring clockwise.
    fn hash_replicas_into(&self, key: Key, replicas: &mut Vec<NodeId>) {
        replicas.clear();
        let token = self.token_of(key);
        let rf = self.replication_factor as usize;

        // Walk the ring clockwise starting at the key's token, wrapping.
        let start = self.tokens.partition_point(|&(t, _)| t < token);
        let walk = self.tokens[start..]
            .iter()
            .chain(self.tokens[..start].iter())
            .map(|&(_, node)| node);
        self.fill_replicas(walk, rf, replicas);
    }

    /// Ordered-partitioner placement: every key of a slice maps to the same
    /// replica set — primary = the first alive node at or after
    /// `slice % node_count` in id order, the rest following in walk order
    /// (with the same DC balancing as the hash walk). Memoized per slice in
    /// the range index.
    fn ordered_replicas_into(&self, slice: u64, replicas: &mut Vec<NodeId>) {
        replicas.clear();
        let rf = self.replication_factor as usize;
        if rf == 0 {
            return; // fully crashed cluster
        }
        let index = self
            .ordered
            .as_ref()
            .expect("ordered partitioner state exists");
        // The range index is direct-indexed by slice, so it only memoizes
        // the dense-contract key space; a probe far outside it (arbitrary
        // keys in tests/tools) is computed without caching instead of
        // materializing page pointers up to that slice.
        let memoize = slice < MEMOIZED_SLICES;
        if memoize {
            let memo = index.range_index.lock().expect("range index lock");
            if let Some(entry) = memo.entry(slice) {
                if entry[0] != u32::MAX {
                    replicas.extend(entry.iter().map(|&n| NodeId(n)));
                    return;
                }
            }
        }
        let total = index.alive.len();
        let start = (slice % total as u64) as usize;
        let walk = (start..start + total)
            .map(|i| NodeId((i % total) as u32))
            .filter(|n| index.alive[n.0 as usize]);
        self.fill_replicas(walk, rf, replicas);
        debug_assert_eq!(replicas.len(), rf, "placement yields exactly RF nodes");
        if memoize && replicas.len() == rf {
            let mut memo = index.range_index.lock().expect("range index lock");
            let entry = memo.entry_mut(slice);
            for (slot, node) in entry.iter_mut().zip(replicas.iter()) {
                *slot = node.0;
            }
        }
    }

    /// Take the first `rf` distinct replicas from a node walk, applying the
    /// configured placement strategy. Shared by both partitioners — the
    /// hash partitioner feeds it the clockwise token walk, the ordered one
    /// the id-order walk from a slice's primary position.
    fn fill_replicas(
        &self,
        walk: impl Iterator<Item = NodeId>,
        rf: usize,
        replicas: &mut Vec<NodeId>,
    ) {
        match self.strategy {
            ReplicationStrategy::Simple => {
                for node in walk {
                    if !replicas.contains(&node) {
                        replicas.push(node);
                        if replicas.len() == rf {
                            break;
                        }
                    }
                }
            }
            ReplicationStrategy::NetworkTopology => {
                // Spread replicas over DCs: allow a DC to take another
                // replica only when its share is below its even allotment.
                // Both side tables live on the stack (spilling only for
                // degenerate topologies) — no allocation per lookup.
                let dc_quota = rf.div_ceil(self.dc_count);
                let mut per_dc_count: InlineVec<(u16, u32)> = InlineVec::new();
                let mut skipped: InlineVec<u32> = InlineVec::new();
                for node in walk {
                    if replicas.len() == rf {
                        break;
                    }
                    if replicas.contains(&node) {
                        continue;
                    }
                    let dc = self.node_dc[node.0 as usize].0;
                    let mut taken = false;
                    let mut seen_dc = false;
                    for entry in per_dc_count.iter_mut() {
                        if entry.0 == dc {
                            seen_dc = true;
                            if (entry.1 as usize) < dc_quota {
                                entry.1 += 1;
                                taken = true;
                            }
                            break;
                        }
                    }
                    if !seen_dc {
                        per_dc_count.push((dc, 1));
                        taken = true;
                    }
                    if taken {
                        replicas.push(node);
                    } else if !skipped.iter().any(|&n| n == node.0) {
                        skipped.push(node.0);
                    }
                }
                // If quotas could not be met (e.g. a tiny DC), fill from the
                // skipped nodes in ring order.
                for &node in skipped.iter() {
                    if replicas.len() == rf {
                        break;
                    }
                    let node = NodeId(node);
                    if !replicas.contains(&node) {
                        replicas.push(node);
                    }
                }
            }
        }
    }

    /// The primary replica for `key`.
    pub fn primary(&self, key: Key) -> NodeId {
        self.replicas(key)[0]
    }

    /// Approximate ownership fraction of each node (share of sampled keys for
    /// which the node is a replica). Used by tests and capacity planning.
    pub fn ownership(&self, sample_keys: u64) -> BTreeMap<NodeId, f64> {
        let mut counts: BTreeMap<NodeId, u64> = BTreeMap::new();
        for k in 0..sample_keys {
            for node in self.replicas(Key(k)) {
                *counts.entry(node).or_insert(0) += 1;
            }
        }
        let total = (sample_keys * self.replication_factor as u64).max(1) as f64;
        counts
            .into_iter()
            .map(|(n, c)| (n, c as f64 / total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concord_sim::RegionId;

    fn topo_2dc(nodes: usize) -> Topology {
        Topology::spread(nodes, &[("dc-a", RegionId(0)), ("dc-b", RegionId(0))])
    }

    fn hash_ring(topo: &Topology, rf: u32, strategy: ReplicationStrategy, vnodes: u32) -> Ring {
        Ring::new(topo, rf, strategy, vnodes, Partitioner::Hash)
    }

    fn ordered_ring(topo: &Topology, rf: u32, strategy: ReplicationStrategy) -> Ring {
        Ring::new(topo, rf, strategy, 16, Partitioner::Ordered)
    }

    #[test]
    fn replicas_are_distinct_and_match_rf() {
        let topo = Topology::single_dc(10);
        let ring = hash_ring(&topo, 3, ReplicationStrategy::Simple, 8);
        for k in 0..1000 {
            let reps = ring.replicas(Key(k));
            assert_eq!(reps.len(), 3);
            let mut sorted = reps.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct");
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let topo = topo_2dc(8);
        let ring1 = hash_ring(&topo, 3, ReplicationStrategy::NetworkTopology, 16);
        let ring2 = hash_ring(&topo, 3, ReplicationStrategy::NetworkTopology, 16);
        for k in 0..500 {
            assert_eq!(ring1.replicas(Key(k)), ring2.replicas(Key(k)));
        }
    }

    #[test]
    fn network_topology_spreads_over_dcs() {
        let topo = topo_2dc(10);
        let ring = hash_ring(&topo, 4, ReplicationStrategy::NetworkTopology, 16);
        for k in 0..500 {
            let reps = ring.replicas(Key(k));
            let dc_a = reps.iter().filter(|n| n.0 % 2 == 0).count();
            let dc_b = reps.len() - dc_a;
            assert_eq!(
                dc_a, 2,
                "key {k}: replicas {reps:?} must be 2+2 over the DCs"
            );
            assert_eq!(dc_b, 2);
        }
    }

    #[test]
    fn network_topology_with_odd_rf() {
        let topo = topo_2dc(10);
        let ring = hash_ring(&topo, 5, ReplicationStrategy::NetworkTopology, 16);
        for k in 0..200 {
            let reps = ring.replicas(Key(k));
            assert_eq!(reps.len(), 5);
            let dc_a = reps.iter().filter(|n| n.0 % 2 == 0).count();
            // Even allotment of 5 over 2 DCs is 3 + 2 (either way round).
            assert!((2..=3).contains(&dc_a), "key {k}: {reps:?}");
        }
    }

    #[test]
    fn ownership_is_roughly_balanced() {
        let topo = Topology::single_dc(8);
        let ring = hash_ring(&topo, 3, ReplicationStrategy::Simple, 64);
        let ownership = ring.ownership(20_000);
        assert_eq!(ownership.len(), 8, "every node should own part of the ring");
        let ideal = 1.0 / 8.0;
        for (node, share) in ownership {
            assert!(
                (share - ideal).abs() < ideal * 0.5,
                "{node} owns {share:.3}, ideal {ideal:.3}"
            );
        }
    }

    #[test]
    fn rf_one_gives_single_replica() {
        let topo = Topology::single_dc(4);
        let ring = hash_ring(&topo, 1, ReplicationStrategy::Simple, 8);
        for k in 0..100 {
            assert_eq!(ring.replicas(Key(k)).len(), 1);
            assert_eq!(ring.primary(Key(k)), ring.replicas(Key(k))[0]);
        }
    }

    #[test]
    fn excluding_withdraws_tokens_and_keeps_survivor_positions() {
        let topo = Topology::single_dc(6);
        let full = hash_ring(&topo, 3, ReplicationStrategy::Simple, 16);
        let partial = Ring::excluding(
            &topo,
            3,
            ReplicationStrategy::Simple,
            16,
            Partitioner::Hash,
            |n| n.0 == 2,
        );
        assert_eq!(partial.replication_factor(), 3);
        for k in 0..500 {
            let reps = partial.replicas(Key(k));
            assert_eq!(reps.len(), 3);
            assert!(!reps.contains(&NodeId(2)), "excluded node owns nothing");
            // Survivors that were replicas before stay replicas, in order.
            let survivors: Vec<NodeId> = full
                .replicas(Key(k))
                .into_iter()
                .filter(|n| n.0 != 2)
                .collect();
            assert_eq!(&reps[..survivors.len()], &survivors[..]);
        }
    }

    #[test]
    fn excluding_clamps_rf_to_survivors() {
        let topo = Topology::single_dc(4);
        let ring = Ring::excluding(
            &topo,
            3,
            ReplicationStrategy::Simple,
            8,
            Partitioner::Hash,
            |n| n.0 >= 2,
        );
        assert_eq!(ring.replication_factor(), 2);
        assert_eq!(ring.replicas(Key(9)).len(), 2);
        let empty = Ring::excluding(
            &topo,
            3,
            ReplicationStrategy::Simple,
            8,
            Partitioner::Hash,
            |_| true,
        );
        assert_eq!(empty.replication_factor(), 0);
        assert!(empty.replicas(Key(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds node count")]
    fn rf_larger_than_cluster_rejected() {
        let topo = Topology::single_dc(2);
        hash_ring(&topo, 3, ReplicationStrategy::Simple, 8);
    }

    #[test]
    fn different_keys_map_to_different_primaries() {
        let topo = Topology::single_dc(16);
        let ring = hash_ring(&topo, 3, ReplicationStrategy::Simple, 32);
        let primaries: std::collections::HashSet<NodeId> =
            (0..2000).map(|k| ring.primary(Key(k))).collect();
        assert!(
            primaries.len() > 10,
            "keys should spread over many primaries"
        );
    }

    // ---- ordered partitioner ----

    #[test]
    fn ordered_keys_of_one_slice_share_a_replica_set() {
        let topo = Topology::single_dc(6);
        let ring = ordered_ring(&topo, 3, ReplicationStrategy::Simple);
        let slice0 = ring.replicas(Key(0));
        assert_eq!(slice0.len(), 3);
        for k in 0..ORDERED_SLICE_KEYS {
            assert_eq!(ring.replicas(Key(k)), slice0, "key {k}");
        }
        // The next slice rotates to the next primary.
        let slice1 = ring.replicas(Key(ORDERED_SLICE_KEYS));
        assert_ne!(slice0, slice1);
        assert_eq!(slice1[0], NodeId(1), "adjacent slices round-robin");
    }

    #[test]
    fn ordered_placement_is_contiguous_and_deterministic() {
        let topo = Topology::single_dc(5);
        let ring1 = ordered_ring(&topo, 3, ReplicationStrategy::Simple);
        let ring2 = ordered_ring(&topo, 3, ReplicationStrategy::Simple);
        for slice in 0..10u64 {
            let key = Key(slice * ORDERED_SLICE_KEYS + 7);
            assert_eq!(ring1.replicas(key), ring2.replicas(key));
            // Simple strategy: consecutive nodes in id order, wrapping.
            let reps = ring1.replicas(key);
            let start = (slice % 5) as u32;
            let expect: Vec<NodeId> = (0..3).map(|i| NodeId((start + i) % 5)).collect();
            assert_eq!(reps, expect, "slice {slice}");
        }
    }

    #[test]
    fn ordered_network_topology_balances_dcs() {
        let topo = topo_2dc(8);
        let ring = ordered_ring(&topo, 4, ReplicationStrategy::NetworkTopology);
        for slice in 0..16u64 {
            let reps = ring.replicas(Key(slice * ORDERED_SLICE_KEYS));
            assert_eq!(reps.len(), 4);
            let dc_a = reps.iter().filter(|n| n.0 % 2 == 0).count();
            assert_eq!(dc_a, 2, "slice {slice}: {reps:?} must be 2+2 over DCs");
        }
    }

    #[test]
    fn ordered_excluding_moves_only_the_crashed_nodes_ranges() {
        let topo = Topology::single_dc(6);
        let full = ordered_ring(&topo, 3, ReplicationStrategy::Simple);
        let partial = Ring::excluding(
            &topo,
            3,
            ReplicationStrategy::Simple,
            16,
            Partitioner::Ordered,
            |n| n.0 == 2,
        );
        for slice in 0..24u64 {
            let key = Key(slice * ORDERED_SLICE_KEYS);
            let reps = partial.replicas(key);
            assert_eq!(reps.len(), 3);
            assert!(!reps.contains(&NodeId(2)), "crashed node owns nothing");
            // Survivors that were replicas before stay replicas, in order —
            // the crashed node's ranges fall to the next alive node.
            let survivors: Vec<NodeId> = full
                .replicas(key)
                .into_iter()
                .filter(|n| n.0 != 2)
                .collect();
            assert_eq!(&reps[..survivors.len()], &survivors[..], "slice {slice}");
        }
    }

    #[test]
    fn ordered_fully_crashed_ring_maps_to_no_replicas() {
        let topo = Topology::single_dc(4);
        let empty = Ring::excluding(
            &topo,
            3,
            ReplicationStrategy::Simple,
            8,
            Partitioner::Ordered,
            |_| true,
        );
        assert_eq!(empty.replication_factor(), 0);
        assert!(empty.replicas(Key(1)).is_empty());
    }

    #[test]
    fn partitioner_parsing_and_labels() {
        assert_eq!(Partitioner::from_name("hash"), Some(Partitioner::Hash));
        assert_eq!(
            Partitioner::from_name("ordered"),
            Some(Partitioner::Ordered)
        );
        assert_eq!(Partitioner::from_name("range"), None);
        assert_eq!(Partitioner::default(), Partitioner::Hash);
        assert_eq!(Partitioner::Ordered.label(), "ordered");
    }
}
