//! Cluster-wide metering.
//!
//! Everything the cost model (`concord-cost`) and the experiment reports need
//! is metered here: operation counts and latencies, ground-truth stale reads,
//! network bytes per link class (the paper's network-cost component), and
//! storage I/O (the paper's storage-cost component).

use crate::types::OpKind;
use concord_monitor::LatencyHistogram;
use concord_sim::{LinkClass, SimDuration};
use serde::{Deserialize, Serialize};

/// Streaming latency statistics: the log-bucketed histogram from
/// `concord-monitor` recorded in microseconds.
///
/// This replaced a 64 Ki-sample reservoir: memory is bounded by the fixed
/// bucket array regardless of run length, recording is O(1) with no RNG
/// draw, the mean is exact (integer microsecond sum), and quantiles read the
/// bucket counts directly instead of sorting a sample vector on every call
/// (≈3% bounded relative error, same as the monitor's reporting path).
/// When validating the streaming histogram's error bound matters more than
/// memory (fault-scenario tail latencies), the stats can additionally keep
/// every raw sample behind an opt-in flag ([`LatencyStats::with_exact`]):
/// [`LatencyStats::exact_quantile_ms`] then computes true order statistics
/// to compare against [`LatencyStats::quantile_ms`].
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    histogram: LatencyHistogram,
    /// Raw microsecond samples, kept only when exact recording is enabled.
    exact: Option<Vec<u64>>,
}

/// Former name of [`LatencyStats`], kept for downstream compatibility.
pub type LatencyReservoir = LatencyStats;

impl LatencyStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty statistics with the exact-sample recorder enabled: every
    /// recorded latency is additionally kept verbatim, so
    /// [`LatencyStats::exact_quantile_ms`] can compute true order
    /// statistics. Off by default — it costs 8 bytes per sample, which the
    /// streaming histogram exists to avoid.
    pub fn with_exact() -> Self {
        LatencyStats {
            histogram: LatencyHistogram::new(),
            exact: Some(Vec::new()),
        }
    }

    /// Enable the exact-sample recorder (samples recorded before the call
    /// are not recoverable; enable before the run starts).
    pub fn enable_exact(&mut self) {
        if self.exact.is_none() {
            self.exact = Some(Vec::new());
        }
    }

    /// Whether the exact-sample recorder is enabled.
    pub fn exact_enabled(&self) -> bool {
        self.exact.is_some()
    }

    /// Record a latency.
    pub fn record(&mut self, latency: SimDuration) {
        self.histogram.record(latency.as_micros());
        if let Some(samples) = &mut self.exact {
            samples.push(latency.as_micros());
        }
    }

    /// Number of recorded latencies.
    pub fn count(&self) -> u64 {
        self.histogram.count()
    }

    /// Mean latency in milliseconds (exact).
    pub fn mean_ms(&self) -> f64 {
        self.histogram.mean() / 1e3
    }

    /// Approximate `q`-quantile in milliseconds (`None` if empty).
    pub fn quantile_ms(&self, q: f64) -> Option<f64> {
        self.histogram.quantile(q).map(|us| us as f64 / 1e3)
    }

    /// Largest recorded latency in milliseconds (exact).
    pub fn max_ms(&self) -> f64 {
        self.histogram.max().unwrap_or(0) as f64 / 1e3
    }

    /// Exact `q`-quantile in milliseconds from the raw samples (linear
    /// interpolation between closest ranks). Returns `None` if the
    /// exact-sample recorder is disabled or no samples were recorded —
    /// callers validating the histogram bound should treat `None` as a
    /// configuration error, not as "no difference". Sorts the samples on
    /// every call; query several quantiles through
    /// [`LatencyStats::exact_quantiles_ms`] to sort once.
    pub fn exact_quantile_ms(&self, q: f64) -> Option<f64> {
        self.exact_quantiles_ms(&[q]).map(|v| v[0])
    }

    /// Exact quantiles in milliseconds for every `q` in `qs`, sharing one
    /// sort of the raw samples (see [`LatencyStats::exact_quantile_ms`]).
    pub fn exact_quantiles_ms(&self, qs: &[f64]) -> Option<Vec<f64>> {
        let samples = self.exact.as_ref()?;
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.iter().map(|&us| us as f64).collect();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN in micros"));
        Some(
            qs.iter()
                .map(|&q| concord_sim::percentile_sorted(&sorted, q) / 1e3)
                .collect(),
        )
    }

    /// The underlying microsecond histogram.
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.histogram
    }

    /// Fold `other`'s samples into `self` — the parallel sharded engine's
    /// barrier aggregation (per-shard stats folded in fixed shard order).
    /// Histograms add bucket-wise; exact sample vectors concatenate in fold
    /// order, so the merged order statistics are a pure function of the
    /// shard count.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.histogram.merge(&other.histogram);
        if let Some(theirs) = &other.exact {
            self.exact
                .get_or_insert_with(Vec::new)
                .extend_from_slice(theirs);
        }
    }

    /// Number of raw samples held by the exact recorder (0 when disabled).
    pub fn exact_len(&self) -> usize {
        self.exact.as_ref().map_or(0, Vec::len)
    }

    /// Reserve room for `additional` raw samples ahead of a chain of
    /// [`LatencyStats::merge`] calls, so a multi-source fold grows the
    /// exact vector once instead of reallocating per source. A no-op when
    /// `additional` is zero (in particular it never materializes the
    /// recorder for all-histogram merges).
    pub fn reserve_exact_samples(&mut self, additional: usize) {
        if additional == 0 {
            return;
        }
        self.exact.get_or_insert_with(Vec::new).reserve(additional);
    }
}

/// Bytes transferred per network link class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficBytes {
    /// Same-node (loopback) bytes — free in every pricing model.
    pub local: u64,
    /// Bytes between nodes of the same datacenter.
    pub intra_dc: u64,
    /// Bytes between datacenters of the same region (billed inter-AZ on EC2).
    pub inter_dc: u64,
    /// Bytes between regions (billed as regional transfer / egress).
    pub inter_region: u64,
}

impl TrafficBytes {
    /// Add `bytes` on a link of class `class`.
    pub fn add(&mut self, class: LinkClass, bytes: u64) {
        match class {
            LinkClass::Local => self.local += bytes,
            LinkClass::IntraDc => self.intra_dc += bytes,
            LinkClass::InterDc => self.inter_dc += bytes,
            LinkClass::InterRegion => self.inter_region += bytes,
        }
    }

    /// Total bytes that crossed a datacenter boundary (inter-DC + inter-region).
    pub fn cross_dc_total(&self) -> u64 {
        self.inter_dc + self.inter_region
    }

    /// Total bytes over all link classes.
    pub fn total(&self) -> u64 {
        self.local + self.intra_dc + self.inter_dc + self.inter_region
    }

    /// Add `other`'s per-class byte counts into `self`.
    pub fn merge(&mut self, other: &TrafficBytes) {
        self.local += other.local;
        self.intra_dc += other.intra_dc;
        self.inter_dc += other.inter_dc;
        self.inter_region += other.inter_region;
    }
}

/// Aggregate metrics of a cluster run.
#[derive(Debug, Clone, Default)]
pub struct ClusterMetrics {
    /// Completed read operations.
    pub reads_completed: u64,
    /// Completed write operations.
    pub writes_completed: u64,
    /// Operations that timed out before meeting their consistency level.
    pub timeouts: u64,
    /// Ground-truth stale reads (mirrors the oracle's counter).
    pub stale_reads: u64,
    /// Read latencies.
    pub read_latency: LatencyReservoir,
    /// Write latencies.
    pub write_latency: LatencyReservoir,
    /// Time for writes to reach *all* replicas.
    pub propagation: LatencyReservoir,
    /// Network traffic per link class.
    pub traffic: TrafficBytes,
    /// Replica-level storage read operations.
    pub storage_read_ops: u64,
    /// Replica-level storage write operations.
    pub storage_write_ops: u64,
    /// Replica messages sent (requests + responses + propagation).
    pub messages: u64,
    /// Sum over reads of the number of replicas contacted.
    pub read_replicas_contacted: u64,
    /// Sum over writes of the number of replica acks awaited.
    pub write_acks_awaited: u64,
    /// Timed-out attempts that were re-issued (`retry_on_timeout` budget).
    pub retries: u64,
    /// Messages dropped in transit by a datacenter partition.
    pub messages_lost: u64,
    /// Hints queued by coordinators for down replicas (hinted handoff).
    pub hints_queued: u64,
    /// Hints replayed to their destination after it came back up.
    pub hints_replayed: u64,
    /// Hints dropped because the destination's hint queue was full (left
    /// for anti-entropy to catch).
    pub hints_dropped: u64,
    /// Per-page version summaries compared by anti-entropy sweeps and
    /// recovery migration.
    pub repair_pages_compared: u64,
    /// Records streamed between replicas to reconcile divergent pages
    /// (hint replays not included — those are counted in `hints_replayed`).
    pub repair_records_streamed: u64,
    /// Network bytes attributable to the repair plane (summaries, streamed
    /// records, hint replays), by link class. Also included in `traffic`,
    /// so the bill prices repair bytes like any other transfer; this meter
    /// breaks the repair share out.
    pub repair_traffic: TrafficBytes,
    /// Speculative duplicate read requests issued after `hedge_delay`
    /// (hedged reads; resilience layer).
    pub hedged_requests: u64,
    /// Reads whose completing response came from the hedge target — the
    /// cases where the speculative request actually cut the tail.
    pub hedge_wins: u64,
    /// Timed-out attempts re-issued after an exponential backoff delay
    /// (subset of `retries`; only counted when backoff is enabled).
    pub backoff_retries: u64,
    /// Per-node circuit breakers tripped open by consecutive timeout
    /// strikes (`ReplicaSelection::Dynamic` only).
    pub breaker_opens: u64,
    /// Network bytes attributable to hedged read requests, by link class.
    /// Also included in `traffic`, so the bill prices hedge bytes like any
    /// other transfer; this meter breaks the tail-tolerance share out.
    pub hedge_traffic: TrafficBytes,
}

impl ClusterMetrics {
    /// New empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed client operation.
    pub fn record_completion(&mut self, kind: OpKind, latency: SimDuration, stale: bool) {
        match kind {
            OpKind::Read => {
                self.reads_completed += 1;
                self.read_latency.record(latency);
                if stale {
                    self.stale_reads += 1;
                }
            }
            OpKind::Write => {
                self.writes_completed += 1;
                self.write_latency.record(latency);
            }
        }
    }

    /// Total completed operations.
    pub fn ops_completed(&self) -> u64 {
        self.reads_completed + self.writes_completed
    }

    /// Ground-truth stale-read rate.
    pub fn stale_read_rate(&self) -> f64 {
        if self.reads_completed == 0 {
            0.0
        } else {
            self.stale_reads as f64 / self.reads_completed as f64
        }
    }

    /// Throughput in operations per second over a run of length `makespan`.
    pub fn throughput(&self, makespan: SimDuration) -> f64 {
        let secs = makespan.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ops_completed() as f64 / secs
        }
    }

    /// Mean number of replicas contacted per read.
    pub fn mean_read_fanout(&self) -> f64 {
        if self.reads_completed == 0 {
            0.0
        } else {
            self.read_replicas_contacted as f64 / self.reads_completed as f64
        }
    }

    /// Fold `other` into `self`: counters add, latency statistics merge
    /// (see [`LatencyStats::merge`]). The parallel sharded engine keeps one
    /// `ClusterMetrics` per shard plus one for the control plane and folds
    /// them in fixed order (shard 0..n, then control) whenever an aggregate
    /// view is requested, so the merged report is bit-stable at any
    /// worker-thread count.
    pub fn merge(&mut self, other: &ClusterMetrics) {
        self.reads_completed += other.reads_completed;
        self.writes_completed += other.writes_completed;
        self.timeouts += other.timeouts;
        self.stale_reads += other.stale_reads;
        self.read_latency.merge(&other.read_latency);
        self.write_latency.merge(&other.write_latency);
        self.propagation.merge(&other.propagation);
        self.traffic.merge(&other.traffic);
        self.storage_read_ops += other.storage_read_ops;
        self.storage_write_ops += other.storage_write_ops;
        self.messages += other.messages;
        self.read_replicas_contacted += other.read_replicas_contacted;
        self.write_acks_awaited += other.write_acks_awaited;
        self.retries += other.retries;
        self.messages_lost += other.messages_lost;
        self.hints_queued += other.hints_queued;
        self.hints_replayed += other.hints_replayed;
        self.hints_dropped += other.hints_dropped;
        self.repair_pages_compared += other.repair_pages_compared;
        self.repair_records_streamed += other.repair_records_streamed;
        self.repair_traffic.merge(&other.repair_traffic);
        self.hedged_requests += other.hedged_requests;
        self.hedge_wins += other.hedge_wins;
        self.backoff_retries += other.backoff_retries;
        self.breaker_opens += other.breaker_opens;
        self.hedge_traffic.merge(&other.hedge_traffic);
    }

    /// Merge a fixed-order chain of sinks with pre-sized sample buffers:
    /// each exact-sample vector reserves the total incoming length up
    /// front, so an S-shard fold does at most one allocation per latency
    /// sink instead of one per `(sink, source)` pair. The merge order —
    /// and therefore the merged order statistics — is exactly the order
    /// of `others`, identical to calling [`ClusterMetrics::merge`] in a
    /// loop.
    pub fn merge_many<'a>(&mut self, others: impl Iterator<Item = &'a ClusterMetrics> + Clone) {
        let (mut reads, mut writes, mut props) = (0usize, 0usize, 0usize);
        for o in others.clone() {
            reads += o.read_latency.exact_len();
            writes += o.write_latency.exact_len();
            props += o.propagation.exact_len();
        }
        self.read_latency.reserve_exact_samples(reads);
        self.write_latency.reserve_exact_samples(writes);
        self.propagation.reserve_exact_samples(props);
        for o in others {
            self.merge(o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservoir_mean_and_quantiles() {
        let mut r = LatencyReservoir::new();
        for i in 1..=1000u64 {
            r.record(SimDuration::from_millis(i));
        }
        assert_eq!(r.count(), 1000);
        assert!((r.mean_ms() - 500.5).abs() < 1e-9);
        let p50 = r.quantile_ms(0.5).unwrap();
        assert!((p50 - 500.0).abs() < 20.0);
        assert_eq!(r.max_ms(), 1000.0);
    }

    #[test]
    fn reservoir_handles_more_than_capacity() {
        let mut r = LatencyReservoir::new();
        for i in 0..200_000u64 {
            r.record(SimDuration::from_micros(i % 1000));
        }
        assert_eq!(r.count(), 200_000);
        let p50 = r.quantile_ms(0.5).unwrap();
        assert!((p50 - 0.5).abs() < 0.05, "p50={p50}");
    }

    #[test]
    fn exact_recorder_is_opt_in_and_matches_order_statistics() {
        let mut plain = LatencyStats::new();
        plain.record(SimDuration::from_millis(5));
        assert!(!plain.exact_enabled());
        assert_eq!(plain.exact_quantile_ms(0.5), None);

        let mut exact = LatencyStats::with_exact();
        for i in 1..=1000u64 {
            exact.record(SimDuration::from_millis(i));
        }
        assert!(exact.exact_enabled());
        let p50 = exact.exact_quantile_ms(0.5).unwrap();
        assert!((p50 - 500.5).abs() < 1e-9, "true median, got {p50}");
        let p99 = exact.exact_quantile_ms(0.99).unwrap();
        assert!((p99 - 990.01).abs() < 1e-6, "true p99, got {p99}");
        // The histogram stays within its documented bound of the exact value.
        for q in [0.5, 0.9, 0.95, 0.99] {
            let approx = exact.quantile_ms(q).unwrap();
            let truth = exact.exact_quantile_ms(q).unwrap();
            assert!(
                (approx - truth).abs() <= truth * 0.03 + 1e-3,
                "q={q}: {approx} vs {truth}"
            );
        }
        // The batch form shares one sort and matches the single queries.
        let batch = exact.exact_quantiles_ms(&[0.5, 0.99]).unwrap();
        assert_eq!(batch[0], exact.exact_quantile_ms(0.5).unwrap());
        assert_eq!(batch[1], exact.exact_quantile_ms(0.99).unwrap());
        // Enabling later starts from the enable point.
        let mut late = LatencyStats::new();
        late.record(SimDuration::from_millis(1));
        late.enable_exact();
        late.record(SimDuration::from_millis(3));
        assert_eq!(late.exact_quantile_ms(1.0), Some(3.0));
        assert_eq!(late.count(), 2);
    }

    #[test]
    fn merge_many_matches_sequential_merges() {
        let sink = |seed: u64| {
            let mut m = ClusterMetrics::new();
            m.read_latency.enable_exact();
            for i in 0..50u64 {
                let stale = (seed + i).is_multiple_of(7);
                m.record_completion(
                    OpKind::Read,
                    SimDuration::from_micros(seed * 100 + i),
                    stale,
                );
                m.record_completion(
                    OpKind::Write,
                    SimDuration::from_micros(seed * 50 + i),
                    false,
                );
            }
            m.traffic.add(LinkClass::InterDc, seed * 10);
            m
        };
        let shards = [sink(1), sink(2), sink(3), sink(4)];

        let mut looped = shards[0].clone();
        for s in &shards[1..] {
            looped.merge(s);
        }
        let mut presized = shards[0].clone();
        presized.merge_many(shards[1..].iter());

        assert_eq!(presized.reads_completed, looped.reads_completed);
        assert_eq!(presized.stale_reads, looped.stale_reads);
        assert_eq!(presized.traffic, looped.traffic);
        assert_eq!(
            presized.read_latency.exact_len(),
            looped.read_latency.exact_len()
        );
        // Same merge order ⇒ identical order statistics, exact and binned.
        for q in [0.1, 0.5, 0.99, 1.0] {
            assert_eq!(
                presized.read_latency.exact_quantile_ms(q),
                looped.read_latency.exact_quantile_ms(q),
                "q={q}"
            );
            assert_eq!(
                presized.write_latency.quantile_ms(q),
                looped.write_latency.quantile_ms(q),
                "q={q}"
            );
        }
        // Reserving zero samples must not materialize a disabled recorder.
        let mut plain = LatencyStats::new();
        plain.reserve_exact_samples(0);
        assert!(!plain.exact_enabled());
    }

    #[test]
    fn traffic_accumulates_by_class() {
        let mut t = TrafficBytes::default();
        t.add(LinkClass::IntraDc, 100);
        t.add(LinkClass::InterDc, 50);
        t.add(LinkClass::InterRegion, 25);
        t.add(LinkClass::Local, 10);
        assert_eq!(t.total(), 185);
        assert_eq!(t.cross_dc_total(), 75);
        assert_eq!(t.intra_dc, 100);
    }

    #[test]
    fn completion_recording_updates_counters() {
        let mut m = ClusterMetrics::new();
        m.record_completion(OpKind::Read, SimDuration::from_millis(2), false);
        m.record_completion(OpKind::Read, SimDuration::from_millis(4), true);
        m.record_completion(OpKind::Write, SimDuration::from_millis(8), false);
        assert_eq!(m.ops_completed(), 3);
        assert_eq!(m.reads_completed, 2);
        assert_eq!(m.stale_reads, 1);
        assert!((m.stale_read_rate() - 0.5).abs() < 1e-12);
        assert!((m.read_latency.mean_ms() - 3.0).abs() < 1e-9);
        assert!((m.write_latency.mean_ms() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_uses_makespan() {
        let mut m = ClusterMetrics::new();
        for _ in 0..100 {
            m.record_completion(OpKind::Read, SimDuration::from_millis(1), false);
        }
        assert!((m.throughput(SimDuration::from_secs(10)) - 10.0).abs() < 1e-9);
        assert_eq!(m.throughput(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn fanout_mean() {
        let mut m = ClusterMetrics::new();
        m.reads_completed = 4;
        m.read_replicas_contacted = 10;
        assert!((m.mean_read_fanout() - 2.5).abs() < 1e-12);
    }
}
