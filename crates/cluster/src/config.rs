//! Cluster configuration.

use crate::consistency::ConsistencyLevel;
use crate::ring::{Partitioner, ReplicationStrategy};
use concord_sim::{DelayDistribution, NetworkModel, SimDuration, Topology};
use serde::{Deserialize, Serialize};

/// Complete configuration of a simulated storage cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Node placement into datacenters/regions.
    pub topology: Topology,
    /// Network latency model between nodes.
    pub network: NetworkModel,
    /// Replication factor.
    pub replication_factor: u32,
    /// Replica placement strategy.
    pub strategy: ReplicationStrategy,
    /// How keys map to owning nodes: the consistent-hash token ring
    /// (default, Cassandra's random partitioner) or contiguous key-range
    /// ownership (Cassandra's ordered partitioner, which makes range-scan
    /// *coverage* faithful — see [`Partitioner`]).
    #[serde(default)]
    pub partitioner: Partitioner,
    /// Virtual nodes per physical node on the ring.
    pub vnodes: u32,
    /// Default read consistency level (can be changed at runtime).
    pub read_level: ConsistencyLevel,
    /// Default write consistency level (can be changed at runtime).
    pub write_level: ConsistencyLevel,
    /// Local storage service time for a read on a replica.
    pub storage_read_latency: DelayDistribution,
    /// Local storage service time for a write on a replica.
    pub storage_write_latency: DelayDistribution,
    /// Number of storage operations a node can service concurrently;
    /// additional requests queue FIFO (this is what creates saturation and
    /// the throughput differences between consistency levels).
    pub node_concurrency: u32,
    /// Coordinator-side timeout for gathering the required replica responses.
    pub op_timeout: SimDuration,
    /// Whether coordinators send the full data request to every replica and
    /// repair stale replicas in the background (Cassandra's read repair).
    pub read_repair: bool,
    /// Protocol overhead added to every replica message, in bytes.
    pub message_overhead_bytes: u32,
    /// Size of a read request / ack message payload in bytes.
    pub small_message_bytes: u32,
    /// How many times a timed-out operation is re-issued (fresh coordinator
    /// and fan-out, client-visible latency spanning every attempt) before it
    /// completes with [`OpStatus::Timeout`](crate::OpStatus::Timeout).
    /// 0 (the default) keeps the historical fail-fast behaviour.
    pub retry_on_timeout: u32,
    /// When true, latency metrics additionally keep every raw sample so
    /// exact order-statistic percentiles can be computed next to the
    /// histogram's ≤3%-error quantiles (validation of fault-scenario tails;
    /// costs 8 bytes per completed operation).
    pub exact_latency_percentiles: bool,
}

impl ClusterConfig {
    /// A small single-datacenter cluster with LAN latencies — the default for
    /// unit tests.
    pub fn lan_test(nodes: usize, replication_factor: u32) -> Self {
        ClusterConfig {
            topology: Topology::single_dc(nodes),
            network: NetworkModel::lan(),
            replication_factor,
            strategy: ReplicationStrategy::Simple,
            partitioner: Partitioner::Hash,
            vnodes: 16,
            read_level: ConsistencyLevel::One,
            write_level: ConsistencyLevel::One,
            storage_read_latency: DelayDistribution::LogNormal {
                median_ms: 0.35,
                sigma: 0.4,
            },
            storage_write_latency: DelayDistribution::LogNormal {
                median_ms: 0.25,
                sigma: 0.4,
            },
            node_concurrency: 32,
            op_timeout: SimDuration::from_secs(10),
            read_repair: false,
            message_overhead_bytes: 60,
            small_message_bytes: 40,
            retry_on_timeout: 0,
            exact_latency_percentiles: false,
        }
    }

    /// Validate structural constraints.
    pub fn validate(&self) -> Result<(), String> {
        if self.topology.node_count() == 0 {
            return Err("cluster needs at least one node".into());
        }
        if self.replication_factor == 0 {
            return Err("replication factor must be at least 1".into());
        }
        if self.replication_factor as usize > self.topology.node_count() {
            return Err(format!(
                "replication factor {} exceeds node count {}",
                self.replication_factor,
                self.topology.node_count()
            ));
        }
        if self.node_concurrency == 0 {
            return Err("node concurrency must be at least 1".into());
        }
        if self.vnodes == 0 {
            return Err("vnodes must be at least 1".into());
        }
        Ok(())
    }

    /// Number of datacenters in the topology.
    pub fn dc_count(&self) -> u32 {
        self.topology.dc_count() as u32
    }

    /// Replica responses required for the given level under this config.
    pub fn required_acks(&self, level: ConsistencyLevel) -> u32 {
        level.required_acks(self.replication_factor, self.dc_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_test_config_is_valid() {
        let cfg = ClusterConfig::lan_test(5, 3);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.dc_count(), 1);
        assert_eq!(cfg.required_acks(ConsistencyLevel::Quorum), 2);
        assert_eq!(cfg.required_acks(ConsistencyLevel::All), 3);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = ClusterConfig::lan_test(2, 3);
        assert!(cfg.validate().is_err(), "rf > nodes");
        cfg = ClusterConfig::lan_test(3, 0);
        assert!(cfg.validate().is_err(), "rf 0");
        cfg = ClusterConfig::lan_test(3, 2);
        cfg.node_concurrency = 0;
        assert!(cfg.validate().is_err());
        cfg = ClusterConfig::lan_test(3, 2);
        cfg.vnodes = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn config_serializes() {
        let mut cfg = ClusterConfig::lan_test(4, 3);
        cfg.partitioner = Partitioner::Ordered;
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ClusterConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.replication_factor, 3);
        assert_eq!(back.topology.node_count(), 4);
        assert_eq!(back.partitioner, Partitioner::Ordered);
    }

    #[test]
    fn configs_without_a_partitioner_field_default_to_hash() {
        // Pre-PR configs serialized before the partitioner existed must
        // keep deserializing (and keep their hash-ring behaviour).
        let cfg = ClusterConfig::lan_test(4, 3);
        let json = serde_json::to_string(&cfg).unwrap();
        let stripped = json.replace("\"partitioner\":\"Hash\",", "");
        assert_ne!(json, stripped, "the field must have been present");
        let back: ClusterConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.partitioner, Partitioner::Hash);
    }
}
