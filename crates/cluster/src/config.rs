//! Cluster configuration.

use crate::cluster::ReplicaSelection;
use crate::consistency::ConsistencyLevel;
use crate::ring::{Partitioner, ReplicationStrategy};
use concord_sim::{DelayDistribution, NetworkModel, SimDuration, Topology};
use serde::{Deserialize, Serialize};

/// Which parts of the background repair plane are active.
///
/// Repair is **off by default**: with `Off`, the cluster performs no hint
/// bookkeeping, schedules no sweep events and draws no extra randomness, so
/// every pre-repair golden digest stays byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairMode {
    /// No background repair (the historical behaviour).
    #[default]
    Off,
    /// Hinted handoff only: writes that target a down replica queue a
    /// bounded hint on the coordinator, replayed when the node comes back.
    Hints,
    /// Anti-entropy only: periodic node-pair sweeps diff per-page version
    /// summaries and stream divergent records; crash/recover additionally
    /// trigger a full synchronization of the affected node.
    AntiEntropy,
    /// Both hinted handoff and anti-entropy; dropped hints fall through to
    /// the sweeps.
    Full,
}

impl RepairMode {
    /// Parse a CLI name (`off`, `hints`, `anti-entropy`, `full`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "off" => Some(RepairMode::Off),
            "hints" => Some(RepairMode::Hints),
            "anti-entropy" | "antientropy" => Some(RepairMode::AntiEntropy),
            "full" => Some(RepairMode::Full),
            _ => None,
        }
    }

    /// Short label for banners and tables.
    pub fn label(&self) -> &'static str {
        match self {
            RepairMode::Off => "off",
            RepairMode::Hints => "hints",
            RepairMode::AntiEntropy => "anti-entropy",
            RepairMode::Full => "full",
        }
    }

    /// Whether hinted handoff is active.
    pub fn hints_enabled(&self) -> bool {
        matches!(self, RepairMode::Hints | RepairMode::Full)
    }

    /// Whether anti-entropy sweeps (and recovery migration) are active.
    pub fn anti_entropy_enabled(&self) -> bool {
        matches!(self, RepairMode::AntiEntropy | RepairMode::Full)
    }
}

/// Configuration of the background repair plane (hinted handoff +
/// anti-entropy sweeps + recovery migration). See [`RepairMode`] for what
/// each mode activates; the defaults model Cassandra's repair path at the
/// simulator's time scale.
///
/// Every knob treats **0 as "use the built-in default"** (a zero hint
/// capacity or sweep interval is never meaningful), which is what keeps
/// partially specified JSON blocks — e.g. `{"mode":"Full"}` — loading with
/// sensible values: absent fields deserialize to 0 via `serde(default)` and
/// the accessors ([`RepairConfig::hint_capacity`] etc.) substitute the
/// defaults at use time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RepairConfig {
    /// Which repair subsystems are active. Defaults to [`RepairMode::Off`].
    #[serde(default)]
    pub mode: RepairMode,
    /// Maximum hints queued per destination node; further hints are dropped
    /// (metered as `hints_dropped`) and left for anti-entropy to catch.
    /// 0 = default (1024).
    #[serde(default)]
    pub hint_capacity_per_node: u32,
    /// Gap between successive hint replays to one recovered node (the
    /// replay is paced through the timer wheel rather than delivered as a
    /// burst). 0 = default (200 µs).
    #[serde(default)]
    pub hint_replay_interval: SimDuration,
    /// Gap between successive node-pair comparison events while a sweep
    /// cycle is active. 0 = default (20 ms).
    #[serde(default)]
    pub anti_entropy_interval: SimDuration,
    /// Byte weight of one per-page version summary exchanged during a
    /// comparison (the Merkle-ish digest message). 0 = default (32 B).
    #[serde(default)]
    pub summary_bytes_per_page: u32,
}

impl RepairConfig {
    /// A disabled repair plane (the default).
    pub fn off() -> Self {
        Self::default()
    }

    /// The default knobs with the given mode.
    pub fn with_mode(mode: RepairMode) -> Self {
        RepairConfig {
            mode,
            ..Self::default()
        }
    }

    /// Effective hint-queue bound per destination node.
    pub fn hint_capacity(&self) -> u32 {
        if self.hint_capacity_per_node == 0 {
            1024
        } else {
            self.hint_capacity_per_node
        }
    }

    /// Effective pacing between hint replays to one node.
    pub fn replay_interval(&self) -> SimDuration {
        if self.hint_replay_interval == SimDuration::ZERO {
            SimDuration::from_micros(200)
        } else {
            self.hint_replay_interval
        }
    }

    /// Effective gap between node-pair comparison events.
    pub fn sweep_interval(&self) -> SimDuration {
        if self.anti_entropy_interval == SimDuration::ZERO {
            SimDuration::from_millis(20)
        } else {
            self.anti_entropy_interval
        }
    }

    /// Effective byte weight of one page-summary message.
    pub fn summary_bytes(&self) -> u32 {
        if self.summary_bytes_per_page == 0 {
            32
        } else {
            self.summary_bytes_per_page
        }
    }
}

/// Configuration of the tail-tolerant resilience layer: hedged reads,
/// exponential retry backoff and the health bookkeeping behind
/// [`ReplicaSelection::Dynamic`].
///
/// Everything here is **off by default**: with a zero `hedge_delay` no hedge
/// timers are scheduled, with `backoff` false timed-out retries re-issue
/// immediately as before, and the breaker/EWMA knobs only matter once the
/// cluster's read selection is switched to `Dynamic`. A default
/// `ResilienceConfig` therefore adds zero events and zero RNG draws, keeping
/// every pre-resilience golden digest byte-identical.
///
/// Like [`RepairConfig`], every tuning knob treats **0 as "use the built-in
/// default"** (a zero backoff base or breaker threshold is never
/// meaningful), so partially specified JSON blocks load with sensible
/// values: absent fields deserialize to 0 via `serde(default)` and the
/// accessors substitute the defaults at use time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// How long a point read's coordinator waits before issuing one
    /// speculative duplicate (digest) request to the best unused replica.
    /// [`SimDuration::ZERO`] (the default) disables hedging entirely.
    #[serde(default)]
    pub hedge_delay: SimDuration,
    /// When true, `retry_on_timeout` re-issues wait out an exponential
    /// backoff with deterministic RNG-drawn jitter instead of re-entering
    /// the cluster immediately.
    #[serde(default)]
    pub backoff: bool,
    /// Backoff delay before the first re-issue; doubles per consumed retry
    /// up to [`ResilienceConfig::backoff_cap`]. 0 = default (1 ms).
    #[serde(default)]
    pub backoff_base: SimDuration,
    /// Upper bound on the nominal (pre-jitter) backoff delay.
    /// 0 = default (100 ms).
    #[serde(default)]
    pub backoff_cap: SimDuration,
    /// Smoothing factor of the coordinator-side latency-excess EWMA
    /// (observed response latency minus the expected round trip) used by
    /// [`ReplicaSelection::Dynamic`]. 0.0 = default (0.2).
    #[serde(default)]
    pub health_alpha: f64,
    /// Consecutive read-timeout strikes against a replica before its
    /// circuit breaker opens. 0 = default (3).
    #[serde(default)]
    pub breaker_failures: u32,
    /// How long an open breaker holds before transitioning to half-open
    /// (one probe allowed). 0 = default (50 ms).
    #[serde(default)]
    pub breaker_cooldown: SimDuration,
}

impl ResilienceConfig {
    /// A fully disabled resilience layer (the default).
    pub fn off() -> Self {
        Self::default()
    }

    /// Whether hedged reads are active.
    pub fn hedging_enabled(&self) -> bool {
        self.hedge_delay > SimDuration::ZERO
    }

    /// Effective backoff delay before the first re-issue.
    pub fn effective_backoff_base(&self) -> SimDuration {
        if self.backoff_base == SimDuration::ZERO {
            SimDuration::from_millis(1)
        } else {
            self.backoff_base
        }
    }

    /// Effective upper bound on the nominal backoff delay.
    pub fn effective_backoff_cap(&self) -> SimDuration {
        if self.backoff_cap == SimDuration::ZERO {
            SimDuration::from_millis(100)
        } else {
            self.backoff_cap
        }
    }

    /// Effective EWMA smoothing factor for dynamic replica selection.
    pub fn effective_alpha(&self) -> f64 {
        if self.health_alpha == 0.0 {
            0.2
        } else {
            self.health_alpha
        }
    }

    /// Effective consecutive-failure threshold that opens a breaker.
    pub fn breaker_threshold(&self) -> u32 {
        if self.breaker_failures == 0 {
            3
        } else {
            self.breaker_failures
        }
    }

    /// Effective open-breaker cooldown before the half-open probe.
    pub fn cooldown(&self) -> SimDuration {
        if self.breaker_cooldown == SimDuration::ZERO {
            SimDuration::from_millis(50)
        } else {
            self.breaker_cooldown
        }
    }
}

/// Complete configuration of a simulated storage cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Node placement into datacenters/regions.
    pub topology: Topology,
    /// Network latency model between nodes.
    pub network: NetworkModel,
    /// Replication factor.
    pub replication_factor: u32,
    /// Replica placement strategy.
    pub strategy: ReplicationStrategy,
    /// How keys map to owning nodes: the consistent-hash token ring
    /// (default, Cassandra's random partitioner) or contiguous key-range
    /// ownership (Cassandra's ordered partitioner, which makes range-scan
    /// *coverage* faithful — see [`Partitioner`]).
    #[serde(default)]
    pub partitioner: Partitioner,
    /// Virtual nodes per physical node on the ring.
    pub vnodes: u32,
    /// Default read consistency level (can be changed at runtime).
    pub read_level: ConsistencyLevel,
    /// Default write consistency level (can be changed at runtime).
    pub write_level: ConsistencyLevel,
    /// Local storage service time for a read on a replica.
    pub storage_read_latency: DelayDistribution,
    /// Local storage service time for a write on a replica.
    pub storage_write_latency: DelayDistribution,
    /// Number of storage operations a node can service concurrently;
    /// additional requests queue FIFO (this is what creates saturation and
    /// the throughput differences between consistency levels).
    pub node_concurrency: u32,
    /// Coordinator-side timeout for gathering the required replica responses.
    pub op_timeout: SimDuration,
    /// Whether coordinators send the full data request to every replica and
    /// repair stale replicas in the background (Cassandra's read repair).
    ///
    /// **Scan contract**: read repair fires only for point reads
    /// (`scan_len == 1`). Range scans never trigger it — matching Cassandra,
    /// where range scans do not perform blocking read repair — so a
    /// scan-heavy workload relies on asynchronous propagation and, when
    /// enabled, the background repair plane ([`RepairConfig`]) to converge
    /// replicas. Pinned by the `scans_never_trigger_read_repair` test.
    pub read_repair: bool,
    /// Background repair plane: hinted handoff, anti-entropy sweeps and
    /// recovery migration. Off by default; absent in pre-repair configs
    /// (`serde(default)` keeps them loading).
    #[serde(default)]
    pub repair: RepairConfig,
    /// Tail-tolerant resilience layer: hedged reads, retry backoff and the
    /// health bookkeeping behind [`ReplicaSelection::Dynamic`]. Off by
    /// default; absent in pre-resilience configs (`serde(default)` keeps
    /// them loading).
    #[serde(default)]
    pub resilience: ResilienceConfig,
    /// How read coordinators choose which replicas to contact. Defaults to
    /// [`ReplicaSelection::Closest`] (the historical behaviour; absent in
    /// pre-resilience configs via `serde(default)`); can be changed at
    /// runtime through [`Cluster::set_replica_selection`](crate::Cluster::set_replica_selection).
    #[serde(default)]
    pub read_selection: ReplicaSelection,
    /// Protocol overhead added to every replica message, in bytes.
    pub message_overhead_bytes: u32,
    /// Size of a read request / ack message payload in bytes.
    pub small_message_bytes: u32,
    /// How many times a timed-out operation is re-issued (fresh coordinator
    /// and fan-out, client-visible latency spanning every attempt) before it
    /// completes with [`OpStatus::Timeout`](crate::OpStatus::Timeout).
    /// 0 (the default) keeps the historical fail-fast behaviour.
    pub retry_on_timeout: u32,
    /// When true, latency metrics additionally keep every raw sample so
    /// exact order-statistic percentiles can be computed next to the
    /// histogram's ≤3%-error quantiles (validation of fault-scenario tails;
    /// costs 8 bytes per completed operation).
    pub exact_latency_percentiles: bool,
    /// Number of event-queue shards the engine partitions the cluster into
    /// (conservative-PDES sharding: nodes are grouped datacenter-contiguously
    /// into `shards` groups, each with its own event lanes and its own RNG
    /// stream, advancing in lookahead windows bounded by the minimum
    /// cross-shard link delay; window batches execute in parallel on the
    /// worker pool and cross-shard traffic folds at window barriers in fixed
    /// shard order). **Each shard count is its own deterministic universe,
    /// byte-identical at any worker-thread count** — the golden-digest tests
    /// pin one digest per shard count and the thread-matrix tests assert
    /// thread invariance. 1 (and, for backward compatibility of serialized
    /// configs, an absent field deserializing to 0) means the sequential
    /// engine, byte-identical to the pre-sharding goldens; values above the
    /// node count are clamped to it.
    #[serde(default)]
    pub shards: u32,
    /// Force a serial barrier fold at *every* lookahead window instead of
    /// letting the sharded engine elide folds that have no control-plane
    /// work (PR 10 barrier elision). Elision is provably non-perturbing —
    /// the `barrier_elision` property tests pin byte-identical output with
    /// the knob on and off — so this exists for A/B measurement of fold
    /// overhead and as a bisection aid, not as a correctness escape hatch.
    /// Defaults to `false` (elision on); absent in pre-PR-10 serialized
    /// configs via `serde(default)`. Ignored by the serial engine.
    #[serde(default)]
    pub eager_folds: bool,
}

impl ClusterConfig {
    /// A small single-datacenter cluster with LAN latencies — the default for
    /// unit tests.
    pub fn lan_test(nodes: usize, replication_factor: u32) -> Self {
        ClusterConfig {
            topology: Topology::single_dc(nodes),
            network: NetworkModel::lan(),
            replication_factor,
            strategy: ReplicationStrategy::Simple,
            partitioner: Partitioner::Hash,
            vnodes: 16,
            read_level: ConsistencyLevel::One,
            write_level: ConsistencyLevel::One,
            storage_read_latency: DelayDistribution::LogNormal {
                median_ms: 0.35,
                sigma: 0.4,
            },
            storage_write_latency: DelayDistribution::LogNormal {
                median_ms: 0.25,
                sigma: 0.4,
            },
            node_concurrency: 32,
            op_timeout: SimDuration::from_secs(10),
            read_repair: false,
            repair: RepairConfig::off(),
            resilience: ResilienceConfig::off(),
            read_selection: ReplicaSelection::Closest,
            message_overhead_bytes: 60,
            small_message_bytes: 40,
            retry_on_timeout: 0,
            exact_latency_percentiles: false,
            shards: 1,
            eager_folds: false,
        }
    }

    /// Effective shard count for this config's topology: 0 (an absent field
    /// in a pre-sharding serialized config) and 1 both mean unsharded, and
    /// values above the node count clamp to it (an empty shard could never
    /// receive an event, so granting it a lane would be pure overhead).
    pub fn effective_shards(&self) -> usize {
        (self.shards.max(1) as usize).min(self.topology.node_count().max(1))
    }

    /// Validate structural constraints.
    pub fn validate(&self) -> Result<(), String> {
        if self.topology.node_count() == 0 {
            return Err("cluster needs at least one node".into());
        }
        if self.replication_factor == 0 {
            return Err("replication factor must be at least 1".into());
        }
        if self.replication_factor as usize > self.topology.node_count() {
            return Err(format!(
                "replication factor {} exceeds node count {}",
                self.replication_factor,
                self.topology.node_count()
            ));
        }
        if self.topology.node_count() > (u16::MAX as usize) + 1 {
            // Node ids are packed to 16 bits inside replica-task events to
            // keep the event queue's payload entries at 32 bytes.
            return Err(format!(
                "node count {} exceeds the engine's 65536-node limit",
                self.topology.node_count()
            ));
        }
        if self.node_concurrency == 0 {
            return Err("node concurrency must be at least 1".into());
        }
        if self.vnodes == 0 {
            return Err("vnodes must be at least 1".into());
        }
        Ok(())
    }

    /// Number of datacenters in the topology.
    pub fn dc_count(&self) -> u32 {
        self.topology.dc_count() as u32
    }

    /// Replica responses required for the given level under this config.
    pub fn required_acks(&self, level: ConsistencyLevel) -> u32 {
        level.required_acks(self.replication_factor, self.dc_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_test_config_is_valid() {
        let cfg = ClusterConfig::lan_test(5, 3);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.dc_count(), 1);
        assert_eq!(cfg.required_acks(ConsistencyLevel::Quorum), 2);
        assert_eq!(cfg.required_acks(ConsistencyLevel::All), 3);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = ClusterConfig::lan_test(2, 3);
        assert!(cfg.validate().is_err(), "rf > nodes");
        cfg = ClusterConfig::lan_test(3, 0);
        assert!(cfg.validate().is_err(), "rf 0");
        cfg = ClusterConfig::lan_test(3, 2);
        cfg.node_concurrency = 0;
        assert!(cfg.validate().is_err());
        cfg = ClusterConfig::lan_test(3, 2);
        cfg.vnodes = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn config_serializes() {
        let mut cfg = ClusterConfig::lan_test(4, 3);
        cfg.partitioner = Partitioner::Ordered;
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ClusterConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.replication_factor, 3);
        assert_eq!(back.topology.node_count(), 4);
        assert_eq!(back.partitioner, Partitioner::Ordered);
    }

    #[test]
    fn repair_mode_names_round_trip() {
        for (name, mode) in [
            ("off", RepairMode::Off),
            ("hints", RepairMode::Hints),
            ("anti-entropy", RepairMode::AntiEntropy),
            ("full", RepairMode::Full),
        ] {
            assert_eq!(RepairMode::from_name(name), Some(mode));
            assert_eq!(RepairMode::from_name(mode.label()), Some(mode));
        }
        assert_eq!(RepairMode::from_name("merkle"), None);
        assert!(RepairMode::Full.hints_enabled());
        assert!(RepairMode::Full.anti_entropy_enabled());
        assert!(RepairMode::Hints.hints_enabled());
        assert!(!RepairMode::Hints.anti_entropy_enabled());
        assert!(!RepairMode::AntiEntropy.hints_enabled());
        assert!(RepairMode::AntiEntropy.anti_entropy_enabled());
        assert!(!RepairMode::Off.hints_enabled());
        assert!(!RepairMode::Off.anti_entropy_enabled());
    }

    #[test]
    fn configs_without_a_repair_field_default_to_off() {
        // Pre-repair-plane configs (serialized before PR 6) must keep
        // deserializing, with repair fully disabled.
        let cfg = ClusterConfig::lan_test(4, 3);
        let json = serde_json::to_string(&cfg).unwrap();
        let start = json.find(",\"repair\":{").expect("field present");
        let end = json[start + 1..].find('}').unwrap() + start + 2;
        let stripped = format!("{}{}", &json[..start], &json[end..]);
        assert_ne!(json, stripped, "the field must have been removed");
        let back: ClusterConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.repair, RepairConfig::off());
        assert_eq!(back.repair.mode, RepairMode::Off);
        // Partial repair blocks (just a mode) pick up the remaining knobs:
        // absent fields deserialize to 0 and the accessors substitute the
        // built-in defaults.
        let partial: RepairConfig = serde_json::from_str("{\"mode\":\"Full\"}").unwrap();
        assert_eq!(partial.mode, RepairMode::Full);
        assert_eq!(partial.hint_capacity_per_node, 0);
        assert_eq!(partial.hint_capacity(), RepairConfig::off().hint_capacity());
        assert_eq!(
            partial.replay_interval(),
            RepairConfig::off().replay_interval()
        );
        assert_eq!(
            partial.sweep_interval(),
            RepairConfig::off().sweep_interval()
        );
        assert_eq!(partial.summary_bytes(), RepairConfig::off().summary_bytes());
    }

    #[test]
    fn configs_without_resilience_fields_default_to_off() {
        // Pre-PR-9 configs (serialized before the resilience layer) must
        // keep deserializing, with hedging/backoff/dynamic selection fully
        // disabled.
        let cfg = ClusterConfig::lan_test(4, 3);
        let json = serde_json::to_string(&cfg).unwrap();
        let start = json.find(",\"resilience\":{").expect("field present");
        let end = json[start + 1..].find('}').unwrap() + start + 2;
        let stripped = format!("{}{}", &json[..start], &json[end..]);
        let stripped = stripped.replace(",\"read_selection\":\"Closest\"", "");
        assert_ne!(json, stripped, "both fields must have been removed");
        let back: ClusterConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.resilience, ResilienceConfig::off());
        assert!(!back.resilience.hedging_enabled());
        assert!(!back.resilience.backoff);
        assert_eq!(back.read_selection, ReplicaSelection::Closest);
        // Partial resilience blocks pick up the remaining knobs: absent
        // fields deserialize to 0 and the accessors substitute defaults.
        let partial: ResilienceConfig =
            serde_json::from_str("{\"hedge_delay\":500,\"backoff\":true}").unwrap();
        assert!(partial.hedging_enabled());
        assert_eq!(partial.hedge_delay, SimDuration::from_micros(500));
        assert!(partial.backoff);
        assert_eq!(
            partial.effective_backoff_base(),
            SimDuration::from_millis(1)
        );
        assert_eq!(
            partial.effective_backoff_cap(),
            SimDuration::from_millis(100)
        );
        assert!((partial.effective_alpha() - 0.2).abs() < 1e-12);
        assert_eq!(partial.breaker_threshold(), 3);
        assert_eq!(partial.cooldown(), SimDuration::from_millis(50));
    }

    #[test]
    fn replica_selection_names_round_trip() {
        for (name, sel) in [
            ("closest", ReplicaSelection::Closest),
            ("random", ReplicaSelection::Random),
            ("dynamic", ReplicaSelection::Dynamic),
        ] {
            assert_eq!(ReplicaSelection::from_name(name), Some(sel));
            assert_eq!(ReplicaSelection::from_name(sel.label()), Some(sel));
            let json = serde_json::to_string(&sel).unwrap();
            let back: ReplicaSelection = serde_json::from_str(&json).unwrap();
            assert_eq!(back, sel);
        }
        assert_eq!(ReplicaSelection::from_name("nearest"), None);
        assert_eq!(ReplicaSelection::default(), ReplicaSelection::Closest);
    }

    #[test]
    fn configs_without_a_shards_field_default_to_unsharded() {
        // Pre-sharding configs must keep deserializing, and both the absent
        // field (0) and an explicit 1 mean "unsharded".
        let cfg = ClusterConfig::lan_test(4, 3);
        let json = serde_json::to_string(&cfg).unwrap();
        let stripped = json.replace(",\"shards\":1", "");
        assert_ne!(json, stripped, "the field must have been present");
        let back: ClusterConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.shards, 0);
        assert_eq!(back.effective_shards(), 1);
        assert_eq!(cfg.effective_shards(), 1);
        // Oversharded configs clamp to the node count.
        let mut wide = ClusterConfig::lan_test(4, 3);
        wide.shards = 64;
        assert!(wide.validate().is_ok());
        assert_eq!(wide.effective_shards(), 4);
        wide.shards = 2;
        assert_eq!(wide.effective_shards(), 2);
    }

    #[test]
    fn configs_without_an_eager_folds_field_default_to_elision() {
        // Pre-PR-10 configs serialized before barrier elision existed must
        // keep deserializing, with the absent field meaning "elide".
        let cfg = ClusterConfig::lan_test(4, 3);
        let json = serde_json::to_string(&cfg).unwrap();
        let stripped = json.replace(",\"eager_folds\":false", "");
        assert_ne!(json, stripped, "the field must have been present");
        let back: ClusterConfig = serde_json::from_str(&stripped).unwrap();
        assert!(!back.eager_folds);
        assert!(back.validate().is_ok());
    }

    #[test]
    fn configs_without_a_partitioner_field_default_to_hash() {
        // Pre-PR configs serialized before the partitioner existed must
        // keep deserializing (and keep their hash-ring behaviour).
        let cfg = ClusterConfig::lan_test(4, 3);
        let json = serde_json::to_string(&cfg).unwrap();
        let stripped = json.replace("\"partitioner\":\"Hash\",", "");
        assert_ne!(json, stripped, "the field must have been present");
        let back: ClusterConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.partitioner, Partitioner::Hash);
    }
}
