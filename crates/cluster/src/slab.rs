//! Generation-checked slab for in-flight operation state.
//!
//! The cluster simulator keeps per-operation state (pending submission, write
//! progress, read progress) from submission until the consistency level is
//! satisfied. The original implementation used three `HashMap<OpId, _>`
//! tables, paying a SipHash per event; this slab replaces them with direct
//! indexing: an [`OpId`] encodes `(generation << 32) | slot`, so every lookup
//! is one bounds check, one generation compare and one array access.
//!
//! Slots are recycled through a free list, which keeps long runs compact (the
//! live slot count tracks the number of *outstanding* operations, not the
//! total ever submitted). The generation counter makes recycled ids safe:
//! events that still reference a completed operation (a timeout fired after
//! completion, a straggler replica response) carry a stale generation and
//! miss, exactly as a `HashMap` lookup of a removed key would.

use crate::types::OpId;

/// One slot: the live generation plus the state, if occupied.
#[derive(Debug, Clone)]
struct Slot<T> {
    generation: u32,
    state: Option<T>,
}

/// A slab of operation state addressed by generation-checked [`OpId`]s.
///
/// A slab can be **strided**: with `with_stride(n, k)` the encoded slot
/// number of internal index `i` is `i·n + k`, so every id handed out
/// satisfies `slot ≡ k (mod n)`. The parallel sharded cluster gives shard
/// `k` of `n` the stride-`(n, k)` slab, which makes an operation's home
/// shard recoverable from its id alone (`id mod n`) — no shared lookup
/// table, no coordination. `new()` is the stride-`(1, 0)` slab, whose ids
/// are bit-identical to the pre-strided encoding.
#[derive(Debug, Clone)]
pub struct OpSlab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
    stride: u32,
    offset: u32,
}

impl<T> Default for OpSlab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OpSlab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Self::with_stride(1, 0)
    }

    /// An empty slab whose encoded slot numbers are `index·stride + offset`
    /// (see the type docs; `offset < stride` required).
    pub fn with_stride(stride: u32, offset: u32) -> Self {
        assert!(stride >= 1, "stride must be at least 1");
        assert!(offset < stride, "offset must be below the stride");
        OpSlab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            stride,
            offset,
        }
    }

    /// Number of live (occupied) slots.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no operation state is outstanding.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + recyclable).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn encode(&self, generation: u32, index: u32) -> OpId {
        let slot = index * self.stride + self.offset;
        OpId(((generation as u64) << 32) | slot as u64)
    }

    #[inline]
    fn decode(id: OpId) -> (u32, u32) {
        ((id.0 >> 32) as u32, id.0 as u32)
    }

    /// Insert state, returning the id that addresses it.
    pub fn insert(&mut self, state: T) -> OpId {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let s = &mut self.slots[index as usize];
            debug_assert!(s.state.is_none(), "free-listed slot must be vacant");
            s.state = Some(state);
            let generation = s.generation;
            self.encode(generation, index)
        } else {
            let index = u32::try_from(self.slots.len()).expect("more than 2^32 in-flight ops");
            self.slots.push(Slot {
                // Start at generation 1 so no valid OpId is ever 0.
                generation: 1,
                state: Some(state),
            });
            self.encode(1, index)
        }
    }

    #[inline]
    fn slot_of(&self, id: OpId) -> Option<usize> {
        let (generation, slot) = Self::decode(id);
        // A foreign id (slot not congruent to this slab's offset) misses
        // here: `slot - offset` underflows or leaves a non-multiple, and
        // either way the divided index points at a slot whose generation
        // cannot match — checked explicitly to keep the miss exact.
        let rel = slot.wrapping_sub(self.offset);
        if self.stride > 1 && rel % self.stride != 0 {
            return None;
        }
        let index = rel / self.stride;
        match self.slots.get(index as usize) {
            Some(s) if s.generation == generation && s.state.is_some() => Some(index as usize),
            _ => None,
        }
    }

    /// Shared access to the state addressed by `id`, if still live.
    #[inline]
    pub fn get(&self, id: OpId) -> Option<&T> {
        self.slot_of(id).and_then(|i| self.slots[i].state.as_ref())
    }

    /// Mutable access to the state addressed by `id`, if still live.
    #[inline]
    pub fn get_mut(&mut self, id: OpId) -> Option<&mut T> {
        match self.slot_of(id) {
            Some(i) => self.slots[i].state.as_mut(),
            None => None,
        }
    }

    /// Remove and return the state addressed by `id`. The slot's generation
    /// advances, invalidating every outstanding copy of the id, and the slot
    /// joins the free list for reuse.
    pub fn remove(&mut self, id: OpId) -> Option<T> {
        let i = self.slot_of(id)?;
        let s = &mut self.slots[i];
        let state = s.state.take();
        s.generation = s.generation.wrapping_add(1);
        // Skip generation 0 on wrap so a valid id is never all-zero.
        if s.generation == 0 {
            s.generation = 1;
        }
        self.free.push(i as u32);
        self.live -= 1;
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab: OpSlab<&str> = OpSlab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        *slab.get_mut(a).unwrap() = "a2";
        assert_eq!(slab.remove(a), Some("a2"));
        assert_eq!(slab.get(a), None, "removed id must miss");
        assert_eq!(slab.remove(a), None, "double remove must miss");
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn recycled_slot_rejects_stale_id() {
        let mut slab: OpSlab<u32> = OpSlab::new();
        let old = slab.insert(1);
        slab.remove(old);
        let new = slab.insert(2);
        // Same slot, different generation.
        assert_ne!(old, new);
        assert_eq!(slab.get(old), None, "stale generation must miss");
        assert_eq!(slab.get(new), Some(&2));
        assert_eq!(slab.capacity(), 1, "the slot was reused, not grown");
    }

    #[test]
    fn ids_are_never_zero() {
        let mut slab: OpSlab<u8> = OpSlab::new();
        for _ in 0..100 {
            let id = slab.insert(0);
            assert_ne!(id.0, 0);
            slab.remove(id);
        }
    }

    #[test]
    fn strided_slabs_partition_the_id_space() {
        let shards = 4u32;
        let mut slabs: Vec<OpSlab<u64>> = (0..shards)
            .map(|k| OpSlab::with_stride(shards, k))
            .collect();
        let mut ids = Vec::new();
        for round in 0..10u64 {
            for (k, slab) in slabs.iter_mut().enumerate() {
                let id = slab.insert(round * 10 + k as u64);
                assert_eq!(
                    (id.0 as u32) % shards,
                    k as u32,
                    "slot must encode the home shard"
                );
                ids.push((k, id));
            }
        }
        for &(k, id) in &ids {
            // The owner resolves the id; every other slab misses it.
            for (other, slab) in slabs.iter().enumerate() {
                assert_eq!(slab.get(id).is_some(), other == k);
            }
        }
        for &(k, id) in &ids {
            assert!(slabs[k].remove(id).is_some());
            assert!(slabs[k].get(id).is_none());
        }
    }

    #[test]
    fn default_stride_matches_unstrided_encoding() {
        let mut plain: OpSlab<u8> = OpSlab::new();
        let mut strided: OpSlab<u8> = OpSlab::with_stride(1, 0);
        for i in 0..50 {
            assert_eq!(plain.insert(i), strided.insert(i));
        }
    }

    #[test]
    fn long_runs_stay_compact() {
        let mut slab: OpSlab<u64> = OpSlab::new();
        // A closed loop of 64 outstanding ops, a million total insertions.
        let mut live: Vec<OpId> = (0..64).map(|i| slab.insert(i)).collect();
        for i in 64..100_000u64 {
            let victim = live.remove((i % 64) as usize);
            assert!(slab.remove(victim).is_some());
            live.push(slab.insert(i));
        }
        assert_eq!(slab.len(), 64);
        assert!(
            slab.capacity() <= 64,
            "slab grew to {} slots for 64 outstanding ops",
            slab.capacity()
        );
    }
}
