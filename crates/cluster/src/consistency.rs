//! Tunable consistency levels, mirroring Apache Cassandra's per-operation
//! consistency levels plus an `Exact(n)` level so that adaptive controllers
//! (Harmony computes "the number of involved replicas") can request any
//! replica count directly.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A per-operation consistency level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConsistencyLevel {
    /// One replica must respond.
    One,
    /// Two replicas must respond.
    Two,
    /// Three replicas must respond.
    Three,
    /// A majority of all replicas (⌊RF/2⌋ + 1) must respond.
    Quorum,
    /// A majority of the replicas in the coordinator's datacenter.
    LocalQuorum,
    /// A majority of the replicas in every datacenter.
    EachQuorum,
    /// Every replica must respond.
    All,
    /// Exactly `n` replicas must respond (clamped to the replication factor).
    Exact(u32),
}

impl ConsistencyLevel {
    /// Number of replica responses required, for a replication factor of
    /// `rf` spread over `dc_count` datacenters.
    ///
    /// For `EachQuorum` the replicas are assumed to be spread evenly over the
    /// datacenters (which is how `NetworkTopologyStrategy` places them).
    pub fn required_acks(self, rf: u32, dc_count: u32) -> u32 {
        let rf = rf.max(1);
        let dc_count = dc_count.max(1);
        let quorum = rf / 2 + 1;
        let per_dc_rf = rf.div_ceil(dc_count); // ceil
        let per_dc_quorum = per_dc_rf / 2 + 1;
        let n = match self {
            ConsistencyLevel::One => 1,
            ConsistencyLevel::Two => 2,
            ConsistencyLevel::Three => 3,
            ConsistencyLevel::Quorum => quorum,
            ConsistencyLevel::LocalQuorum => per_dc_quorum,
            ConsistencyLevel::EachQuorum => per_dc_quorum * dc_count,
            ConsistencyLevel::All => rf,
            ConsistencyLevel::Exact(n) => n.max(1),
        };
        n.min(rf)
    }

    /// The smallest named level requiring at least `acks` responses for the
    /// given replication factor. Useful for reporting.
    pub fn from_replica_count(acks: u32, rf: u32) -> ConsistencyLevel {
        let rf = rf.max(1);
        let acks = acks.clamp(1, rf);
        if acks == 1 {
            ConsistencyLevel::One
        } else if acks == rf {
            ConsistencyLevel::All
        } else if acks == rf / 2 + 1 {
            ConsistencyLevel::Quorum
        } else if acks == 2 {
            ConsistencyLevel::Two
        } else if acks == 3 {
            ConsistencyLevel::Three
        } else {
            ConsistencyLevel::Exact(acks)
        }
    }

    /// True if a read at `self` combined with a write at `write_level` forms
    /// a strict quorum (`R + W > RF`), guaranteeing that reads observe the
    /// latest acknowledged write.
    pub fn is_strong_with(self, write_level: ConsistencyLevel, rf: u32, dc_count: u32) -> bool {
        self.required_acks(rf, dc_count) + write_level.required_acks(rf, dc_count) > rf
    }

    /// The canonical sweep of named levels used by the cost experiments
    /// (ONE → TWO → THREE → QUORUM → ALL).
    pub fn sweep(rf: u32) -> Vec<ConsistencyLevel> {
        let mut levels = vec![ConsistencyLevel::One];
        if rf >= 2 {
            levels.push(ConsistencyLevel::Two);
        }
        if rf >= 3 {
            levels.push(ConsistencyLevel::Three);
        }
        if rf / 2 + 1 > 3 || !levels.iter().any(|l| l.required_acks(rf, 1) == rf / 2 + 1) {
            levels.push(ConsistencyLevel::Quorum);
        }
        levels.push(ConsistencyLevel::All);
        levels.dedup_by_key(|l| l.required_acks(rf, 1));
        levels
    }
}

impl fmt::Display for ConsistencyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsistencyLevel::One => write!(f, "ONE"),
            ConsistencyLevel::Two => write!(f, "TWO"),
            ConsistencyLevel::Three => write!(f, "THREE"),
            ConsistencyLevel::Quorum => write!(f, "QUORUM"),
            ConsistencyLevel::LocalQuorum => write!(f, "LOCAL_QUORUM"),
            ConsistencyLevel::EachQuorum => write!(f, "EACH_QUORUM"),
            ConsistencyLevel::All => write!(f, "ALL"),
            ConsistencyLevel::Exact(n) => write!(f, "EXACT({n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_acks_for_rf5() {
        let rf = 5;
        assert_eq!(ConsistencyLevel::One.required_acks(rf, 2), 1);
        assert_eq!(ConsistencyLevel::Two.required_acks(rf, 2), 2);
        assert_eq!(ConsistencyLevel::Three.required_acks(rf, 2), 3);
        assert_eq!(ConsistencyLevel::Quorum.required_acks(rf, 2), 3);
        assert_eq!(ConsistencyLevel::All.required_acks(rf, 2), 5);
        assert_eq!(ConsistencyLevel::Exact(4).required_acks(rf, 2), 4);
        assert_eq!(
            ConsistencyLevel::Exact(9).required_acks(rf, 2),
            5,
            "clamped"
        );
    }

    #[test]
    fn dc_aware_levels() {
        // RF 6 over 2 DCs → 3 replicas per DC, per-DC quorum = 2.
        assert_eq!(ConsistencyLevel::LocalQuorum.required_acks(6, 2), 2);
        assert_eq!(ConsistencyLevel::EachQuorum.required_acks(6, 2), 4);
        // Single DC: LOCAL_QUORUM degenerates to QUORUM.
        assert_eq!(
            ConsistencyLevel::LocalQuorum.required_acks(5, 1),
            ConsistencyLevel::Quorum.required_acks(5, 1)
        );
    }

    #[test]
    fn levels_never_exceed_rf() {
        for rf in 1..=7u32 {
            for dc in 1..=3u32 {
                for level in [
                    ConsistencyLevel::One,
                    ConsistencyLevel::Two,
                    ConsistencyLevel::Three,
                    ConsistencyLevel::Quorum,
                    ConsistencyLevel::LocalQuorum,
                    ConsistencyLevel::EachQuorum,
                    ConsistencyLevel::All,
                    ConsistencyLevel::Exact(100),
                ] {
                    let acks = level.required_acks(rf, dc);
                    assert!(acks >= 1 && acks <= rf, "{level} rf={rf} dc={dc} → {acks}");
                }
            }
        }
    }

    #[test]
    fn strong_combination_detection() {
        let rf = 5;
        assert!(ConsistencyLevel::Quorum.is_strong_with(ConsistencyLevel::Quorum, rf, 2));
        assert!(ConsistencyLevel::All.is_strong_with(ConsistencyLevel::One, rf, 2));
        assert!(!ConsistencyLevel::One.is_strong_with(ConsistencyLevel::One, rf, 2));
        assert!(!ConsistencyLevel::Two.is_strong_with(ConsistencyLevel::Three, rf, 2));
        assert!(ConsistencyLevel::Three.is_strong_with(ConsistencyLevel::Three, rf, 2));
    }

    #[test]
    fn from_replica_count_round_trips() {
        let rf = 5;
        for acks in 1..=rf {
            let level = ConsistencyLevel::from_replica_count(acks, rf);
            assert_eq!(level.required_acks(rf, 1), acks);
        }
        assert_eq!(
            ConsistencyLevel::from_replica_count(3, 5),
            ConsistencyLevel::Quorum
        );
        assert_eq!(
            ConsistencyLevel::from_replica_count(1, 5),
            ConsistencyLevel::One
        );
        assert_eq!(
            ConsistencyLevel::from_replica_count(5, 5),
            ConsistencyLevel::All
        );
    }

    #[test]
    fn sweep_is_increasing_and_unique() {
        for rf in [1u32, 3, 5, 7] {
            let sweep = ConsistencyLevel::sweep(rf);
            let acks: Vec<u32> = sweep.iter().map(|l| l.required_acks(rf, 1)).collect();
            let mut sorted = acks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(acks.len(), sorted.len(), "rf={rf}: {acks:?}");
            assert_eq!(*acks.first().unwrap(), 1);
            assert_eq!(*acks.last().unwrap(), rf);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ConsistencyLevel::Quorum.to_string(), "QUORUM");
        assert_eq!(ConsistencyLevel::Exact(4).to_string(), "EXACT(4)");
    }
}
