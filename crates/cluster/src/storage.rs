//! Per-replica local storage.
//!
//! Each simulated node owns a [`ReplicaStore`]: a versioned key-value map
//! with last-write-wins reconciliation plus the counters needed for the cost
//! model (bytes stored, storage I/O operations performed).

use crate::types::{Key, StoredValue, Version};
use concord_sim::{FxHashMap, SimTime};

/// The local storage of one replica node.
///
/// The key map uses the simulator's FxHash ([`concord_sim::FxHashMap`]):
/// every simulated replica read/write is one lookup here, and record keys
/// are simulator-internal, so SipHash's flood resistance buys nothing.
#[derive(Debug, Clone, Default)]
pub struct ReplicaStore {
    data: FxHashMap<Key, StoredValue>,
    bytes_stored: u64,
    write_ops: u64,
    read_ops: u64,
    /// Writes ignored because a newer version was already present
    /// (late-arriving propagation after a concurrent overwrite).
    superseded_writes: u64,
}

impl ReplicaStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply a write. Returns `true` if the value was installed, `false` if a
    /// newer version was already present (last-write-wins).
    pub fn apply_write(&mut self, key: Key, version: Version, size: u32, at: SimTime) -> bool {
        self.write_ops += 1;
        match self.data.get_mut(&key) {
            Some(existing) if existing.version >= version => {
                self.superseded_writes += 1;
                false
            }
            Some(existing) => {
                self.bytes_stored = self.bytes_stored - existing.size as u64 + size as u64;
                *existing = StoredValue {
                    version,
                    size,
                    applied_at: at,
                };
                true
            }
            None => {
                self.bytes_stored += size as u64;
                self.data.insert(
                    key,
                    StoredValue {
                        version,
                        size,
                        applied_at: at,
                    },
                );
                true
            }
        }
    }

    /// Load a record directly (bulk load path: no I/O accounting, used to
    /// pre-populate the data set before the measured run).
    pub fn preload(&mut self, key: Key, version: Version, size: u32) {
        self.bytes_stored += size as u64;
        self.data.insert(
            key,
            StoredValue {
                version,
                size,
                applied_at: SimTime::ZERO,
            },
        );
    }

    /// Read the current value of a key (counts as one storage read).
    pub fn read(&mut self, key: Key) -> Option<StoredValue> {
        self.read_ops += 1;
        self.data.get(&key).copied()
    }

    /// Peek without accounting (used by the staleness oracle and tests).
    pub fn peek(&self, key: Key) -> Option<StoredValue> {
        self.data.get(&key).copied()
    }

    /// Number of distinct keys stored.
    pub fn key_count(&self) -> usize {
        self.data.len()
    }

    /// Total payload bytes currently stored on this replica.
    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored
    }

    /// Number of storage write operations performed (including superseded).
    pub fn write_ops(&self) -> u64 {
        self.write_ops
    }

    /// Number of storage read operations performed.
    pub fn read_ops(&self) -> u64 {
        self.read_ops
    }

    /// Number of writes that lost the last-write-wins race.
    pub fn superseded_writes(&self) -> u64 {
        self.superseded_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_install_newest_version() {
        let mut s = ReplicaStore::new();
        assert!(s.apply_write(Key(1), Version(1), 100, SimTime::from_secs(1)));
        assert!(s.apply_write(Key(1), Version(3), 100, SimTime::from_secs(2)));
        // An older (late) version must not overwrite a newer one.
        assert!(!s.apply_write(Key(1), Version(2), 100, SimTime::from_secs(3)));
        assert_eq!(s.peek(Key(1)).unwrap().version, Version(3));
        assert_eq!(s.superseded_writes(), 1);
        assert_eq!(s.write_ops(), 3);
    }

    #[test]
    fn bytes_stored_tracks_value_sizes() {
        let mut s = ReplicaStore::new();
        s.apply_write(Key(1), Version(1), 100, SimTime::ZERO);
        s.apply_write(Key(2), Version(2), 50, SimTime::ZERO);
        assert_eq!(s.bytes_stored(), 150);
        // Overwriting key 1 with a larger value adjusts the total.
        s.apply_write(Key(1), Version(3), 300, SimTime::ZERO);
        assert_eq!(s.bytes_stored(), 350);
        assert_eq!(s.key_count(), 2);
    }

    #[test]
    fn reads_are_counted_and_return_values() {
        let mut s = ReplicaStore::new();
        s.preload(Key(7), Version(1), 10);
        assert_eq!(s.read(Key(7)).unwrap().version, Version(1));
        assert!(s.read(Key(8)).is_none());
        assert_eq!(s.read_ops(), 2);
        // preload does not count as a write op.
        assert_eq!(s.write_ops(), 0);
    }

    #[test]
    fn equal_version_does_not_reinstall() {
        let mut s = ReplicaStore::new();
        assert!(s.apply_write(Key(1), Version(5), 10, SimTime::ZERO));
        assert!(!s.apply_write(Key(1), Version(5), 10, SimTime::ZERO));
    }
}
