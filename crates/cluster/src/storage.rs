//! Per-replica local storage.
//!
//! Each simulated node owns a [`ReplicaStore`]: a versioned key-value table
//! with last-write-wins reconciliation plus the counters needed for the cost
//! model (bytes stored, storage I/O operations performed).
//!
//! ## Layout: paged direct indexing, no hashing
//!
//! Record keys are **dense `u64` record ids** — the workload generators
//! allocate them contiguously from 0 and assert they stay below the
//! configured record count (see `concord_workload::generators`). The store
//! exploits that contract: instead of a hash map it keeps its slots in a
//! [`PagedTable`] (the shared paged direct-index substrate, fixed 4096-slot
//! pages allocated on first write), so `read` / `apply_write` / `preload`
//! are a shift, a mask and a load — no hash, no probe sequence, no
//! tombstones. Vacancy is this store's own convention, per the table's
//! contract: a slot is occupied iff its version is non-zero
//! ([`Version::NONE`] never names a real write, which the write paths
//! assert), so presence costs no extra bit.
//!
//! Sequential record ids are contiguous in memory, which is what makes the
//! YCSB-E range-read path ([`ReplicaStore::read_range`]) a streaming load
//! over `scan_len` adjacent slots rather than `scan_len` independent hash
//! lookups.
//!
//! Reads never allocate: probing a key whose page was never written returns
//! "absent" without materializing the page, so a scan running past the
//! loaded key space stays allocation-free.
//!
//! ## Per-page version summaries (anti-entropy digests)
//!
//! A store built with [`ReplicaStore::with_summaries`] also maintains one
//! 64-bit digest per page: the XOR of a mixed hash of every occupied
//! `(key, version)` pair on that page. The digest is updated incrementally
//! on every mutation — an overwrite XORs the old pair's contribution out
//! and the new pair's in, O(1) per write, no rescans — so two replicas hold
//! identical page contents iff (modulo 2^-64 collisions) their digests
//! match. Anti-entropy sweeps compare these summaries instead of
//! record-by-record state, streaming only divergent pages; because the page
//! granule (4096 slots) equals the ordered partitioner's slice granule, a
//! page diff is also a slice diff. Stores built with [`ReplicaStore::new`]
//! skip the maintenance entirely — the write path pays nothing for a repair
//! plane that is switched off.

use crate::paged::{PagedTable, PAGE_BITS, PAGE_MASK, PAGE_SLOTS};
use crate::types::{Key, StoredValue, Version};
use concord_sim::SimTime;

/// A vacant slot: version 0 ([`Version::NONE`]) marks absence.
const EMPTY_SLOT: StoredValue = StoredValue {
    version: Version::NONE,
    size: 0,
    applied_at: SimTime::ZERO,
};

/// Aggregate result of one range read (see [`ReplicaStore::read_range`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeRead {
    /// The stored value of the range's anchor (first) record, if present.
    /// Reconciliation and staleness classification key off the anchor.
    pub anchor: Option<StoredValue>,
    /// Number of records present in the scanned range.
    pub records: u32,
    /// Total payload bytes of the present records (the byte weight of the
    /// data response).
    pub bytes: u64,
}

/// The local storage of one replica node: a [`PagedTable`] over dense record
/// ids (see the module docs for the layout).
#[derive(Debug, Clone)]
pub struct ReplicaStore {
    /// The slot table; a slot is occupied iff its version is non-zero.
    table: PagedTable<StoredValue>,
    /// Number of occupied slots (distinct keys stored).
    keys: usize,
    bytes_stored: u64,
    write_ops: u64,
    read_ops: u64,
    /// Writes ignored because a newer version was already present
    /// (late-arriving propagation after a concurrent overwrite).
    superseded_writes: u64,
    /// Per-page XOR digest over `mix(key, version)` of occupied slots (see
    /// the module docs); index = `key >> PAGE_BITS`, 0 for untouched pages.
    page_digests: Vec<u64>,
    /// Whether the digests above are maintained. Off by default so the
    /// write path pays no mixing cost when no repair plane will ever
    /// compare summaries.
    summaries_enabled: bool,
}

/// Mix one `(key, version)` pair into a 64-bit contribution (splitmix64-style
/// finalizer over the combined pair). Order-independent under XOR: equal page
/// contents produce equal digests regardless of write order.
#[inline]
fn mix_record(key: Key, version: Version) -> u64 {
    let mut x = key
        .0
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(version.0.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

impl Default for ReplicaStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplicaStore {
    /// An empty store without per-page version summaries (the default:
    /// writes skip digest maintenance entirely).
    pub fn new() -> Self {
        ReplicaStore {
            table: PagedTable::new(EMPTY_SLOT),
            keys: 0,
            bytes_stored: 0,
            write_ops: 0,
            read_ops: 0,
            superseded_writes: 0,
            page_digests: Vec::new(),
            summaries_enabled: false,
        }
    }

    /// An empty store that maintains per-page version summaries for
    /// anti-entropy comparison (see the module docs). Costs two 64-bit
    /// mixes per installed write.
    pub fn with_summaries() -> Self {
        ReplicaStore {
            summaries_enabled: true,
            ..Self::new()
        }
    }

    /// XOR `delta` into the digest of `key`'s page, growing the summary
    /// vector on first touch.
    #[inline]
    fn xor_page_digest(&mut self, key: Key, delta: u64) {
        let page = (key.0 >> PAGE_BITS) as usize;
        if page >= self.page_digests.len() {
            self.page_digests.resize(page + 1, 0);
        }
        self.page_digests[page] ^= delta;
    }

    /// The slot for `key`, if its page exists (never allocates).
    #[inline]
    fn slot(&self, key: Key) -> Option<&StoredValue> {
        self.table.get(key.0)
    }

    /// Apply a write. Returns `true` if the value was installed, `false` if a
    /// newer version was already present (last-write-wins).
    pub fn apply_write(&mut self, key: Key, version: Version, size: u32, at: SimTime) -> bool {
        debug_assert!(version.exists(), "writes carry a real (non-zero) version");
        self.write_ops += 1;
        let slot = self.table.get_mut(key.0);
        if slot.version >= version {
            // Occupied slots always beat the write here; a vacant slot
            // (version 0) can never reach this arm because real versions
            // are non-zero.
            self.superseded_writes += 1;
            return false;
        }
        let old_version = slot.version;
        if old_version.exists() {
            self.bytes_stored = self.bytes_stored - slot.size as u64 + size as u64;
        } else {
            self.keys += 1;
            self.bytes_stored += size as u64;
        }
        *slot = StoredValue {
            version,
            size,
            applied_at: at,
        };
        if self.summaries_enabled {
            let mut digest_delta = mix_record(key, version);
            if old_version.exists() {
                digest_delta ^= mix_record(key, old_version);
            }
            self.xor_page_digest(key, digest_delta);
        }
        true
    }

    /// Load a record directly (bulk load path: no I/O accounting, used to
    /// pre-populate the data set before the measured run). A re-preload of
    /// an existing key is an authoritative overwrite: the byte accounting
    /// replaces the old payload's size instead of double-counting it.
    pub fn preload(&mut self, key: Key, version: Version, size: u32) {
        debug_assert!(version.exists(), "preloads carry a real (non-zero) version");
        let slot = self.table.get_mut(key.0);
        let old_version = slot.version;
        if old_version.exists() {
            self.bytes_stored = self.bytes_stored - slot.size as u64 + size as u64;
        } else {
            self.keys += 1;
            self.bytes_stored += size as u64;
        }
        *slot = StoredValue {
            version,
            size,
            applied_at: SimTime::ZERO,
        };
        if self.summaries_enabled {
            let mut digest_delta = mix_record(key, version);
            if old_version.exists() {
                digest_delta ^= mix_record(key, old_version);
            }
            self.xor_page_digest(key, digest_delta);
        }
    }

    /// Read the current value of a key (counts as one storage read).
    pub fn read(&mut self, key: Key) -> Option<StoredValue> {
        self.read_ops += 1;
        self.peek(key)
    }

    /// Read `len` consecutive records starting at `start` (a YCSB-E range
    /// scan on this replica). Metered as `len` storage reads — every slot in
    /// the range is probed, present or not — and the result reports the
    /// byte weight of the present records for response-traffic accounting.
    /// Never allocates: ranges running past the written key space read as
    /// absent.
    pub fn read_range(&mut self, start: Key, len: u32) -> RangeRead {
        self.read_ops += len.max(1) as u64;
        let mut out = RangeRead {
            anchor: self.peek(start),
            records: 0,
            bytes: 0,
        };
        let mut key = start.0;
        let mut remaining = len.max(1);
        while remaining > 0 {
            let page_idx = (key >> PAGE_BITS) as usize;
            let slot_idx = (key & PAGE_MASK) as usize;
            // Slots to take from this page before crossing its boundary.
            let run = ((PAGE_SLOTS - slot_idx) as u32).min(remaining);
            if let Some(page) = self.table.page(page_idx) {
                for slot in &page[slot_idx..slot_idx + run as usize] {
                    if slot.version.exists() {
                        out.records += 1;
                        out.bytes += slot.size as u64;
                    }
                }
            }
            remaining -= run;
            key = match key.checked_add(run as u64) {
                Some(k) => k,
                None => break, // the key space ends; nothing further exists
            };
        }
        out
    }

    /// Peek without accounting (used by the staleness oracle and tests).
    pub fn peek(&self, key: Key) -> Option<StoredValue> {
        self.slot(key).copied().filter(|v| v.version.exists())
    }

    /// Number of distinct keys stored.
    pub fn key_count(&self) -> usize {
        self.keys
    }

    /// Total payload bytes currently stored on this replica.
    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored
    }

    /// Number of storage write operations performed (including superseded).
    pub fn write_ops(&self) -> u64 {
        self.write_ops
    }

    /// Number of storage read operations performed (range reads count one
    /// per record probed).
    pub fn read_ops(&self) -> u64 {
        self.read_ops
    }

    /// Number of writes that lost the last-write-wins race.
    pub fn superseded_writes(&self) -> u64 {
        self.superseded_writes
    }

    /// The version summary of page `page` (0 for pages never written, and
    /// always 0 unless the store was built with
    /// [`ReplicaStore::with_summaries`]). Two replicas whose digests match
    /// hold identical `(key, version)` contents on that page, modulo 64-bit
    /// XOR-hash collisions.
    pub fn page_digest(&self, page: usize) -> u64 {
        self.page_digests.get(page).copied().unwrap_or(0)
    }

    /// Number of page indices covered by this store's version summary (the
    /// anti-entropy comparison walks `0..summary_pages()` of both replicas).
    pub fn summary_pages(&self) -> usize {
        self.page_digests.len()
    }

    /// Append every occupied record of page `page` to `out` as
    /// `(key, version, size)` — the streaming side of an anti-entropy diff.
    /// Does not touch the I/O meters: callers account the stream as network
    /// traffic and replica writes, not local scans.
    pub fn collect_page(&self, page: usize, out: &mut Vec<(Key, Version, u32)>) {
        let Some(slots) = self.table.page(page) else {
            return;
        };
        let base = (page as u64) << PAGE_BITS;
        for (i, slot) in slots.iter().enumerate() {
            if slot.version.exists() {
                out.push((Key(base + i as u64), slot.version, slot.size));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_install_newest_version() {
        let mut s = ReplicaStore::new();
        assert!(s.apply_write(Key(1), Version(1), 100, SimTime::from_secs(1)));
        assert!(s.apply_write(Key(1), Version(3), 100, SimTime::from_secs(2)));
        // An older (late) version must not overwrite a newer one.
        assert!(!s.apply_write(Key(1), Version(2), 100, SimTime::from_secs(3)));
        assert_eq!(s.peek(Key(1)).unwrap().version, Version(3));
        assert_eq!(s.superseded_writes(), 1);
        assert_eq!(s.write_ops(), 3);
    }

    #[test]
    fn bytes_stored_tracks_value_sizes() {
        let mut s = ReplicaStore::new();
        s.apply_write(Key(1), Version(1), 100, SimTime::ZERO);
        s.apply_write(Key(2), Version(2), 50, SimTime::ZERO);
        assert_eq!(s.bytes_stored(), 150);
        // Overwriting key 1 with a larger value adjusts the total.
        s.apply_write(Key(1), Version(3), 300, SimTime::ZERO);
        assert_eq!(s.bytes_stored(), 350);
        assert_eq!(s.key_count(), 2);
    }

    #[test]
    fn reads_are_counted_and_return_values() {
        let mut s = ReplicaStore::new();
        s.preload(Key(7), Version(1), 10);
        assert_eq!(s.read(Key(7)).unwrap().version, Version(1));
        assert!(s.read(Key(8)).is_none());
        assert_eq!(s.read_ops(), 2);
        // preload does not count as a write op.
        assert_eq!(s.write_ops(), 0);
    }

    #[test]
    fn equal_version_does_not_reinstall() {
        let mut s = ReplicaStore::new();
        assert!(s.apply_write(Key(1), Version(5), 10, SimTime::ZERO));
        assert!(!s.apply_write(Key(1), Version(5), 10, SimTime::ZERO));
    }

    #[test]
    fn re_preload_replaces_byte_accounting() {
        let mut s = ReplicaStore::new();
        s.preload(Key(1), Version(1), 100);
        s.preload(Key(1), Version(2), 300);
        assert_eq!(s.bytes_stored(), 300, "overwrite, not double-count");
        assert_eq!(s.key_count(), 1);
        assert_eq!(s.peek(Key(1)).unwrap().version, Version(2));
    }

    #[test]
    fn sparse_high_keys_allocate_only_their_page() {
        let mut s = ReplicaStore::new();
        s.apply_write(
            Key(5 * PAGE_SLOTS as u64 + 3),
            Version(1),
            10,
            SimTime::ZERO,
        );
        assert_eq!(s.key_count(), 1);
        assert_eq!(s.table.allocated_pages(), 1);
        // Reading unwritten pages allocates nothing.
        assert!(s.peek(Key(0)).is_none());
        assert!(s.peek(Key(100 * PAGE_SLOTS as u64)).is_none());
        assert_eq!(s.table.allocated_pages(), 1);
    }

    #[test]
    fn range_reads_meter_every_probe_and_weigh_present_bytes() {
        let mut s = ReplicaStore::new();
        for k in 10..20u64 {
            s.preload(Key(k), Version(k), 100);
        }
        // Scan fully inside the populated range.
        let r = s.read_range(Key(12), 5);
        assert_eq!(r.records, 5);
        assert_eq!(r.bytes, 500);
        assert_eq!(r.anchor.unwrap().version, Version(12));
        assert_eq!(s.read_ops(), 5, "every probed slot counts as one read");
        // Scan running past the populated range: probes still metered,
        // absent slots weigh nothing.
        let r = s.read_range(Key(18), 10);
        assert_eq!(r.records, 2);
        assert_eq!(r.bytes, 200);
        assert_eq!(s.read_ops(), 15);
        // Scan starting on an absent anchor.
        let r = s.read_range(Key(100), 3);
        assert_eq!(r.anchor, None);
        assert_eq!(r.records, 0);
        assert_eq!(r.bytes, 0);
    }

    #[test]
    fn range_reads_cross_page_boundaries() {
        let mut s = ReplicaStore::new();
        let boundary = PAGE_SLOTS as u64;
        for k in (boundary - 3)..(boundary + 3) {
            s.preload(Key(k), Version(k + 1), 10);
        }
        let r = s.read_range(Key(boundary - 3), 6);
        assert_eq!(r.records, 6);
        assert_eq!(r.bytes, 60);
        assert_eq!(r.anchor.unwrap().version, Version(boundary - 2));
        // A scan whose middle page was never written skips it as absent.
        let far = 3 * boundary;
        s.preload(Key(far), Version(1_000_000), 7);
        let r = s.read_range(Key(far - 2), 4);
        assert_eq!(r.records, 1);
        assert_eq!(r.bytes, 7);
    }

    #[test]
    fn page_digests_track_contents_not_history() {
        let mut a = ReplicaStore::with_summaries();
        let mut b = ReplicaStore::with_summaries();
        assert_eq!(a.page_digest(0), 0, "untouched pages read as zero");
        assert_eq!(a.summary_pages(), 0);
        // Same final contents through different histories ⇒ same digest.
        a.apply_write(Key(1), Version(1), 10, SimTime::ZERO);
        a.apply_write(Key(1), Version(4), 10, SimTime::ZERO);
        a.apply_write(Key(2), Version(2), 10, SimTime::ZERO);
        b.preload(Key(2), Version(2), 10);
        b.apply_write(Key(1), Version(4), 10, SimTime::ZERO);
        assert_eq!(a.page_digest(0), b.page_digest(0));
        // Diverging one key splits the digests; re-converging re-joins them.
        a.apply_write(Key(2), Version(9), 10, SimTime::ZERO);
        assert_ne!(a.page_digest(0), b.page_digest(0));
        b.apply_write(Key(2), Version(9), 10, SimTime::ZERO);
        assert_eq!(a.page_digest(0), b.page_digest(0));
        // A superseded write changes nothing, digest included.
        let before = a.page_digest(0);
        assert!(!a.apply_write(Key(2), Version(5), 10, SimTime::ZERO));
        assert_eq!(a.page_digest(0), before);
        // Pages are independent.
        a.preload(Key(PAGE_SLOTS as u64 + 7), Version(1), 10);
        assert_eq!(a.summary_pages(), 2);
        assert_eq!(a.page_digest(0), before);
        assert_ne!(a.page_digest(1), 0);
    }

    #[test]
    fn default_stores_maintain_no_summaries() {
        let mut s = ReplicaStore::new();
        s.apply_write(Key(1), Version(1), 10, SimTime::ZERO);
        s.preload(Key(2), Version(2), 10);
        assert_eq!(s.summary_pages(), 0, "no digest vector is ever grown");
        assert_eq!(s.page_digest(0), 0);
        // Everything else behaves identically to a summarized store.
        assert_eq!(s.key_count(), 2);
        assert_eq!(s.bytes_stored(), 20);
    }

    #[test]
    fn collect_page_streams_occupied_records() {
        let mut s = ReplicaStore::new();
        s.preload(Key(3), Version(30), 100);
        s.preload(Key(5), Version(50), 200);
        s.preload(Key(PAGE_SLOTS as u64 + 1), Version(7), 10);
        let mut out = Vec::new();
        s.collect_page(0, &mut out);
        assert_eq!(
            out,
            vec![(Key(3), Version(30), 100), (Key(5), Version(50), 200)]
        );
        out.clear();
        s.collect_page(1, &mut out);
        assert_eq!(out, vec![(Key(PAGE_SLOTS as u64 + 1), Version(7), 10)]);
        out.clear();
        s.collect_page(9, &mut out);
        assert!(out.is_empty(), "unallocated pages stream nothing");
        let (reads, writes) = (s.read_ops(), s.write_ops());
        assert_eq!((reads, writes), (0, 0), "collection is not storage I/O");
    }

    #[test]
    fn range_read_at_the_end_of_the_key_space_stops() {
        let mut s = ReplicaStore::new();
        let r = s.read_range(Key(u64::MAX - 1), 10);
        assert_eq!(r.records, 0);
        // Zero-length scans behave like one probe of the anchor.
        let r = s.read_range(Key(0), 0);
        assert_eq!(r.records, 0);
        assert!(r.anchor.is_none());
    }
}
