//! Per-replica local storage.
//!
//! Each simulated node owns a [`ReplicaStore`]: a versioned key-value table
//! with last-write-wins reconciliation plus the counters needed for the cost
//! model (bytes stored, storage I/O operations performed).
//!
//! ## Layout: paged direct indexing, no hashing
//!
//! Record keys are **dense `u64` record ids** — the workload generators
//! allocate them contiguously from 0 and assert they stay below the
//! configured record count (see `concord_workload::generators`). The store
//! exploits that contract: instead of a hash map it keeps its slots in a
//! [`PagedTable`] (the shared paged direct-index substrate, fixed 4096-slot
//! pages allocated on first write), so `read` / `apply_write` / `preload`
//! are a shift, a mask and a load — no hash, no probe sequence, no
//! tombstones. Vacancy is this store's own convention, per the table's
//! contract: a slot is occupied iff its version is non-zero
//! ([`Version::NONE`] never names a real write, which the write paths
//! assert), so presence costs no extra bit.
//!
//! Sequential record ids are contiguous in memory, which is what makes the
//! YCSB-E range-read path ([`ReplicaStore::read_range`]) a streaming load
//! over `scan_len` adjacent slots rather than `scan_len` independent hash
//! lookups.
//!
//! Reads never allocate: probing a key whose page was never written returns
//! "absent" without materializing the page, so a scan running past the
//! loaded key space stays allocation-free.

use crate::paged::{PagedTable, PAGE_BITS, PAGE_MASK, PAGE_SLOTS};
use crate::types::{Key, StoredValue, Version};
use concord_sim::SimTime;

/// A vacant slot: version 0 ([`Version::NONE`]) marks absence.
const EMPTY_SLOT: StoredValue = StoredValue {
    version: Version::NONE,
    size: 0,
    applied_at: SimTime::ZERO,
};

/// Aggregate result of one range read (see [`ReplicaStore::read_range`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeRead {
    /// The stored value of the range's anchor (first) record, if present.
    /// Reconciliation and staleness classification key off the anchor.
    pub anchor: Option<StoredValue>,
    /// Number of records present in the scanned range.
    pub records: u32,
    /// Total payload bytes of the present records (the byte weight of the
    /// data response).
    pub bytes: u64,
}

/// The local storage of one replica node: a [`PagedTable`] over dense record
/// ids (see the module docs for the layout).
#[derive(Debug, Clone)]
pub struct ReplicaStore {
    /// The slot table; a slot is occupied iff its version is non-zero.
    table: PagedTable<StoredValue>,
    /// Number of occupied slots (distinct keys stored).
    keys: usize,
    bytes_stored: u64,
    write_ops: u64,
    read_ops: u64,
    /// Writes ignored because a newer version was already present
    /// (late-arriving propagation after a concurrent overwrite).
    superseded_writes: u64,
}

impl Default for ReplicaStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplicaStore {
    /// An empty store.
    pub fn new() -> Self {
        ReplicaStore {
            table: PagedTable::new(EMPTY_SLOT),
            keys: 0,
            bytes_stored: 0,
            write_ops: 0,
            read_ops: 0,
            superseded_writes: 0,
        }
    }

    /// The slot for `key`, if its page exists (never allocates).
    #[inline]
    fn slot(&self, key: Key) -> Option<&StoredValue> {
        self.table.get(key.0)
    }

    /// Apply a write. Returns `true` if the value was installed, `false` if a
    /// newer version was already present (last-write-wins).
    pub fn apply_write(&mut self, key: Key, version: Version, size: u32, at: SimTime) -> bool {
        debug_assert!(version.exists(), "writes carry a real (non-zero) version");
        self.write_ops += 1;
        let slot = self.table.get_mut(key.0);
        if slot.version >= version {
            // Occupied slots always beat the write here; a vacant slot
            // (version 0) can never reach this arm because real versions
            // are non-zero.
            self.superseded_writes += 1;
            return false;
        }
        if slot.version.exists() {
            self.bytes_stored = self.bytes_stored - slot.size as u64 + size as u64;
        } else {
            self.keys += 1;
            self.bytes_stored += size as u64;
        }
        *slot = StoredValue {
            version,
            size,
            applied_at: at,
        };
        true
    }

    /// Load a record directly (bulk load path: no I/O accounting, used to
    /// pre-populate the data set before the measured run). A re-preload of
    /// an existing key is an authoritative overwrite: the byte accounting
    /// replaces the old payload's size instead of double-counting it.
    pub fn preload(&mut self, key: Key, version: Version, size: u32) {
        debug_assert!(version.exists(), "preloads carry a real (non-zero) version");
        let slot = self.table.get_mut(key.0);
        if slot.version.exists() {
            self.bytes_stored = self.bytes_stored - slot.size as u64 + size as u64;
        } else {
            self.keys += 1;
            self.bytes_stored += size as u64;
        }
        *slot = StoredValue {
            version,
            size,
            applied_at: SimTime::ZERO,
        };
    }

    /// Read the current value of a key (counts as one storage read).
    pub fn read(&mut self, key: Key) -> Option<StoredValue> {
        self.read_ops += 1;
        self.peek(key)
    }

    /// Read `len` consecutive records starting at `start` (a YCSB-E range
    /// scan on this replica). Metered as `len` storage reads — every slot in
    /// the range is probed, present or not — and the result reports the
    /// byte weight of the present records for response-traffic accounting.
    /// Never allocates: ranges running past the written key space read as
    /// absent.
    pub fn read_range(&mut self, start: Key, len: u32) -> RangeRead {
        self.read_ops += len.max(1) as u64;
        let mut out = RangeRead {
            anchor: self.peek(start),
            records: 0,
            bytes: 0,
        };
        let mut key = start.0;
        let mut remaining = len.max(1);
        while remaining > 0 {
            let page_idx = (key >> PAGE_BITS) as usize;
            let slot_idx = (key & PAGE_MASK) as usize;
            // Slots to take from this page before crossing its boundary.
            let run = ((PAGE_SLOTS - slot_idx) as u32).min(remaining);
            if let Some(page) = self.table.page(page_idx) {
                for slot in &page[slot_idx..slot_idx + run as usize] {
                    if slot.version.exists() {
                        out.records += 1;
                        out.bytes += slot.size as u64;
                    }
                }
            }
            remaining -= run;
            key = match key.checked_add(run as u64) {
                Some(k) => k,
                None => break, // the key space ends; nothing further exists
            };
        }
        out
    }

    /// Peek without accounting (used by the staleness oracle and tests).
    pub fn peek(&self, key: Key) -> Option<StoredValue> {
        self.slot(key).copied().filter(|v| v.version.exists())
    }

    /// Number of distinct keys stored.
    pub fn key_count(&self) -> usize {
        self.keys
    }

    /// Total payload bytes currently stored on this replica.
    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored
    }

    /// Number of storage write operations performed (including superseded).
    pub fn write_ops(&self) -> u64 {
        self.write_ops
    }

    /// Number of storage read operations performed (range reads count one
    /// per record probed).
    pub fn read_ops(&self) -> u64 {
        self.read_ops
    }

    /// Number of writes that lost the last-write-wins race.
    pub fn superseded_writes(&self) -> u64 {
        self.superseded_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_install_newest_version() {
        let mut s = ReplicaStore::new();
        assert!(s.apply_write(Key(1), Version(1), 100, SimTime::from_secs(1)));
        assert!(s.apply_write(Key(1), Version(3), 100, SimTime::from_secs(2)));
        // An older (late) version must not overwrite a newer one.
        assert!(!s.apply_write(Key(1), Version(2), 100, SimTime::from_secs(3)));
        assert_eq!(s.peek(Key(1)).unwrap().version, Version(3));
        assert_eq!(s.superseded_writes(), 1);
        assert_eq!(s.write_ops(), 3);
    }

    #[test]
    fn bytes_stored_tracks_value_sizes() {
        let mut s = ReplicaStore::new();
        s.apply_write(Key(1), Version(1), 100, SimTime::ZERO);
        s.apply_write(Key(2), Version(2), 50, SimTime::ZERO);
        assert_eq!(s.bytes_stored(), 150);
        // Overwriting key 1 with a larger value adjusts the total.
        s.apply_write(Key(1), Version(3), 300, SimTime::ZERO);
        assert_eq!(s.bytes_stored(), 350);
        assert_eq!(s.key_count(), 2);
    }

    #[test]
    fn reads_are_counted_and_return_values() {
        let mut s = ReplicaStore::new();
        s.preload(Key(7), Version(1), 10);
        assert_eq!(s.read(Key(7)).unwrap().version, Version(1));
        assert!(s.read(Key(8)).is_none());
        assert_eq!(s.read_ops(), 2);
        // preload does not count as a write op.
        assert_eq!(s.write_ops(), 0);
    }

    #[test]
    fn equal_version_does_not_reinstall() {
        let mut s = ReplicaStore::new();
        assert!(s.apply_write(Key(1), Version(5), 10, SimTime::ZERO));
        assert!(!s.apply_write(Key(1), Version(5), 10, SimTime::ZERO));
    }

    #[test]
    fn re_preload_replaces_byte_accounting() {
        let mut s = ReplicaStore::new();
        s.preload(Key(1), Version(1), 100);
        s.preload(Key(1), Version(2), 300);
        assert_eq!(s.bytes_stored(), 300, "overwrite, not double-count");
        assert_eq!(s.key_count(), 1);
        assert_eq!(s.peek(Key(1)).unwrap().version, Version(2));
    }

    #[test]
    fn sparse_high_keys_allocate_only_their_page() {
        let mut s = ReplicaStore::new();
        s.apply_write(
            Key(5 * PAGE_SLOTS as u64 + 3),
            Version(1),
            10,
            SimTime::ZERO,
        );
        assert_eq!(s.key_count(), 1);
        assert_eq!(s.table.allocated_pages(), 1);
        // Reading unwritten pages allocates nothing.
        assert!(s.peek(Key(0)).is_none());
        assert!(s.peek(Key(100 * PAGE_SLOTS as u64)).is_none());
        assert_eq!(s.table.allocated_pages(), 1);
    }

    #[test]
    fn range_reads_meter_every_probe_and_weigh_present_bytes() {
        let mut s = ReplicaStore::new();
        for k in 10..20u64 {
            s.preload(Key(k), Version(k), 100);
        }
        // Scan fully inside the populated range.
        let r = s.read_range(Key(12), 5);
        assert_eq!(r.records, 5);
        assert_eq!(r.bytes, 500);
        assert_eq!(r.anchor.unwrap().version, Version(12));
        assert_eq!(s.read_ops(), 5, "every probed slot counts as one read");
        // Scan running past the populated range: probes still metered,
        // absent slots weigh nothing.
        let r = s.read_range(Key(18), 10);
        assert_eq!(r.records, 2);
        assert_eq!(r.bytes, 200);
        assert_eq!(s.read_ops(), 15);
        // Scan starting on an absent anchor.
        let r = s.read_range(Key(100), 3);
        assert_eq!(r.anchor, None);
        assert_eq!(r.records, 0);
        assert_eq!(r.bytes, 0);
    }

    #[test]
    fn range_reads_cross_page_boundaries() {
        let mut s = ReplicaStore::new();
        let boundary = PAGE_SLOTS as u64;
        for k in (boundary - 3)..(boundary + 3) {
            s.preload(Key(k), Version(k + 1), 10);
        }
        let r = s.read_range(Key(boundary - 3), 6);
        assert_eq!(r.records, 6);
        assert_eq!(r.bytes, 60);
        assert_eq!(r.anchor.unwrap().version, Version(boundary - 2));
        // A scan whose middle page was never written skips it as absent.
        let far = 3 * boundary;
        s.preload(Key(far), Version(1_000_000), 7);
        let r = s.read_range(Key(far - 2), 4);
        assert_eq!(r.records, 1);
        assert_eq!(r.bytes, 7);
    }

    #[test]
    fn range_read_at_the_end_of_the_key_space_stops() {
        let mut s = ReplicaStore::new();
        let r = s.read_range(Key(u64::MAX - 1), 10);
        assert_eq!(r.records, 0);
        // Zero-length scans behave like one probe of the anchor.
        let r = s.read_range(Key(0), 0);
        assert_eq!(r.records, 0);
        assert!(r.anchor.is_none());
    }
}
