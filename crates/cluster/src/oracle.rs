//! Ground-truth staleness oracle.
//!
//! The simulation can do something the paper's real deployments cannot: know
//! *exactly* which reads were stale. The oracle tracks, per key, the sequence
//! of write versions in the order their consistency level was satisfied
//! (acknowledged to the client). A read issued at time `t` is stale if it
//! returns a version older than the newest version acknowledged before `t`.
//! This is the same definition the Monte-Carlo staleness estimator and the
//! Harmony model use, so measured and estimated rates are directly
//! comparable (as they are in the paper's Harmony evaluation).
//!
//! Like [`ReplicaStore`](crate::ReplicaStore), the per-key state lives in
//! the shared [`PagedTable`] over the dense record-id space instead of a
//! hash map: `expected_version` / `record_ack` / `classify_read` run once
//! per simulated operation, and with direct indexing each is a shift, a
//! mask and a load. Each slot keeps the binary-searched bounded version
//! history that staleness *depth* is computed from; vacancy is this table's
//! own convention (`acked_writes == 0`), per the [`PagedTable`] contract.

use crate::paged::PagedTable;
use crate::types::{Key, Version};
use concord_sim::SimTime;
use std::collections::VecDeque;

/// How many recent acknowledged versions are kept per key for computing the
/// staleness *depth*. Older history is dropped (the depth saturates), which
/// bounds the oracle's memory for long runs.
const DEPTH_HISTORY: usize = 64;

/// Per-key acknowledged-write bookkeeping. A slot with `acked_writes == 0`
/// is vacant (the key was never preloaded nor acknowledged).
#[derive(Debug, Clone, Default)]
struct KeyHistory {
    /// Latest acknowledged version.
    latest_acked: Version,
    /// Number of acknowledged writes so far (used for staleness depth).
    acked_writes: u64,
    /// Recent (version, ack index, ack time) triples, newest at the back;
    /// bounded to [`DEPTH_HISTORY`] entries. The ack time lets
    /// [`StalenessOracle::expected_version_at`] answer "what was the newest
    /// acknowledged version at instant `t`" retroactively — the parallel
    /// sharded engine records acks at window folds and classifies each read
    /// against its own issue instant, so classification does not depend on
    /// which fold recorded which ack.
    version_order: VecDeque<(Version, u64, SimTime)>,
    /// Whether `version_order` is sorted by version. Acks almost always
    /// arrive in version order (the global version counter is assigned at
    /// write start and acknowledgements follow in simulation-time order), so
    /// depth lookups can binary-search; a rare out-of-order ack of two
    /// overlapping writes flips this and falls back to the linear scan.
    unsorted: bool,
}

impl KeyHistory {
    fn push_version(&mut self, version: Version, index: u64, at: SimTime) {
        if let Some(&(back, _, _)) = self.version_order.back() {
            if back > version {
                self.unsorted = true;
            }
        }
        self.version_order.push_back((version, index, at));
        if self.version_order.len() > DEPTH_HISTORY {
            self.version_order.pop_front();
        }
    }

    fn index_of(&self, version: Version) -> Option<u64> {
        if self.unsorted {
            // Out-of-order history: last occurrence wins, as before.
            return self
                .version_order
                .iter()
                .rev()
                .find(|(v, _, _)| *v == version)
                .map(|(_, i, _)| *i);
        }
        // Versions are globally unique, so a sorted history has at most one
        // match: O(log n) instead of a linear reverse scan.
        self.version_order
            .binary_search_by(|(v, _, _)| v.cmp(&version))
            .ok()
            .map(|i| self.version_order[i].1)
    }
}

/// The staleness oracle.
#[derive(Debug, Clone)]
pub struct StalenessOracle {
    /// Per-key history in the shared paged table (pages allocated on the
    /// first preload/ack that touches them; lookups never allocate).
    table: PagedTable<KeyHistory>,
    /// Number of keys ever touched (slots with `acked_writes > 0`).
    keys: usize,
    stale_reads: u64,
    fresh_reads: u64,
    /// Sum of staleness depths over stale reads (for the average).
    stale_depth_sum: u64,
}

impl Default for StalenessOracle {
    fn default() -> Self {
        StalenessOracle {
            table: PagedTable::new(KeyHistory::default()),
            keys: 0,
            stale_reads: 0,
            fresh_reads: 0,
            stale_depth_sum: 0,
        }
    }
}

/// Classification of one read by the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadClassification {
    /// Whether the read returned a value older than the latest version
    /// acknowledged before the read was issued.
    pub stale: bool,
    /// How many acknowledged writes the returned value lags behind.
    pub depth: u32,
}

impl StalenessOracle {
    /// An empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// The history slot for `key`, if its page exists (never allocates).
    #[inline]
    fn slot(&self, key: Key) -> Option<&KeyHistory> {
        let h = self.table.get(key.0)?;
        (h.acked_writes > 0).then_some(h)
    }

    /// The history slot for `key`, allocating its page on first touch and
    /// counting the key when it is new.
    #[inline]
    fn slot_mut(&mut self, key: Key) -> &mut KeyHistory {
        let h = self.table.get_mut(key.0);
        if h.acked_writes == 0 {
            self.keys += 1;
        }
        h
    }

    /// Record that `version` of `key` was just preloaded (bulk load before
    /// the measured run): it becomes the acknowledged baseline, timestamped
    /// at time zero so every retroactive query sees it.
    pub fn preload(&mut self, key: Key, version: Version) {
        let h = self.slot_mut(key);
        h.latest_acked = h.latest_acked.max(version);
        h.acked_writes += 1;
        let idx = h.acked_writes;
        h.push_version(version, idx, SimTime::ZERO);
    }

    /// Record that a write of `version` to `key` satisfied its consistency
    /// level (i.e. was acknowledged to the client) at `at`. The serial
    /// engine calls this inline, in simulation-time order; the parallel
    /// engine calls it at window folds, where acks from one window land in
    /// fixed shard order carrying their true ack times (within one fold the
    /// times may interleave across shards, which is why retroactive queries
    /// go by the stored time, not the record order).
    pub fn record_ack(&mut self, key: Key, version: Version, at: SimTime) {
        let h = self.slot_mut(key);
        h.acked_writes += 1;
        let idx = h.acked_writes;
        h.push_version(version, idx, at);
        if version > h.latest_acked {
            h.latest_acked = version;
        }
    }

    /// The latest acknowledged version of `key` right now. A read captures
    /// this at issue time as its freshness requirement.
    pub fn expected_version(&self, key: Key) -> Version {
        self.slot(key)
            .map(|h| h.latest_acked)
            .unwrap_or(Version::NONE)
    }

    /// The newest version of `key` acknowledged strictly before instant
    /// `at` — [`StalenessOracle::expected_version`] evaluated retroactively
    /// from the bounded history. The parallel engine records acks at window
    /// folds, so by the fold that completes a read, every ack that precedes
    /// the read's issue instant is in the history (an ack lands at the fold
    /// of the window containing its ack time, and the issue instant is
    /// never later than the completing window's end); acks recorded after
    /// the issue instant are filtered out here by their stored times.
    ///
    /// Saturation: if every *retained* entry is newer than `at` but older
    /// entries were dropped ([`DEPTH_HISTORY`] acks on one key while a read
    /// was in flight), the true answer lies in the dropped prefix and the
    /// oldest retained version stands in for it — erring toward counting
    /// the read stale, like the depth saturation.
    pub fn expected_version_at(&self, key: Key, at: SimTime) -> Version {
        let Some(h) = self.slot(key) else {
            return Version::NONE;
        };
        let mut best = Version::NONE;
        let mut any_before = false;
        for &(v, _, t) in &h.version_order {
            if t < at {
                any_before = true;
                if v > best {
                    best = v;
                }
            }
        }
        if any_before {
            best
        } else if h.acked_writes as usize > h.version_order.len() {
            // Truncated history with no retained ack before `at`.
            h.version_order
                .front()
                .map(|&(v, _, _)| v)
                .unwrap_or(Version::NONE)
        } else {
            Version::NONE
        }
    }

    /// Classify a read without touching any counter: a pure function of the
    /// version history. [`StalenessOracle::classify_read`] layers the
    /// stale/fresh accounting on top.
    pub fn probe(&self, key: Key, expected: Version, returned: Version) -> ReadClassification {
        let stale = returned < expected;
        let depth = if !stale {
            0
        } else {
            match self.slot(key) {
                None => 1,
                Some(h) => {
                    let expected_idx = h.index_of(expected).unwrap_or(0);
                    let returned_idx = h.index_of(returned).unwrap_or(0);
                    expected_idx.saturating_sub(returned_idx).max(1) as u32
                }
            }
        };
        ReadClassification { stale, depth }
    }

    /// Classify a completed read: it was issued when `expected` was the
    /// newest acknowledged version and returned `returned`.
    pub fn classify_read(
        &mut self,
        key: Key,
        expected: Version,
        returned: Version,
    ) -> ReadClassification {
        let c = self.probe(key, expected, returned);
        if c.stale {
            self.stale_reads += 1;
            self.stale_depth_sum += c.depth as u64;
        } else {
            self.fresh_reads += 1;
        }
        c
    }

    /// Classify a read issued at `issued_at` that returned `returned`,
    /// resolving the freshness expectation retroactively via
    /// [`StalenessOracle::expected_version_at`]. The parallel engine's
    /// fold-time completion path: it yields the same stale/fresh decision a
    /// serial execution of the same event trace would make at issue time.
    pub fn classify_read_at(
        &mut self,
        key: Key,
        issued_at: SimTime,
        returned: Version,
    ) -> ReadClassification {
        let expected = self.expected_version_at(key, issued_at);
        self.classify_read(key, expected, returned)
    }

    /// Number of reads classified as stale.
    pub fn stale_reads(&self) -> u64 {
        self.stale_reads
    }

    /// Number of reads classified as fresh.
    pub fn fresh_reads(&self) -> u64 {
        self.fresh_reads
    }

    /// Fraction of reads that were stale (0 if no reads were classified).
    pub fn stale_rate(&self) -> f64 {
        let total = self.stale_reads + self.fresh_reads;
        if total == 0 {
            0.0
        } else {
            self.stale_reads as f64 / total as f64
        }
    }

    /// Mean number of acknowledged writes a stale read lagged behind.
    pub fn mean_staleness_depth(&self) -> f64 {
        if self.stale_reads == 0 {
            0.0
        } else {
            self.stale_depth_sum as f64 / self.stale_reads as f64
        }
    }

    /// Number of keys the oracle has seen.
    pub fn key_count(&self) -> usize {
        self.keys
    }

    /// Snapshot this oracle's aggregate counters. Both engines keep one
    /// central oracle (the parallel engine mutates it only at barrier
    /// folds), so this snapshot is the whole cross-shard view.
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            stale_reads: self.stale_reads,
            fresh_reads: self.fresh_reads,
            stale_depth_sum: self.stale_depth_sum,
            keys: self.keys,
        }
    }
}

/// A point-in-time copy of the oracle's aggregate counters — the detached
/// view the cluster exposes. Mirrors the query surface of
/// [`StalenessOracle`] so call sites work unchanged against the snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    stale_reads: u64,
    fresh_reads: u64,
    stale_depth_sum: u64,
    keys: usize,
}

impl OracleStats {
    /// Fold another snapshot into this one (for aggregating across runs).
    pub fn absorb(&mut self, other: &OracleStats) {
        self.stale_reads += other.stale_reads;
        self.fresh_reads += other.fresh_reads;
        self.stale_depth_sum += other.stale_depth_sum;
        self.keys += other.keys;
    }

    /// Number of reads classified as stale.
    pub fn stale_reads(&self) -> u64 {
        self.stale_reads
    }

    /// Number of reads classified as fresh.
    pub fn fresh_reads(&self) -> u64 {
        self.fresh_reads
    }

    /// Fraction of reads that were stale (0 if no reads were classified).
    pub fn stale_rate(&self) -> f64 {
        let total = self.stale_reads + self.fresh_reads;
        if total == 0 {
            0.0
        } else {
            self.stale_reads as f64 / total as f64
        }
    }

    /// Mean number of acknowledged writes a stale read lagged behind.
    pub fn mean_staleness_depth(&self) -> f64 {
        if self.stale_reads == 0 {
            0.0
        } else {
            self.stale_depth_sum as f64 / self.stale_reads as f64
        }
    }

    /// Number of keys seen across all shards (homes are disjoint, so the
    /// per-shard counts add exactly).
    pub fn key_count(&self) -> usize {
        self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paged::PAGE_SLOTS;

    #[test]
    fn fresh_reads_are_not_stale() {
        let mut o = StalenessOracle::new();
        o.record_ack(Key(1), Version(5), SimTime::ZERO);
        let expected = o.expected_version(Key(1));
        let c = o.classify_read(Key(1), expected, Version(5));
        assert!(!c.stale);
        assert_eq!(c.depth, 0);
        assert_eq!(o.stale_rate(), 0.0);
    }

    #[test]
    fn returning_an_old_version_is_stale() {
        let mut o = StalenessOracle::new();
        o.record_ack(Key(1), Version(5), SimTime::ZERO);
        o.record_ack(Key(1), Version(9), SimTime::ZERO);
        let expected = o.expected_version(Key(1));
        assert_eq!(expected, Version(9));
        let c = o.classify_read(Key(1), expected, Version(5));
        assert!(c.stale);
        assert_eq!(c.depth, 1, "one acknowledged write behind");
        assert_eq!(o.stale_reads(), 1);
        assert!(o.stale_rate() > 0.99);
    }

    #[test]
    fn depth_counts_missed_writes() {
        let mut o = StalenessOracle::new();
        for v in 1..=5u64 {
            o.record_ack(Key(1), Version(v), SimTime::ZERO);
        }
        let c = o.classify_read(Key(1), Version(5), Version(2));
        assert!(c.stale);
        assert_eq!(c.depth, 3);
        assert_eq!(o.mean_staleness_depth(), 3.0);
    }

    #[test]
    fn reads_newer_than_expected_are_fresh() {
        // A read may see a write that was acknowledged *after* the read was
        // issued; that is not stale.
        let mut o = StalenessOracle::new();
        o.record_ack(Key(1), Version(3), SimTime::ZERO);
        let expected = o.expected_version(Key(1));
        o.record_ack(Key(1), Version(7), SimTime::ZERO);
        let c = o.classify_read(Key(1), expected, Version(7));
        assert!(!c.stale);
    }

    #[test]
    fn unknown_keys_have_no_expectation() {
        let mut o = StalenessOracle::new();
        assert_eq!(o.expected_version(Key(99)), Version::NONE);
        let c = o.classify_read(Key(99), Version::NONE, Version::NONE);
        assert!(!c.stale);
        assert_eq!(o.fresh_reads(), 1);
    }

    #[test]
    fn preload_sets_baseline() {
        let mut o = StalenessOracle::new();
        o.preload(Key(1), Version(1));
        assert_eq!(o.expected_version(Key(1)), Version(1));
        assert_eq!(o.key_count(), 1);
        // Reading the preloaded version is fresh; missing it is stale.
        let c = o.classify_read(Key(1), Version(1), Version::NONE);
        assert!(c.stale);
    }

    #[test]
    fn out_of_order_acks_keep_exact_depths() {
        // Two overlapping writes acknowledged out of version order: the
        // binary-search fast path must detect the inversion and fall back to
        // the exact linear scan.
        let mut o = StalenessOracle::new();
        o.record_ack(Key(1), Version(5), SimTime::ZERO);
        o.record_ack(Key(1), Version(9), SimTime::ZERO);
        o.record_ack(Key(1), Version(7), SimTime::ZERO);
        let c = o.classify_read(Key(1), Version(9), Version(5));
        assert!(c.stale);
        assert_eq!(c.depth, 1, "idx(9)=2 minus idx(5)=1");
        let c = o.classify_read(Key(1), Version(7), Version(5));
        assert!(c.stale);
        assert_eq!(c.depth, 2, "idx(7)=3 minus idx(5)=1");
    }

    #[test]
    fn deep_histories_resolve_depths_by_binary_search() {
        let mut o = StalenessOracle::new();
        for v in 1..=64u64 {
            o.record_ack(Key(1), Version(v), SimTime::ZERO);
        }
        let c = o.classify_read(Key(1), Version(64), Version(2));
        assert!(c.stale);
        assert_eq!(c.depth, 62);
    }

    #[test]
    fn rate_mixes_stale_and_fresh() {
        let mut o = StalenessOracle::new();
        o.record_ack(Key(1), Version(1), SimTime::ZERO);
        o.record_ack(Key(1), Version(2), SimTime::ZERO);
        for _ in 0..3 {
            o.classify_read(Key(1), Version(2), Version(2));
        }
        o.classify_read(Key(1), Version(2), Version(1));
        assert!((o.stale_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn distinct_keys_keep_independent_histories_across_pages() {
        let mut o = StalenessOracle::new();
        let far = (PAGE_SLOTS as u64) * 7 + 3;
        o.record_ack(Key(1), Version(5), SimTime::ZERO);
        o.record_ack(Key(far), Version(9), SimTime::ZERO);
        assert_eq!(o.expected_version(Key(1)), Version(5));
        assert_eq!(o.expected_version(Key(far)), Version(9));
        assert_eq!(o.key_count(), 2);
        // Untouched keys on existing pages are still unknown.
        assert_eq!(o.expected_version(Key(2)), Version::NONE);
        // Repeated acks do not recount the key.
        o.record_ack(Key(1), Version(11), SimTime::ZERO);
        assert_eq!(o.key_count(), 2);
    }

    #[test]
    fn expected_version_at_sees_only_acks_strictly_before_the_instant() {
        let mut o = StalenessOracle::new();
        o.record_ack(Key(1), Version(3), SimTime::from_micros(100));
        o.record_ack(Key(1), Version(7), SimTime::from_micros(200));
        // Before any ack: no expectation.
        assert_eq!(
            o.expected_version_at(Key(1), SimTime::from_micros(50)),
            Version::NONE
        );
        // Exactly at an ack time: the ack is NOT yet visible (strict <).
        assert_eq!(
            o.expected_version_at(Key(1), SimTime::from_micros(100)),
            Version::NONE
        );
        assert_eq!(
            o.expected_version_at(Key(1), SimTime::from_micros(150)),
            Version(3)
        );
        assert_eq!(
            o.expected_version_at(Key(1), SimTime::from_micros(200)),
            Version(3)
        );
        assert_eq!(
            o.expected_version_at(Key(1), SimTime::from_micros(300)),
            Version(7)
        );
        // The untimed query sees the full history.
        assert_eq!(o.expected_version(Key(1)), Version(7));
    }

    #[test]
    fn classify_read_at_matches_the_serial_inline_classification() {
        // A read issued between two acks is fresh against the first even
        // though the second has landed by classification time — exactly
        // what the serial engine concludes by snapshotting expected_version
        // at issue time.
        let mut o = StalenessOracle::new();
        o.record_ack(Key(1), Version(3), SimTime::from_micros(100));
        o.record_ack(Key(1), Version(7), SimTime::from_micros(200));
        let c = o.classify_read_at(Key(1), SimTime::from_micros(150), Version(3));
        assert!(!c.stale);
        // The same returned version is stale for a read issued after the
        // second ack.
        let c = o.classify_read_at(Key(1), SimTime::from_micros(250), Version(3));
        assert!(c.stale);
        assert_eq!(c.depth, 1);
    }

    #[test]
    fn truncated_histories_err_toward_stale_at_early_instants() {
        // Push past DEPTH_HISTORY so the oldest entries are dropped, then
        // query an instant older than everything retained: the fallback is
        // the oldest retained version (non-NONE), so a read of anything
        // older classifies stale rather than vacuously fresh.
        let mut o = StalenessOracle::new();
        for v in 1..=(DEPTH_HISTORY as u64 + 8) {
            o.record_ack(Key(1), Version(v), SimTime::from_micros(1_000 + v));
        }
        let expected = o.expected_version_at(Key(1), SimTime::from_micros(500));
        assert_ne!(expected, Version::NONE, "truncation falls back, not NONE");
        let c = o.classify_read_at(Key(1), SimTime::from_micros(500), Version(1));
        assert!(c.stale);
    }
}
