//! The one paged direct-index table all dense-key state is built on.
//!
//! The workload generators guarantee (and assert) the *key-density
//! contract*: record ids are dense `u64`s below the configured record count.
//! Every per-event per-key table exploits it with paged direct indexing
//! instead of hashing — fixed 4096-slot pages allocated on first write, so a
//! lookup is a shift, a mask and a load, and reads of never-written pages
//! allocate nothing.
//!
//! PR 4 introduced that layout three times over ([`ReplicaStore`]
//! (crate::ReplicaStore), the staleness oracle's per-key history, the
//! ring-placement cache), each with a deliberately different vacancy
//! convention (version-0, acked-0, `u32::MAX`). [`PagedTable`] is the single
//! generic substrate those copies now share — and the ordered partitioner's
//! per-slice range index is its fourth user:
//!
//! * **paging + first-touch allocation** live here, once;
//! * **vacancy stays with the caller**: a fresh page is filled with the
//!   caller-supplied `vacant` value, and the table never interprets it —
//!   the replica store keeps "version 0 = absent", the oracle keeps
//!   "`acked_writes == 0` = absent", the placement caches keep the
//!   `u32::MAX` sentinel;
//! * **multi-lane entries**: a slot can hold `lanes` consecutive values
//!   (the placement caches store `RF` node ids per key/slice), with pages
//!   sized `PAGE_SLOTS × lanes` so entries never straddle a page boundary.

/// Slots per page (2^12). A page of 24-byte slots is ~96 KiB: large enough
/// that paper-scale record counts touch a handful of pages, small enough
/// that a sparse tail (workload-D/E insert growth) does not balloon memory.
pub const PAGE_BITS: u32 = 12;
/// Number of slots in one page.
pub const PAGE_SLOTS: usize = 1 << PAGE_BITS;
/// Mask extracting the slot index within a page.
pub const PAGE_MASK: u64 = PAGE_SLOTS as u64 - 1;

/// A paged direct-index table over a dense `u64` slot space. See the module
/// docs for the layout and the vacancy contract.
#[derive(Debug, Clone)]
pub struct PagedTable<T> {
    /// Pages indexed by `slot >> PAGE_BITS`; `None` until first written.
    pages: Vec<Option<Box<[T]>>>,
    /// The value fresh pages are filled with. The table never interprets
    /// it — vacancy semantics belong to the caller.
    vacant: T,
    /// Consecutive values per slot (1 for plain tables, `RF` for the
    /// placement caches).
    lanes: usize,
}

impl<T: Clone> PagedTable<T> {
    /// An empty single-lane table whose fresh slots read as `vacant`.
    pub fn new(vacant: T) -> Self {
        Self::with_lanes(vacant, 1)
    }

    /// An empty table with `lanes` consecutive values per slot.
    ///
    /// # Panics
    /// Panics if `lanes` is zero.
    pub fn with_lanes(vacant: T, lanes: usize) -> Self {
        assert!(lanes >= 1, "a slot holds at least one value");
        PagedTable {
            pages: Vec::new(),
            vacant,
            lanes,
        }
    }

    /// Values per slot.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Drop every page (all slots read as vacant again), keeping the lane
    /// count.
    pub fn clear(&mut self) {
        self.pages.clear();
    }

    /// Drop every page and adopt a new lane count — the epoch-invalidation
    /// path of the placement caches (the ring was rebuilt, possibly with a
    /// different effective replication factor).
    ///
    /// # Panics
    /// Panics if `lanes` is zero.
    pub fn reset(&mut self, lanes: usize) {
        assert!(lanes >= 1, "a slot holds at least one value");
        self.pages.clear();
        self.lanes = lanes;
    }

    /// The entry (all `lanes` values) of `slot`, if its page was ever
    /// written. Never allocates: probing an untouched page returns `None`.
    #[inline]
    pub fn entry(&self, slot: u64) -> Option<&[T]> {
        let page = self.pages.get((slot >> PAGE_BITS) as usize)?.as_deref()?;
        let at = (slot & PAGE_MASK) as usize * self.lanes;
        Some(&page[at..at + self.lanes])
    }

    /// The mutable entry of `slot`, allocating its page on first touch
    /// (filled with the `vacant` value).
    #[inline]
    pub fn entry_mut(&mut self, slot: u64) -> &mut [T] {
        let page_idx = (slot >> PAGE_BITS) as usize;
        if page_idx >= self.pages.len() {
            self.pages.resize(page_idx + 1, None);
        }
        let page = self.pages[page_idx]
            .get_or_insert_with(|| vec![self.vacant.clone(); PAGE_SLOTS * self.lanes].into());
        let at = (slot & PAGE_MASK) as usize * self.lanes;
        &mut page[at..at + self.lanes]
    }

    /// Single-lane convenience: the value of `slot`, if its page exists.
    #[inline]
    pub fn get(&self, slot: u64) -> Option<&T> {
        self.entry(slot).map(|e| &e[0])
    }

    /// Single-lane convenience: the mutable value of `slot`, allocating its
    /// page on first touch.
    #[inline]
    pub fn get_mut(&mut self, slot: u64) -> &mut T {
        &mut self.entry_mut(slot)[0]
    }

    /// The raw storage of page `page_idx` (`PAGE_SLOTS × lanes` values), if
    /// allocated — the streaming-scan path: a range read walks whole pages
    /// instead of probing slot by slot.
    #[inline]
    pub fn page(&self, page_idx: usize) -> Option<&[T]> {
        self.pages.get(page_idx)?.as_deref()
    }

    /// Number of pages actually allocated (tests and memory diagnostics).
    pub fn allocated_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_allocates_exactly_one_page() {
        let mut t: PagedTable<u64> = PagedTable::new(0);
        assert_eq!(t.allocated_pages(), 0);
        assert_eq!(
            t.get(5 * PAGE_SLOTS as u64 + 3),
            None,
            "probe allocates nothing"
        );
        assert_eq!(t.allocated_pages(), 0);
        *t.get_mut(5 * PAGE_SLOTS as u64 + 3) = 7;
        assert_eq!(t.allocated_pages(), 1, "one write, one page");
        assert_eq!(t.get(5 * PAGE_SLOTS as u64 + 3), Some(&7));
        // Neighbours on the same page read as the vacant fill.
        assert_eq!(t.get(5 * PAGE_SLOTS as u64 + 4), Some(&0));
        // Other pages stay unallocated.
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(100 * PAGE_SLOTS as u64), None);
        assert_eq!(t.allocated_pages(), 1);
    }

    #[test]
    fn adjacent_slots_across_a_page_boundary_are_independent_pages() {
        let mut t: PagedTable<u32> = PagedTable::new(u32::MAX);
        let boundary = PAGE_SLOTS as u64;
        *t.get_mut(boundary - 1) = 1;
        *t.get_mut(boundary) = 2;
        assert_eq!(t.allocated_pages(), 2);
        assert_eq!(t.get(boundary - 1), Some(&1));
        assert_eq!(t.get(boundary), Some(&2));
        // The page accessor exposes each side separately.
        assert_eq!(t.page(0).unwrap()[PAGE_SLOTS - 1], 1);
        assert_eq!(t.page(1).unwrap()[0], 2);
        assert_eq!(t.page(2), None);
    }

    #[test]
    fn vacancy_is_the_callers_convention() {
        // version-0 (replica store): vacant slots read as 0.
        let mut versions: PagedTable<u64> = PagedTable::new(0);
        *versions.get_mut(9) = 42;
        assert_eq!(*versions.get(10).unwrap(), 0, "version 0 = absent");
        // acked-0 (oracle): the fill value is whatever the caller deems empty.
        #[derive(Clone, Debug, PartialEq)]
        struct Hist {
            acked: u64,
        }
        let mut hists: PagedTable<Hist> = PagedTable::new(Hist { acked: 0 });
        hists.get_mut(3).acked = 5;
        assert_eq!(hists.get(4).unwrap().acked, 0, "acked 0 = absent");
        // u32::MAX sentinel (placement caches).
        let mut cache: PagedTable<u32> = PagedTable::with_lanes(u32::MAX, 3);
        assert_eq!(cache.entry(17), None);
        let entry = cache.entry_mut(17);
        assert_eq!(entry, &[u32::MAX; 3], "fresh entry reads as the sentinel");
        entry.copy_from_slice(&[4, 5, 6]);
        assert_eq!(cache.entry(17), Some(&[4u32, 5, 6][..]));
        assert_eq!(cache.entry(18), Some(&[u32::MAX; 3][..]));
    }

    #[test]
    fn lanes_share_a_page_and_never_straddle_boundaries() {
        let mut t: PagedTable<u32> = PagedTable::with_lanes(u32::MAX, 5);
        let last = PAGE_MASK; // last slot of page 0
        t.entry_mut(last).copy_from_slice(&[1, 2, 3, 4, 5]);
        assert_eq!(t.allocated_pages(), 1);
        assert_eq!(t.page(0).unwrap().len(), PAGE_SLOTS * 5);
        assert_eq!(t.entry(last), Some(&[1u32, 2, 3, 4, 5][..]));
        assert_eq!(t.entry(last + 1), None, "next slot lives on page 1");
    }

    #[test]
    fn reset_drops_pages_and_adopts_the_new_lane_count() {
        let mut t: PagedTable<u32> = PagedTable::with_lanes(u32::MAX, 3);
        t.entry_mut(7).copy_from_slice(&[1, 2, 3]);
        t.reset(5);
        assert_eq!(t.lanes(), 5);
        assert_eq!(t.allocated_pages(), 0, "every entry invalidated");
        assert_eq!(t.entry(7), None);
        assert_eq!(t.entry_mut(7), &[u32::MAX; 5]);
        t.clear();
        assert_eq!(t.lanes(), 5, "clear keeps the lane count");
        assert_eq!(t.allocated_pages(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn zero_lanes_rejected() {
        let _: PagedTable<u32> = PagedTable::with_lanes(0, 0);
    }
}
