//! # concord-cluster — geo-replicated quorum key-value store simulator
//!
//! The paper evaluates Harmony and Bismar on Apache Cassandra clusters
//! deployed on Amazon EC2 and Grid'5000. This crate is the from-scratch
//! substitute substrate: a discrete-event simulation of a Cassandra-like
//! storage cluster with
//!
//! * a pluggable [`Partitioner`] — consistent-hash token ring with virtual
//!   nodes (Cassandra's random partitioner) or contiguous key-range
//!   ownership (ordered partitioner, coverage-faithful range scans) — with
//!   `SimpleStrategy` / `NetworkTopologyStrategy` replica placement
//!   ([`Ring`]),
//! * one generic paged direct-index table ([`PagedTable`]) backing every
//!   dense-key structure (replica stores, staleness oracle, placement
//!   caches, the ordered partitioner's range index),
//! * per-operation tunable consistency levels ONE / TWO / THREE / QUORUM /
//!   LOCAL_QUORUM / EACH_QUORUM / ALL / EXACT(n) ([`ConsistencyLevel`]),
//! * coordinator-based write and read paths with asynchronous propagation to
//!   the replicas not required by the consistency level — the source of the
//!   staleness window the paper's Figure 1 describes ([`Cluster`]),
//! * last-write-wins versioned replica storage ([`ReplicaStore`]) with
//!   incrementally maintained per-page version summaries,
//! * optional read repair and node-failure injection,
//! * an opt-in background repair plane ([`RepairConfig`]): hinted handoff,
//!   anti-entropy sweeps over the page summaries, and recovery migration
//!   that streams acquired/returned ranges instead of instantly serving
//!   them,
//! * a ground-truth staleness oracle ([`StalenessOracle`]) so measured stale
//!   rates can be compared against Harmony's estimates,
//! * full metering of latency, stale reads, network traffic per link class
//!   and storage I/O for the cost model ([`ClusterMetrics`]).
//!
//! ```
//! use concord_cluster::{Cluster, ClusterConfig, ConsistencyLevel};
//! use concord_sim::SimTime;
//!
//! let mut cluster = Cluster::new(ClusterConfig::lan_test(5, 3), 42);
//! cluster.load_records((0..100u64).map(|k| (k, 1_000)));
//! cluster.submit_write_with(7, 1_000, ConsistencyLevel::Quorum, SimTime::ZERO);
//! cluster.submit_read_with(7, ConsistencyLevel::One, SimTime::from_millis(5));
//! let completed = cluster.run_to_completion(1_000_000);
//! assert_eq!(completed.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod config;
pub mod consistency;
pub mod metrics;
pub mod oracle;
pub mod paged;
pub mod ring;
pub mod slab;
pub mod storage;
pub mod types;

pub use cluster::{BatchOp, Cluster, ClusterOutput, ReplicaSelection};
pub use config::{ClusterConfig, RepairConfig, RepairMode, ResilienceConfig};
pub use consistency::ConsistencyLevel;
pub use metrics::{ClusterMetrics, LatencyReservoir, LatencyStats, TrafficBytes};
pub use oracle::{OracleStats, StalenessOracle};
pub use paged::PagedTable;
pub use ring::{Partitioner, ReplicationStrategy, Ring, ORDERED_SLICE_KEYS};
pub use slab::OpSlab;
pub use storage::ReplicaStore;
pub use types::{CompletedOp, Key, OpId, OpKind, OpStatus, StoredValue, Version};
