//! The geo-replicated storage cluster simulator.
//!
//! This is the substitute for the paper's Apache Cassandra deployments: a
//! discrete-event simulation of a cluster of storage nodes spread over
//! datacenters, with a consistent-hash ring, per-operation tunable
//! consistency levels, asynchronous replica propagation, optional read
//! repair, node failures, and full metering (latency, staleness ground truth,
//! network traffic per link class, storage I/O).
//!
//! ## Write path
//! A client write arrives at a uniformly chosen coordinator, which forwards
//! the mutation to **all** replicas of the key (as Cassandra does). The write
//! is acknowledged to the client as soon as the number of replica acks
//! required by the *write consistency level* have arrived; propagation to the
//! remaining replicas continues asynchronously — that asynchronous window is
//! exactly the staleness window of the paper's Figure 1.
//!
//! ## Read path
//! A client read contacts the number of replicas required by the *read
//! consistency level* (data request to the closest, digest requests to the
//! others, like Cassandra), reconciles by newest version and returns to the
//! client. The staleness oracle classifies the result against the newest
//! version acknowledged before the read was issued.
//!
//! ## Parallel sharded execution
//! With `shards > 1` the cluster runs as a conservative parallel DES: every
//! shard owns a contiguous group of nodes (whole datacenters where possible)
//! and carries its **own** event lane, RNG stream, op slab, metric sinks and
//! payload slab. Each operation is routed at submission: its coordinator is
//! drawn from the control stream and the op homes on the coordinator's
//! shard, so every message it exchanges travels a real coordinator↔replica
//! link — cross-shard exactly when it crosses the shard cut. The simulation
//! advances in lookahead windows bounded per shard by that shard's row of
//! an S×S **lookahead matrix** of pairwise link-delay infima (with
//! datacenter-aligned cuts, each pair's bound is the delay floor between
//! *those* DCs, so wide-area pairs no longer drag every window down to the
//! tightest LAN link): within a window each shard drains its lane
//! independently — the batches execute in parallel on the work-stealing
//! pool — while cross-shard effects are staged per destination shard.
//!
//! Closing a window has two tiers. **Delivery** happens at every close:
//! staged data-plane messages (events, write tasks) are drained from
//! per-destination arenas into the target lanes in fixed sender order —
//! this cannot be deferred, because the next window's floor depends on
//! them. The serial **fold** (oracle ack recording, deferred read
//! classification, control-plane effects, output publication) is *elided*
//! when nothing demands it: no staged control effects and the deferred
//! completion buffer below its flush threshold. Folds that do run execute
//! in fixed shard order (0, 1, …), drawing any fold-time randomness from a
//! dedicated control-plane RNG stream, so the run's output is a pure
//! function of `(seed, shard count)` at **any** worker-thread count —
//! elision included, because deferred work is order-preserving (window
//! output time ranges are disjoint) and control effects always force the
//! fold at their own window. Runs of entirely quiet windows are
//! fast-forwarded: the cursor jumps to the global next-event floor instead
//! of marching barrier-by-barrier through empty simulated time.
//!
//! Two pieces of cross-op state are centralized rather than sharded. Write
//! versions are timestamp-packed (`µs << 24 | seq << 8 | shard`) so
//! last-writer-wins order follows simulated time no matter which shard
//! coordinates a key's writes. The staleness oracle lives on the control
//! plane and is touched only at serial points: windows stage write acks
//! (with their ack times) and completed reads to the fold, where each read
//! is classified against the ack history *as of its own issue instant*
//! ([`StalenessOracle::expected_version_at`]). The classification is exact
//! — identical to a serial execution of the same event trace — because an
//! ack always folds no later than the completion of any read it could
//! affect, and same-fold acks with later times are filtered by timestamp.
//!
//! Determinism contract:
//! * `shards == 1` executes the exact serial path — byte-identical to the
//!   pre-sharding engine for every seed;
//! * for each `shards > 1`, output is byte-identical across 1, 2, 4, 8, …
//!   worker threads (fingerprints depend only on the shard count);
//! * handlers running inside a window touch nothing but the read-only
//!   [`ClusterShared`] snapshot and their own [`ShardState`] — enforced by
//!   the borrow checker, not by convention.

use crate::config::ClusterConfig;
use crate::consistency::ConsistencyLevel;
use crate::metrics::ClusterMetrics;
use crate::oracle::{OracleStats, StalenessOracle};
use crate::paged::PagedTable;
use crate::ring::{Partitioner, Ring, ORDERED_SLICE_BITS};
use crate::slab::OpSlab;
use crate::storage::ReplicaStore;
use crate::types::{CompletedOp, Key, OpId, OpKind, OpStatus, Version};
use concord_monitor::Ewma;
use concord_sim::events::{pack, unpack_time};
use concord_sim::{
    CompiledDelay, DcId, EventQueue, InlineVec, LinkClass, NetworkModel, NodeId, ShardMetrics,
    SimDuration, SimRng, SimTime, Topology,
};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How a coordinator picks which replicas a read contacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicaSelection {
    /// Contact the replicas with the lowest expected latency from the
    /// coordinator (Cassandra's snitch behaviour). Default.
    #[default]
    Closest,
    /// Contact replicas chosen uniformly at random.
    Random,
    /// Health-aware selection: rank replicas by their expected round trip
    /// plus an EWMA of the observed latency **excess** over it (so near and
    /// far coordinators feed one comparable per-node signal), with a
    /// per-node circuit breaker (closed/open/half-open) steering reads away
    /// from slow or flapping replicas. Tuned by
    /// [`ResilienceConfig`](crate::config::ResilienceConfig).
    Dynamic,
}

impl ReplicaSelection {
    /// Parse a CLI name (`closest`, `random`, `dynamic`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "closest" => Some(ReplicaSelection::Closest),
            "random" => Some(ReplicaSelection::Random),
            "dynamic" => Some(ReplicaSelection::Dynamic),
            _ => None,
        }
    }

    /// Short label for banners and tables.
    pub fn label(&self) -> &'static str {
        match self {
            ReplicaSelection::Closest => "closest",
            ReplicaSelection::Random => "random",
            ReplicaSelection::Dynamic => "dynamic",
        }
    }
}

/// Output of [`Cluster::advance`]: either a finished client operation or a
/// tick marker previously scheduled with [`Cluster::schedule_tick`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterOutput {
    /// A client operation completed.
    Completed(CompletedOp),
    /// A scheduled tick fired (used by adaptive runtimes to wake up).
    Tick {
        /// The id passed to `schedule_tick`.
        id: u64,
        /// The simulated time of the tick.
        at: SimTime,
    },
}

/// Work items queued on a replica node.
///
/// A write fan-out sends the *same* mutation to every replica, so the write
/// payload is interned once in the owning shard's ref-counted payload slab
/// and the task carries only a 4-byte handle — RF in-flight copies of one
/// write cost one payload record, and the event queue moves 8 fewer bytes
/// per hop.
#[derive(Debug, Clone, Copy)]
enum ReplicaTask {
    Write {
        /// Handle into [`ShardState::write_payloads`]; released on
        /// consumption. Payload handles never cross shards: a remote write
        /// task travels as an [`OutMsg::WriteTask`] carrying the payload by
        /// value and is re-interned at its destination shard when the
        /// window closes.
        payload: PayloadId,
    },
    Read {
        op_id: OpId,
        key: Key,
        /// Whether this replica returns the full data or only a digest.
        data: bool,
        /// Number of consecutive records to read (1 for point reads; YCSB-E
        /// range scans read `len` adjacent slots of the dense store).
        /// 16-bit on the wire — [`ClusterConfig::validate`] caps scan
        /// lengths so the task stays within the 24-byte event budget.
        len: u16,
        /// Which segment of a multi-segment scan this request serves (0 for
        /// point reads and hash-partitioned scans; ordered-partitioner scans
        /// split at ownership boundaries and gather per segment).
        segment: u16,
        /// The coordinator awaiting the response, as a packed 16-bit node
        /// index (see [`pack_node`]). Carried on the task so a replica on a
        /// foreign shard can sample the response delay and meter the
        /// message on *its own* stream at service time instead of deferring
        /// the draw to the barrier fold (the fold then needs no RNG for
        /// response traffic, which is what lets quiet windows elide it).
        coordinator: u16,
    },
}

/// Compress a [`NodeId`] to 16 bits for event-payload packing. Node counts
/// are capped at 65 536 by [`ClusterConfig::validate`], so the cast is
/// lossless; the debug assert guards internal callers that bypass
/// validation.
#[inline]
fn pack_node(node: NodeId) -> u16 {
    debug_assert!(node.0 <= u16::MAX as u32, "node id exceeds 16-bit packing");
    node.0 as u16
}

/// Index into a shard's interned write-payload slab.
type PayloadId = u32;

/// The shared payload of one write fan-out (client write or read repair):
/// interned once per shard, referenced by up to RF [`ReplicaTask::Write`]
/// events on that shard.
#[derive(Debug, Clone, Copy)]
struct WritePayload {
    op_id: OpId,
    key: Key,
    version: Version,
    size: u32,
    /// Background repair writes do not generate client-visible acks.
    repair: bool,
    /// The coordinator awaiting the ack, as a packed 16-bit node index
    /// (see [`pack_node`] and [`ReplicaTask::Read`]'s `coordinator` —
    /// same sender-side-draw rationale; unused for `repair` payloads,
    /// which ack nobody).
    coordinator: u16,
}

/// One slot of the write-payload slab: the payload plus its reference count
/// (live [`ReplicaTask::Write`] events pointing at it).
#[derive(Debug, Clone, Copy)]
struct PayloadSlot {
    refs: u32,
    payload: WritePayload,
}

/// Internal DES events.
#[derive(Debug, Clone)]
enum Event {
    ClientArrive {
        op_id: OpId,
    },
    ReplicaArrive {
        node: NodeId,
        task: ReplicaTask,
    },
    ReplicaServiceDone {
        node: NodeId,
        task: ReplicaTask,
    },
    CoordinatorWriteAck {
        op_id: OpId,
        from: NodeId,
        /// When the acking replica applied the write. The parallel engine
        /// derives the full-propagation sample from the max applied time
        /// over all acks (replica-side op state is unreadable across
        /// shards); the serial path ignores it and samples at apply time
        /// exactly as the pre-sharding engine did.
        applied_at: SimTime,
    },
    CoordinatorReadResponse {
        op_id: OpId,
        from: NodeId,
        version: Version,
        size: u32,
        /// Records in the response payload (data requests only; digests
        /// report 0 so coverage is never double-counted).
        records: u32,
        /// The scan segment this response answers (see [`ReplicaTask::Read`]).
        segment: u16,
    },
    OpTimeout {
        op_id: OpId,
    },
    /// Hedged-read trigger: if the read is still pending and has not hedged
    /// yet, issue one speculative digest request to the best unused replica.
    /// Scheduled only when [`ResilienceConfig::hedging_enabled`]
    /// (crate::config::ResilienceConfig) — a stale trigger (the read already
    /// completed or retried under a fresh id) misses the slab generation
    /// check and is a no-op.
    HedgeFire {
        op_id: OpId,
    },
    Tick {
        id: u64,
    },
    /// Replay the next queued hint to a node that came back up (hinted
    /// handoff; paced through the timer-wheel lane).
    HintReplay {
        node: NodeId,
    },
    /// One anti-entropy step: compare the per-page version summaries of the
    /// next node pair in the sweep cycle and stream divergent pages.
    AntiEntropy,
    /// Recovery migration: synchronize `node` from its up peers (page
    /// summaries compared, divergent pages streamed in). Scheduled when a
    /// node rejoins the ring or when survivors acquire a crashed node's
    /// ranges.
    RepairSync {
        node: NodeId,
    },
}

/// Sentinel op id carried by background repair payloads (hint replays and
/// anti-entropy streams). Repair writes never consult the op slab — the
/// replica-done and dead-task paths return before touching it — so the
/// sentinel only needs to be distinguishable in debug output.
const REPAIR_OP_ID: OpId = OpId(u64::MAX);

/// One queued hinted-handoff mutation: enough to re-issue the write to its
/// destination once the node is back (key, version, byte size — the payload
/// bytes themselves are not simulated, exactly like live writes).
#[derive(Debug, Clone, Copy)]
struct Hint {
    /// Coordinator that queued the hint; the replay is metered on the
    /// `from → destination` link.
    from: NodeId,
    key: Key,
    version: Version,
    size: u32,
}

/// A client operation waiting to start (scheduled arrival).
#[derive(Debug, Clone, Copy)]
struct Submission {
    kind: OpKind,
    key: Key,
    size: u32,
    /// Consecutive records a read touches (1 = point read, >1 = range scan).
    scan_len: u32,
    level: Option<ConsistencyLevel>,
}

/// One operation of a pre-sorted open-loop batch (see
/// [`Cluster::submit_batch`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchOp {
    /// Arrival time (non-decreasing across the batch).
    pub at: SimTime,
    /// Read or write.
    pub kind: OpKind,
    /// The record the operation targets (the range anchor for scans).
    pub key: u64,
    /// Payload bytes (writes; 0 for reads).
    pub size: u32,
    /// Consecutive records a read touches (1 = point read; a YCSB-E scan
    /// reads `scan_len` adjacent records starting at `key`). Ignored for
    /// writes.
    pub scan_len: u32,
    /// Explicit consistency level, or `None` for the cluster default.
    pub level: Option<ConsistencyLevel>,
}

impl BatchOp {
    /// A read at the cluster's default level.
    pub fn read(at: SimTime, key: u64) -> Self {
        BatchOp {
            at,
            kind: OpKind::Read,
            key,
            size: 0,
            scan_len: 1,
            level: None,
        }
    }

    /// A range scan of `scan_len` consecutive records starting at `key`, at
    /// the cluster's default read level.
    pub fn scan(at: SimTime, key: u64, scan_len: u32) -> Self {
        BatchOp {
            at,
            kind: OpKind::Read,
            key,
            size: 0,
            scan_len: scan_len.max(1),
            level: None,
        }
    }

    /// A write of `size` bytes at the cluster's default level.
    pub fn write(at: SimTime, key: u64, size: u32) -> Self {
        BatchOp {
            at,
            kind: OpKind::Write,
            key,
            size,
            scan_len: 1,
            level: None,
        }
    }
}

#[derive(Debug)]
struct WriteState {
    key: Key,
    version: Version,
    coordinator: NodeId,
    issued_at: SimTime,
    required_acks: u32,
    acks: u32,
    applied: u32,
    targeted: u32,
    completed: bool,
    level_used: u32,
    /// Payload size and explicit level of the submission, kept so a timed-out
    /// attempt can be re-issued when retries are configured.
    size: u32,
    level: Option<ConsistencyLevel>,
    retries_left: u32,
    /// The id `submit_*` returned to the client. Retried attempts run under
    /// fresh slab ids (so straggler events of the old attempt miss on the
    /// generation check), but the completion is always reported under this
    /// one, keeping client-side correlation intact.
    client_id: OpId,
    /// Latest apply time reported by an ack (parallel engine only; see
    /// [`Event::CoordinatorWriteAck::applied_at`]). Unused — and untouched —
    /// on the serial path.
    max_applied_at: SimTime,
}

#[derive(Debug)]
struct ReadState {
    key: Key,
    coordinator: NodeId,
    issued_at: SimTime,
    required: u32,
    /// Consecutive records of the whole operation (1 = point read).
    scan_len: u32,
    /// Segments still short of `required` responses; the read completes
    /// when this reaches zero. 1 segment for point reads and hash scans;
    /// ordered scans carry one segment per ownership slice the range spans.
    seg_pending: u32,
    /// Per-segment response counts, indexed by segment.
    seg_responses: InlineVec<u32>,
    /// Records accumulated from data responses (the scan's coverage).
    records: u32,
    best_version: Version,
    best_size: u32,
    min_version: Version,
    /// The freshness requirement captured at attempt start — serial engine
    /// only. The parallel engine resolves it retroactively at the
    /// completion fold ([`StalenessOracle::expected_version_at`] as of
    /// `attempt_at`) and leaves this [`Version::NONE`].
    expected_version: Version,
    /// When this attempt was issued (the retroactive-classification
    /// instant; `issued_at` spans attempts, this one does not).
    attempt_at: SimTime,
    /// The replicas this read contacted (for read repair). Inline up to 8
    /// nodes, so issuing a read does not allocate.
    contacted: InlineVec<NodeId>,
    /// Explicit level of the submission (for timeout-driven retries).
    level: Option<ConsistencyLevel>,
    retries_left: u32,
    /// The id `submit_*` returned to the client (see
    /// [`WriteState::client_id`]).
    client_id: OpId,
    /// The replica a speculative hedge request was sent to (`None` until the
    /// hedge fires; at most one hedge per attempt). Used to attribute the
    /// winning response (`hedge_wins`) and to fold the hedge target into
    /// read repair like any contacted replica.
    hedge: Option<NodeId>,
}

/// Retry context carried across attempts: the client-visible submission
/// time, the remaining retry budget and the id `submit_*` handed out (a
/// retried attempt runs under a fresh slab id but reports under this one).
#[derive(Debug, Clone, Copy)]
struct RetryCtx {
    issued_at: SimTime,
    retries_left: u32,
    client_id: OpId,
}

/// A client operation waiting to start on its home shard.
#[derive(Debug, Clone, Copy)]
struct PendingOp {
    sub: Submission,
    /// The coordinator this attempt was routed to. The parallel engine
    /// draws it at submission (or resubmission-fold) time from the control
    /// stream and homes the op on the coordinator's shard, so every message
    /// the attempt sends or receives travels a real coordinator↔replica
    /// link — cross-shard exactly when it crosses the shard cut, never
    /// faster than the lookahead bound. The serial engine keeps `None` and
    /// draws at arrival from the single stream, exactly as the pre-sharding
    /// engine did.
    coordinator: Option<NodeId>,
    /// `None` for first attempts (issued at arrival, under their own id,
    /// with the configured budget).
    retry: Option<RetryCtx>,
}

/// Lifecycle state of one in-flight operation, stored in the owning shard's
/// op slab: a submitted-but-not-arrived operation, then a write or read in
/// progress. An op lives on the shard that drew its id (slab slots are
/// strided by shard), so `op_id mod shards` recovers the owner from the id
/// alone — that is how acks and responses route home.
#[derive(Debug)]
enum OpState {
    Pending(PendingOp),
    Write(WriteState),
    Read(ReadState),
}

#[derive(Debug, Default)]
struct NodeRuntime {
    active: u32,
    queue: VecDeque<ReplicaTask>,
}

/// Paged direct-indexed cache of ring placements: `key → [NodeId; rf]`,
/// stored in the shared [`PagedTable`] with `rf` lanes per key and
/// `u32::MAX` in an entry's first lane marking "not yet computed".
///
/// Record ids are dense and the ring is immutable between crash/recover
/// reconfigurations, so the placement walk (token walk for the hash
/// partitioner, slice walk for the ordered one) runs **once per key per
/// ring epoch** instead of once per operation — the steady-state lookup is
/// a shift, a mask and an `rf`-element copy. Pages are allocated on first
/// touch; entries are invalidated wholesale by [`ReplicaCache::reset`] when
/// the ring changes. Each shard owns one (placement walks are pure, so
/// duplicating the cache costs memory, never determinism).
#[derive(Debug)]
struct ReplicaCache {
    /// `key → rf` node-id lanes; first lane `u32::MAX` = not yet computed.
    table: PagedTable<u32>,
    /// Replication factor of the current ring epoch (lane count).
    rf: usize,
}

impl ReplicaCache {
    fn new(rf: usize) -> Self {
        ReplicaCache {
            table: PagedTable::with_lanes(u32::MAX, rf.max(1)),
            rf,
        }
    }

    /// Drop every cached placement (the ring was rebuilt) and adopt the new
    /// ring's effective replication factor.
    fn reset(&mut self, rf: usize) {
        self.table.reset(rf.max(1));
        self.rf = rf;
    }

    /// Write the replicas of `key` into `out` (primary first), computing and
    /// caching the placement on first touch.
    #[inline]
    fn replicas_into(&mut self, ring: &Ring, key: Key, out: &mut Vec<NodeId>) {
        if self.rf == 0 {
            // Fully crashed cluster: the ring maps every key to no replicas.
            out.clear();
            return;
        }
        // Ordered placement is constant across each ownership slice, so the
        // cache is keyed per slice there — one entry instead of 4096
        // identical per-key copies. Hash placement stays per-key.
        let slot = match ring.partitioner() {
            Partitioner::Hash => key.0,
            Partitioner::Ordered => key.0 >> ORDERED_SLICE_BITS,
        };
        let entry = self.table.entry_mut(slot);
        if entry[0] != u32::MAX {
            out.clear();
            out.extend(entry.iter().map(|&n| NodeId(n)));
            return;
        }
        ring.replicas_into(key, out);
        debug_assert_eq!(out.len(), self.rf, "the ring yields exactly RF replicas");
        if out.len() == self.rf {
            for (slot, node) in entry.iter_mut().zip(out.iter()) {
                *slot = node.0;
            }
        }
    }
}

/// Dense index of a [`LinkClass`] into the sampler table.
#[inline]
const fn class_index(class: LinkClass) -> usize {
    match class {
        LinkClass::Local => 0,
        LinkClass::IntraDc => 1,
        LinkClass::InterDc => 2,
        LinkClass::InterRegion => 3,
    }
}

/// Everything a window handler reads but never writes: topology, ring,
/// compiled samplers, fault flags. `Sync`, shared by reference with every
/// shard during a parallel window; mutated only between windows (fault
/// injection, level changes, ring rebuilds) where `&mut Cluster` proves
/// exclusivity.
struct ClusterShared {
    config: ClusterConfig,
    ring: Ring,
    /// Datacenter of every node (partition checks on the message path).
    node_dc: Vec<DcId>,
    /// Precomputed mean one-way latency in ms for every (from, to) node
    /// pair, row-major: `mean_lat[from * n + to]`. Replica selection ranks
    /// candidates through this table instead of recomputing distribution
    /// means per comparison.
    mean_lat: Vec<f64>,
    /// Precomputed link class per (from, to) node pair, row-major — avoids
    /// re-deriving datacenter/region membership on every message.
    link_class: Vec<LinkClass>,
    /// Compiled per-link-class delay samplers, indexed by [`class_index`].
    link_samplers: [CompiledDelay; 4],
    /// Compiled storage service-time samplers.
    storage_read_sampler: CompiledDelay,
    storage_write_sampler: CompiledDelay,
    node_count: usize,
    /// Event-lane shard of every node: datacenters are kept contiguous
    /// (nodes ordered by (dc, id), then cut into `shards` equal groups), so
    /// intra-DC traffic stays shard-local and the lookahead bound is set by
    /// the slower cross-DC links. Static for the cluster's life — crashes
    /// withdraw ring tokens but never move a node between shards.
    node_shard: Vec<u16>,
    /// Shard count (`node_shard` image size), denominator of op-home routing.
    nshards: u32,
    /// Per-node down flags (transient outages; a crashed node is also down).
    down: Vec<bool>,
    /// Number of nodes currently marked down (fast path: pick a coordinator
    /// without materializing the up-node list).
    down_count: u32,
    /// Nodes permanently crashed (ring tokens withdrawn) as opposed to
    /// transiently down; a crashed node is also down.
    crashed: Vec<bool>,
    /// Currently partitioned datacenter pairs, normalized `(min, max)`.
    /// Messages between nodes of a partitioned pair are lost in transit.
    partitioned_dcs: Vec<(u16, u16)>,
    /// Per-link-class delay multiplier (1.0 = healthy), applied after
    /// sampling so the compiled samplers and their RNG draws are untouched.
    link_degradation: [f64; 4],
    /// True while any link class is degraded (fast-path guard).
    degradation_active: bool,
    /// Per-node gray-failure slowdown (1.0 = healthy): multiplies the
    /// node's storage service times and the delays of messages it sends,
    /// applied after sampling so the compiled samplers and their RNG draws
    /// are untouched (same contract as `link_degradation`). Factors are
    /// ≥ 1.0, so the lookahead bound (a delay infimum) stays valid.
    node_slow: Vec<f64>,
    /// True while any node is slowed (fast-path guard).
    slow_active: bool,
    read_level: ConsistencyLevel,
    write_level: ConsistencyLevel,
    selection: ReplicaSelection,
}

impl ClusterShared {
    /// The event-lane shard a node's events execute on.
    #[inline]
    fn shard_of(&self, node: NodeId) -> usize {
        self.node_shard[node.0 as usize] as usize
    }

    /// The canonical key of an unordered datacenter pair in
    /// [`ClusterShared::partitioned_dcs`].
    #[inline]
    fn dc_pair(a: DcId, b: DcId) -> (u16, u16) {
        (a.0.min(b.0), a.0.max(b.0))
    }

    /// Whether the link between two nodes is currently delivering messages.
    #[inline]
    fn link_up(&self, from: NodeId, to: NodeId) -> bool {
        if self.partitioned_dcs.is_empty() {
            return true;
        }
        let pair = Self::dc_pair(self.node_dc[from.0 as usize], self.node_dc[to.0 as usize]);
        !self.partitioned_dcs.contains(&pair)
    }
}

/// A cross-shard *data-plane* message staged during a window into the
/// sender's per-destination outbox arena and delivered — in sender-shard
/// order, then per-destination staging order — when the window closes.
/// Delivery is pure lane insertion (plus payload interning), needs no
/// control-plane state, and therefore happens at **every** window close,
/// fold or no fold: deferring it would change destination lanes' next-event
/// floors and with them every subsequent window bound. Everything is
/// carried by value — staged entries reference no slab of the shard that
/// produced them.
enum OutMsg {
    /// Deliver an event to the destination shard's lane verbatim.
    Event { at: SimTime, ev: Event },
    /// Deliver a replica write task: the payload travels by value and is
    /// interned (refs = 1) in the destination shard's slab on delivery.
    WriteTask {
        at: SimTime,
        node: NodeId,
        payload: WritePayload,
    },
}

/// How many deferred fold items (pending oracle acks + deferred read
/// completions + gathered outputs) a window close tolerates before it
/// forces a fold anyway. Bounds the memory deferred publication can hold
/// and keeps the final flush from ballooning; the value is a latency/
/// amortization trade-off, not a correctness knob — elision is exact at
/// any threshold (see [`Cluster::fold`]).
const FOLD_FLUSH_THRESHOLD: usize = 4096;

/// A cross-shard *control-plane* effect staged during a window. Unlike
/// [`OutMsg`] these need serialized access to [`ControlState`] (hint
/// queues, the control RNG, coordinator re-draws), so any window that
/// stages one **forces a barrier fold** — elision only ever skips folds
/// with no control work pending, which is what keeps it non-perturbing.
enum CtrlStaged {
    /// An ack owned by another shard can never arrive (dead replica /
    /// partition-dropped task): decrement its targeted count at the fold.
    Abandon { op_id: OpId },
    /// Queue a hinted-handoff mutation (hint queues are control-plane
    /// state).
    Hint {
        from: NodeId,
        to: NodeId,
        key: Key,
        version: Version,
        size: u32,
    },
    /// Re-route an attempt whose coordinator is unreachable (timeout retry,
    /// or the pre-routed coordinator went down before the arrival fired):
    /// the fold draws a fresh coordinator from the control stream, homes
    /// the attempt on that shard and restarts it at the window boundary —
    /// or, with `backoff` set, after an exponential backoff (jitter drawn
    /// from the control stream) measured from the staging time `at`,
    /// whichever is later.
    Resubmit {
        sub: Submission,
        retry: RetryCtx,
        /// When the attempt was staged (the backoff baseline).
        at: SimTime,
        /// Whether this re-issue waits out the configured retry backoff.
        backoff: bool,
    },
}

/// Circuit-breaker state of one replica as seen by coordinators of one
/// shard (part of [`NodeHealth`]; [`ReplicaSelection::Dynamic`] only).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Breaker {
    /// Healthy: the replica is ranked by its latency EWMA.
    Closed,
    /// Tripped after `breaker_failures` consecutive timeout strikes: the
    /// replica is ranked last until the cooldown expires.
    Open { until: SimTime },
    /// Cooldown expired: one probe read is allowed through; a response
    /// closes the breaker, another strike reopens it.
    HalfOpen,
}

/// Coordinator-side health bookkeeping for one replica, maintained per
/// shard (coordinator-homed: a shard only observes responses to reads it
/// coordinates, so the state needs no cross-shard synchronization). Only
/// read or written when the cluster's selection is
/// [`ReplicaSelection::Dynamic`] — otherwise it stays untouched, adding
/// zero RNG draws and zero events.
#[derive(Debug, Clone, Copy)]
struct NodeHealth {
    /// EWMA of the observed latency **excess** over the expected round trip
    /// to the replica, in microseconds. Subtracting the static distance
    /// before averaging keeps observations from near and far coordinators
    /// comparable — a node-global mean of raw response latencies would let
    /// remote observers poison a replica's score for its neighbours.
    ewma: Ewma,
    /// Consecutive timeout strikes since the last response.
    failures: u32,
    breaker: Breaker,
}

impl NodeHealth {
    fn new(alpha: f64) -> Self {
        NodeHealth {
            ewma: Ewma::new(alpha),
            failures: 0,
            breaker: Breaker::Closed,
        }
    }
}

/// Everything one shard owns exclusively: its event lane, RNG stream, op
/// slab, metric sinks, payload slab and the node runtimes / replica stores
/// of the nodes mapped to it. `Send`; handed to the work-stealing pool by
/// `&mut` during a window.
struct ShardState {
    shard: u32,
    lane: EventQueue<Event>,
    rng: SimRng,
    /// In-flight operation state owned by this shard, addressed by
    /// generation-checked OpId. Slots are strided by shard (slot ≡ shard
    /// mod nshards) so ownership is recoverable from the id.
    ops: OpSlab<OpState>,
    metrics: ClusterMetrics,
    /// Serial-engine version counter: the pre-sharding global `1, 2, 3, …`
    /// stream. The parallel engine allocates timestamp-packed versions
    /// instead (see [`ShardState::alloc_version_at`]) so last-writer-wins
    /// order follows simulated time no matter which shard coordinates a
    /// key's writes.
    next_version: u64,
    /// Microsecond of the most recent parallel version allocation, and the
    /// tie-break sequence within it.
    version_last_us: u64,
    version_seq: u32,
    /// Full-length per-node tables; only the slots of nodes mapped to this
    /// shard are ever populated (foreign slots stay empty and meter zero).
    stores: Vec<ReplicaStore>,
    nodes: Vec<NodeRuntime>,
    /// Interned write-fan-out payloads, ref-counted by the events that carry
    /// their [`PayloadId`]; slots recycle through `payload_free`.
    write_payloads: Vec<PayloadSlot>,
    payload_free: Vec<PayloadId>,
    payload_live: usize,
    /// Dense per-key cache of ring placements (reset on ring rebuilds).
    replica_cache: ReplicaCache,
    /// Scratch buffer for replica lists; reused across operations.
    replica_scratch: Vec<NodeId>,
    /// Scratch buffer for the up-node list when nodes are down.
    up_scratch: Vec<NodeId>,
    /// Outputs produced this window, drained at the window close (serial
    /// mode: drained after every event, preserving the pre-sharding order).
    outputs: Vec<ClusterOutput>,
    /// Full-propagation samples produced this window, drained at the close.
    propagation: Vec<SimDuration>,
    /// Data-plane outbox arenas, one per destination shard, drained (and
    /// their allocations reused) at every window close.
    outbox_dest: Vec<Vec<OutMsg>>,
    /// Oracle acks produced this window `(key, version, ack_time)`: writes
    /// that satisfied their consistency level. Gathered at the close,
    /// recorded into the central oracle at the next fold — exact, because
    /// classification filters acks by timestamp and every ack with time
    /// before a read's issue time is gathered no later than that read's
    /// window (see [`Cluster::fold`]).
    outbox_acks: Vec<(Key, Version, SimTime)>,
    /// Reads completed this window whose stale/fresh classification needs
    /// the oracle's serialized ack history `(op, issue_at)`; classified at
    /// the next fold.
    outbox_dones: Vec<(CompletedOp, SimTime)>,
    /// Control-plane effects recorded this window. Any entry forces the
    /// window to fold (see [`CtrlStaged`]).
    outbox_ctrl: Vec<CtrlStaged>,
    /// Cross-shard messages staged this window (fold-independent counter
    /// feed for [`ShardMetrics::staged`]); reset at the close.
    window_staged: u64,
    /// Staged messages whose timestamp undercut the window boundary and
    /// were clamped to it ([`ShardMetrics::violations`]); reset at the
    /// close.
    window_violations: u64,
    /// Events this shard popped in the current window (the close derives
    /// `parallel_batches` / `max_batch_len` from these).
    window_popped: u64,
    /// Per-replica health as observed by this shard's coordinators (EWMA +
    /// circuit breaker; [`ReplicaSelection::Dynamic`] only, untouched
    /// otherwise).
    health: Vec<NodeHealth>,
}

/// Control-plane state: the repair plane (hint queues, sweep cursor), the
/// control event lane (ticks and repair events in parallel mode) and the
/// dedicated RNG/metric sink that fold-time completions draw from. Runs
/// only at serial points — barrier edges and between-window calls — never
/// inside a parallel window.
struct ControlState {
    /// Control event lane (parallel mode only; with one shard, control
    /// events ride the single shard lane to stay byte-identical to the
    /// pre-sharding engine).
    lane: EventQueue<Event>,
    /// Control-plane RNG: stream index `nshards` of the master seed, so it
    /// never collides with a shard stream.
    rng: SimRng,
    /// Control-plane meters (fold-time message accounting, repair traffic
    /// in parallel mode); merged into reports after the shard sinks.
    metrics: ClusterMetrics,
    /// Per-destination hinted-handoff queues, bounded by
    /// `repair.hint_capacity_per_node`.
    hints: Vec<VecDeque<Hint>>,
    /// Whether a `HintReplay` chain is currently scheduled per node (avoids
    /// double-scheduling when a node flaps up/down).
    hint_replay_active: Vec<bool>,
    /// Position in the node-pair enumeration of the sweep cycle.
    sweep_cursor: u64,
    /// Whether an `AntiEntropy` event is pending in the queue.
    sweep_active: bool,
    /// Whether the current sweep round streamed any records.
    sweep_streamed: bool,
    /// Consecutive sweep rounds that streamed nothing; the cycle parks
    /// after one fully idle round and is resumed by fault transitions.
    sweep_idle_rounds: u32,
    /// Scratch for one page's records during an anti-entropy stream.
    repair_page_scratch: Vec<(Key, Version, u32)>,
    /// Scratch for ring-membership checks during an anti-entropy stream.
    repair_member_scratch: Vec<NodeId>,
    /// Placement cache for control-plane ring walks (repair membership
    /// gates, bulk-load placement).
    replica_cache: ReplicaCache,
    /// The ground-truth staleness oracle. One central instance: its version
    /// histories are read-only during parallel windows (every shard probes
    /// the same barrier snapshot) and mutated only at serial points — acks
    /// staged to the fold, preloads before the run, and the serial engine's
    /// inline calls, which make it byte-identical to the pre-sharding
    /// single oracle.
    oracle: StalenessOracle,
}

/// The cluster simulator. See the module docs for the simulated protocol
/// and for the parallel sharded execution model.
pub struct Cluster {
    shared: ClusterShared,
    shard_states: Vec<ShardState>,
    ctrl: ControlState,
    /// Current conservative lookahead window bound: the global minimum of
    /// `shard_lookahead` (kept for reporting and the window-size floor).
    lookahead: SimDuration,
    /// Per-shard-pair lookahead matrix, row-major `S×S`:
    /// `lookahead_matrix[i * S + j]` is the infimum link delay between any
    /// node of shard `i` and any node of shard `j` under the current
    /// degradation factors. Diagonal entries are unused.
    lookahead_matrix: Vec<SimDuration>,
    /// Per-shard outgoing bound: `shard_lookahead[i] = min over j != i` of
    /// the matrix row — the earliest a message *sent* by shard `i` at its
    /// next-event floor can take effect on any other shard. The window end
    /// is `min_i (floor_i + shard_lookahead[i])` over shards with pending
    /// events, which is never smaller than the old global bound
    /// (`global floor + global min`) and strictly wider whenever the shard
    /// holding the global floor has only wide-area peers.
    shard_lookahead: Vec<SimDuration>,
    /// Which link classes connect each shard pair (row-major `S×S`, indexed
    /// by [`LinkClass`]); the basis `refresh_lookahead` recomputes the
    /// matrix from when degradation factors change.
    pair_classes: Vec<[bool; 4]>,
    /// Time of the last processed event (serial) / high-water mark over the
    /// shard lanes (parallel).
    clock: SimTime,
    outputs: VecDeque<ClusterOutput>,
    propagation_samples: Vec<SimDuration>,
    /// Scratch for bulk-load placement walks and up-node coordinator draws
    /// at serial points (submission, resubmission folds).
    home_scratch: Vec<NodeId>,
    /// Synchronization counters of the sharded engine (all zero with one
    /// shard: the serial path never crosses a window barrier).
    sync: ShardMetrics,
    /// Client outputs gathered at window closes, published (time-sorted) at
    /// the next fold. Per-window output time ranges are disjoint and
    /// increasing, so one deferred stable sort equals the concatenation of
    /// per-window sorts — deferral reorders nothing.
    fold_outputs: Vec<ClusterOutput>,
    /// Oracle acks gathered at window closes (`(key, version, ack_time)`,
    /// in shard order per window), recorded into the oracle at the next
    /// fold before any classification.
    pending_acks: Vec<(Key, Version, SimTime)>,
    /// Reads whose completion deferred to the next fold, classified after
    /// every pending ack has been recorded. `(op, issue_at, owning shard)`
    /// — the shard index routes the metrics to the right sink.
    pending_dones: Vec<(CompletedOp, SimTime, u16)>,
    /// Boundary of the most recently closed window — the fold time used
    /// when a flush is forced between windows.
    last_boundary: SimTime,
    /// High-water mark of `submit_batch` arrival times across all shards
    /// (the per-lane FIFO asserts only per-lane order; the sorted-stream
    /// contract is global).
    bulk_tail: SimTime,
}

/// Account a message of `bytes` payload travelling `from → to` against the
/// given RNG/metric sink (a shard's inside a window, the control plane's at
/// a fold) and return its sampled link delay.
fn account_message(
    shared: &ClusterShared,
    rng: &mut SimRng,
    metrics: &mut ClusterMetrics,
    from: NodeId,
    to: NodeId,
    bytes: u32,
) -> SimDuration {
    let class = shared.link_class[from.0 as usize * shared.node_count + to.0 as usize];
    let total = bytes as u64 + shared.config.message_overhead_bytes as u64;
    metrics.traffic.add(class, total);
    metrics.messages += 1;
    let delay = shared.link_samplers[class_index(class)].sample(rng);
    if shared.degradation_active {
        let factor = shared.link_degradation[class_index(class)];
        if factor != 1.0 {
            return SimDuration::from_micros((delay.as_micros() as f64 * factor).round() as u64);
        }
    }
    delay
}

/// Apply `node`'s gray-failure slow factor to a response delay it emits.
/// Post-sampling like `degrade_link`, so the RNG stream is untouched; a
/// factor of 1.0 (the default) returns the delay unchanged. Only *response*
/// sends route through this — a slow node is late serving and answering,
/// while requests fanned out *by* a slow coordinator travel at link speed
/// (the gray failure is in the node's storage/service path, not the wire).
fn slow_response(shared: &ClusterShared, node: NodeId, delay: SimDuration) -> SimDuration {
    if shared.slow_active {
        let factor = shared.node_slow[node.0 as usize];
        if factor != 1.0 {
            return SimDuration::from_micros((delay.as_micros() as f64 * factor).round() as u64);
        }
    }
    delay
}

/// Meter repair bytes `from → to` that never become a scheduled event
/// (page-summary exchanges): added to both the billable traffic meter
/// and the repair breakdown, no delay sampled, so summary comparisons
/// cost network bytes but not RNG draws.
fn account_repair_bytes(
    shared: &ClusterShared,
    metrics: &mut ClusterMetrics,
    from: NodeId,
    to: NodeId,
    bytes: u32,
) {
    let class = shared.link_class[from.0 as usize * shared.node_count + to.0 as usize];
    let total = bytes as u64 + shared.config.message_overhead_bytes as u64;
    metrics.traffic.add(class, total);
    metrics.repair_traffic.add(class, total);
    metrics.messages += 1;
}

/// Account a repair message that does travel (hint replay, streamed
/// record): billable traffic + repair breakdown + a sampled link delay.
fn account_repair_message(
    shared: &ClusterShared,
    rng: &mut SimRng,
    metrics: &mut ClusterMetrics,
    from: NodeId,
    to: NodeId,
    bytes: u32,
) -> SimDuration {
    let class = shared.link_class[from.0 as usize * shared.node_count + to.0 as usize];
    metrics.repair_traffic.add(
        class,
        bytes as u64 + shared.config.message_overhead_bytes as u64,
    );
    account_message(shared, rng, metrics, from, to, bytes)
}

/// Account a speculative hedge request `from → to`: billable traffic + the
/// hedge breakdown + a sampled link delay. Like repair traffic, hedge bytes
/// also land in the plain `traffic` meter, so the bill prices tail-tolerance
/// traffic like any other transfer while `hedge_traffic` breaks the share
/// out.
fn account_hedge_message(
    shared: &ClusterShared,
    rng: &mut SimRng,
    metrics: &mut ClusterMetrics,
    from: NodeId,
    to: NodeId,
    bytes: u32,
) -> SimDuration {
    let class = shared.link_class[from.0 as usize * shared.node_count + to.0 as usize];
    metrics.hedge_traffic.add(
        class,
        bytes as u64 + shared.config.message_overhead_bytes as u64,
    );
    account_message(shared, rng, metrics, from, to, bytes)
}

/// Exponential retry backoff with deterministic RNG-drawn jitter: the
/// nominal delay doubles per consumed retry (`base`, `2·base`, `4·base`, …)
/// up to the configured cap, then a full-jitter-style multiplier in
/// `[0.5, 1.5)` is drawn from the given stream (a shard's inside the serial
/// path, the control plane's at a resubmission fold). The draw happens on
/// every backoff retry and only then — backoff off means zero extra draws.
fn backoff_delay(
    res: &crate::config::ResilienceConfig,
    retry_budget: u32,
    retries_left: u32,
    rng: &mut SimRng,
) -> SimDuration {
    let base = res.effective_backoff_base().as_micros();
    let cap = res.effective_backoff_cap().as_micros();
    // First re-issue has consumed 1 retry → exponent 0 → nominal = base.
    let consumed = retry_budget.saturating_sub(retries_left).max(1);
    let exp = (consumed - 1).min(20);
    let nominal = base.saturating_mul(1u64 << exp).min(cap);
    let jitter = 0.5 + rng.next_f64();
    SimDuration::from_micros(((nominal as f64 * jitter).round() as u64).max(1))
}

/// A write ack that can no longer arrive (its replica died or the
/// partition ate the message): stop counting that replica as targeted,
/// and reclaim the slab slot if the write was only waiting for it. Runs
/// against the op's home shard.
fn abandon_in(s: &mut ShardState, op_id: OpId) {
    if let Some(OpState::Write(w)) = s.ops.get_mut(op_id) {
        w.targeted = w.targeted.saturating_sub(1);
        if w.completed && w.acks >= w.targeted {
            s.ops.remove(op_id);
        }
    }
}

/// (Re)start the anti-entropy sweep cycle at simulated time `now`. The
/// `AntiEntropy` chain rides the single shard lane when one is given
/// (serial mode: byte-identical timer-wheel placement to the pre-sharding
/// engine) and the control lane otherwise.
fn resume_sweeps_parts(
    shared: &ClusterShared,
    ctrl: &mut ControlState,
    serial_lane: Option<&mut EventQueue<Event>>,
    now: SimTime,
) {
    if !shared.config.repair.mode.anti_entropy_enabled() || shared.node_count < 2 {
        return;
    }
    ctrl.sweep_idle_rounds = 0;
    if !ctrl.sweep_active {
        ctrl.sweep_active = true;
        let at = now + shared.config.repair.sweep_interval();
        match serial_lane {
            Some(lane) => lane.schedule_timeout(at, Event::AntiEntropy),
            None => ctrl.lane.schedule_timeout(at, Event::AntiEntropy),
        }
    }
}

/// The `idx`-th unordered node pair `(i, j)`, `i < j`, in row-major
/// enumeration order.
fn unrank_pair(mut idx: u64, n: u64) -> (u64, u64) {
    let mut i = 0;
    loop {
        let row = n - 1 - i;
        if idx < row {
            return (i, i + 1 + idx);
        }
        idx -= row;
        i += 1;
    }
}

impl ShardState {
    /// Allocate the next serial-engine write version: the pre-sharding
    /// global `1, 2, 3, …` counter (one shard owns the whole stream).
    fn alloc_version_serial(&mut self) -> Version {
        self.next_version += 1;
        Version(self.next_version)
    }

    /// Allocate a parallel-engine write version: timestamp-packed as
    /// `(µs+1) << 24 | seq << 8 | shard`, the simulator's analogue of
    /// Cassandra's client-timestamp LWW ordering. Per-key version order
    /// follows simulated time no matter which shard coordinates each
    /// write — a per-shard counter would let a busy shard's old write
    /// shadow a quieter shard's newer one. `seq` restarts every
    /// microsecond and breaks same-instant ties deterministically
    /// (saturating at 2^16−1 allocations per µs per shard, far past any
    /// real event density); the `µs+1` bias keeps every runtime version
    /// above the preload floor (see [`Cluster::load_records`]).
    fn alloc_version_at(&mut self, now: SimTime) -> Version {
        let us = now.as_micros() + 1;
        debug_assert!(us < 1 << 40, "simulated time overflows the version layout");
        if us != self.version_last_us {
            self.version_last_us = us;
            self.version_seq = 0;
        }
        if self.version_seq < u16::MAX as u32 {
            self.version_seq += 1;
        }
        Version((us << 24) | ((self.version_seq as u64) << 8) | self.shard as u64)
    }

    /// Intern a write-fan-out payload with zero references; callers bump the
    /// count with [`ShardState::retain_payload`] once per event they schedule
    /// and drop the slot again if nothing ended up referencing it.
    fn intern_payload(&mut self, payload: WritePayload) -> PayloadId {
        self.payload_live += 1;
        if let Some(id) = self.payload_free.pop() {
            self.write_payloads[id as usize] = PayloadSlot { refs: 0, payload };
            id
        } else {
            let id = PayloadId::try_from(self.write_payloads.len())
                .expect("more than 2^32 in-flight write payloads");
            self.write_payloads.push(PayloadSlot { refs: 0, payload });
            id
        }
    }

    #[inline]
    fn retain_payload(&mut self, id: PayloadId) {
        self.write_payloads[id as usize].refs += 1;
    }

    /// Read the payload and drop one reference; the slot is recycled when the
    /// last referencing event consumes it.
    #[inline]
    fn release_payload(&mut self, id: PayloadId) -> WritePayload {
        let slot = &mut self.write_payloads[id as usize];
        debug_assert!(slot.refs > 0, "payload released more often than retained");
        slot.refs -= 1;
        let payload = slot.payload;
        if slot.refs == 0 {
            self.payload_free.push(id);
            self.payload_live -= 1;
        }
        payload
    }

    /// Free an interned payload that ended up with no referencing events
    /// (every target replica was down or remote at fan-out time).
    fn discard_unreferenced_payload(&mut self, id: PayloadId) {
        let slot = &self.write_payloads[id as usize];
        if slot.refs == 0 {
            self.payload_free.push(id);
            self.payload_live -= 1;
        }
    }
}

impl Cluster {
    /// Build a cluster from its configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(config: ClusterConfig, seed: u64) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid cluster config: {e}"));
        let ring = Ring::new(
            &config.topology,
            config.replication_factor,
            config.strategy,
            config.vnodes,
            config.partitioner,
        );
        let n = config.topology.node_count();
        let read_level = config.read_level;
        let write_level = config.write_level;
        // Precompute the coordinator→replica latency ranking and link-class
        // tables once; the network model and topology are immutable for the
        // cluster's life.
        let mut mean_lat = Vec::with_capacity(n * n);
        let mut link_class = Vec::with_capacity(n * n);
        for from in config.topology.nodes() {
            for to in config.topology.nodes() {
                mean_lat.push(config.network.mean_ms(&config.topology, from, to));
                link_class.push(config.topology.link_class(from, to));
            }
        }
        let link_samplers = [
            config.network.local.compiled(),
            config.network.intra_dc.compiled(),
            config.network.inter_dc.compiled(),
            config.network.inter_region.compiled(),
        ];
        let storage_read_sampler = config.storage_read_latency.compiled();
        let storage_write_sampler = config.storage_write_latency.compiled();
        let shards = config.effective_shards();
        // The timestamp-packed parallel version layout reserves 8 bits for
        // the allocating shard (see `ShardState::alloc_version_at`).
        assert!(shards <= 256, "at most 256 event-lane shards are supported");
        let node_shard = Self::build_shard_map(&config.topology, shards);
        let mut pair_classes = vec![[false; 4]; shards * shards];
        for from in 0..n {
            for to in 0..n {
                let (sf, st) = (node_shard[from] as usize, node_shard[to] as usize);
                if sf != st {
                    let c = class_index(link_class[from * n + to]);
                    pair_classes[sf * shards + st][c] = true;
                }
            }
        }
        let lookahead_fallback = config.op_timeout;
        let (lookahead_matrix, shard_lookahead, lookahead) = Self::lookahead_tables(
            &config.network,
            &pair_classes,
            shards,
            &[1.0; 4],
            lookahead_fallback,
        );
        let fresh_metrics = |config: &ClusterConfig| {
            let mut metrics = ClusterMetrics::new();
            if config.exact_latency_percentiles {
                metrics.read_latency.enable_exact();
                metrics.write_latency.enable_exact();
            }
            metrics
        };
        let effective_rf = ring.replication_factor() as usize;
        let node_dc: Vec<DcId> = config
            .topology
            .nodes()
            .map(|x| config.topology.dc_of(x))
            .collect();
        let shard_states = (0..shards)
            .map(|k| ShardState {
                shard: k as u32,
                lane: EventQueue::new(),
                // With one shard the lane IS the pre-sharding engine, so it
                // keeps the master stream; true shard streams are split off
                // the master seed per shard.
                rng: if shards == 1 {
                    SimRng::new(seed)
                } else {
                    SimRng::shard_stream(seed, k as u64)
                },
                ops: OpSlab::with_stride(shards as u32, k as u32),
                metrics: fresh_metrics(&config),
                next_version: 0,
                version_last_us: 0,
                version_seq: 0,
                // Page summaries cost two mixes per installed write; only
                // maintain them when an anti-entropy sweep could ever
                // compare them.
                stores: (0..n)
                    .map(|_| {
                        if config.repair.mode.anti_entropy_enabled() {
                            ReplicaStore::with_summaries()
                        } else {
                            ReplicaStore::new()
                        }
                    })
                    .collect(),
                nodes: (0..n).map(|_| NodeRuntime::default()).collect(),
                write_payloads: Vec::new(),
                payload_free: Vec::new(),
                payload_live: 0,
                replica_cache: ReplicaCache::new(effective_rf),
                replica_scratch: Vec::with_capacity(config.replication_factor as usize),
                up_scratch: Vec::with_capacity(n),
                outputs: Vec::new(),
                propagation: Vec::new(),
                outbox_dest: (0..shards).map(|_| Vec::new()).collect(),
                outbox_acks: Vec::new(),
                outbox_dones: Vec::new(),
                outbox_ctrl: Vec::new(),
                window_staged: 0,
                window_violations: 0,
                window_popped: 0,
                health: vec![NodeHealth::new(config.resilience.effective_alpha()); n],
            })
            .collect();
        let ctrl = ControlState {
            lane: EventQueue::new(),
            rng: SimRng::shard_stream(seed, shards as u64),
            metrics: fresh_metrics(&config),
            hints: (0..n).map(|_| VecDeque::new()).collect(),
            hint_replay_active: vec![false; n],
            sweep_cursor: 0,
            sweep_active: false,
            sweep_streamed: false,
            sweep_idle_rounds: 0,
            repair_page_scratch: Vec::new(),
            repair_member_scratch: Vec::new(),
            replica_cache: ReplicaCache::new(effective_rf),
            oracle: StalenessOracle::new(),
        };
        Cluster {
            shared: ClusterShared {
                ring,
                node_dc,
                mean_lat,
                link_class,
                link_samplers,
                storage_read_sampler,
                storage_write_sampler,
                node_count: n,
                node_shard,
                nshards: shards as u32,
                down: vec![false; n],
                down_count: 0,
                crashed: vec![false; n],
                partitioned_dcs: Vec::new(),
                link_degradation: [1.0; 4],
                degradation_active: false,
                node_slow: vec![1.0; n],
                slow_active: false,
                read_level,
                write_level,
                selection: config.read_selection,
                config,
            },
            shard_states,
            ctrl,
            lookahead,
            lookahead_matrix,
            shard_lookahead,
            pair_classes,
            clock: SimTime::ZERO,
            outputs: VecDeque::new(),
            propagation_samples: Vec::new(),
            home_scratch: Vec::with_capacity(effective_rf.max(1)),
            sync: ShardMetrics::default(),
            fold_outputs: Vec::new(),
            pending_acks: Vec::new(),
            pending_dones: Vec::new(),
            last_boundary: SimTime::ZERO,
            bulk_tail: SimTime::ZERO,
        }
    }

    /// Assign every node to an event-lane shard. [`Topology::spread`] deals
    /// datacenters round-robin over node ids, so nodes are ordered by
    /// (datacenter, id) first and the ordered list is cut into `shards`
    /// contiguous groups — each shard then holds whole datacenters (or a
    /// contiguous slice of one), keeping intra-DC traffic shard-local.
    fn build_shard_map(topology: &Topology, shards: usize) -> Vec<u16> {
        let n = topology.node_count();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&i| (topology.dc_of(NodeId(i)).0, i));
        let mut map = vec![0u16; n];
        for (pos, &node) in order.iter().enumerate() {
            map[node as usize] = (pos * shards / n) as u16;
        }
        map
    }

    /// The conservative lookahead bound for one set of link classes: the
    /// infimum of the link delay over the classes present, scaled by the
    /// current degradation factors (a factor below 1 shrinks delays, so the
    /// window must shrink with it). A zero infimum (e.g. an exponential
    /// cross-shard link) degrades to the engine's minimal 1 µs window
    /// rather than disabling sharding. When *no* class is present — a
    /// single shard, where no message ever crosses a boundary — any window
    /// works, and the bound falls back to `fallback` (the configured
    /// operation timeout: the coarsest horizon the simulation itself
    /// schedules at, rather than the arbitrary 1 s constant used before
    /// PR 10).
    fn lookahead_bound(
        network: &NetworkModel,
        cross: &[bool; 4],
        degradation: &[f64; 4],
        fallback: SimDuration,
    ) -> SimDuration {
        let dists = [
            &network.local,
            &network.intra_dc,
            &network.inter_dc,
            &network.inter_region,
        ];
        let mut min_ms = f64::INFINITY;
        for c in 0..4 {
            if cross[c] {
                min_ms = min_ms.min(dists[c].min_ms() * degradation[c]);
            }
        }
        if !min_ms.is_finite() {
            return fallback;
        }
        SimDuration::from_micros((min_ms * 1_000.0).floor() as u64)
    }

    /// Build the per-pair lookahead matrix, the per-shard outgoing bounds
    /// and the global minimum from the pair link-class basis. Row `i` of
    /// the matrix bounds how early a message sent by shard `i` can take
    /// effect on shard `j`; `shard_lookahead[i]` is the row minimum over
    /// `j != i`. With a uniform matrix this degenerates to exactly the old
    /// single global bound.
    fn lookahead_tables(
        network: &NetworkModel,
        pair_classes: &[[bool; 4]],
        shards: usize,
        degradation: &[f64; 4],
        fallback: SimDuration,
    ) -> (Vec<SimDuration>, Vec<SimDuration>, SimDuration) {
        let mut matrix = vec![fallback; shards * shards];
        let mut per_shard = vec![fallback; shards];
        for i in 0..shards {
            for j in 0..shards {
                if i == j {
                    continue;
                }
                let bound = Self::lookahead_bound(
                    network,
                    &pair_classes[i * shards + j],
                    degradation,
                    fallback,
                );
                matrix[i * shards + j] = bound;
                per_shard[i] = per_shard[i].min(bound);
            }
        }
        let global = per_shard.iter().copied().min().unwrap_or(fallback);
        (matrix, per_shard, global)
    }

    /// Re-derive the lookahead matrix and bounds from the current
    /// degradation factors (takes effect at the next window).
    fn refresh_lookahead(&mut self) {
        let (matrix, per_shard, global) = Self::lookahead_tables(
            &self.shared.config.network,
            &self.pair_classes,
            self.shard_states.len(),
            &self.shared.link_degradation,
            self.shared.config.op_timeout,
        );
        self.lookahead_matrix = matrix;
        self.shard_lookahead = per_shard;
        self.lookahead = global;
    }

    /// Whether this cluster runs the exact serial path (one shard).
    #[inline]
    fn serial(&self) -> bool {
        self.shard_states.len() == 1
    }

    /// The lane control events ride: the single shard lane when serial
    /// (byte-identical placement to the pre-sharding engine), the dedicated
    /// control lane otherwise.
    fn ctrl_lane(&mut self) -> &mut EventQueue<Event> {
        if self.shard_states.len() == 1 {
            &mut self.shard_states[0].lane
        } else {
            &mut self.ctrl.lane
        }
    }

    /// The metric sink control-plane accounting goes to: shard 0's when
    /// serial (byte-identical to the pre-sharding engine), the control
    /// plane's otherwise.
    fn ctrl_metrics(&mut self) -> &mut ClusterMetrics {
        if self.shard_states.len() == 1 {
            &mut self.shard_states[0].metrics
        } else {
            &mut self.ctrl.metrics
        }
    }

    /// Draw the coordinator for a parallel-engine attempt from the control
    /// stream: uniform over the currently-up nodes, the same distribution
    /// [`ShardCtx::pick_coordinator`] draws at arrival on the serial path.
    /// Runs only at serial points (submission, resubmission folds), so the
    /// draw order is a pure function of the driver's call sequence. The
    /// attempt is then homed on the coordinator's shard — every message it
    /// exchanges travels a real coordinator↔replica link, so a cross-shard
    /// delivery is exactly a delivery across the shard cut and can never
    /// undershoot the lookahead bound.
    fn draw_coordinator_ctrl(&mut self) -> NodeId {
        if self.shared.down_count == 0 {
            return NodeId(self.ctrl.rng.index(self.shared.node_count) as u32);
        }
        let mut up = std::mem::take(&mut self.home_scratch);
        up.clear();
        up.extend(
            self.shared
                .config
                .topology
                .nodes()
                .filter(|n| !self.shared.down[n.0 as usize]),
        );
        let pick = if up.is_empty() {
            NodeId(0)
        } else {
            up[self.ctrl.rng.index(up.len())]
        };
        self.home_scratch = up;
        pick
    }

    /// Number of event-lane shards this cluster runs with.
    pub fn shards(&self) -> usize {
        self.shard_states.len()
    }

    /// Synchronization counters of the sharded engine (lookahead windows
    /// crossed, parallel handler batches, cross-shard events staged, barrier
    /// folds, bound violations). All zero with one shard.
    pub fn shard_metrics(&self) -> ShardMetrics {
        self.sync
    }

    /// The current conservative lookahead window bound: the global minimum
    /// over the per-pair lookahead matrix. Individual windows are bounded
    /// per shard by the (possibly wider) per-shard row minima.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.shared.config
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Total number of simulation events processed so far (the denominator of
    /// the hot-path throughput benchmarks).
    pub fn events_processed(&self) -> u64 {
        self.shard_states
            .iter()
            .map(|s| s.lane.processed())
            .sum::<u64>()
            + self.ctrl.lane.processed()
    }

    /// Number of operations whose state is still held in the op slabs
    /// (submitted-but-unfinished work, for leak diagnostics and tests).
    pub fn inflight_ops(&self) -> usize {
        self.shard_states.iter().map(|s| s.ops.len()).sum()
    }

    /// Number of interned write payloads still referenced by in-flight
    /// replica tasks (leak diagnostics and tests; 0 once a run drains).
    pub fn inflight_write_payloads(&self) -> usize {
        self.shard_states.iter().map(|s| s.payload_live).sum()
    }

    /// Current default read consistency level.
    pub fn read_level(&self) -> ConsistencyLevel {
        self.shared.read_level
    }

    /// Current default write consistency level.
    pub fn write_level(&self) -> ConsistencyLevel {
        self.shared.write_level
    }

    /// Change the default consistency levels (takes effect for operations
    /// that *arrive* after the change — exactly how Harmony retunes a live
    /// cluster).
    pub fn set_levels(&mut self, read: ConsistencyLevel, write: ConsistencyLevel) {
        self.shared.read_level = read;
        self.shared.write_level = write;
    }

    /// How read replicas are selected.
    pub fn set_replica_selection(&mut self, selection: ReplicaSelection) {
        self.shared.selection = selection;
    }

    /// Ground-truth staleness totals. One central oracle serves both
    /// engines: the serial engine classifies inline, the parallel engine at
    /// barrier folds (deferred read completions in `pending_dones`), so its
    /// counters are the whole view once a run has drained (mid-run, elided
    /// barriers may defer classification until the next fold).
    pub fn oracle(&self) -> OracleStats {
        self.ctrl.oracle.stats()
    }

    /// Aggregate metrics of the run so far: the per-shard sinks merged in
    /// shard order, then the control-plane sink. With one shard the merge
    /// chain is a clone of the only populated sink (merging all-zero sinks
    /// is exact), so serial reports are byte-identical to the pre-sharding
    /// engine's.
    pub fn metrics(&self) -> ClusterMetrics {
        let mut merged = self.shard_states[0].metrics.clone();
        merged.merge_many(
            self.shard_states[1..]
                .iter()
                .map(|s| &s.metrics)
                .chain(std::iter::once(&self.ctrl.metrics)),
        );
        merged
    }

    /// Total payload bytes currently stored across all replicas.
    pub fn total_bytes_stored(&self) -> u64 {
        self.shard_states
            .iter()
            .flat_map(|s| s.stores.iter())
            .map(|s| s.bytes_stored())
            .sum()
    }

    /// Per-node storage read/write operation counts (for the cost model).
    pub fn storage_op_totals(&self) -> (u64, u64) {
        let mut reads = 0;
        let mut writes = 0;
        for s in &self.shard_states {
            reads += s.stores.iter().map(|s| s.read_ops()).sum::<u64>();
            writes += s.stores.iter().map(|s| s.write_ops()).sum::<u64>();
        }
        (reads, writes)
    }

    /// Access a node's local store (read-only, for tests and tools). Routes
    /// to the owning shard's table; foreign slots exist but stay empty.
    pub fn store(&self, node: NodeId) -> &ReplicaStore {
        &self.shard_states[self.shared.shard_of(node)].stores[node.0 as usize]
    }

    /// The replica nodes responsible for a key (primary first).
    pub fn replicas_of(&self, key: u64) -> Vec<NodeId> {
        self.shared.ring.replicas(Key(key))
    }

    /// Take all full-propagation duration samples recorded since the last
    /// call (feeds the Harmony monitor's `Tp` estimate).
    pub fn drain_propagation_samples(&mut self) -> Vec<SimDuration> {
        let mut out = std::mem::take(&mut self.propagation_samples);
        for s in &mut self.shard_states {
            out.append(&mut s.propagation);
        }
        out
    }

    /// Number of hints currently queued for `node` (tests and diagnostics).
    pub fn pending_hints(&self, node: NodeId) -> usize {
        self.ctrl.hints[node.0 as usize].len()
    }

    /// Mark a node as down: it no longer applies writes nor answers reads.
    /// With hinted handoff enabled, coordinators start queueing hints for
    /// it; with anti-entropy enabled, the sweep cycle (re)starts so the
    /// divergence accumulating while it is down gets reconciled.
    pub fn set_node_down(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if !self.shared.down[idx] {
            self.shared.down[idx] = true;
            self.shared.down_count += 1;
            self.resume_sweeps();
        }
    }

    /// Bring a node back up. Without the repair plane it simply missed the
    /// writes that happened while down (repaired lazily by read repair if
    /// enabled); with hinted handoff its queued hints start replaying
    /// through the timer wheel, and with anti-entropy the sweep cycle
    /// resumes to catch anything the hints missed.
    pub fn set_node_up(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if self.shared.down[idx] {
            self.shared.down[idx] = false;
            self.shared.down_count -= 1;
            self.start_hint_replay(node);
            self.resume_sweeps();
        }
    }

    /// Whether a node is currently down.
    pub fn is_node_down(&self, node: NodeId) -> bool {
        self.shared.down[node.0 as usize]
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Crash a node permanently: it goes down **and** its vnode tokens are
    /// withdrawn from the ring, so its former ranges fall to the surviving
    /// nodes (what removing a Cassandra node does to ownership). Operations
    /// arriving after the crash target only surviving replicas; the
    /// effective replication factor is clamped to the survivor count.
    ///
    /// Contrast with [`Cluster::set_node_down`], which models a transient
    /// outage and leaves the ring untouched.
    pub fn crash_node(&mut self, node: NodeId) {
        if !self.shared.crashed[node.0 as usize] {
            self.shared.crashed[node.0 as usize] = true;
            self.set_node_down(node);
            self.rebuild_ring();
            // Recovery migration: the survivors just acquired the crashed
            // node's ranges (hash tokens or ordered slices) but hold only
            // what asynchronous propagation happened to deliver. Schedule a
            // synchronization of every survivor instead of silently serving
            // the acquired ranges from whatever is on disk.
            if self.shared.config.repair.mode.anti_entropy_enabled() {
                let now = self.clock;
                for peer in 0..self.shared.node_count {
                    if !self.shared.down[peer] {
                        // Fault-driven control broadcast: runs at a barrier
                        // edge, not as a cross-shard message.
                        self.ctrl_lane().schedule_at(
                            now,
                            Event::RepairSync {
                                node: NodeId(peer as u32),
                            },
                        );
                    }
                }
            }
        }
    }

    /// Recover a crashed node: it rejoins the ring at its original token
    /// positions (tokens depend only on node and vnode ids) and starts
    /// serving again. Without the repair plane, the writes it missed while
    /// crashed are repaired lazily by read repair; with it, queued hints
    /// replay immediately (via [`Cluster::set_node_up`]) and — under
    /// anti-entropy — a [`Event::RepairSync`] streams the returned ranges
    /// back in from its peers before relying on sweeps for the long tail.
    pub fn recover_node(&mut self, node: NodeId) {
        if self.shared.crashed[node.0 as usize] {
            self.shared.crashed[node.0 as usize] = false;
            self.set_node_up(node);
            self.rebuild_ring();
            if self.shared.config.repair.mode.anti_entropy_enabled() {
                let now = self.clock;
                self.ctrl_lane()
                    .schedule_at(now, Event::RepairSync { node });
            }
        }
    }

    /// Whether a node is currently crashed (out of the ring).
    pub fn is_node_crashed(&self, node: NodeId) -> bool {
        self.shared.crashed[node.0 as usize]
    }

    fn rebuild_ring(&mut self) {
        let crashed = std::mem::take(&mut self.shared.crashed);
        self.shared.ring = Ring::excluding(
            &self.shared.config.topology,
            self.shared.config.replication_factor,
            self.shared.config.strategy,
            self.shared.config.vnodes,
            self.shared.config.partitioner,
            |n| crashed[n.0 as usize],
        );
        self.shared.crashed = crashed;
        // Ownership moved: every cached placement is stale. (The home-shard
        // cache is NOT reset — op routing is sticky by design.)
        let rf = self.shared.ring.replication_factor() as usize;
        for s in &mut self.shard_states {
            s.replica_cache.reset(rf);
        }
        self.ctrl.replica_cache.reset(rf);
    }

    /// Partition two datacenters: every message between their nodes is lost
    /// in transit (traffic is still accounted at the sender — the bytes left
    /// the NIC). In-flight replica work is unaffected; only deliveries after
    /// the partition starts are dropped. Idempotent.
    pub fn partition_dcs(&mut self, a: DcId, b: DcId) {
        let pair = ClusterShared::dc_pair(a, b);
        if pair.0 != pair.1 && !self.shared.partitioned_dcs.contains(&pair) {
            self.shared.partitioned_dcs.push(pair);
            // Messages are about to be lost: keep (or put) the sweep cycle
            // running so same-side divergence is reconciled meanwhile.
            self.resume_sweeps();
        }
    }

    /// Heal a datacenter partition (no-op if the pair is not partitioned).
    /// Replicas that missed writes during the partition are repaired lazily
    /// by read repair — and, with anti-entropy enabled, by the sweep cycle,
    /// which resumes here to reconcile the divergence the partition built up.
    pub fn heal_dcs(&mut self, a: DcId, b: DcId) {
        let pair = ClusterShared::dc_pair(a, b);
        let had = self.shared.partitioned_dcs.len();
        self.shared.partitioned_dcs.retain(|&p| p != pair);
        if self.shared.partitioned_dcs.len() != had {
            self.resume_sweeps();
        }
    }

    /// Whether a message between two datacenters would currently be dropped.
    pub fn dcs_partitioned(&self, a: DcId, b: DcId) -> bool {
        self.shared
            .partitioned_dcs
            .contains(&ClusterShared::dc_pair(a, b))
    }

    /// Degrade one link class: every subsequent delay sample on that class
    /// is multiplied by `factor` (e.g. 8.0 for a brown-out, 1.0 to restore).
    /// The sampler itself — and therefore the RNG draw sequence — is
    /// untouched, so enabling degradation never perturbs unrelated
    /// randomness. Note that read-replica selection keeps ranking by the
    /// healthy mean-latency table, like a snitch working from stale scores.
    ///
    /// # Panics
    /// Panics if `factor` is not finite and positive.
    pub fn degrade_link(&mut self, class: LinkClass, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "degradation factor must be finite and positive, got {factor}"
        );
        self.shared.link_degradation[class_index(class)] = factor;
        self.shared.degradation_active = self.shared.link_degradation.iter().any(|&f| f != 1.0);
        // A speed-up factor shrinks the smallest cross-shard delay: the
        // lookahead window must shrink with it or staging decisions would be
        // recorded against a stale bound.
        self.refresh_lookahead();
    }

    /// Restore a degraded link class to its healthy latency.
    pub fn restore_link(&mut self, class: LinkClass) {
        self.degrade_link(class, 1.0);
    }

    /// Gray-fail a node: every subsequent storage service time on it and
    /// every response delay it emits is multiplied by `factor` (10.0
    /// models a node limping an order of magnitude slow; 1.0 restores).
    /// Like [`Cluster::degrade_link`], the multiplier applies **after**
    /// sampling, so the compiled samplers — and therefore the RNG draw
    /// sequence — are untouched: gray-failing a node never perturbs
    /// unrelated randomness. The node stays up: it answers everything,
    /// just late — exactly the failure mode crash detection misses.
    ///
    /// # Panics
    /// Panics if `factor` is not finite or is below 1.0 (slowdowns only
    /// lengthen delays; a sub-1 factor would undercut the conservative
    /// lookahead bound).
    pub fn slow_node(&mut self, node: NodeId, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "slow-node factor must be finite and at least 1.0, got {factor}"
        );
        self.shared.node_slow[node.0 as usize] = factor;
        self.shared.slow_active = self.shared.node_slow.iter().any(|&f| f != 1.0);
    }

    /// Restore a gray-failed node to its healthy speed.
    pub fn restore_node(&mut self, node: NodeId) {
        self.slow_node(node, 1.0);
    }

    /// Current gray-failure slowdown factor of a node (1.0 = healthy).
    pub fn node_slow_factor(&self, node: NodeId) -> f64 {
        self.shared.node_slow[node.0 as usize]
    }

    /// Correlated whole-datacenter outage: transiently take down every node
    /// of `dc` (the ring keeps their tokens — this is a power/connectivity
    /// event, not decommissioning). Idempotent per node; pair with
    /// [`Cluster::dc_up`].
    pub fn dc_down(&mut self, dc: DcId) {
        for i in 0..self.shared.node_count {
            if self.shared.node_dc[i] == dc {
                self.set_node_down(NodeId(i as u32));
            }
        }
    }

    /// End a whole-datacenter outage: bring every non-crashed node of `dc`
    /// back up (nodes crashed individually stay crashed).
    pub fn dc_up(&mut self, dc: DcId) {
        for i in 0..self.shared.node_count {
            if self.shared.node_dc[i] == dc && !self.shared.crashed[i] {
                self.set_node_up(NodeId(i as u32));
            }
        }
    }

    /// Bulk-load records before the measured run (no events, no I/O
    /// accounting): every replica of each key receives the key's baseline
    /// version.
    pub fn load_records(&mut self, records: impl Iterator<Item = (u64, u32)>) {
        let serial = self.serial();
        for (key, size) in records {
            let key = Key(key);
            // Serial: the pre-sharding global version counter. Parallel:
            // every preload shares the floor `Version(1)` — last-writer-wins
            // only compares versions of the *same* key, each key is preloaded
            // once, and every runtime version is timestamp-packed (≥ 2^24),
            // so the baseline always loses to the first real write.
            let version = if serial {
                self.shard_states[0].alloc_version_serial()
            } else {
                Version(1)
            };
            let mut replicas = std::mem::take(&mut self.home_scratch);
            self.ctrl
                .replica_cache
                .replicas_into(&self.shared.ring, key, &mut replicas);
            for &node in &replicas {
                let dest = self.shared.shard_of(node);
                self.shard_states[dest].stores[node.0 as usize].preload(key, version, size);
            }
            self.home_scratch = replicas;
            self.ctrl.oracle.preload(key, version);
        }
    }

    /// Submit a read arriving at time `at` using the default read level.
    pub fn submit_read_at(&mut self, key: u64, at: SimTime) -> OpId {
        self.submit(OpKind::Read, key, 0, 1, None, at)
    }

    /// Submit a read with an explicit consistency level.
    pub fn submit_read_with(&mut self, key: u64, level: ConsistencyLevel, at: SimTime) -> OpId {
        self.submit(OpKind::Read, key, 0, 1, Some(level), at)
    }

    /// Submit a range scan of `scan_len` consecutive records starting at
    /// `key` (the YCSB-E operation), at the default read level. Every
    /// contacted replica reads the whole range through its dense store —
    /// `scan_len` storage reads each — and the data replica's response
    /// carries the payload bytes of the records it holds, so scans are
    /// metered faithfully in both storage I/O and network traffic.
    /// Reconciliation and the staleness classification key off the range's
    /// anchor record. Coverage depends on the configured [`Partitioner`]:
    /// hash partitioning scatters consecutive record ids across the ring
    /// (as with Cassandra's random partitioner), so a replica returns the
    /// subset of the range it owns; under the ordered partitioner the scan
    /// is split at ownership-slice boundaries and gathered from each
    /// segment's owners, so the data responses together cover the full
    /// contiguous range ([`CompletedOp::records_returned`]).
    ///
    /// # Panics
    /// Under the ordered partitioner, panics if the range would span more
    /// than 2^16 ownership slices (`scan_len` > 65535 × 4096 — far past any
    /// YCSB scan bound).
    pub fn submit_scan_at(&mut self, key: u64, scan_len: u32, at: SimTime) -> OpId {
        self.submit(OpKind::Read, key, 0, scan_len.max(1), None, at)
    }

    /// Submit a range scan with an explicit consistency level (see
    /// [`Cluster::submit_scan_at`]).
    pub fn submit_scan_with(
        &mut self,
        key: u64,
        scan_len: u32,
        level: ConsistencyLevel,
        at: SimTime,
    ) -> OpId {
        self.submit(OpKind::Read, key, 0, scan_len.max(1), Some(level), at)
    }

    /// Submit a write of `size` bytes arriving at time `at` using the default
    /// write level.
    pub fn submit_write_at(&mut self, key: u64, size: u32, at: SimTime) -> OpId {
        self.submit(OpKind::Write, key, size, 1, None, at)
    }

    /// Submit a write with an explicit consistency level.
    pub fn submit_write_with(
        &mut self,
        key: u64,
        size: u32,
        level: ConsistencyLevel,
        at: SimTime,
    ) -> OpId {
        self.submit(OpKind::Write, key, size, 1, Some(level), at)
    }

    /// Reject scans the engine cannot represent: segment ids are 16-bit, so
    /// an ordered-partitioner range may span at most 2^16 ownership slices,
    /// and a hash-partitioned scan travels as a *single* segment whose
    /// record count rides the task's 16-bit `len` field. Checked at
    /// submission (fail fast, partitioner-dependent contract documented on
    /// [`Cluster::submit_scan_at`]) rather than panicking mid-simulation.
    #[inline]
    fn assert_scan_segmentable(&self, scan_len: u32) {
        const MAX_ORDERED_SCAN: u64 = (u16::MAX as u64) << ORDERED_SLICE_BITS;
        if self.shared.config.partitioner == Partitioner::Ordered {
            assert!(
                scan_len as u64 <= MAX_ORDERED_SCAN,
                "ordered-partitioner scans span at most 2^16 ownership slices \
                 (scan_len {scan_len} > {MAX_ORDERED_SCAN})"
            );
        } else {
            assert!(
                scan_len <= u16::MAX as u32,
                "hash-partitioned scans read at most 2^16 records in one segment \
                 (scan_len {scan_len} > {})",
                u16::MAX
            );
        }
    }

    fn submit(
        &mut self,
        kind: OpKind,
        key: u64,
        size: u32,
        scan_len: u32,
        level: Option<ConsistencyLevel>,
        at: SimTime,
    ) -> OpId {
        self.assert_scan_segmentable(scan_len);
        let (home, coordinator) = self.route_submission();
        let s = &mut self.shard_states[home];
        let op_id = s.ops.insert(OpState::Pending(PendingOp {
            sub: Submission {
                kind,
                key: Key(key),
                size,
                scan_len,
                level,
            },
            coordinator,
            retry: None,
        }));
        s.lane.schedule_at(at, Event::ClientArrive { op_id });
        op_id
    }

    /// Route one submission to its home shard. Serial: shard 0, coordinator
    /// drawn at arrival (the pre-sharding behaviour, byte-identical).
    /// Parallel: the coordinator is drawn here from the control stream and
    /// the attempt homes on its shard (see
    /// [`Cluster::draw_coordinator_ctrl`]).
    #[inline]
    fn route_submission(&mut self) -> (usize, Option<NodeId>) {
        if self.serial() {
            (0, None)
        } else {
            let coordinator = self.draw_coordinator_ctrl();
            (self.shared.shard_of(coordinator), Some(coordinator))
        }
    }

    /// Bulk-submit a pre-sorted open-loop arrival stream.
    ///
    /// Open-loop workloads know their whole arrival timeline up front (the
    /// schedule comes from a sorted arrival-time iterator, e.g.
    /// `CoreWorkload::timed_ops`). Instead of paying one heap push per
    /// operation, this routes every `ClientArrive` through the event queue's
    /// O(1) bulk FIFO lane — the heap then only carries the simulation's
    /// *reactive* events (replica messages, acks), exactly like the timeout
    /// lane keeps per-op timeouts out of it.
    ///
    /// Delivery is byte-identical to calling [`Cluster::submit_read_at`] /
    /// [`Cluster::submit_write_at`] in the same order: both paths draw
    /// sequence numbers from the same counter, so every event fires at the
    /// same virtual instant in the same relative order.
    ///
    /// Returns the number of operations submitted.
    ///
    /// # Panics
    /// Panics if arrival times are not non-decreasing (the sorted-stream
    /// contract is asserted, never silently repaired). The contract is
    /// global: each shard lane would only assert its own subsequence, so
    /// the cluster checks the whole stream before routing.
    pub fn submit_batch(&mut self, ops: impl IntoIterator<Item = BatchOp>) -> usize {
        let mut submitted = 0usize;
        for op in ops {
            self.assert_scan_segmentable(op.scan_len);
            assert!(
                op.at >= self.bulk_tail,
                "arrival at {}us precedes the batch tail ({}us); \
                 bulk loads require a sorted arrival stream",
                op.at.as_micros(),
                self.bulk_tail.as_micros()
            );
            self.bulk_tail = op.at;
            let (home, coordinator) = self.route_submission();
            let s = &mut self.shard_states[home];
            let op_id = s.ops.insert(OpState::Pending(PendingOp {
                sub: Submission {
                    kind: op.kind,
                    key: Key(op.key),
                    size: op.size,
                    scan_len: op.scan_len.max(1),
                    level: op.level,
                },
                coordinator,
                retry: None,
            }));
            s.lane
                .bulk_push_sorted(op.at, Event::ClientArrive { op_id });
            submitted += 1;
        }
        submitted
    }

    /// Schedule a tick: [`Cluster::advance`] will return
    /// [`ClusterOutput::Tick`] when the simulation reaches `at`.
    pub fn schedule_tick(&mut self, at: SimTime, id: u64) {
        // Ticks are external control events with no home node; they ride
        // the control lane and run at barrier edges.
        self.ctrl_lane().schedule_at(at, Event::Tick { id });
    }

    /// Process events until something reportable happens (an operation
    /// completes or a tick fires). Returns `None` when no events remain.
    pub fn advance(&mut self) -> Option<ClusterOutput> {
        self.advance_inner(None)
    }

    /// Like [`Cluster::advance`], but only processes events firing at or
    /// before `deadline`; returns `None` once the next pending event (if
    /// any) lies beyond it. Lets open-loop drivers interleave windowed
    /// [`Cluster::submit_batch`] loads with draining, without the clock
    /// running ahead of the next window's arrivals.
    pub fn advance_before(&mut self, deadline: SimTime) -> Option<ClusterOutput> {
        self.advance_inner(Some(deadline))
    }

    fn advance_inner(&mut self, deadline: Option<SimTime>) -> Option<ClusterOutput> {
        if self.serial() {
            return self.advance_serial(deadline);
        }
        loop {
            if let Some(out) = self.outputs.pop_front() {
                return Some(out);
            }
            if !self.step_window(deadline) {
                return None;
            }
        }
    }

    /// The exact pre-sharding event loop: one lane, one RNG, every handler
    /// inline. Byte-identical to the engine before parallel execution.
    fn advance_serial(&mut self, deadline: Option<SimTime>) -> Option<ClusterOutput> {
        loop {
            if let Some(out) = self.outputs.pop_front() {
                return Some(out);
            }
            let (now, event) = match deadline {
                Some(d) => self.shard_states[0].lane.pop_before(d)?,
                None => self.shard_states[0].lane.pop()?,
            };
            self.clock = now;
            self.dispatch_serial(now, event);
        }
    }

    fn dispatch_serial(&mut self, now: SimTime, event: Event) {
        match event {
            Event::Tick { id } => self.outputs.push_back(ClusterOutput::Tick { id, at: now }),
            Event::HintReplay { node } => self.on_hint_replay(now, node),
            Event::AntiEntropy => self.on_anti_entropy(now),
            Event::RepairSync { node } => self.on_repair_sync(now, node),
            other => {
                let mut ctx = ShardCtx {
                    shared: &self.shared,
                    s: &mut self.shard_states[0],
                    ctrl: Some(&mut self.ctrl),
                    // The serial path never stages, so it has no boundary.
                    boundary: SimTime::ZERO,
                };
                ctx.handle(now, other);
                // Preserve the pre-sharding output order: completions enter
                // the global queue the moment their event produced them.
                self.outputs.extend(self.shard_states[0].outputs.drain(..));
            }
        }
    }

    /// Drain every event up to `deadline` (inclusive), returning the
    /// completed operations. Ticks are discarded.
    pub fn run_until(&mut self, deadline: SimTime) -> Vec<CompletedOp> {
        let mut done = Vec::new();
        while let Some(out) = self.advance_before(deadline) {
            if let ClusterOutput::Completed(op) = out {
                done.push(op);
            }
        }
        done
    }

    /// Drain the simulation completely (bounded by `max_events`), returning
    /// every completed operation. Ticks are discarded.
    pub fn run_to_completion(&mut self, max_events: u64) -> Vec<CompletedOp> {
        let mut done = Vec::new();
        let mut events = 0u64;
        while events < max_events {
            match self.advance() {
                Some(ClusterOutput::Completed(op)) => done.push(op),
                Some(ClusterOutput::Tick { .. }) => {}
                None => break,
            }
            events += 1;
        }
        done
    }

    // ------------------------------------------------------------------
    // Parallel window machinery
    // ------------------------------------------------------------------

    /// Advance the parallel engine by one step: either run one due control
    /// event at a barrier edge, or execute one lookahead window (parallel
    /// shard batches + window close, folding only when control-plane work
    /// demands it). Returns `false` when nothing is left (or the next event
    /// lies beyond `deadline`) *and* no deferred fold work remained to
    /// flush.
    fn step_window(&mut self, deadline: Option<SimTime>) -> bool {
        let shard_min = self
            .shard_states
            .iter()
            .filter_map(|s| s.lane.peek_key_packed())
            .min();
        let ctrl_min = self.ctrl.lane.peek_key_packed();
        let next_key = match (shard_min, ctrl_min) {
            // Out of events: publish whatever elided folds deferred (the
            // second pass through here finds nothing pending and stops).
            (None, None) => return self.flush_pending(),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (Some(a), Some(b)) => a.min(b),
        };
        let next_time = unpack_time(next_key);
        if let Some(d) = deadline {
            if next_time > d {
                // Beyond the caller's horizon: flush so completions that
                // already happened are observable at the deadline.
                return self.flush_pending();
            }
        }
        // Control events run at barrier edges, serially, and win instant
        // ties against shard events: no shard event at the control event's
        // instant may execute first (its handlers could observe state the
        // control event is about to change).
        let ctrl_due = match (ctrl_min, shard_min) {
            (Some(c), Some(s)) => unpack_time(c) <= unpack_time(s),
            (Some(_), None) => true,
            _ => false,
        };
        if ctrl_due {
            // Deferred completions all precede the control event's instant
            // (windows never cross it), so flush first: a tick output must
            // follow every completion that happened before it, and control
            // handlers must observe up-to-date control-plane state.
            self.flush_pending();
            let (now, event) = self.ctrl.lane.pop().expect("control lane was just peeked");
            if now > self.clock {
                self.clock = now;
            }
            self.dispatch_ctrl(now, event);
            return true;
        }
        // One lookahead window: [floor, end) in packed-key space. The end
        // is the min over shards with pending events of `shard floor +
        // per-shard lookahead` — a message sent by shard `i` is sent at or
        // after `i`'s own next-event floor and takes at least
        // `shard_lookahead[i]` to take effect elsewhere, so no shard can
        // affect another inside the window. With a uniform lookahead matrix
        // this equals the old `global floor + global bound`; with a mixed
        // topology, shards whose outgoing links are all wide-area stop
        // dragging the window down to the tightest LAN bound. The window
        // never reaches the next control event's instant and never crosses
        // the caller's deadline; a zero bound (cross-shard link with a zero
        // delay infimum) degrades to a minimal 1 µs window.
        let floor = next_time;
        if self.sync.windows > 0 && floor > self.last_boundary {
            // The global floor jumped past quiet simulated time instead of
            // marching barrier-by-barrier through it.
            self.sync.fast_forwards += 1;
        }
        let min_window = SimDuration::from_micros(1);
        let mut end_key = u128::MAX;
        for (i, s) in self.shard_states.iter().enumerate() {
            if let Some(k) = s.lane.peek_key_packed() {
                let bound = unpack_time(k) + self.shard_lookahead[i].max(min_window);
                end_key = end_key.min(pack(bound, 0));
            }
        }
        debug_assert!(end_key != u128::MAX, "some shard lane has events here");
        if let Some(c) = ctrl_min {
            end_key = end_key.min(pack(unpack_time(c), 0));
        }
        if let Some(d) = deadline {
            end_key = end_key.min(pack(d + SimDuration::from_micros(1), 0));
        }
        let boundary = unpack_time(end_key);
        let shared = &self.shared;
        rayon::par_for_each_mut(&mut self.shard_states, |_, s| {
            let mut ctx = ShardCtx {
                shared,
                s,
                ctrl: None,
                boundary,
            };
            let mut popped = 0u64;
            while let Some((t, event)) = ctx.s.lane.pop_before_key(end_key) {
                ctx.handle(t, event);
                popped += 1;
            }
            ctx.s.window_popped = popped;
        });
        self.close_window(boundary);
        true
    }

    fn dispatch_ctrl(&mut self, now: SimTime, event: Event) {
        match event {
            Event::Tick { id } => self.outputs.push_back(ClusterOutput::Tick { id, at: now }),
            Event::HintReplay { node } => self.on_hint_replay(now, node),
            Event::AntiEntropy => self.on_anti_entropy(now),
            Event::RepairSync { node } => self.on_repair_sync(now, node),
            _ => unreachable!("client/replica events never enter the control lane"),
        }
    }

    /// The serial barrier at the end of every window: advance the clock,
    /// update the synchronization counters, deliver every shard's
    /// data-plane outbox arenas in fixed sender order (cross-shard events
    /// and write tasks go straight into destination lanes — this cannot be
    /// deferred, because the next window's bound is computed from those
    /// lanes' floors), and gather outputs, oracle acks, deferred read
    /// completions and propagation samples — also in shard order — into the
    /// cluster-level pending buffers. Then decide whether to *fold*:
    /// windows that staged control-plane effects must fold (they need the
    /// serialized [`ControlState`]), as must windows that pushed the
    /// pending buffers past the flush threshold; everything else elides the
    /// fold entirely, which is what makes a barrier cost two lane peeks
    /// instead of a serial walk over every shard.
    fn close_window(&mut self, boundary: SimTime) {
        for s in &self.shard_states {
            let t = s.lane.now();
            if t > self.clock {
                self.clock = t;
            }
        }
        self.sync.windows += 1;
        let batches = self
            .shard_states
            .iter()
            .filter(|s| s.window_popped > 0)
            .count();
        if batches >= 2 {
            self.sync.parallel_batches += 1;
        }
        let longest = self
            .shard_states
            .iter()
            .map(|s| s.window_popped)
            .max()
            .unwrap_or(0);
        if longest > self.sync.max_batch_len {
            self.sync.max_batch_len = longest;
        }
        let nshards = self.shard_states.len();
        let mut ctrl_work = false;
        for i in 0..nshards {
            self.sync.staged += self.shard_states[i].window_staged;
            self.sync.violations += self.shard_states[i].window_violations;
            self.shard_states[i].window_staged = 0;
            self.shard_states[i].window_violations = 0;
            // Deliver this sender's arenas in destination order, one batch
            // per destination shard; allocations are handed back for the
            // next window. Staged times were already clamped to the window
            // boundary at staging time, so delivery is pure insertion.
            for dest in 0..nshards {
                if dest == i {
                    debug_assert!(self.shard_states[i].outbox_dest[dest].is_empty());
                    continue;
                }
                let mut msgs = std::mem::take(&mut self.shard_states[i].outbox_dest[dest]);
                for msg in msgs.drain(..) {
                    match msg {
                        OutMsg::Event { at, ev } => {
                            self.shard_states[dest].lane.schedule_at(at, ev);
                        }
                        OutMsg::WriteTask { at, node, payload } => {
                            let d = &mut self.shard_states[dest];
                            let id = d.intern_payload(payload);
                            d.retain_payload(id);
                            d.lane.schedule_at(
                                at,
                                Event::ReplicaArrive {
                                    node,
                                    task: ReplicaTask::Write { payload: id },
                                },
                            );
                        }
                    }
                }
                self.shard_states[i].outbox_dest[dest] = msgs;
            }
        }
        for k in 0..nshards {
            let s = &mut self.shard_states[k];
            ctrl_work |= !s.outbox_ctrl.is_empty();
            self.pending_acks.append(&mut s.outbox_acks);
            let shard = k as u16;
            self.pending_dones
                .extend(s.outbox_dones.drain(..).map(|(op, t)| (op, t, shard)));
            self.fold_outputs.append(&mut s.outputs);
            self.propagation_samples.append(&mut s.propagation);
        }
        self.last_boundary = boundary;
        let pending = self.pending_acks.len() + self.pending_dones.len() + self.fold_outputs.len();
        if self.shared.config.eager_folds || ctrl_work || pending >= FOLD_FLUSH_THRESHOLD {
            self.fold(boundary);
        } else {
            self.sync.elided_barriers += 1;
        }
    }

    /// The serial fold: record pending oracle acks, apply staged
    /// control-plane effects in fixed shard order, classify deferred read
    /// completions against the now-complete ack history, and publish the
    /// gathered outputs time-sorted. Deferring this across elided windows
    /// is exact: per-window output time ranges are disjoint and increasing
    /// (a window's outputs all precede its boundary, and the next window's
    /// floor is at or past it), so one stable sort of the accumulated
    /// buffer equals the concatenation of per-window sorts; ack-before-read
    /// classification stays exact because an ack timestamped before a
    /// read's issue instant is gathered no later than that read's window
    /// and therefore recorded by the fold that classifies it, while acks
    /// recorded early are filtered out by their timestamps
    /// ([`StalenessOracle::classify_read_at`]).
    fn fold(&mut self, boundary: SimTime) {
        self.sync.barrier_folds += 1;
        // Acks first: control-plane arms never consult the oracle, but
        // deferred read classification below needs every gathered ack.
        for (key, version, at) in self.pending_acks.drain(..) {
            self.ctrl.oracle.record_ack(key, version, at);
        }
        for i in 0..self.shard_states.len() {
            let mut staged = std::mem::take(&mut self.shard_states[i].outbox_ctrl);
            for entry in staged.drain(..) {
                self.apply_ctrl_staged(entry, boundary);
            }
            // Hand the (empty) allocation back for the next window.
            self.shard_states[i].outbox_ctrl = staged;
        }
        // Finish deferred read completions now that every gathered ack is
        // in the oracle: classify each read against the ack set as of its
        // own issue instant, count it in its shard's metric sink and emit
        // the client output in time for this fold's publish below.
        let mut dones = std::mem::take(&mut self.pending_dones);
        for (mut op, issue_at, shard) in dones.drain(..) {
            let class = self
                .ctrl
                .oracle
                .classify_read_at(op.key, issue_at, op.returned_version);
            op.stale = class.stale;
            op.staleness_depth = class.depth;
            let s = &mut self.shard_states[shard as usize];
            s.metrics
                .record_completion(OpKind::Read, op.latency(), class.stale);
            self.fold_outputs.push(ClusterOutput::Completed(op));
        }
        self.pending_dones = dones;
        let mut gathered = std::mem::take(&mut self.fold_outputs);
        // Stable by-time sort over the (window, shard)-ordered
        // concatenation: outputs interleave across shards by simulated
        // time, with gathering order breaking ties deterministically.
        gathered.sort_by_key(|out| match out {
            ClusterOutput::Completed(op) => op.completed_at,
            ClusterOutput::Tick { at, .. } => *at,
        });
        self.outputs.extend(gathered.drain(..));
        self.fold_outputs = gathered;
    }

    /// Force a fold between windows if elided barriers left anything
    /// pending; returns whether one ran. Called before control events (a
    /// tick must observe and follow every completion that precedes it), at
    /// the caller's deadline and when the queues drain. Control-plane
    /// outboxes are always empty here — a window that stages control work
    /// folds at its own close — so the fold boundary can only matter to
    /// nothing and the last window's boundary is passed for form.
    fn flush_pending(&mut self) -> bool {
        if self.pending_acks.is_empty()
            && self.pending_dones.is_empty()
            && self.fold_outputs.is_empty()
        {
            return false;
        }
        self.fold(self.last_boundary);
        true
    }

    /// Apply one staged control-plane effect at a fold (see [`CtrlStaged`]).
    fn apply_ctrl_staged(&mut self, staged: CtrlStaged, boundary: SimTime) {
        match staged {
            CtrlStaged::Abandon { op_id } => {
                let home = (op_id.0 as u32 % self.shared.nshards) as usize;
                abandon_in(&mut self.shard_states[home], op_id);
            }
            CtrlStaged::Hint {
                from,
                to,
                key,
                version,
                size,
            } => {
                let capacity = self.shared.config.repair.hint_capacity() as usize;
                if self.ctrl.hints[to.0 as usize].len() >= capacity {
                    self.ctrl.metrics.hints_dropped += 1;
                    // Dropped hints fall through to anti-entropy (no-op
                    // unless the mode enables sweeps).
                    let now = self.clock;
                    resume_sweeps_parts(&self.shared, &mut self.ctrl, None, now);
                } else {
                    self.ctrl.hints[to.0 as usize].push_back(Hint {
                        from,
                        key,
                        version,
                        size,
                    });
                    self.ctrl.metrics.hints_queued += 1;
                }
            }
            CtrlStaged::Resubmit {
                sub,
                retry,
                at,
                backoff,
            } => {
                // Fresh attempt routing at a serial point: draw a new
                // coordinator among the currently-up nodes, home the
                // attempt on its shard and restart it at the boundary (the
                // next window's opening edge — a deliberate defer, not a
                // lookahead violation). With backoff, the restart instead
                // waits out the exponential delay measured from the staging
                // time, floored at the boundary; the jitter draw comes from
                // the control stream, the same stream the coordinator draw
                // uses, so the fold stays a pure function of (seed, shards).
                let coordinator = self.draw_coordinator_ctrl();
                let home = self.shared.shard_of(coordinator);
                if backoff {
                    let delay = backoff_delay(
                        &self.shared.config.resilience,
                        self.shared.config.retry_on_timeout,
                        retry.retries_left,
                        &mut self.ctrl.rng,
                    );
                    let when = (at + delay).max(boundary);
                    let s = &mut self.shard_states[home];
                    let op_id = s.ops.insert(OpState::Pending(PendingOp {
                        sub,
                        coordinator: Some(coordinator),
                        retry: Some(retry),
                    }));
                    s.lane.schedule_timeout(when, Event::ClientArrive { op_id });
                } else {
                    let s = &mut self.shard_states[home];
                    let op_id = s.ops.insert(OpState::Pending(PendingOp {
                        sub,
                        coordinator: Some(coordinator),
                        retry: Some(retry),
                    }));
                    s.lane.schedule_at(boundary, Event::ClientArrive { op_id });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Control-plane handlers (hint replay, anti-entropy, recovery sync)
    //
    // These run serially — on the single lane in serial mode, at barrier
    // edges in parallel mode — because they touch cluster-wide state
    // (hint queues, sweep cursor, every node's store). Their metering and
    // delay sampling route through `repair_message_delay`/`repair_bytes`:
    // shard 0's RNG and metrics in serial mode (byte-identical to the
    // pre-parallel engine), the control stream otherwise.
    // ------------------------------------------------------------------

    fn repair_message_delay(&mut self, from: NodeId, to: NodeId, bytes: u32) -> SimDuration {
        if self.serial() {
            let s = &mut self.shard_states[0];
            account_repair_message(&self.shared, &mut s.rng, &mut s.metrics, from, to, bytes)
        } else {
            account_repair_message(
                &self.shared,
                &mut self.ctrl.rng,
                &mut self.ctrl.metrics,
                from,
                to,
                bytes,
            )
        }
    }

    fn repair_bytes(&mut self, from: NodeId, to: NodeId, bytes: u32) {
        if self.serial() {
            account_repair_bytes(
                &self.shared,
                &mut self.shard_states[0].metrics,
                from,
                to,
                bytes,
            );
        } else {
            account_repair_bytes(&self.shared, &mut self.ctrl.metrics, from, to, bytes);
        }
    }

    /// Start (or restart) the timer-wheel-paced hint replay chain to `node`
    /// after it came back up. No-op when hints are disabled, the queue is
    /// empty, or a chain is already scheduled.
    fn start_hint_replay(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if !self.shared.config.repair.mode.hints_enabled()
            || self.ctrl.hints[idx].is_empty()
            || self.ctrl.hint_replay_active[idx]
        {
            return;
        }
        self.ctrl.hint_replay_active[idx] = true;
        let at = self.clock + self.shared.config.repair.replay_interval();
        self.ctrl_lane()
            .schedule_timeout(at, Event::HintReplay { node });
    }

    /// Replay one queued hint to `node` as a background repair write and
    /// chain the next replay through the timer wheel.
    fn on_hint_replay(&mut self, now: SimTime, node: NodeId) {
        let idx = node.0 as usize;
        if self.shared.down[idx] {
            // The node flapped down again mid-replay: park the chain; the
            // next set_node_up restarts it with the remaining hints.
            self.ctrl.hint_replay_active[idx] = false;
            return;
        }
        let Some(hint) = self.ctrl.hints[idx].pop_front() else {
            self.ctrl.hint_replay_active[idx] = false;
            return;
        };
        self.ctrl_metrics().hints_replayed += 1;
        let delay = self.repair_message_delay(hint.from, node, hint.size);
        if self.shared.link_up(hint.from, node) {
            // Control events run between windows: the repair write can be
            // scheduled straight into the destination shard's lane.
            let dest = self.shared.shard_of(node);
            let s = &mut self.shard_states[dest];
            let payload = s.intern_payload(WritePayload {
                op_id: REPAIR_OP_ID,
                key: hint.key,
                version: hint.version,
                size: hint.size,
                repair: true,
                coordinator: pack_node(hint.from),
            });
            s.retain_payload(payload);
            s.lane.schedule_at(
                now + delay,
                Event::ReplicaArrive {
                    node,
                    task: ReplicaTask::Write { payload },
                },
            );
        } else {
            // Lost in a partition like any other message; anti-entropy (if
            // enabled) reconciles the residue after the heal.
            self.ctrl_metrics().messages_lost += 1;
        }
        if self.ctrl.hints[idx].is_empty() {
            self.ctrl.hint_replay_active[idx] = false;
        } else {
            let at = now + self.shared.config.repair.replay_interval();
            self.ctrl_lane()
                .schedule_timeout(at, Event::HintReplay { node });
        }
    }

    /// (Re)start the anti-entropy sweep cycle. The cycle parks itself after
    /// a full round of node pairs that streamed nothing (so a drained queue
    /// terminates `run_to_completion`); fault transitions call this to wake
    /// it up again. No-op unless the mode enables anti-entropy.
    fn resume_sweeps(&mut self) {
        let now = self.clock;
        if self.serial() {
            resume_sweeps_parts(
                &self.shared,
                &mut self.ctrl,
                Some(&mut self.shard_states[0].lane),
                now,
            );
        } else {
            resume_sweeps_parts(&self.shared, &mut self.ctrl, None, now);
        }
    }

    /// One anti-entropy step: compare the next node pair's page summaries,
    /// stream divergent pages both ways, and chain the next step unless a
    /// full round went by without streaming anything.
    fn on_anti_entropy(&mut self, now: SimTime) {
        if !self.shared.config.repair.mode.anti_entropy_enabled() || self.shared.node_count < 2 {
            self.ctrl.sweep_active = false;
            return;
        }
        let n = self.shared.node_count as u64;
        let pairs = n * (n - 1) / 2;
        let (a, b) = unrank_pair(self.ctrl.sweep_cursor % pairs, n);
        self.ctrl.sweep_cursor += 1;
        let (a, b) = (NodeId(a as u32), NodeId(b as u32));
        // Pairs with a down endpoint or a partitioned link are skipped (and
        // count as idle); the fault transition that restores them resumes
        // the cycle.
        if !self.shared.down[a.0 as usize]
            && !self.shared.down[b.0 as usize]
            && self.shared.link_up(a, b)
        {
            let streamed = self.sweep_pair(now, a, b);
            if streamed > 0 {
                self.ctrl.sweep_streamed = true;
            }
        }
        if self.ctrl.sweep_cursor.is_multiple_of(pairs) {
            // Round boundary: either work happened (keep going) or the
            // round was silent (count it toward parking).
            if self.ctrl.sweep_streamed {
                self.ctrl.sweep_idle_rounds = 0;
            } else {
                self.ctrl.sweep_idle_rounds += 1;
            }
            self.ctrl.sweep_streamed = false;
        }
        if self.ctrl.sweep_idle_rounds > 0 {
            self.ctrl.sweep_active = false;
            return;
        }
        let at = now + self.shared.config.repair.sweep_interval();
        self.ctrl_lane().schedule_timeout(at, Event::AntiEntropy);
    }

    /// Compare every page summary of a node pair (metered as network bytes
    /// both ways) and stream divergent pages in both directions. Returns the
    /// number of records streamed.
    fn sweep_pair(&mut self, now: SimTime, a: NodeId, b: NodeId) -> u64 {
        let pages = self
            .store(a)
            .summary_pages()
            .max(self.store(b).summary_pages());
        let summary_bytes = self.shared.config.repair.summary_bytes();
        let mut streamed = 0u64;
        for page in 0..pages {
            self.ctrl_metrics().repair_pages_compared += 1;
            // One summary message each way per compared page.
            self.repair_bytes(a, b, summary_bytes);
            self.repair_bytes(b, a, summary_bytes);
            if self.store(a).page_digest(page) != self.store(b).page_digest(page) {
                streamed += self.stream_page_diff(now, a, b, page);
                streamed += self.stream_page_diff(now, b, a, page);
            }
        }
        streamed
    }

    /// Stream the records of `from`'s page that are strictly newer than
    /// `to`'s copy — and that `to` currently replicates — as background
    /// repair writes. Returns the number of records streamed. The
    /// strictly-newer filter makes reconciliation monotone: re-comparing a
    /// converged page streams nothing, which is what lets the sweep cycle
    /// park.
    fn stream_page_diff(&mut self, now: SimTime, from: NodeId, to: NodeId, page: usize) -> u64 {
        let mut records = std::mem::take(&mut self.ctrl.repair_page_scratch);
        records.clear();
        self.store(from).collect_page(page, &mut records);
        let mut members = std::mem::take(&mut self.ctrl.repair_member_scratch);
        let mut streamed = 0u64;
        for &(key, version, size) in &records {
            let held = self
                .store(to)
                .peek(key)
                .map(|v| v.version)
                .unwrap_or(Version::NONE);
            if version <= held {
                continue;
            }
            // Membership gate: divergent data moves only to a current
            // replica of the key, never to a node that happens to share the
            // page but no longer owns the record.
            self.ctrl
                .replica_cache
                .replicas_into(&self.shared.ring, key, &mut members);
            if !members.contains(&to) {
                continue;
            }
            let delay = self.repair_message_delay(from, to, size);
            let dest = self.shared.shard_of(to);
            let s = &mut self.shard_states[dest];
            let payload = s.intern_payload(WritePayload {
                op_id: REPAIR_OP_ID,
                key,
                version,
                size,
                repair: true,
                coordinator: pack_node(from),
            });
            s.retain_payload(payload);
            s.lane.schedule_at(
                now + delay,
                Event::ReplicaArrive {
                    node: to,
                    task: ReplicaTask::Write { payload },
                },
            );
            streamed += 1;
        }
        self.ctrl_metrics().repair_records_streamed += streamed;
        self.ctrl.repair_page_scratch = records;
        self.ctrl.repair_member_scratch = members;
        streamed
    }

    /// Recovery migration: synchronize `node` from every up peer — page
    /// summaries compared (metered) and divergent pages streamed in. Runs
    /// when a node rejoins the ring (pull the writes it missed) and on every
    /// survivor after a crash (pull the acquired ranges). Residual
    /// divergence — e.g. from peers that were themselves partitioned — is
    /// left to the sweep cycle.
    fn on_repair_sync(&mut self, now: SimTime, node: NodeId) {
        if !self.shared.config.repair.mode.anti_entropy_enabled()
            || self.shared.down[node.0 as usize]
        {
            return;
        }
        let mut streamed = 0u64;
        for peer in 0..self.shared.node_count {
            let peer_id = NodeId(peer as u32);
            if peer_id == node || self.shared.down[peer] || !self.shared.link_up(peer_id, node) {
                continue;
            }
            let pages = self
                .store(peer_id)
                .summary_pages()
                .max(self.store(node).summary_pages());
            let summary_bytes = self.shared.config.repair.summary_bytes();
            for page in 0..pages {
                self.ctrl_metrics().repair_pages_compared += 1;
                self.repair_bytes(peer_id, node, summary_bytes);
                if self.store(peer_id).page_digest(page) != self.store(node).page_digest(page) {
                    streamed += self.stream_page_diff(now, peer_id, node, page);
                }
            }
        }
        if streamed > 0 {
            self.ctrl.sweep_streamed = true;
        }
    }
}

/// One shard's view of the cluster during event execution: the immutable
/// shared plane, the shard's own mutable state, and — in serial mode only —
/// the control plane. Handlers can touch nothing else, which is what makes
/// the parallel windows data-race-free *and* schedule-independent: the
/// borrow checker proves a handler's writes stay inside its own
/// [`ShardState`], and everything cross-shard goes through the outbox.
///
/// `ctrl` doubles as the mode switch: `Some` on the single-shard engine
/// (hint queues reachable inline, acks sampled at apply time — byte-for-byte
/// the pre-sharding behaviour), `None` inside a parallel window (cross-shard
/// effects staged for the fold).
struct ShardCtx<'a> {
    shared: &'a ClusterShared,
    s: &'a mut ShardState,
    ctrl: Option<&'a mut ControlState>,
    /// End of the window being executed: staged cross-shard times are
    /// clamped here *at staging time* (a clamp means the lookahead bound
    /// was optimistic for the traffic observed — counted as a violation).
    /// Unused in serial mode (the serial path never stages).
    boundary: SimTime,
}

impl ShardCtx<'_> {
    fn handle(&mut self, now: SimTime, event: Event) {
        match event {
            Event::ClientArrive { op_id } => self.on_client_arrive(now, op_id),
            Event::ReplicaArrive { node, task } => self.on_replica_arrive(now, node, task),
            Event::ReplicaServiceDone { node, task } => self.on_replica_done(now, node, task),
            Event::CoordinatorWriteAck {
                op_id,
                from,
                applied_at,
            } => self.on_write_ack(now, op_id, from, applied_at),
            Event::CoordinatorReadResponse {
                op_id,
                from,
                version,
                size,
                records,
                segment,
            } => self.on_read_response(now, op_id, from, version, size, records, segment),
            Event::OpTimeout { op_id } => self.on_timeout(now, op_id),
            Event::HedgeFire { op_id } => self.on_hedge_fire(now, op_id),
            // Ticks normally ride the control lane; tolerate one here for
            // totality (it folds into the output stream like a completion).
            Event::Tick { id } => self.s.outputs.push(ClusterOutput::Tick { id, at: now }),
            Event::HintReplay { .. } | Event::AntiEntropy | Event::RepairSync { .. } => {
                unreachable!("repair-plane events run on the control lane")
            }
        }
    }

    /// The home shard of an operation, recovered from the id alone (slab
    /// slots are strided by shard).
    #[inline]
    fn op_home(&self, op_id: OpId) -> u32 {
        op_id.0 as u32 % self.shared.nshards
    }

    /// Account a message of `bytes` payload travelling `from → to` against
    /// this shard's RNG and meters.
    fn account_message(&mut self, from: NodeId, to: NodeId, bytes: u32) -> SimDuration {
        account_message(
            self.shared,
            &mut self.s.rng,
            &mut self.s.metrics,
            from,
            to,
            bytes,
        )
    }

    /// Clamp a staged delivery time into the next window and count the
    /// staging. A violation means a cross-shard effect would land inside
    /// the window that produced it — the lookahead bound was too optimistic
    /// (degradation shrank a link mid-window, or a zero-infimum
    /// distribution sampled below the bound). The effect is deferred to the
    /// window boundary instead, deterministic at any thread count, and
    /// counted so runs can audit how conservative the bound really was.
    #[inline]
    fn stage_time(&mut self, at: SimTime) -> SimTime {
        self.s.window_staged += 1;
        if at < self.boundary {
            self.s.window_violations += 1;
            self.boundary
        } else {
            at
        }
    }

    /// Schedule an event on `dest`'s lane: directly when it is this shard's
    /// own lane, staged into the per-destination outbox arena otherwise.
    fn send_event(&mut self, dest: usize, at: SimTime, ev: Event) {
        if dest as u32 == self.s.shard {
            self.s.lane.schedule_at(at, ev);
        } else {
            let at = self.stage_time(at);
            self.s.outbox_dest[dest].push(OutMsg::Event { at, ev });
        }
    }

    /// Stop expecting an ack for `op_id` (dead replica or partition-dropped
    /// message): inline when the op lives here, staged otherwise.
    fn abandon(&mut self, op_id: OpId) {
        if self.op_home(op_id) == self.s.shard {
            abandon_in(self.s, op_id);
        } else {
            self.s.window_staged += 1;
            self.s.outbox_ctrl.push(CtrlStaged::Abandon { op_id });
        }
    }

    fn pick_coordinator(&mut self) -> NodeId {
        // Clients connect to a random live node (YCSB spreads connections
        // round-robin; with many clients the effect is uniform).
        if self.shared.down_count == 0 {
            // Fast path: every node is up, so the up-node list is the
            // identity — draw the index directly (same RNG consumption).
            return NodeId(self.s.rng.index(self.shared.node_count) as u32);
        }
        let mut up = std::mem::take(&mut self.s.up_scratch);
        up.clear();
        up.extend(
            self.shared
                .config
                .topology
                .nodes()
                .filter(|n| !self.shared.down[n.0 as usize]),
        );
        let pick = if up.is_empty() {
            NodeId(0)
        } else {
            up[self.s.rng.index(up.len())]
        };
        self.s.up_scratch = up;
        pick
    }

    /// Queue a hinted-handoff mutation for a down replica. Hint queues are
    /// control-plane state: reachable inline in serial mode, staged to the
    /// fold from a parallel window.
    fn queue_hint(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        key: Key,
        version: Version,
        size: u32,
    ) {
        let Some(ctrl) = self.ctrl.as_deref_mut() else {
            self.s.window_staged += 1;
            self.s.outbox_ctrl.push(CtrlStaged::Hint {
                from,
                to,
                key,
                version,
                size,
            });
            return;
        };
        if ctrl.hints[to.0 as usize].len() >= self.shared.config.repair.hint_capacity() as usize {
            self.s.metrics.hints_dropped += 1;
            // Dropped hints fall through to anti-entropy (no-op unless the
            // mode enables sweeps).
            resume_sweeps_parts(self.shared, ctrl, Some(&mut self.s.lane), now);
            return;
        }
        ctrl.hints[to.0 as usize].push_back(Hint {
            from,
            key,
            version,
            size,
        });
        self.s.metrics.hints_queued += 1;
    }

    fn on_client_arrive(&mut self, now: SimTime, op_id: OpId) {
        let p = match self.s.ops.get(op_id) {
            Some(&OpState::Pending(p)) => p,
            _ => return,
        };
        let retry = p.retry.unwrap_or(RetryCtx {
            issued_at: now,
            retries_left: self.shared.config.retry_on_timeout,
            client_id: op_id,
        });
        if let Some(c) = p.coordinator {
            if self.shared.down[c.0 as usize] {
                // The pre-routed coordinator went down between routing and
                // arrival: re-route through the fold (fresh draw among the
                // up nodes). No retry budget is consumed — the client never
                // reached a coordinator — and no backoff applies (this is
                // re-routing, not a timed-out attempt).
                self.s.ops.remove(op_id);
                self.s.window_staged += 1;
                self.s.outbox_ctrl.push(CtrlStaged::Resubmit {
                    sub: p.sub,
                    retry,
                    at: now,
                    backoff: false,
                });
                return;
            }
        }
        match p.sub.kind {
            OpKind::Write => self.start_write(now, op_id, p.sub, p.coordinator, retry),
            OpKind::Read => self.start_read(now, op_id, p.sub, p.coordinator, retry),
        }
    }

    /// Issue a write attempt. `coordinator` is the pre-routed coordinator
    /// (parallel engine) or `None` to draw one now from this shard's stream
    /// (serial engine — the pre-sharding behaviour). `retry` carries the
    /// client-visible submission time, the remaining budget and the id
    /// `submit_*` handed out, which differ from `now`/`op_id` for retried
    /// attempts so latency spans every attempt and completions keep the
    /// submitted id.
    fn start_write(
        &mut self,
        now: SimTime,
        op_id: OpId,
        sub: Submission,
        coordinator: Option<NodeId>,
        retry: RetryCtx,
    ) {
        let coordinator = coordinator.unwrap_or_else(|| self.pick_coordinator());
        let level = sub.level.unwrap_or(self.shared.write_level);
        let required_acks = self.shared.config.required_acks(level);
        let version = if self.ctrl.is_some() {
            self.s.alloc_version_serial()
        } else {
            self.s.alloc_version_at(now)
        };
        let mut replicas = std::mem::take(&mut self.s.replica_scratch);
        self.s
            .replica_cache
            .replicas_into(&self.shared.ring, sub.key, &mut replicas);
        let mut targeted = 0u32;

        // One interned payload serves the whole local fan-out: the scheduled
        // events each carry a 4-byte handle instead of a full mutation copy.
        // Replicas on other shards receive the payload by value at the fold
        // (handles never cross shards).
        let pl = WritePayload {
            op_id,
            key: sub.key,
            version,
            size: sub.size,
            repair: false,
            coordinator: pack_node(coordinator),
        };
        let payload = self.s.intern_payload(pl);
        for &replica in &replicas {
            let delay = self.account_message(coordinator, replica, sub.size);
            if self.shared.down[replica.0 as usize] {
                // The mutation is lost to this replica for now; with hinted
                // handoff the coordinator queues a bounded hint to replay
                // once the node is back up.
                if self.shared.config.repair.mode.hints_enabled() {
                    self.queue_hint(now, coordinator, replica, sub.key, version, sub.size);
                }
                continue;
            }
            if !self.shared.link_up(coordinator, replica) {
                // Lost in transit across a partitioned DC pair.
                self.s.metrics.messages_lost += 1;
                continue;
            }
            targeted += 1;
            let dest = self.shared.shard_of(replica);
            if dest as u32 == self.s.shard {
                self.s.retain_payload(payload);
                self.s.lane.schedule_at(
                    now + delay,
                    Event::ReplicaArrive {
                        node: replica,
                        task: ReplicaTask::Write { payload },
                    },
                );
            } else {
                let at = self.stage_time(now + delay);
                self.s.outbox_dest[dest].push(OutMsg::WriteTask {
                    at,
                    node: replica,
                    payload: pl,
                });
            }
        }
        self.s.discard_unreferenced_payload(payload);
        self.s.replica_scratch = replicas;

        self.s.metrics.write_acks_awaited += required_acks as u64;
        if let Some(state) = self.s.ops.get_mut(op_id) {
            *state = OpState::Write(WriteState {
                key: sub.key,
                version,
                coordinator,
                issued_at: retry.issued_at,
                required_acks,
                acks: 0,
                applied: 0,
                targeted,
                completed: false,
                level_used: required_acks,
                size: sub.size,
                level: sub.level,
                retries_left: retry.retries_left,
                client_id: retry.client_id,
                max_applied_at: SimTime::ZERO,
            });
        }
        // One pending timer per in-flight op would dominate the heap; the
        // queue's timer-wheel lane keeps them out of it at O(1) regardless
        // of the timeout pattern. The timer lives on the op's home lane —
        // where the state it fires against lives.
        self.s.lane.schedule_timeout(
            now + self.shared.config.op_timeout,
            Event::OpTimeout { op_id },
        );
    }

    /// Issue a read attempt (see [`ShardCtx::start_write`] for the retry
    /// parameters).
    ///
    /// Point reads and hash-partitioned scans contact `required` replicas of
    /// the key's placement, each reading the whole range (a hash-placed
    /// replica holds only the subset of the range it owns, so its response
    /// covers that subset — Cassandra's random-partitioner semantics).
    /// Ordered-partitioner scans are **coverage-faithful**: the range is
    /// split at ownership-slice boundaries and each segment fans out to the
    /// `required` replicas of *its* owners, so the data responses together
    /// return every record in the range, gathered across boundaries.
    fn start_read(
        &mut self,
        now: SimTime,
        op_id: OpId,
        sub: Submission,
        coordinator: Option<NodeId>,
        retry: RetryCtx,
    ) {
        let coordinator = coordinator.unwrap_or_else(|| self.pick_coordinator());
        let level = sub.level.unwrap_or(self.shared.read_level);
        let required = self.shared.config.required_acks(level);
        // Serial: capture the freshness expectation inline, exactly as the
        // pre-sharding engine did. Parallel: the oracle is untouchable
        // inside a window; the completion fold resolves the expectation
        // retroactively as of `now` (stored in `attempt_at` below).
        let expected_version = match self.ctrl.as_deref() {
            Some(ctrl) => ctrl.oracle.expected_version(sub.key),
            None => Version::NONE,
        };
        // Ownership-boundary segmentation (ordered scans only; everything
        // else is a single segment covering the whole range).
        let scan_len = sub.scan_len.max(1);
        let split = self.shared.config.partitioner == Partitioner::Ordered && scan_len > 1;
        let end = sub.key.0.saturating_add(scan_len as u64);

        let mut replicas = std::mem::take(&mut self.s.replica_scratch);
        let mut contacted: InlineVec<NodeId> = InlineVec::new();
        let mut seg_responses: InlineVec<u32> = InlineVec::new();
        let mut segments = 0u32;
        let mut seg_start = sub.key.0;
        while seg_start < end || segments == 0 {
            let seg_len = if split {
                // Stop at the next ownership-slice boundary (aligned with
                // the paged tables' page size).
                let boundary = (seg_start | ((1u64 << ORDERED_SLICE_BITS) - 1)).saturating_add(1);
                (boundary.min(end) - seg_start) as u32
            } else {
                scan_len
            };
            let segment = u16::try_from(segments).expect("a scan spans at most 2^16 segments");
            self.s
                .replica_cache
                .replicas_into(&self.shared.ring, Key(seg_start), &mut replicas);
            self.select_read_replicas(now, coordinator, &mut replicas, required as usize);
            for (i, &replica) in replicas.iter().enumerate() {
                let delay = self.account_message(
                    coordinator,
                    replica,
                    self.shared.config.small_message_bytes,
                );
                if self.shared.down[replica.0 as usize] {
                    continue;
                }
                if !self.shared.link_up(coordinator, replica) {
                    self.s.metrics.messages_lost += 1;
                    continue;
                }
                let dest = self.shared.shard_of(replica);
                self.send_event(
                    dest,
                    now + delay,
                    Event::ReplicaArrive {
                        node: replica,
                        task: ReplicaTask::Read {
                            op_id,
                            key: Key(seg_start),
                            data: i == 0,
                            len: seg_len
                                .try_into()
                                .expect("validate() caps scan segments at 2^16 records"),
                            segment,
                            coordinator: pack_node(coordinator),
                        },
                    },
                );
            }
            self.s.metrics.read_replicas_contacted += replicas.len() as u64;
            contacted.extend_from_slice(&replicas);
            seg_responses.push(0);
            segments += 1;
            seg_start += seg_len as u64;
            if !split {
                break;
            }
        }

        self.s.replica_scratch = replicas;
        if let Some(state) = self.s.ops.get_mut(op_id) {
            *state = OpState::Read(ReadState {
                key: sub.key,
                coordinator,
                issued_at: retry.issued_at,
                required,
                scan_len: sub.scan_len,
                seg_pending: segments,
                seg_responses,
                records: 0,
                best_version: Version::NONE,
                best_size: 0,
                min_version: Version(u64::MAX),
                expected_version,
                attempt_at: now,
                contacted,
                level: sub.level,
                retries_left: retry.retries_left,
                client_id: retry.client_id,
                hedge: None,
            });
        }
        // Home-lane timer, same rationale as the write path.
        self.s.lane.schedule_timeout(
            now + self.shared.config.op_timeout,
            Event::OpTimeout { op_id },
        );
        // Hedged reads: arm one speculative trigger per point-read attempt
        // (scans have no single best unused replica to duplicate to). The
        // timer rides the home lane like the timeout — coordinator-homed
        // state, no cross-shard traffic. Off (the default) schedules
        // nothing, keeping resilience-off runs byte-identical.
        if scan_len == 1 && self.shared.config.resilience.hedging_enabled() {
            self.s.lane.schedule_timeout(
                now + self.shared.config.resilience.hedge_delay,
                Event::HedgeFire { op_id },
            );
        }
    }

    /// Fire a hedged read: if the attempt is still pending and has not
    /// hedged, send one speculative **digest** request to the best replica
    /// the read has not contacted yet (digest, so coverage and records are
    /// never double-counted). Ranking is deterministic — health score under
    /// [`ReplicaSelection::Dynamic`], the mean-latency table otherwise —
    /// with node id breaking ties; no RNG is drawn for the choice. The
    /// request's bytes land in `hedge_traffic` (and the billable `traffic`)
    /// via [`account_hedge_message`]. A losing hedge response is reaped by
    /// the slab generation check exactly like any straggler: the winning
    /// response removes the op's slot, so there is no double completion and
    /// no leak.
    fn on_hedge_fire(&mut self, now: SimTime, op_id: OpId) {
        let (coordinator, key, contacted) = match self.s.ops.get(op_id) {
            Some(OpState::Read(r)) if r.hedge.is_none() && r.seg_pending > 0 && r.scan_len <= 1 => {
                (r.coordinator, r.key, r.contacted.clone())
            }
            _ => return,
        };
        let mut replicas = std::mem::take(&mut self.s.replica_scratch);
        self.s
            .replica_cache
            .replicas_into(&self.shared.ring, key, &mut replicas);
        let dynamic = self.shared.selection == ReplicaSelection::Dynamic;
        let row = &self.shared.mean_lat[coordinator.0 as usize * self.shared.node_count..]
            [..self.shared.node_count];
        let mut best: Option<(f64, NodeId)> = None;
        for &replica in &replicas {
            if contacted.iter().any(|&c| c == replica)
                || self.shared.down[replica.0 as usize]
                || !self.shared.link_up(coordinator, replica)
            {
                continue;
            }
            let mut score = if dynamic {
                // Same ranking as `select_read_replicas`: distance prior
                // plus observed excess.
                let h = &self.s.health[replica.0 as usize];
                2.0 * row[replica.0 as usize] * 1_000.0 + h.ewma.value_or(0.0)
            } else {
                row[replica.0 as usize]
            };
            if dynamic
                && matches!(
                    self.s.health[replica.0 as usize].breaker,
                    Breaker::Open { .. }
                )
            {
                // An open breaker ranks behind every healthy candidate but
                // can still serve as the hedge of last resort.
                score += 1e12;
            }
            let better = match best {
                None => true,
                Some((bs, bn)) => score < bs || (score == bs && replica.0 < bn.0),
            };
            if better {
                best = Some((score, replica));
            }
        }
        self.s.replica_scratch = replicas;
        let Some((_, target)) = best else {
            return; // every replica is contacted, down or unreachable
        };
        self.s.metrics.hedged_requests += 1;
        let delay = account_hedge_message(
            self.shared,
            &mut self.s.rng,
            &mut self.s.metrics,
            coordinator,
            target,
            self.shared.config.small_message_bytes,
        );
        let dest = self.shared.shard_of(target);
        self.send_event(
            dest,
            now + delay,
            Event::ReplicaArrive {
                node: target,
                task: ReplicaTask::Read {
                    op_id,
                    key,
                    data: false,
                    len: 1,
                    segment: 0,
                    coordinator: pack_node(coordinator),
                },
            },
        );
        if let Some(OpState::Read(r)) = self.s.ops.get_mut(op_id) {
            r.hedge = Some(target);
            // The hedge target is a contacted replica from here on: its
            // response counts toward the quorum and read repair covers it.
            r.contacted.push(target);
            self.s.metrics.read_replicas_contacted += 1;
        }
    }

    /// Pick which replicas a read contacts: shuffle (random tie-break), rank
    /// by the precomputed coordinator→replica mean latency, truncate. Works
    /// in place on the caller's buffer — no allocation, no distribution-mean
    /// recomputation per comparison.
    ///
    /// Under [`ReplicaSelection::Dynamic`] the rank key is the
    /// coordinator-side EWMA of observed response latency instead of the
    /// static table (the table seeds nodes that have not answered yet), and
    /// a node whose circuit breaker is open is ranked behind every healthy
    /// candidate. An open breaker whose cooldown has elapsed transitions to
    /// half-open here — the next read that still picks it is the timed
    /// probe: one success closes the breaker, one timeout re-opens it.
    fn select_read_replicas(
        &mut self,
        now: SimTime,
        coordinator: NodeId,
        candidates: &mut Vec<NodeId>,
        count: usize,
    ) {
        let count = count.min(candidates.len());
        match self.shared.selection {
            ReplicaSelection::Random => {
                self.s.rng.shuffle(candidates);
            }
            ReplicaSelection::Closest => {
                // Shuffle first so equal-latency replicas are tie-broken
                // randomly, then order by expected latency from the coordinator.
                self.s.rng.shuffle(candidates);
                let row = &self.shared.mean_lat[coordinator.0 as usize * self.shared.node_count..]
                    [..self.shared.node_count];
                candidates.sort_by(|a, b| {
                    let la = row[a.0 as usize];
                    let lb = row[b.0 as usize];
                    la.partial_cmp(&lb).expect("latencies are finite")
                });
            }
            ReplicaSelection::Dynamic => {
                // Same shuffle-then-rank shape as `Closest` (equal scores
                // tie-break randomly, one RNG draw pattern per selection).
                self.s.rng.shuffle(candidates);
                let s = &mut *self.s;
                for &n in candidates.iter() {
                    let h = &mut s.health[n.0 as usize];
                    if let Breaker::Open { until } = h.breaker {
                        if until <= now {
                            h.breaker = Breaker::HalfOpen;
                        }
                    }
                }
                let row = &self.shared.mean_lat[coordinator.0 as usize * self.shared.node_count..]
                    [..self.shared.node_count];
                let health = &s.health[..];
                let score = |n: NodeId| -> f64 {
                    let h = &health[n.0 as usize];
                    // Distance prior (expected round trip, ms → µs) plus
                    // the observed excess; unmeasured nodes rank purely by
                    // distance, i.e. exactly like `Closest`.
                    let base = 2.0 * row[n.0 as usize] * 1_000.0 + h.ewma.value_or(0.0);
                    if matches!(h.breaker, Breaker::Open { .. }) {
                        base + 1e12
                    } else {
                        base
                    }
                };
                candidates.sort_by(|a, b| {
                    score(*a)
                        .partial_cmp(&score(*b))
                        .expect("health scores are finite")
                });
            }
        }
        candidates.truncate(count);
    }

    fn on_replica_arrive(&mut self, now: SimTime, node: NodeId, task: ReplicaTask) {
        let idx = node.0 as usize;
        if self.shared.down[idx] {
            self.drop_dead_task(task);
            return;
        }
        if self.s.nodes[idx].active < self.shared.config.node_concurrency {
            self.s.nodes[idx].active += 1;
            self.start_service(now, node, task);
        } else {
            self.s.nodes[idx].queue.push_back(task);
        }
    }

    /// A replica task was dropped because its node is down. The write it
    /// belonged to will never receive this replica's ack, so stop counting
    /// the replica as targeted — otherwise the op's slab slot could wait
    /// forever for an ack that cannot arrive. Client-visible behaviour is
    /// unchanged (the ack was never coming); this only lets the state be
    /// reclaimed once the remaining live replicas have answered.
    fn drop_dead_task(&mut self, task: ReplicaTask) {
        let ReplicaTask::Write { payload } = task else {
            return;
        };
        // The task is consumed here: its payload reference dies with it.
        let p = self.s.release_payload(payload);
        if p.repair {
            return;
        }
        self.abandon(p.op_id);
    }

    fn start_service(&mut self, now: SimTime, node: NodeId, task: ReplicaTask) {
        let mut service = match task {
            ReplicaTask::Write { .. } => self.shared.storage_write_sampler.sample(&mut self.s.rng),
            ReplicaTask::Read { .. } => self.shared.storage_read_sampler.sample(&mut self.s.rng),
        };
        // Gray failure: a slowed node serves every task `factor`× slower.
        // Applied post-sampling so the RNG stream is untouched — restoring
        // the node replays the exact healthy timeline (same contract as
        // `degrade_link`).
        if self.shared.slow_active {
            let factor = self.shared.node_slow[node.0 as usize];
            if factor != 1.0 {
                service =
                    SimDuration::from_micros((service.as_micros() as f64 * factor).round() as u64);
            }
        }
        self.s
            .lane
            .schedule_at(now + service, Event::ReplicaServiceDone { node, task });
    }

    fn on_replica_done(&mut self, now: SimTime, node: NodeId, task: ReplicaTask) {
        let idx = node.0 as usize;
        // Free the service slot and start the next queued task, if any.
        self.s.nodes[idx].active = self.s.nodes[idx].active.saturating_sub(1);
        if let Some(next) = self.s.nodes[idx].queue.pop_front() {
            self.s.nodes[idx].active += 1;
            self.start_service(now, node, next);
        }
        if self.shared.down[idx] {
            self.drop_dead_task(task);
            return;
        }

        match task {
            ReplicaTask::Write { payload } => {
                // Final consumption of this task's payload reference.
                let WritePayload {
                    op_id,
                    key,
                    version,
                    size,
                    repair,
                    coordinator: coordinator_packed,
                } = self.s.release_payload(payload);
                self.s.stores[idx].apply_write(key, version, size, now);
                self.s.metrics.storage_write_ops += 1;
                if repair {
                    return; // background repair: no coordinator ack
                }
                if self.ctrl.is_some() {
                    // Serial engine: the op state is at hand, so track
                    // propagation at apply time — byte-identical to the
                    // pre-sharding behaviour.
                    let info = match self.s.ops.get_mut(op_id) {
                        Some(OpState::Write(w)) => {
                            w.applied += 1;
                            Some((w.coordinator, w.applied, w.targeted, w.issued_at))
                        }
                        _ => None,
                    };
                    let Some((coordinator, applied, targeted, issued_at)) = info else {
                        return;
                    };
                    // The ring always yields exactly RF distinct replicas,
                    // so the full-propagation check needs no ring walk.
                    let rf = self.shared.ring.replication_factor();
                    if applied == targeted && targeted == rf {
                        let d = now - issued_at;
                        self.s.metrics.propagation.record(d);
                        self.s.propagation.push(d);
                    }
                    // Send the ack back to the coordinator.
                    let delay = slow_response(
                        self.shared,
                        node,
                        self.account_message(
                            node,
                            coordinator,
                            self.shared.config.small_message_bytes,
                        ),
                    );
                    if !self.shared.link_up(node, coordinator) {
                        // The ack is lost in the partition: the coordinator
                        // will never hear from this replica, so stop
                        // expecting it — otherwise the op's state could
                        // never be reclaimed.
                        self.s.metrics.messages_lost += 1;
                        abandon_in(self.s, op_id);
                        return;
                    }
                    self.s.lane.schedule_at(
                        now + delay,
                        Event::CoordinatorWriteAck {
                            op_id,
                            from: node,
                            applied_at: now,
                        },
                    );
                } else if self.op_home(op_id) == self.s.shard {
                    // Parallel engine, home-local apply: the op state is
                    // readable, but propagation is tracked ack-side (from
                    // `applied_at` maxima) so local and remote replicas
                    // contribute identically.
                    let coordinator = match self.s.ops.get(op_id) {
                        Some(OpState::Write(w)) => w.coordinator,
                        _ => return,
                    };
                    let delay = slow_response(
                        self.shared,
                        node,
                        self.account_message(
                            node,
                            coordinator,
                            self.shared.config.small_message_bytes,
                        ),
                    );
                    if !self.shared.link_up(node, coordinator) {
                        self.s.metrics.messages_lost += 1;
                        abandon_in(self.s, op_id);
                        return;
                    }
                    self.s.lane.schedule_at(
                        now + delay,
                        Event::CoordinatorWriteAck {
                            op_id,
                            from: node,
                            applied_at: now,
                        },
                    );
                } else {
                    let coordinator = NodeId(coordinator_packed as u32);
                    // Foreign op: the home shard's op state is unreadable
                    // from here, but the payload carries the coordinator,
                    // so the ack's delay is sampled and its traffic metered
                    // on *this* shard's stream at apply time — sender-side
                    // draws leave the barrier fold with no RNG demand,
                    // which is what lets quiet windows elide it. The op may
                    // already be dead (a timeout retry freed the slot); the
                    // generation-checked id makes the ack a no-op at the
                    // coordinator, so drawing unconditionally is both safe
                    // and deterministic.
                    let delay = slow_response(
                        self.shared,
                        node,
                        self.account_message(
                            node,
                            coordinator,
                            self.shared.config.small_message_bytes,
                        ),
                    );
                    if !self.shared.link_up(node, coordinator) {
                        // The ack is lost in the partition: tell the home
                        // shard to stop expecting it.
                        self.s.metrics.messages_lost += 1;
                        self.abandon(op_id);
                        return;
                    }
                    let home = self.op_home(op_id) as usize;
                    self.send_event(
                        home,
                        now + delay,
                        Event::CoordinatorWriteAck {
                            op_id,
                            from: node,
                            applied_at: now,
                        },
                    );
                }
            }
            ReplicaTask::Read {
                op_id,
                key,
                data,
                len,
                segment,
                coordinator: coordinator_packed,
            } => {
                let len = len as u32;
                // Point reads probe one slot; range scans stream `len`
                // adjacent slots of the dense store (each probed slot is one
                // metered storage read) and respond with the range's byte
                // weight. Reconciliation keys off the anchor record.
                let (version, size, records) = if len <= 1 {
                    let value = self.s.stores[idx].read(key);
                    self.s.metrics.storage_read_ops += 1;
                    value
                        .map(|v| (v.version, v.size, 1))
                        .unwrap_or((Version::NONE, 0, 0))
                } else {
                    let range = self.s.stores[idx].read_range(key, len);
                    self.s.metrics.storage_read_ops += len as u64;
                    // The byte meter is u32; a range would need a >4 GiB
                    // response to saturate it, which the dense-key contract
                    // (record sizes are u32, scan lengths bounded) rules
                    // out — assert instead of silently clamping traffic.
                    debug_assert!(
                        range.bytes <= u32::MAX as u64,
                        "range response of {} bytes overflows the u32 byte meter",
                        range.bytes
                    );
                    (
                        range.anchor.map(|v| v.version).unwrap_or(Version::NONE),
                        u32::try_from(range.bytes).unwrap_or(u32::MAX),
                        range.records,
                    )
                };
                if self.ctrl.is_some() || self.op_home(op_id) == self.s.shard {
                    let coordinator = match self.s.ops.get(op_id) {
                        Some(OpState::Read(r)) => r.coordinator,
                        _ => return,
                    };
                    let payload = if data {
                        size
                    } else {
                        self.shared.config.small_message_bytes
                    };
                    let delay = slow_response(
                        self.shared,
                        node,
                        self.account_message(node, coordinator, payload),
                    );
                    if !self.shared.link_up(node, coordinator) {
                        // Response lost in the partition; the read completes
                        // via other replicas or times out.
                        self.s.metrics.messages_lost += 1;
                        return;
                    }
                    self.s.lane.schedule_at(
                        now + delay,
                        Event::CoordinatorReadResponse {
                            op_id,
                            from: node,
                            version,
                            size,
                            // Digests answer with a checksum, not records:
                            // only the data response contributes coverage.
                            records: if data { records } else { 0 },
                            segment,
                        },
                    );
                } else {
                    let coordinator = NodeId(coordinator_packed as u32);
                    // Foreign op: sender-side draw, same rationale as the
                    // write-ack branch above — the task carries the
                    // coordinator, so delay sampling, metering and the
                    // data/digest payload gating all happen on this shard's
                    // stream, and a dead op's response dies at the
                    // coordinator's generation check.
                    let payload = if data {
                        size
                    } else {
                        self.shared.config.small_message_bytes
                    };
                    let delay = slow_response(
                        self.shared,
                        node,
                        self.account_message(node, coordinator, payload),
                    );
                    if !self.shared.link_up(node, coordinator) {
                        // Response lost in the partition; the read completes
                        // via other replicas or times out.
                        self.s.metrics.messages_lost += 1;
                        return;
                    }
                    let home = self.op_home(op_id) as usize;
                    self.send_event(
                        home,
                        now + delay,
                        Event::CoordinatorReadResponse {
                            op_id,
                            from: node,
                            version,
                            size,
                            // Digests answer with a checksum, not records:
                            // only the data response contributes coverage.
                            records: if data { records } else { 0 },
                            segment,
                        },
                    );
                }
            }
        }
    }

    fn on_write_ack(&mut self, now: SimTime, op_id: OpId, _from: NodeId, applied_at: SimTime) {
        let serial = self.ctrl.is_some();
        let rf = self.shared.ring.replication_factor();
        let s = &mut *self.s;
        let Some(OpState::Write(w)) = s.ops.get_mut(op_id) else {
            return;
        };
        w.acks += 1;
        if !serial {
            // Parallel engine: the propagation sample is derived from the
            // acks themselves — the latest reported apply time once every
            // targeted replica (the full RF) has answered. Serial mode
            // samples at apply time instead (see on_replica_done) and never
            // touches `max_applied_at`.
            if applied_at > w.max_applied_at {
                w.max_applied_at = applied_at;
            }
            if w.acks == w.targeted && w.targeted == rf {
                let d = w.max_applied_at - w.issued_at;
                s.metrics.propagation.record(d);
                s.propagation.push(d);
            }
        }
        if !w.completed && w.acks >= w.required_acks {
            w.completed = true;
            let completed = CompletedOp {
                id: w.client_id,
                kind: OpKind::Write,
                key: w.key,
                issued_at: w.issued_at,
                completed_at: now,
                status: OpStatus::Ok,
                replicas_involved: w.level_used,
                returned_version: w.version,
                stale: false,
                staleness_depth: 0,
                records_returned: 0,
            };
            // The ack becomes ground truth for later reads: inline on the
            // serial engine (same call order as the pre-sharding code),
            // staged to the fold from a parallel window (the central
            // oracle is frozen while windows run) with its true ack time,
            // which retroactive classification queries filter by.
            match self.ctrl.as_deref_mut() {
                Some(ctrl) => ctrl.oracle.record_ack(w.key, w.version, now),
                None => {
                    s.window_staged += 1;
                    s.outbox_acks.push((w.key, w.version, now));
                }
            }
            s.metrics
                .record_completion(OpKind::Write, completed.latency(), false);
            s.outputs.push(ClusterOutput::Completed(completed));
        }
        // Keep the state until every targeted replica acked (for the
        // propagation sample), then drop it.
        if w.completed && w.acks >= w.targeted {
            s.ops.remove(op_id);
        }
    }

    // The argument list mirrors the flat fields of
    // `Event::CoordinatorReadResponse`: bundling them into a struct would
    // re-introduce padding the 32-byte event layout deliberately avoids
    // (the enum tag lives in the flat variant's tail padding).
    #[allow(clippy::too_many_arguments)]
    fn on_read_response(
        &mut self,
        now: SimTime,
        op_id: OpId,
        from: NodeId,
        version: Version,
        size: u32,
        records: u32,
        segment: u16,
    ) {
        // Health feed (Dynamic selection only, so Closest/Random runs touch
        // no health state and stay byte-identical): every response that
        // passes the generation check updates the responder's latency EWMA
        // and closes its breaker — a response is proof the node serves again.
        if self.shared.selection == ReplicaSelection::Dynamic {
            if let Some(OpState::Read(r)) = self.s.ops.get(op_id) {
                // A hedge response is timed from the hedge fire
                // (`attempt_at + hedge_delay`), not the attempt start, so
                // the hedge target is not charged for the wait on the
                // primary replica.
                let base = if r.hedge == Some(from) {
                    r.attempt_at + self.shared.config.resilience.hedge_delay
                } else {
                    r.attempt_at
                };
                // Distance-normalize before averaging: subtract the
                // expected round trip (ms → µs) so the EWMA measures excess
                // (queueing, gray slowness) and observations from near and
                // far coordinators feed one comparable per-node signal.
                let expected = 2.0
                    * self.shared.mean_lat
                        [r.coordinator.0 as usize * self.shared.node_count + from.0 as usize]
                    * 1_000.0;
                let excess = ((now - base).as_micros() as f64 - expected).max(0.0);
                let h = &mut self.s.health[from.0 as usize];
                h.ewma.observe(excess);
                h.failures = 0;
                h.breaker = Breaker::Closed;
            }
        }
        let Some(OpState::Read(r)) = self.s.ops.get_mut(op_id) else {
            return;
        };
        // Validate the segment id before touching any state: a response
        // this read never issued must not inflate its coverage count.
        let Some(count) = r.seg_responses.get_mut(segment as usize) else {
            return;
        };
        *count += 1;
        r.records += records;
        // Reconciliation and staleness key off the range's *anchor*, which
        // only segment-0 replicas read; later segments of an ordered scan
        // answer for their own sub-range and contribute coverage only.
        if segment == 0 {
            if version > r.best_version {
                r.best_version = version;
                r.best_size = size;
            }
            r.min_version = r.min_version.min(version);
        }
        if *count == r.required {
            r.seg_pending -= 1;
        }
        if r.seg_pending == 0 {
            // Move the state out of the slab (frees the slot, invalidates any
            // straggler events carrying this id) — no clone of the contacted
            // list needed for the repair pass below.
            let Some(OpState::Read(r)) = self.s.ops.remove(op_id) else {
                unreachable!("state was just borrowed");
            };
            let key = r.key;
            let expected = r.expected_version;
            let best = r.best_version;
            let issued_at = r.issued_at;
            let attempt_at = r.attempt_at;
            let required = r.required;
            let contacted = r.contacted;
            let coordinator = r.coordinator;
            let best_size = r.best_size;
            let records_returned = r.records;
            // The hedge "won" when the speculative duplicate's response is
            // the one that completes the read — the tail-latency save.
            if r.hedge == Some(from) {
                self.s.metrics.hedge_wins += 1;
            }
            // Scans skip read repair: their response size is the range's
            // byte weight, not one record's payload, so there is no single
            // mutation to push back (matching Cassandra, where range scans
            // do not trigger blocking read repair).
            let needs_repair =
                self.shared.config.read_repair && r.min_version < best && r.scan_len == 1;

            let mut completed = CompletedOp {
                id: r.client_id,
                kind: OpKind::Read,
                key,
                issued_at,
                completed_at: now,
                status: OpStatus::Ok,
                replicas_involved: required,
                returned_version: best,
                stale: false,
                staleness_depth: 0,
                records_returned,
            };
            // Serial: classify against (and count in) the central oracle
            // inline, byte-identical to the pre-sharding call. Parallel:
            // the classification needs the serialized ack history, so the
            // completion (classification, metric, client output) finishes
            // at this window's fold — read repair below is
            // oracle-independent and stays in-window.
            match self.ctrl.as_deref_mut() {
                Some(ctrl) => {
                    let class = ctrl.oracle.classify_read(key, expected, best);
                    completed.stale = class.stale;
                    completed.staleness_depth = class.depth;
                    self.s.metrics.record_completion(
                        OpKind::Read,
                        completed.latency(),
                        class.stale,
                    );
                    self.s.outputs.push(ClusterOutput::Completed(completed));
                }
                None => {
                    self.s.window_staged += 1;
                    self.s.outbox_dones.push((completed, attempt_at));
                }
            }

            if needs_repair {
                // Push the freshest version back to the contacted replicas
                // (one interned payload for the whole local repair fan-out;
                // foreign replicas get it by value at the fold).
                let pl = WritePayload {
                    op_id,
                    key,
                    version: best,
                    size: best_size,
                    repair: true,
                    // Repair writes ack nobody; carried for layout only.
                    coordinator: pack_node(coordinator),
                };
                let payload = self.s.intern_payload(pl);
                for &replica in contacted.iter() {
                    let delay = self.account_message(coordinator, replica, best_size);
                    if self.shared.down[replica.0 as usize] {
                        continue;
                    }
                    if !self.shared.link_up(coordinator, replica) {
                        self.s.metrics.messages_lost += 1;
                        continue;
                    }
                    let dest = self.shared.shard_of(replica);
                    if dest as u32 == self.s.shard {
                        self.s.retain_payload(payload);
                        self.s.lane.schedule_at(
                            now + delay,
                            Event::ReplicaArrive {
                                node: replica,
                                task: ReplicaTask::Write { payload },
                            },
                        );
                    } else {
                        let at = self.stage_time(now + delay);
                        self.s.outbox_dest[dest].push(OutMsg::WriteTask {
                            at,
                            node: replica,
                            payload: pl,
                        });
                    }
                }
                self.s.discard_unreferenced_payload(payload);
            }
        }
    }

    fn on_timeout(&mut self, now: SimTime, op_id: OpId) {
        // Breaker strikes (Dynamic selection only): a read attempt timing
        // out is a failure strike against every replica it contacted —
        // `threshold` consecutive strikes open a node's breaker for
        // `cooldown`, steering subsequent reads away until the half-open
        // probe succeeds. A node that does answer has its strike count
        // reset on every response, so only persistently silent replicas
        // accumulate to the threshold. Writes are excluded: a write timeout
        // implicates the consistency level, not a single replica.
        if self.shared.selection == ReplicaSelection::Dynamic {
            let res = &self.shared.config.resilience;
            let threshold = res.breaker_threshold();
            let cooldown = res.cooldown();
            let s = &mut *self.s;
            if let Some(OpState::Read(r)) = s.ops.get(op_id) {
                for &n in r.contacted.iter() {
                    let h = &mut s.health[n.0 as usize];
                    h.failures += 1;
                    if h.failures >= threshold
                        && matches!(h.breaker, Breaker::Closed | Breaker::HalfOpen)
                    {
                        h.breaker = Breaker::Open {
                            until: now + cooldown,
                        };
                        s.metrics.breaker_opens += 1;
                    }
                }
            }
        }
        // Timeout-driven retries: an attempt with remaining budget is
        // re-issued (fresh coordinator, fresh replica fan-out) instead of
        // completing. `issued_at` is preserved, so the client-visible
        // latency spans every attempt, and each re-issue is accounted in
        // `metrics.retries`.
        let retry = match self.s.ops.get(op_id) {
            Some(OpState::Write(w)) if !w.completed && w.retries_left > 0 => Some((
                Submission {
                    kind: OpKind::Write,
                    key: w.key,
                    size: w.size,
                    scan_len: 1,
                    level: w.level,
                },
                w.issued_at,
                w.retries_left - 1,
                w.client_id,
            )),
            Some(OpState::Read(r)) if r.retries_left > 0 => Some((
                Submission {
                    kind: OpKind::Read,
                    key: r.key,
                    size: 0,
                    scan_len: r.scan_len,
                    level: r.level,
                },
                r.issued_at,
                r.retries_left - 1,
                r.client_id,
            )),
            _ => None,
        };
        if let Some((sub, issued_at, retries_left, client_id)) = retry {
            // Orphan the timed-out attempt: its slab slot is freed, so
            // straggler acks and responses miss on the generation check. The
            // retry runs under a fresh internal id but keeps reporting under
            // the id `submit_*` handed out.
            self.s.ops.remove(op_id);
            self.s.metrics.retries += 1;
            let retry = RetryCtx {
                issued_at,
                retries_left,
                client_id,
            };
            let backoff = self.shared.config.resilience.backoff;
            if self.ctrl.is_some() {
                if backoff {
                    // Backoff on: park the attempt as a Pending op and
                    // re-arrive it after an exponentially growing, jittered
                    // delay (drawn from this shard's stream — one draw per
                    // backed-off retry, zero when the feature is off). The
                    // delays are heterogeneous by construction, so they
                    // route through the timer wheel, not the sorted FIFO.
                    self.s.metrics.backoff_retries += 1;
                    let delay = backoff_delay(
                        &self.shared.config.resilience,
                        self.shared.config.retry_on_timeout,
                        retries_left,
                        &mut self.s.rng,
                    );
                    let new_id = self.s.ops.insert(OpState::Pending(PendingOp {
                        sub,
                        coordinator: None,
                        retry: Some(retry),
                    }));
                    self.s
                        .lane
                        .schedule_timeout(now + delay, Event::ClientArrive { op_id: new_id });
                } else {
                    // Serial engine: re-issue inline with a fresh coordinator
                    // drawn at this instant — the pre-sharding behaviour.
                    let new_id = self.s.ops.insert(OpState::Pending(PendingOp {
                        sub,
                        coordinator: None,
                        retry: None,
                    }));
                    match sub.kind {
                        OpKind::Write => self.start_write(now, new_id, sub, None, retry),
                        OpKind::Read => self.start_read(now, new_id, sub, None, retry),
                    }
                }
            } else {
                // Parallel engine: the fresh coordinator may live on any
                // shard, so the attempt re-routes through the fold — drawn
                // from the control stream and re-homed on the coordinator's
                // shard, like a brand-new submission. With backoff on, the
                // fold delays the re-arrival past the window boundary by the
                // jittered amount (control-stream draw).
                if backoff {
                    self.s.metrics.backoff_retries += 1;
                }
                self.s.window_staged += 1;
                self.s.outbox_ctrl.push(CtrlStaged::Resubmit {
                    sub,
                    retry,
                    at: now,
                    backoff,
                });
            }
            return;
        }
        match self.s.ops.get_mut(op_id) {
            Some(OpState::Write(w)) => {
                if !w.completed {
                    w.completed = true;
                    self.s.metrics.timeouts += 1;
                    let completed = CompletedOp {
                        id: w.client_id,
                        kind: OpKind::Write,
                        key: w.key,
                        issued_at: w.issued_at,
                        completed_at: now,
                        status: OpStatus::Timeout,
                        replicas_involved: w.level_used,
                        returned_version: Version::NONE,
                        stale: false,
                        staleness_depth: 0,
                        records_returned: 0,
                    };
                    self.s
                        .metrics
                        .record_completion(OpKind::Write, completed.latency(), false);
                    self.s.outputs.push(ClusterOutput::Completed(completed));
                }
                // A write whose acks are all in (the common timeout case:
                // targeted < required because a replica was down at submit)
                // has no future event referencing this id — free the slot.
                // Otherwise the state survives the timeout: late acks still
                // feed the propagation sample and trigger removal in
                // on_write_ack. (A targeted replica that went down
                // mid-flight never acks, so that rare slot is only
                // reclaimed here if its acks completed first.)
                if w.acks >= w.targeted {
                    self.s.ops.remove(op_id);
                }
            }
            Some(OpState::Read(r)) => {
                self.s.metrics.timeouts += 1;
                let completed = CompletedOp {
                    id: r.client_id,
                    kind: OpKind::Read,
                    key: r.key,
                    issued_at: r.issued_at,
                    completed_at: now,
                    status: OpStatus::Timeout,
                    replicas_involved: r.required,
                    returned_version: Version::NONE,
                    stale: false,
                    staleness_depth: 0,
                    records_returned: r.records,
                };
                self.s
                    .metrics
                    .record_completion(OpKind::Read, completed.latency(), false);
                self.s.outputs.push(ClusterOutput::Completed(completed));
                self.s.ops.remove(op_id);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, RepairMode};

    fn cluster(nodes: usize, rf: u32) -> Cluster {
        Cluster::new(ClusterConfig::lan_test(nodes, rf), 42)
    }

    fn drain(c: &mut Cluster) -> Vec<CompletedOp> {
        c.run_to_completion(10_000_000)
    }

    /// Satellite (PR 10): the lookahead fallback for shard cuts that no
    /// message ever crosses derives from the configured operation timeout,
    /// not the pre-PR-10 hard-coded 1 s constant.
    #[test]
    fn lookahead_fallback_derives_from_op_timeout() {
        // Single shard: no cross-shard link class exists anywhere, so the
        // bound is pure fallback.
        let mut cfg = ClusterConfig::lan_test(5, 3);
        cfg.shards = 1;
        cfg.op_timeout = SimDuration::from_millis(250);
        let c = Cluster::new(cfg, 42);
        assert_eq!(
            c.lookahead(),
            SimDuration::from_millis(250),
            "single-shard bound must fall back to the configured op timeout"
        );

        // Single DC, two shards: the cut crosses intra-DC links, so the
        // bound is the intra-DC delay floor (300 µs for the LAN model) and
        // the fallback must NOT leak in even though some classes are absent.
        let mut cfg = ClusterConfig::lan_test(6, 3);
        cfg.shards = 2;
        cfg.op_timeout = SimDuration::from_millis(250);
        let c = Cluster::new(cfg, 42);
        assert_eq!(
            c.lookahead(),
            SimDuration::from_micros(300),
            "single-DC cut must use the intra-DC delay floor, not the fallback"
        );
    }

    #[test]
    fn single_write_then_read_returns_fresh_value() {
        let mut c = cluster(5, 3);
        c.submit_write_with(7, 100, ConsistencyLevel::All, SimTime::ZERO);
        let done = drain(&mut c);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].kind, OpKind::Write);
        assert_eq!(done[0].status, OpStatus::Ok);

        c.submit_read_with(7, ConsistencyLevel::One, c.now());
        let done = drain(&mut c);
        assert_eq!(done.len(), 1);
        let read = done[0];
        assert_eq!(read.kind, OpKind::Read);
        assert!(!read.stale, "after full propagation the read must be fresh");
        assert!(read.returned_version.exists());
    }

    #[test]
    fn load_records_populates_all_replicas() {
        let mut c = cluster(4, 3);
        c.load_records((0..100u64).map(|k| (k, 1000)));
        assert_eq!(c.total_bytes_stored(), 100 * 1000 * 3);
        // A read for any record returns data even at level ONE.
        c.submit_read_with(55, ConsistencyLevel::One, SimTime::ZERO);
        let done = drain(&mut c);
        assert!(done[0].returned_version.exists());
        assert!(!done[0].stale);
    }

    #[test]
    fn quorum_reads_after_quorum_writes_are_never_stale() {
        let mut c = cluster(5, 5);
        c.load_records((0..50u64).map(|k| (k, 100)));
        c.set_levels(ConsistencyLevel::Quorum, ConsistencyLevel::Quorum);
        // Interleave writes and reads on the same hot keys (each read follows
        // a write to the same key 200 µs earlier).
        let mut at = SimTime::ZERO;
        for i in 0..500u64 {
            at += SimDuration::from_micros(200);
            if i % 2 == 0 {
                c.submit_write_at((i / 2) % 10, 100, at);
            } else {
                c.submit_read_at((i / 2) % 10, at);
            }
        }
        let done = drain(&mut c);
        let stale = done.iter().filter(|o| o.stale).count();
        assert_eq!(stale, 0, "R+W>N must never return stale reads");
        assert_eq!(c.metrics().timeouts, 0);
    }

    /// A two-site deployment (like the paper's Grid'5000 setup): intra-site
    /// propagation is sub-millisecond while cross-site propagation takes
    /// ~12 ms, which is where the staleness window of Figure 1 comes from.
    fn geo_config(nodes: usize, rf: u32) -> ClusterConfig {
        let mut cfg = ClusterConfig::lan_test(nodes, rf);
        cfg.topology = concord_sim::Topology::spread(
            nodes,
            &[
                ("site-rennes", concord_sim::RegionId(0)),
                ("site-sophia", concord_sim::RegionId(0)),
            ],
        );
        cfg.network = concord_sim::NetworkModel::grid5000_like();
        cfg.strategy = crate::ring::ReplicationStrategy::NetworkTopology;
        cfg
    }

    fn geo_churn(c: &mut Cluster, ops: u64, keys: u64, gap: SimDuration) {
        // Alternate write → read on the same key so every read lands shortly
        // after a write to that key (inside the propagation window).
        let mut at = SimTime::ZERO;
        for i in 0..ops {
            at += gap;
            if i % 2 == 0 {
                c.submit_write_at((i / 2) % keys, 100, at);
            } else {
                c.submit_read_at((i / 2) % keys, at);
            }
        }
    }

    #[test]
    fn weak_reads_under_write_pressure_observe_staleness() {
        let mut c = Cluster::new(geo_config(6, 5), 7);
        c.load_records((0..20u64).map(|k| (k, 100)));
        c.set_levels(ConsistencyLevel::One, ConsistencyLevel::One);
        geo_churn(&mut c, 2000, 20, SimDuration::from_micros(500));
        let done = drain(&mut c);
        let reads: Vec<_> = done.iter().filter(|o| o.kind == OpKind::Read).collect();
        let stale = reads.iter().filter(|o| o.stale).count();
        assert!(
            stale > 0,
            "eventual consistency under heavy writes must show stale reads"
        );
        assert_eq!(c.oracle().stale_reads(), stale as u64);
        assert!(c.metrics().stale_read_rate() > 0.0);
    }

    #[test]
    fn stronger_read_levels_reduce_staleness() {
        let run = |level: ConsistencyLevel| {
            let mut c = Cluster::new(geo_config(6, 5), 11);
            c.load_records((0..20u64).map(|k| (k, 100)));
            c.set_levels(level, ConsistencyLevel::One);
            geo_churn(&mut c, 3000, 20, SimDuration::from_micros(400));
            drain(&mut c);
            c.metrics().stale_read_rate()
        };
        let one = run(ConsistencyLevel::One);
        let all = run(ConsistencyLevel::All);
        assert!(one > all, "ONE ({one}) must be staler than ALL ({all})");
        assert_eq!(all, 0.0, "reading every replica can never be stale");
    }

    #[test]
    fn write_latency_grows_with_level() {
        let run = |level: ConsistencyLevel| {
            let mut cfg = ClusterConfig::lan_test(6, 5);
            cfg.network = concord_sim::NetworkModel::ec2_like();
            let mut c = Cluster::new(cfg, 13);
            c.load_records((0..10u64).map(|k| (k, 100)));
            c.set_levels(ConsistencyLevel::One, level);
            let mut at = SimTime::ZERO;
            for i in 0..500u64 {
                at += SimDuration::from_millis(1);
                c.submit_write_at(i % 10, 100, at);
            }
            drain(&mut c);
            c.metrics().write_latency.mean_ms()
        };
        let one = run(ConsistencyLevel::One);
        let all = run(ConsistencyLevel::All);
        assert!(
            all > one,
            "waiting for every replica ({all} ms) must cost more than ONE ({one} ms)"
        );
    }

    #[test]
    fn read_fanout_tracks_level() {
        let mut c = cluster(6, 5);
        c.load_records((0..10u64).map(|k| (k, 100)));
        c.set_levels(ConsistencyLevel::Quorum, ConsistencyLevel::One);
        for i in 0..100u64 {
            c.submit_read_at(i % 10, SimTime::from_millis(i));
        }
        drain(&mut c);
        assert!((c.metrics().mean_read_fanout() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn scans_read_the_whole_range_and_weigh_response_traffic() {
        let mut c = cluster(5, 3);
        c.load_records((0..100u64).map(|k| (k, 1_000)));
        let (reads_before, _) = c.storage_op_totals();
        let traffic_before = c.metrics().traffic.total();
        c.submit_scan_with(10, 20, ConsistencyLevel::One, SimTime::ZERO);
        let done = drain(&mut c);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].kind, OpKind::Read);
        assert_eq!(done[0].status, OpStatus::Ok);
        assert!(!done[0].stale, "a quiescent scan reads fresh data");
        let (reads_after, _) = c.storage_op_totals();
        assert_eq!(
            reads_after - reads_before,
            20,
            "a 20-record scan is metered as 20 storage reads"
        );
        // The data response carries the payload of every locally-present
        // record in the range. Hash partitioning scatters consecutive ids
        // over the ring, so one replica owns ~RF/N of them — still an order
        // of magnitude more response traffic than a point read's 1000 B.
        assert!(
            c.metrics().traffic.total() - traffic_before >= 10_000,
            "scan responses must be byte-weighted ({} bytes added)",
            c.metrics().traffic.total() - traffic_before
        );
    }

    #[test]
    fn scan_ranges_clamp_at_the_loaded_key_space() {
        let mut c = cluster(5, 3);
        c.load_records((0..50u64).map(|k| (k, 500)));
        let (reads_before, _) = c.storage_op_totals();
        // Anchor near the end: 10 of the 30 probed records exist.
        c.submit_scan_with(40, 30, ConsistencyLevel::One, SimTime::ZERO);
        drain(&mut c);
        let (reads_after, _) = c.storage_op_totals();
        assert_eq!(reads_after - reads_before, 30, "absent slots still probe");
    }

    #[test]
    fn scans_observe_staleness_through_their_anchor() {
        // A scan anchored on a key whose freshest write has not propagated
        // to the contacted replica is classified stale, like a point read.
        let mut c = Cluster::new(geo_config(6, 5), 7);
        c.load_records((0..20u64).map(|k| (k, 100)));
        c.set_levels(ConsistencyLevel::One, ConsistencyLevel::One);
        let mut at = SimTime::ZERO;
        for i in 0..2_000u64 {
            at += SimDuration::from_micros(500);
            if i % 2 == 0 {
                c.submit_write_at((i / 2) % 20, 100, at);
            } else {
                c.submit_scan_at((i / 2) % 20, 5, at);
            }
        }
        let done = drain(&mut c);
        let stale = done.iter().filter(|o| o.stale).count();
        assert!(stale > 0, "weak scans under churn must observe staleness");
        assert_eq!(c.oracle().stale_reads(), stale as u64);
    }

    #[test]
    fn scans_retry_with_their_full_range() {
        // A timed-out scan re-issues as a scan, not as a point read.
        let mut cfg = ClusterConfig::lan_test(4, 3);
        cfg.op_timeout = SimDuration::from_millis(50);
        cfg.retry_on_timeout = 2;
        let mut c = Cluster::new(cfg, 9);
        c.load_records((0..50u64).map(|k| (k, 100)));
        for n in 0..4 {
            c.set_node_down(NodeId(n));
        }
        let (reads_before, _) = c.storage_op_totals();
        c.submit_scan_with(0, 10, ConsistencyLevel::One, SimTime::ZERO);
        c.schedule_tick(SimTime::from_millis(60), 1);
        let mut done = Vec::new();
        while let Some(out) = c.advance() {
            match out {
                ClusterOutput::Tick { id: 1, .. } => {
                    for n in 0..4 {
                        c.set_node_up(NodeId(n));
                    }
                }
                ClusterOutput::Completed(op) => done.push(op),
                ClusterOutput::Tick { .. } => {}
            }
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].status, OpStatus::Ok, "the retry must succeed");
        assert!(c.metrics().retries >= 1);
        let (reads_after, _) = c.storage_op_totals();
        assert_eq!(
            reads_after - reads_before,
            10,
            "the retried attempt reads the full 10-record range"
        );
    }

    #[test]
    fn traffic_is_accounted_per_link_class() {
        let mut cfg = ClusterConfig::lan_test(6, 3);
        cfg.topology = concord_sim::Topology::spread(
            6,
            &[
                ("dc-a", concord_sim::RegionId(0)),
                ("dc-b", concord_sim::RegionId(0)),
            ],
        );
        cfg.strategy = crate::ring::ReplicationStrategy::NetworkTopology;
        let mut c = Cluster::new(cfg, 3);
        c.load_records((0..10u64).map(|k| (k, 1000)));
        for i in 0..50u64 {
            c.submit_write_with(i % 10, 1000, ConsistencyLevel::All, SimTime::from_millis(i));
        }
        drain(&mut c);
        let t = c.metrics().traffic;
        assert!(t.total() > 0);
        assert!(
            t.inter_dc > 0,
            "replicating across two DCs must produce inter-DC traffic"
        );
    }

    #[test]
    fn down_replicas_cause_timeouts_for_all_level() {
        let mut cfg = ClusterConfig::lan_test(4, 3);
        cfg.op_timeout = SimDuration::from_millis(100);
        let mut c = Cluster::new(cfg, 5);
        c.load_records((0..10u64).map(|k| (k, 100)));
        // Take down one node; some keys will be unable to reach ALL.
        c.set_node_down(NodeId(1));
        for i in 0..50u64 {
            c.submit_write_with(i, 100, ConsistencyLevel::All, SimTime::from_millis(i));
        }
        let done = drain(&mut c);
        let timeouts = done
            .iter()
            .filter(|o| o.status == OpStatus::Timeout)
            .count();
        assert!(
            timeouts > 0,
            "ALL writes must time out when a replica is down"
        );
        assert_eq!(c.metrics().timeouts as usize, timeouts);
        // Timed-out writes whose reachable replicas all acknowledged must
        // release their op-slab slots (long runs stay compact).
        assert_eq!(c.inflight_ops(), 0, "timed-out writes must not leak slots");
        // Level ONE still succeeds.
        c.set_node_up(NodeId(1));
        assert!(!c.is_node_down(NodeId(1)));
    }

    #[test]
    fn mid_flight_node_failure_does_not_leak_op_state() {
        // A replica that goes down *after* a write targeted it never acks;
        // the write's slab slot must still be reclaimed.
        let mut cfg = ClusterConfig::lan_test(5, 3);
        cfg.op_timeout = SimDuration::from_millis(100);
        let mut c = Cluster::new(cfg, 31);
        c.load_records((0..10u64).map(|k| (k, 100)));
        let victim = c.replicas_of(3)[1];
        // Submit, then take the victim down before the replica messages
        // arrive (LAN delivery is ~0.3 ms; the tick fires first).
        c.submit_write_with(3, 100, ConsistencyLevel::All, SimTime::ZERO);
        c.schedule_tick(SimTime::from_micros(50), 9);
        loop {
            match c.advance() {
                Some(ClusterOutput::Tick { id: 9, .. }) => {
                    c.set_node_down(victim);
                }
                Some(_) => {}
                None => break,
            }
        }
        assert_eq!(c.metrics().timeouts, 1, "the ALL write must time out");
        assert_eq!(
            c.inflight_ops(),
            0,
            "mid-flight failure must not leak the write's slab slot"
        );
    }

    #[test]
    fn ticks_interleave_with_completions() {
        let mut c = cluster(4, 3);
        c.load_records((0..5u64).map(|k| (k, 100)));
        c.schedule_tick(SimTime::from_millis(50), 1);
        c.submit_read_with(1, ConsistencyLevel::One, SimTime::from_millis(10));
        c.submit_read_with(2, ConsistencyLevel::One, SimTime::from_millis(100));
        let mut ticks = 0;
        let mut completions = 0;
        while let Some(out) = c.advance() {
            match out {
                ClusterOutput::Tick { id, at } => {
                    ticks += 1;
                    assert_eq!(id, 1);
                    assert_eq!(at, SimTime::from_millis(50));
                }
                ClusterOutput::Completed(_) => completions += 1,
            }
        }
        assert_eq!(ticks, 1);
        assert_eq!(completions, 2);
    }

    #[test]
    fn propagation_samples_are_produced() {
        let mut c = cluster(5, 3);
        c.load_records((0..5u64).map(|k| (k, 100)));
        for i in 0..20u64 {
            c.submit_write_with(i % 5, 100, ConsistencyLevel::One, SimTime::from_millis(i));
        }
        drain(&mut c);
        let samples = c.drain_propagation_samples();
        assert_eq!(samples.len(), 20);
        assert!(samples.iter().all(|d| !d.is_zero()));
        assert!(c.drain_propagation_samples().is_empty(), "drained");
    }

    #[test]
    fn changing_levels_affects_subsequent_ops_only() {
        // The level in effect when an operation *arrives* at the coordinator
        // is what counts — exactly how Harmony retunes a live cluster.
        let mut c = cluster(5, 5);
        c.load_records((0..5u64).map(|k| (k, 100)));
        c.set_levels(ConsistencyLevel::One, ConsistencyLevel::One);
        c.submit_read_at(1, SimTime::from_millis(1));
        let first = drain(&mut c);
        c.set_levels(ConsistencyLevel::All, ConsistencyLevel::One);
        c.submit_read_at(1, c.now());
        let second = drain(&mut c);
        assert_eq!(first[0].replicas_involved, 1);
        assert_eq!(second[0].replicas_involved, 5);
    }

    #[test]
    fn read_repair_pushes_fresh_data_to_stale_replicas() {
        let mut cfg = ClusterConfig::lan_test(5, 3);
        cfg.read_repair = true;
        let mut c = Cluster::new(cfg, 17);
        c.load_records(std::iter::once((1u64, 100)));
        // Make one replica miss a write by taking it down, then bring it back
        // and read at ALL: the version mismatch triggers a repair write.
        let victim = c.replicas_of(1)[2];
        c.set_node_down(victim);
        c.submit_write_with(1, 100, ConsistencyLevel::One, SimTime::ZERO);
        drain(&mut c);
        c.set_node_up(victim);
        let (_, writes_before) = c.storage_op_totals();
        c.submit_read_with(1, ConsistencyLevel::All, c.now());
        drain(&mut c);
        let (_, writes_after) = c.storage_op_totals();
        assert!(
            writes_after > writes_before,
            "expected repair writes after the read ({writes_before} → {writes_after})"
        );
        // The repaired replica now holds the freshest version.
        let fresh = c.store(c.replicas_of(1)[0]).peek(Key(1)).unwrap().version;
        assert_eq!(c.store(victim).peek(Key(1)).unwrap().version, fresh);
    }

    #[test]
    fn interned_payload_keeps_events_small() {
        // The write fan-out's mutation lives once in the payload slab; the
        // per-event task is a handle. These bounds are what keep the event
        // queue's payload slab entries at 32 bytes.
        assert!(std::mem::size_of::<ReplicaTask>() <= 24);
        assert!(std::mem::size_of::<Event>() <= 32);
        assert_eq!(std::mem::size_of::<WritePayload>(), 32);
    }

    #[test]
    fn write_payload_slab_drains_after_runs() {
        // Fan-outs with acks, repairs, timeouts and down nodes all consume
        // their payload references; nothing may leak.
        let mut cfg = ClusterConfig::lan_test(6, 5);
        cfg.read_repair = true;
        cfg.op_timeout = SimDuration::from_millis(50);
        let mut c = Cluster::new(cfg, 23);
        c.load_records((0..20u64).map(|k| (k, 100)));
        c.set_node_down(NodeId(2));
        let mut at = SimTime::ZERO;
        for i in 0..600u64 {
            at += SimDuration::from_micros(300);
            match i % 3 {
                0 => c.submit_write_with(i % 20, 100, ConsistencyLevel::All, at),
                1 => c.submit_write_at(i % 20, 100, at),
                _ => c.submit_read_with(i % 20, ConsistencyLevel::Quorum, at),
            };
        }
        drain(&mut c);
        assert_eq!(c.inflight_write_payloads(), 0, "payload slab must drain");
        assert_eq!(c.inflight_ops(), 0);
    }

    #[test]
    fn fully_dead_fanout_discards_its_payload() {
        // Every replica of the key down at submit time: the interned payload
        // gains no references and must be reclaimed immediately.
        let mut c = cluster(3, 3);
        c.load_records((0..5u64).map(|k| (k, 100)));
        for n in 0..3 {
            c.set_node_down(NodeId(n));
        }
        c.submit_write_at(1, 100, SimTime::ZERO);
        drain(&mut c);
        assert_eq!(c.inflight_write_payloads(), 0);
    }

    #[test]
    fn submit_batch_is_byte_identical_to_loop_submission() {
        let ops: Vec<BatchOp> = (0..400u64)
            .map(|i| {
                let at = SimTime::from_micros(i * 250);
                if i % 2 == 0 {
                    BatchOp::write(at, i % 10, 100)
                } else {
                    BatchOp::read(at, i % 10)
                }
            })
            .collect();

        let mut via_loop = cluster(6, 5);
        via_loop.load_records((0..10u64).map(|k| (k, 100)));
        for op in &ops {
            match op.kind {
                OpKind::Write => via_loop.submit_write_at(op.key, op.size, op.at),
                OpKind::Read => via_loop.submit_read_at(op.key, op.at),
            };
        }
        let loop_done = drain(&mut via_loop);

        let mut via_batch = cluster(6, 5);
        via_batch.load_records((0..10u64).map(|k| (k, 100)));
        assert_eq!(via_batch.submit_batch(ops.iter().copied()), 400);
        let batch_done = drain(&mut via_batch);

        // Same completions in the same order with the same ids, timestamps,
        // versions and staleness — the bulk lane changes the data structure,
        // not the simulation.
        assert_eq!(loop_done, batch_done);
        assert_eq!(via_loop.events_processed(), via_batch.events_processed());
        assert_eq!(via_loop.now(), via_batch.now());
    }

    #[test]
    #[should_panic(expected = "sorted arrival stream")]
    fn submit_batch_rejects_unsorted_arrivals() {
        let mut c = cluster(4, 3);
        c.load_records((0..5u64).map(|k| (k, 100)));
        c.submit_batch([
            BatchOp::read(SimTime::from_millis(10), 1),
            BatchOp::read(SimTime::from_millis(5), 2),
        ]);
    }

    #[test]
    fn crash_reconfigures_the_ring_and_recover_restores_it() {
        let mut c = cluster(5, 3);
        c.load_records((0..50u64).map(|k| (k, 100)));
        let before: Vec<Vec<NodeId>> = (0..50u64).map(|k| c.replicas_of(k)).collect();
        // Find a key replicated on node 1 and crash that node.
        let victim = NodeId(1);
        let affected: Vec<u64> = (0..50u64)
            .filter(|&k| before[k as usize].contains(&victim))
            .collect();
        assert!(!affected.is_empty());
        c.crash_node(victim);
        assert!(c.is_node_crashed(victim));
        assert!(c.is_node_down(victim));
        for &k in &affected {
            let reps = c.replicas_of(k);
            assert_eq!(reps.len(), 3, "rf must be met by survivors");
            assert!(!reps.contains(&victim), "crashed node owns no ranges");
        }
        // Ops against affected keys at ALL now succeed on the survivors.
        for &k in affected.iter().take(5) {
            c.submit_write_with(k, 100, ConsistencyLevel::All, c.now());
        }
        let done = drain(&mut c);
        assert!(done.iter().all(|o| o.status == OpStatus::Ok));
        // Recovery restores the exact original placement (tokens are a pure
        // function of node and vnode ids).
        c.recover_node(victim);
        assert!(!c.is_node_crashed(victim));
        let after: Vec<Vec<NodeId>> = (0..50u64).map(|k| c.replicas_of(k)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn crashing_below_rf_clamps_the_effective_replica_count() {
        let mut c = cluster(4, 3);
        c.load_records((0..10u64).map(|k| (k, 100)));
        c.crash_node(NodeId(0));
        c.crash_node(NodeId(1));
        for k in 0..10u64 {
            let reps = c.replicas_of(k);
            assert_eq!(reps.len(), 2, "only two survivors remain");
        }
        c.recover_node(NodeId(0));
        c.recover_node(NodeId(1));
        assert!((0..10u64).all(|k| c.replicas_of(k).len() == 3));
    }

    #[test]
    fn partitioned_dcs_drop_messages_and_heal_restores_them() {
        let mut cfg = ClusterConfig::lan_test(6, 3);
        cfg.topology = concord_sim::Topology::spread(
            6,
            &[
                ("dc-a", concord_sim::RegionId(0)),
                ("dc-b", concord_sim::RegionId(0)),
            ],
        );
        cfg.strategy = crate::ring::ReplicationStrategy::NetworkTopology;
        cfg.op_timeout = SimDuration::from_millis(100);
        let mut c = Cluster::new(cfg, 9);
        c.load_records((0..20u64).map(|k| (k, 100)));

        let (a, b) = (concord_sim::DcId(0), concord_sim::DcId(1));
        c.partition_dcs(a, b);
        assert!(c.dcs_partitioned(a, b));
        // NetworkTopology placement spreads every key over both DCs, so ALL
        // writes cannot gather their acks across the partition.
        for i in 0..30u64 {
            c.submit_write_with(i % 20, 100, ConsistencyLevel::All, c.now());
        }
        let done = drain(&mut c);
        let timeouts = done
            .iter()
            .filter(|o| o.status == OpStatus::Timeout)
            .count();
        assert!(timeouts > 0, "cross-DC ALL writes must time out");
        assert!(c.metrics().messages_lost > 0);
        assert_eq!(c.inflight_ops(), 0, "partition must not leak op state");
        assert_eq!(c.inflight_write_payloads(), 0);

        c.heal_dcs(a, b);
        assert!(!c.dcs_partitioned(a, b));
        let lost_before = c.metrics().messages_lost;
        for i in 0..10u64 {
            c.submit_write_with(i, 100, ConsistencyLevel::All, c.now());
        }
        let done = drain(&mut c);
        assert!(done.iter().all(|o| o.status == OpStatus::Ok));
        assert_eq!(
            c.metrics().messages_lost,
            lost_before,
            "healed link drops nothing"
        );
    }

    #[test]
    fn one_level_ops_survive_a_partition_within_their_dc() {
        let mut cfg = ClusterConfig::lan_test(6, 3);
        cfg.topology = concord_sim::Topology::spread(
            6,
            &[
                ("dc-a", concord_sim::RegionId(0)),
                ("dc-b", concord_sim::RegionId(0)),
            ],
        );
        cfg.strategy = crate::ring::ReplicationStrategy::NetworkTopology;
        cfg.op_timeout = SimDuration::from_millis(100);
        let mut c = Cluster::new(cfg, 15);
        c.load_records((0..20u64).map(|k| (k, 100)));
        c.partition_dcs(concord_sim::DcId(0), concord_sim::DcId(1));
        // Level ONE needs a single ack; some replica is always coordinator-side
        // often enough that most ops succeed.
        for i in 0..100u64 {
            c.submit_write_with(i % 20, 100, ConsistencyLevel::One, c.now());
        }
        let done = drain(&mut c);
        let ok = done.iter().filter(|o| o.status == OpStatus::Ok).count();
        assert!(ok > 0, "ONE writes should mostly survive a DC partition");
        assert_eq!(c.inflight_ops(), 0);
    }

    #[test]
    fn degraded_links_slow_cross_dc_operations() {
        let run = |factor: f64| {
            let mut cfg = ClusterConfig::lan_test(6, 5);
            cfg.topology = concord_sim::Topology::spread(
                6,
                &[
                    ("dc-a", concord_sim::RegionId(0)),
                    ("dc-b", concord_sim::RegionId(0)),
                ],
            );
            cfg.network = concord_sim::NetworkModel::grid5000_like();
            cfg.strategy = crate::ring::ReplicationStrategy::NetworkTopology;
            let mut c = Cluster::new(cfg, 19);
            c.load_records((0..10u64).map(|k| (k, 100)));
            if factor != 1.0 {
                c.degrade_link(concord_sim::LinkClass::InterDc, factor);
            }
            for i in 0..100u64 {
                c.submit_write_with(i % 10, 100, ConsistencyLevel::All, SimTime::from_millis(i));
            }
            drain(&mut c);
            c.metrics().write_latency.mean_ms()
        };
        let healthy = run(1.0);
        let degraded = run(8.0);
        assert!(
            degraded > healthy * 3.0,
            "8x inter-DC degradation must slow ALL writes ({healthy} -> {degraded} ms)"
        );
    }

    #[test]
    fn degradation_does_not_perturb_rng_draws() {
        // Degrading a class the run never uses leaves the simulation
        // byte-identical: the factor applies after sampling, so the RNG
        // stream is untouched.
        let run = |degrade_unused: bool| {
            let mut c = cluster(5, 3); // single DC: no inter-region traffic
            c.load_records((0..10u64).map(|k| (k, 100)));
            if degrade_unused {
                c.degrade_link(concord_sim::LinkClass::InterRegion, 50.0);
            }
            for i in 0..200u64 {
                c.submit_write_at(i % 10, 100, SimTime::from_millis(i));
            }
            drain(&mut c)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn slow_node_inflates_latency_and_restore_heals() {
        // Gray failure: a 10x-slowed replica drags ALL-level writes (every
        // write waits for the slow ack); restoring mid-run heals the tail.
        let run = |factor: f64| {
            let mut c = cluster(5, 3);
            c.load_records((0..10u64).map(|k| (k, 100)));
            if factor != 1.0 {
                c.slow_node(NodeId(1), factor);
            }
            for i in 0..100u64 {
                c.submit_write_with(i % 10, 100, ConsistencyLevel::All, SimTime::from_millis(i));
            }
            drain(&mut c);
            c.metrics().write_latency.mean_ms()
        };
        let healthy = run(1.0);
        let slowed = run(10.0);
        assert!(
            slowed > healthy * 2.0,
            "a 10x slow replica must drag ALL writes ({healthy} -> {slowed} ms)"
        );
    }

    #[test]
    fn slow_node_toggling_does_not_perturb_rng_draws() {
        // The slow factor applies post-sampling: slowing a node and
        // restoring it before any traffic leaves the run byte-identical —
        // the RNG stream is untouched, exactly like `degrade_link`.
        let run = |toggle: bool| {
            let mut c = cluster(5, 3);
            c.load_records((0..10u64).map(|k| (k, 100)));
            if toggle {
                c.slow_node(NodeId(2), 25.0);
                c.restore_node(NodeId(2));
                assert_eq!(c.node_slow_factor(NodeId(2)), 1.0);
            }
            for i in 0..200u64 {
                c.submit_write_at(i % 10, 100, SimTime::from_millis(i));
            }
            drain(&mut c)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn resilience_off_runs_are_byte_identical_to_the_seed_path() {
        // The whole resilience layer off (the default) must add zero events
        // and zero RNG draws even under gray faults: only service/response
        // delays of the slowed node change, nothing else in the stream.
        let run = |resilience_off_twice: bool| {
            let cfg = ClusterConfig::lan_test(5, 3);
            assert!(!cfg.resilience.hedging_enabled());
            assert!(!cfg.resilience.backoff);
            // Construct-drop a second identical config to prove the literal
            // has no hidden state; the run itself is what must be stable.
            if resilience_off_twice {
                let _ = ClusterConfig::lan_test(5, 3);
            }
            let mut c = Cluster::new(cfg, 11);
            c.load_records((0..10u64).map(|k| (k, 100)));
            c.slow_node(NodeId(0), 4.0);
            for i in 0..100u64 {
                c.submit_read_at(i % 10, SimTime::from_millis(i));
            }
            drain(&mut c)
        };
        let a = run(false);
        let b = run(true);
        assert_eq!(a, b);
    }

    #[test]
    fn dc_down_takes_the_whole_dc_and_dc_up_restores_it() {
        let mut cfg = ClusterConfig::lan_test(6, 3);
        cfg.topology = concord_sim::Topology::spread(
            6,
            &[
                ("dc-a", concord_sim::RegionId(0)),
                ("dc-b", concord_sim::RegionId(0)),
            ],
        );
        cfg.strategy = crate::ring::ReplicationStrategy::NetworkTopology;
        let mut c = Cluster::new(cfg, 23);
        c.load_records((0..10u64).map(|k| (k, 100)));
        // `Topology::spread` deals nodes round-robin: dc-b owns 1, 3, 5.
        let dc_b = concord_sim::DcId(1);
        c.dc_down(dc_b);
        for n in [1, 3, 5] {
            assert!(c.is_node_down(NodeId(n)), "node {n} is in the downed DC");
        }
        for n in [0, 2, 4] {
            assert!(!c.is_node_down(NodeId(n)));
        }
        // ALL-level writes cannot gather cross-DC acks while dc-b is out.
        c.submit_write_with(3, 100, ConsistencyLevel::All, c.now());
        let done = drain(&mut c);
        assert!(done.iter().any(|o| o.status == OpStatus::Timeout));
        c.dc_up(dc_b);
        for n in [1, 3, 5] {
            assert!(!c.is_node_down(NodeId(n)), "dc_up must restore node {n}");
        }
        c.submit_write_with(3, 100, ConsistencyLevel::All, c.now());
        let done = drain(&mut c);
        assert!(done.iter().all(|o| o.status == OpStatus::Ok));
        assert_eq!(c.inflight_ops(), 0);
    }

    #[test]
    fn dc_up_leaves_crashed_nodes_down() {
        let mut cfg = ClusterConfig::lan_test(6, 3);
        cfg.topology = concord_sim::Topology::spread(
            6,
            &[
                ("dc-a", concord_sim::RegionId(0)),
                ("dc-b", concord_sim::RegionId(0)),
            ],
        );
        let mut c = Cluster::new(cfg, 23);
        // Round-robin spread: dc-b owns nodes 1, 3, 5.
        let dc_b = concord_sim::DcId(1);
        c.crash_node(NodeId(3));
        c.dc_down(dc_b);
        c.dc_up(dc_b);
        assert!(!c.is_node_down(NodeId(1)));
        assert!(
            c.is_node_down(NodeId(3)),
            "a crashed node needs recovery, not a DC restore"
        );
        assert!(!c.is_node_down(NodeId(5)));
    }

    #[test]
    fn hedged_reads_complete_once_and_do_not_leak() {
        // Hedge aggressively (the timer fires long before any response can
        // arrive): every point read sends one speculative duplicate, yet
        // each op completes exactly once and the slab fully drains — the
        // losing response is reaped by the generation check.
        let mut cfg = ClusterConfig::lan_test(5, 3);
        cfg.resilience.hedge_delay = SimDuration::from_micros(50);
        let mut c = Cluster::new(cfg, 31);
        c.load_records((0..10u64).map(|k| (k, 100)));
        let mut submitted = Vec::new();
        for i in 0..200u64 {
            submitted.push(c.submit_read_at(i % 10, SimTime::from_millis(i)));
        }
        let done = drain(&mut c);
        assert_eq!(done.len(), 200, "every read completes exactly once");
        let mut completed: Vec<OpId> = done.iter().map(|o| o.id).collect();
        completed.sort();
        submitted.sort();
        assert_eq!(completed, submitted);
        let m = c.metrics();
        assert!(
            m.hedged_requests >= 150,
            "an aggressive hedge_delay must hedge nearly every read, got {}",
            m.hedged_requests
        );
        assert!(m.hedge_wins <= m.hedged_requests);
        assert!(
            m.hedge_traffic.total() > 0,
            "hedge bytes must be metered separately"
        );
        assert!(
            m.traffic.total() >= m.hedge_traffic.total(),
            "hedge bytes are part of the billable total"
        );
        assert_eq!(c.inflight_ops(), 0, "hedged ops must not leak slab slots");
        assert_eq!(c.inflight_write_payloads(), 0);
    }

    #[test]
    fn hedging_survives_a_crash_during_the_hedge_window() {
        // The hedge target (or the original replica) dies while both
        // requests are in flight: completions stay exactly-once and nothing
        // leaks. Exercises the straggler-reap path under faults.
        let mut cfg = ClusterConfig::lan_test(5, 3);
        cfg.resilience.hedge_delay = SimDuration::from_micros(50);
        cfg.op_timeout = SimDuration::from_millis(50);
        let mut c = Cluster::new(cfg, 37);
        c.load_records((0..10u64).map(|k| (k, 100)));
        let mut submitted = Vec::new();
        for i in 0..100u64 {
            submitted.push(c.submit_read_at(i % 10, SimTime::from_micros(i * 20)));
        }
        // Take a replica down mid-flight, then bring it back.
        c.schedule_tick(SimTime::from_micros(300), 1);
        c.schedule_tick(SimTime::from_millis(5), 2);
        let mut done = Vec::new();
        while let Some(out) = c.advance() {
            match out {
                ClusterOutput::Tick { id: 1, .. } => c.set_node_down(NodeId(1)),
                ClusterOutput::Tick { id: 2, .. } => c.set_node_up(NodeId(1)),
                ClusterOutput::Completed(op) => done.push(op),
                ClusterOutput::Tick { .. } => {}
            }
        }
        assert_eq!(done.len(), 100, "every read completes exactly once");
        let mut completed: Vec<OpId> = done.iter().map(|o| o.id).collect();
        completed.sort();
        submitted.sort();
        assert_eq!(completed, submitted);
        assert_eq!(c.inflight_ops(), 0, "crash-during-hedge must not leak");
        assert_eq!(c.inflight_write_payloads(), 0);
    }

    #[test]
    fn backoff_spaces_retries_and_accounts_them() {
        // Same transient fault, backoff off vs on: both complete every op,
        // but backoff stretches the retry schedule (latency of exhausted
        // ops grows by the summed delays) and counts each backed-off
        // re-issue.
        let run = |backoff: bool| {
            let mut cfg = ClusterConfig::lan_test(4, 3);
            cfg.op_timeout = SimDuration::from_millis(50);
            cfg.retry_on_timeout = 2;
            cfg.resilience.backoff = backoff;
            cfg.resilience.backoff_base = SimDuration::from_millis(20);
            let mut c = Cluster::new(cfg, 5);
            c.load_records((0..10u64).map(|k| (k, 100)));
            c.set_node_down(NodeId(1));
            for i in 0..30u64 {
                c.submit_write_with(i % 10, 100, ConsistencyLevel::All, SimTime::from_millis(i));
            }
            let done = drain(&mut c);
            assert_eq!(done.len(), 30, "every op completes exactly once");
            assert_eq!(c.inflight_ops(), 0);
            let max_latency = done.iter().map(|o| o.latency()).max().unwrap();
            (
                c.metrics().retries,
                c.metrics().backoff_retries,
                max_latency,
            )
        };
        let (retries_off, backoff_off, latency_off) = run(false);
        let (retries_on, backoff_on, latency_on) = run(true);
        assert!(retries_off > 0 && retries_on > 0);
        assert_eq!(backoff_off, 0, "backoff counter must stay 0 when off");
        assert_eq!(
            backoff_on, retries_on,
            "with backoff on, every re-issue is a backed-off re-issue"
        );
        assert!(
            latency_on > latency_off,
            "backoff must stretch the retry schedule ({latency_off:?} -> {latency_on:?})"
        );
    }

    #[test]
    fn dynamic_selection_steers_reads_away_from_a_slow_replica() {
        // One replica 50x slow. Closest (static table; LAN peers are
        // equidistant, so the shuffle picks the slow node ~rf^-1 of the
        // time) keeps paying the gray tax; Dynamic learns the slow node's
        // observed latency and routes around it.
        let run = |selection: ReplicaSelection| {
            let mut cfg = ClusterConfig::lan_test(5, 3);
            cfg.read_selection = selection;
            let mut c = Cluster::new(cfg, 43);
            c.load_records((0..4u64).map(|k| (k, 100)));
            let victim = c.replicas_of(0)[0];
            c.slow_node(victim, 50.0);
            for i in 0..400u64 {
                c.submit_read_at(0, SimTime::from_millis(i));
            }
            let done = drain(&mut c);
            assert!(done.iter().all(|o| o.status == OpStatus::Ok));
            c.metrics().read_latency.mean_ms()
        };
        let closest = run(ReplicaSelection::Closest);
        let dynamic = run(ReplicaSelection::Dynamic);
        assert!(
            dynamic < closest * 0.5,
            "dynamic selection must dodge the slow replica \
             (closest {closest} ms vs dynamic {dynamic} ms)"
        );
    }

    #[test]
    fn breaker_opens_on_silent_replicas_and_reads_recover() {
        // A down replica never answers: every timed-out attempt strikes it,
        // the breaker opens (and is counted), and subsequent reads rank the
        // node last so they stop wasting attempts on it.
        let mut cfg = ClusterConfig::lan_test(4, 3);
        cfg.read_selection = ReplicaSelection::Dynamic;
        cfg.op_timeout = SimDuration::from_millis(20);
        cfg.retry_on_timeout = 3;
        let mut c = Cluster::new(cfg, 47);
        c.load_records((0..10u64).map(|k| (k, 100)));
        let victim = c.replicas_of(0)[0];
        c.set_node_down(victim);
        for i in 0..60u64 {
            c.submit_read_at(0, SimTime::from_millis(i * 30));
        }
        let done = drain(&mut c);
        assert_eq!(done.len(), 60);
        assert!(
            c.metrics().breaker_opens >= 1,
            "consecutive timeout strikes must trip the breaker"
        );
        let ok = done.iter().filter(|o| o.status == OpStatus::Ok).count();
        assert!(
            ok > 50,
            "with the breaker open, reads route to live replicas ({ok}/60 ok)"
        );
        assert_eq!(c.inflight_ops(), 0);
    }

    #[test]
    fn timeout_retries_reissue_and_account() {
        // One node transiently down under ALL: without retries every write
        // times out; with retries each attempt is re-issued and accounted,
        // and ops still finish (as timeouts, once the budget is exhausted,
        // with latency spanning every attempt).
        let mut cfg = ClusterConfig::lan_test(4, 3);
        cfg.op_timeout = SimDuration::from_millis(50);
        cfg.retry_on_timeout = 2;
        let mut c = Cluster::new(cfg, 5);
        c.load_records((0..10u64).map(|k| (k, 100)));
        c.set_node_down(NodeId(1));
        let mut submitted_ids = Vec::new();
        for i in 0..30u64 {
            submitted_ids.push(c.submit_write_with(
                i % 10,
                100,
                ConsistencyLevel::All,
                SimTime::from_millis(i),
            ));
        }
        let done = drain(&mut c);
        assert_eq!(done.len(), 30, "every op completes exactly once");
        // Retried attempts run under fresh internal ids, but completions
        // report the id submit_* handed out — client correlation holds.
        let mut completed_ids: Vec<OpId> = done.iter().map(|o| o.id).collect();
        completed_ids.sort();
        submitted_ids.sort();
        assert_eq!(completed_ids, submitted_ids);
        let timeouts: Vec<_> = done
            .iter()
            .filter(|o| o.status == OpStatus::Timeout)
            .collect();
        assert!(!timeouts.is_empty());
        assert!(c.metrics().retries > 0, "retries must be accounted");
        // A timed-out op burned its full budget: latency >= 3 * op_timeout.
        for o in &timeouts {
            assert!(
                o.latency() >= SimDuration::from_millis(150),
                "latency must span all attempts, got {:?}",
                o.latency()
            );
        }
        assert_eq!(c.inflight_ops(), 0, "retried ops must not leak state");
        assert_eq!(c.inflight_write_payloads(), 0);
    }

    #[test]
    fn retries_rescue_ops_when_the_fault_heals_in_time() {
        // Node down at submit, back up before the retry: the retry succeeds.
        let mut cfg = ClusterConfig::lan_test(4, 3);
        cfg.op_timeout = SimDuration::from_millis(50);
        cfg.retry_on_timeout = 3;
        let mut c = Cluster::new(cfg, 7);
        c.load_records((0..10u64).map(|k| (k, 100)));
        let victim = c.replicas_of(3)[0];
        c.set_node_down(victim);
        c.submit_write_with(3, 100, ConsistencyLevel::All, SimTime::ZERO);
        // Recover the node after the first timeout fires.
        c.schedule_tick(SimTime::from_millis(60), 1);
        let mut done = Vec::new();
        while let Some(out) = c.advance() {
            match out {
                ClusterOutput::Tick { id: 1, .. } => c.set_node_up(victim),
                ClusterOutput::Completed(op) => done.push(op),
                ClusterOutput::Tick { .. } => {}
            }
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].status, OpStatus::Ok, "the retry must succeed");
        assert!(c.metrics().retries >= 1);
        assert!(
            done[0].latency() >= SimDuration::from_millis(50),
            "latency includes the failed first attempt"
        );
    }

    #[test]
    fn exact_percentiles_validate_the_histogram_bound() {
        let mut cfg = ClusterConfig::lan_test(6, 5);
        cfg.network = concord_sim::NetworkModel::ec2_like();
        cfg.exact_latency_percentiles = true;
        let mut c = Cluster::new(cfg, 23);
        c.load_records((0..20u64).map(|k| (k, 100)));
        for i in 0..500u64 {
            if i % 2 == 0 {
                c.submit_write_with(
                    i % 20,
                    100,
                    ConsistencyLevel::Quorum,
                    SimTime::from_millis(i),
                );
            } else {
                c.submit_read_with(i % 20, ConsistencyLevel::Quorum, SimTime::from_millis(i));
            }
        }
        drain(&mut c);
        let qs = [0.5, 0.95, 0.99];
        let m = c.metrics();
        for stats in [&m.read_latency, &m.write_latency] {
            assert!(stats.exact_enabled());
            // One sort serves all three quantiles.
            let exacts = stats.exact_quantiles_ms(&qs).expect("exact recorder is on");
            for (&q, &exact) in qs.iter().zip(&exacts) {
                let approx = stats.quantile_ms(q).expect("histogram has samples");
                assert!(
                    (approx - exact).abs() <= exact * 0.03 + 1e-3,
                    "q={q}: histogram {approx} vs exact {exact} exceeds the 3% bound"
                );
            }
        }
        // Default config keeps the recorder off.
        let plain = cluster(4, 3);
        assert!(!plain.metrics().read_latency.exact_enabled());
        assert_eq!(plain.metrics().read_latency.exact_quantile_ms(0.5), None);
    }

    #[test]
    fn metrics_counts_are_consistent() {
        let mut c = cluster(5, 3);
        c.load_records((0..10u64).map(|k| (k, 100)));
        for i in 0..200u64 {
            if i % 4 == 0 {
                c.submit_write_at(i % 10, 100, SimTime::from_millis(i));
            } else {
                c.submit_read_at(i % 10, SimTime::from_millis(i));
            }
        }
        let done = drain(&mut c);
        assert_eq!(done.len(), 200);
        assert_eq!(c.metrics().ops_completed(), 200);
        assert_eq!(c.metrics().reads_completed, 150);
        assert_eq!(c.metrics().writes_completed, 50);
        assert!(c.metrics().read_latency.count() == 150);
        assert!(c.metrics().throughput(c.now() - SimTime::ZERO) > 0.0);
    }

    // ------------------------------------------------------------------
    // Repair plane
    // ------------------------------------------------------------------

    fn repair_cluster(nodes: usize, rf: u32, mode: RepairMode, seed: u64) -> Cluster {
        let mut cfg = ClusterConfig::lan_test(nodes, rf);
        cfg.repair = crate::config::RepairConfig::with_mode(mode);
        Cluster::new(cfg, seed)
    }

    #[test]
    fn scans_never_trigger_read_repair() {
        // The read-repair contract: only point reads (`scan_len == 1`)
        // repair. A divergence-observing range scan at ALL must leave the
        // stale replica untouched, while the equivalent point read fixes it.
        let mut cfg = ClusterConfig::lan_test(5, 3);
        cfg.read_repair = true;
        let mut c = Cluster::new(cfg, 17);
        c.load_records((0..10u64).map(|k| (k, 100)));
        let victim = c.replicas_of(1)[2];
        c.set_node_down(victim);
        c.submit_write_with(1, 100, ConsistencyLevel::One, SimTime::ZERO);
        drain(&mut c);
        c.set_node_up(victim);
        let stale_version = c.store(victim).peek(Key(1)).unwrap().version;

        let (_, writes_before) = c.storage_op_totals();
        c.submit_scan_with(1, 4, ConsistencyLevel::All, c.now());
        let done = drain(&mut c);
        assert_eq!(done[0].status, OpStatus::Ok);
        let (_, writes_after) = c.storage_op_totals();
        assert_eq!(
            writes_after, writes_before,
            "a range scan must never issue repair writes"
        );
        assert_eq!(
            c.store(victim).peek(Key(1)).unwrap().version,
            stale_version,
            "the stale replica stays stale after the scan"
        );

        // The point read at the same level does repair it.
        c.submit_read_with(1, ConsistencyLevel::All, c.now());
        drain(&mut c);
        let (_, writes_repaired) = c.storage_op_totals();
        assert!(writes_repaired > writes_before);
        assert!(c.store(victim).peek(Key(1)).unwrap().version > stale_version);
    }

    #[test]
    fn hinted_handoff_replays_missed_writes_to_a_recovered_node() {
        let mut c = repair_cluster(5, 3, RepairMode::Hints, 29);
        c.load_records((0..10u64).map(|k| (k, 100)));
        let victim = c.replicas_of(3)[1];
        c.set_node_down(victim);
        let before = c.store(victim).peek(Key(3)).unwrap().version;
        // ONE writes succeed on the up replicas; the coordinator queues a
        // hint for the down one.
        for i in 0..5u64 {
            c.submit_write_with(3, 100, ConsistencyLevel::One, SimTime::from_millis(i));
        }
        drain(&mut c);
        assert_eq!(c.pending_hints(victim), 5);
        assert_eq!(c.metrics().hints_queued, 5);
        assert_eq!(c.metrics().hints_replayed, 0);
        assert_eq!(
            c.store(victim).peek(Key(3)).unwrap().version,
            before,
            "a down node applies nothing"
        );

        c.set_node_up(victim);
        drain(&mut c);
        assert_eq!(c.pending_hints(victim), 0);
        assert_eq!(c.metrics().hints_replayed, 5);
        assert_eq!(c.inflight_write_payloads(), 0, "repair payloads drain");
        let fresh = c.store(c.replicas_of(3)[0]).peek(Key(3)).unwrap().version;
        assert_eq!(
            c.store(victim).peek(Key(3)).unwrap().version,
            fresh,
            "replayed hints bring the recovered node fully up to date"
        );
        assert!(
            c.metrics().repair_traffic.total() > 0,
            "hint replays are metered as repair bytes"
        );
        assert_eq!(
            c.metrics().repair_pages_compared,
            0,
            "mode=Hints runs no anti-entropy sweeps"
        );
    }

    #[test]
    fn hint_queues_are_bounded_and_overflow_is_metered() {
        let mut cfg = ClusterConfig::lan_test(5, 3);
        cfg.repair = crate::config::RepairConfig::with_mode(RepairMode::Hints);
        cfg.repair.hint_capacity_per_node = 3;
        let mut c = Cluster::new(cfg, 31);
        c.load_records((0..10u64).map(|k| (k, 100)));
        let victim = c.replicas_of(3)[1];
        c.set_node_down(victim);
        for i in 0..10u64 {
            c.submit_write_with(3, 100, ConsistencyLevel::One, SimTime::from_millis(i));
        }
        drain(&mut c);
        assert_eq!(c.pending_hints(victim), 3, "the queue is bounded");
        assert_eq!(c.metrics().hints_queued, 3);
        assert_eq!(c.metrics().hints_dropped, 7);
    }

    #[test]
    fn anti_entropy_reconverges_diverged_replicas_and_parks() {
        let mut c = repair_cluster(5, 3, RepairMode::AntiEntropy, 37);
        c.load_records((0..20u64).map(|k| (k, 100)));
        let victim = c.replicas_of(7)[2];
        c.set_node_down(victim);
        for i in 0..8u64 {
            c.submit_write_with(7, 100, ConsistencyLevel::One, SimTime::from_millis(i));
        }
        drain(&mut c);
        assert_eq!(
            c.metrics().hints_queued,
            0,
            "mode=AntiEntropy queues no hints"
        );
        c.set_node_up(victim);
        // run_to_completion terminates because the sweep cycle parks after a
        // silent round — and by then the divergence must be gone.
        drain(&mut c);
        let fresh = c.store(c.replicas_of(7)[0]).peek(Key(7)).unwrap().version;
        assert_eq!(
            c.store(victim).peek(Key(7)).unwrap().version,
            fresh,
            "sweeps stream the missed writes back"
        );
        assert!(c.metrics().repair_pages_compared > 0);
        assert!(c.metrics().repair_records_streamed > 0);
        assert!(c.metrics().repair_traffic.total() > 0);
        assert_eq!(c.inflight_write_payloads(), 0);

        // A further drain on the converged cluster streams nothing new.
        let streamed = c.metrics().repair_records_streamed;
        c.submit_read_with(7, ConsistencyLevel::One, c.now());
        drain(&mut c);
        assert_eq!(c.metrics().repair_records_streamed, streamed);
    }

    #[test]
    fn recovery_migration_restores_a_crashed_nodes_data() {
        let mut c = repair_cluster(5, 3, RepairMode::Full, 41);
        c.load_records((0..30u64).map(|k| (k, 100)));
        let victim = NodeId(2);
        let affected: Vec<u64> = (0..30u64)
            .filter(|&k| c.replicas_of(k).contains(&victim))
            .collect();
        assert!(!affected.is_empty());
        c.crash_node(victim);
        // Fresh writes land only on the survivors while the node is out.
        for (i, &k) in affected.iter().enumerate() {
            c.submit_write_with(
                k,
                100,
                ConsistencyLevel::All,
                c.now() + SimDuration::from_millis(i as u64),
            );
        }
        drain(&mut c);
        c.recover_node(victim);
        drain(&mut c);
        for &k in &affected {
            let fresh = c.store(c.replicas_of(k)[0]).peek(Key(k)).unwrap().version;
            assert_eq!(
                c.store(victim).peek(Key(k)).unwrap().version,
                fresh,
                "recovery migration must stream key {k} back to the rejoined node"
            );
        }
        assert!(c.metrics().repair_records_streamed >= affected.len() as u64);
        assert_eq!(c.inflight_write_payloads(), 0);
    }

    #[test]
    fn unrank_pair_enumerates_every_unordered_pair() {
        let n = 6u64;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..n * (n - 1) / 2 {
            let (i, j) = unrank_pair(idx, n);
            assert!(i < j && j < n, "({i},{j}) out of range");
            assert!(seen.insert((i, j)), "({i},{j}) enumerated twice");
        }
        assert_eq!(seen.len() as u64, n * (n - 1) / 2);
    }

    #[test]
    fn repair_off_adds_no_events_or_meters_under_faults() {
        // With repair off a faulty run is byte-identical to the pre-repair
        // code path: no hints, no sweeps, no repair traffic.
        let mut c = cluster(5, 3);
        c.load_records((0..10u64).map(|k| (k, 100)));
        c.set_node_down(NodeId(1));
        for i in 0..20u64 {
            c.submit_write_with(i % 10, 100, ConsistencyLevel::One, SimTime::from_millis(i));
        }
        drain(&mut c);
        c.set_node_up(NodeId(1));
        drain(&mut c);
        let m = c.metrics();
        assert_eq!(m.hints_queued, 0);
        assert_eq!(m.hints_replayed, 0);
        assert_eq!(m.hints_dropped, 0);
        assert_eq!(m.repair_pages_compared, 0);
        assert_eq!(m.repair_records_streamed, 0);
        assert_eq!(m.repair_traffic.total(), 0);
    }
}
