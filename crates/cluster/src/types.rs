//! Core value types of the replicated key-value store.

use concord_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A record key. The workload generators produce dense `u64` record ids; the
/// partitioner hashes them onto the ring, so the store behaves the same as it
/// would with string keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Key(pub u64);

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user{}", self.0)
    }
}

/// A monotonically increasing version (write timestamp). Cassandra uses
/// microsecond wall-clock timestamps supplied by the coordinator; the
/// simulator uses a global logical counter combined with the issue time so
/// that last-write-wins reconciliation is total and deterministic.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Version(pub u64);

impl Version {
    /// The version of a never-written key.
    pub const NONE: Version = Version(0);

    /// True if this version denotes an actual write.
    pub fn exists(self) -> bool {
        self.0 > 0
    }
}

/// Identifier assigned to every client operation submitted to the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub u64);

/// The kind of a client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Read the value of a key.
    Read,
    /// Write (insert or update) the value of a key.
    Write,
}

/// The value stored for a key on one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredValue {
    /// Version of the most recent write applied on this replica.
    pub version: Version,
    /// Payload size in bytes.
    pub size: u32,
    /// Simulated time at which the write was applied here.
    pub applied_at: SimTime,
}

/// Outcome status of a completed client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpStatus {
    /// The operation satisfied its consistency level.
    Ok,
    /// The coordinator could not gather enough replica responses before the
    /// timeout (mirrors Cassandra's `UnavailableException` / timeout).
    Timeout,
}

/// A finished client operation, as reported back to the driving layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletedOp {
    /// The operation's id — always the id the `submit_*` call handed out,
    /// even when `retry_on_timeout` re-issued the operation under fresh
    /// internal attempts, so client-side correlation by id always holds.
    pub id: OpId,
    /// Read or write.
    pub kind: OpKind,
    /// The key targeted.
    pub key: Key,
    /// When the client issued the operation.
    pub issued_at: SimTime,
    /// When the consistency level was satisfied (or the timeout fired).
    pub completed_at: SimTime,
    /// Whether the operation met its consistency level.
    pub status: OpStatus,
    /// Number of replicas the operation involved (the consistency level in
    /// effect when it was issued).
    pub replicas_involved: u32,
    /// For reads: the version returned to the client.
    pub returned_version: Version,
    /// For reads: `true` if the returned version is older than the newest
    /// version acknowledged before the read was issued (ground-truth oracle).
    pub stale: bool,
    /// For stale reads: how many acknowledged writes the returned value lags
    /// behind (0 for fresh reads and writes).
    pub staleness_depth: u32,
    /// For reads: number of records in the data responses returned to the
    /// client (1/0 for point reads; for range scans, the scan's *coverage* —
    /// under hash partitioning the subset of the range the data replica
    /// owns, under the ordered partitioner the full contiguous range,
    /// gathered across ownership boundaries). 0 for writes; for timed-out
    /// reads, whatever partial data arrived before the timeout.
    pub records_returned: u32,
}

impl CompletedOp {
    /// Client-observed latency of the operation.
    pub fn latency(&self) -> concord_sim::SimDuration {
        self.completed_at - self.issued_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concord_sim::SimDuration;

    #[test]
    fn version_ordering_and_existence() {
        assert!(Version(2) > Version(1));
        assert!(!Version::NONE.exists());
        assert!(Version(1).exists());
    }

    #[test]
    fn key_display_matches_ycsb_style() {
        assert_eq!(Key(42).to_string(), "user42");
    }

    #[test]
    fn completed_op_latency() {
        let op = CompletedOp {
            id: OpId(1),
            kind: OpKind::Read,
            key: Key(1),
            issued_at: SimTime::from_millis(10),
            completed_at: SimTime::from_millis(14),
            status: OpStatus::Ok,
            replicas_involved: 1,
            returned_version: Version(3),
            stale: false,
            staleness_depth: 0,
            records_returned: 1,
        };
        assert_eq!(op.latency(), SimDuration::from_millis(4));
    }
}
