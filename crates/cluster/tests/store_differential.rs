//! Differential property test for the paged direct-index [`ReplicaStore`].
//!
//! The dense store replaced an `FxHashMap`-backed implementation; this test
//! keeps those semantics executable as a reference model (modulo one
//! deliberate fix, re-preload byte accounting — see `preload`) and drives random
//! operation streams (preloads, versioned writes, point reads, range reads)
//! through both, asserting identical results **and** identical meters (bytes
//! stored, key counts, storage I/O counters). Any divergence means the
//! direct-index layout changed behaviour, not just speed.

use concord_cluster::{Key, ReplicaStore, StoredValue, Version};
use concord_sim::{FxHashMap, SimRng, SimTime};
use proptest::prelude::*;

/// The pre-refactor hash-map store, preserved as the reference model.
#[derive(Default)]
struct ReferenceStore {
    data: FxHashMap<Key, StoredValue>,
    bytes_stored: u64,
    write_ops: u64,
    read_ops: u64,
    superseded_writes: u64,
}

impl ReferenceStore {
    fn apply_write(&mut self, key: Key, version: Version, size: u32, at: SimTime) -> bool {
        self.write_ops += 1;
        match self.data.get_mut(&key) {
            Some(existing) if existing.version >= version => {
                self.superseded_writes += 1;
                false
            }
            Some(existing) => {
                self.bytes_stored = self.bytes_stored - existing.size as u64 + size as u64;
                *existing = StoredValue {
                    version,
                    size,
                    applied_at: at,
                };
                true
            }
            None => {
                self.bytes_stored += size as u64;
                self.data.insert(
                    key,
                    StoredValue {
                        version,
                        size,
                        applied_at: at,
                    },
                );
                true
            }
        }
    }

    fn preload(&mut self, key: Key, version: Version, size: u32) {
        // Authoritative overwrite: replace the old payload's byte weight
        // (the historical map-backed store double-counted re-preloads; the
        // dense store fixed that, and the reference model matches).
        if let Some(old) = self.data.get(&key) {
            self.bytes_stored -= old.size as u64;
        }
        self.bytes_stored += size as u64;
        self.data.insert(
            key,
            StoredValue {
                version,
                size,
                applied_at: SimTime::ZERO,
            },
        );
    }

    fn read(&mut self, key: Key) -> Option<StoredValue> {
        self.read_ops += 1;
        self.data.get(&key).copied()
    }

    /// Range read over the map: `len` point probes, byte-weighting the
    /// present records (the dense store does this as one streaming pass).
    fn read_range(&mut self, start: Key, len: u32) -> (Option<StoredValue>, u32, u64) {
        let len = len.max(1);
        self.read_ops += len as u64;
        let anchor = self.data.get(&start).copied();
        let mut records = 0u32;
        let mut bytes = 0u64;
        for off in 0..len as u64 {
            let Some(key) = start.0.checked_add(off) else {
                break;
            };
            if let Some(v) = self.data.get(&Key(key)) {
                records += 1;
                bytes += v.size as u64;
            }
        }
        (anchor, records, bytes)
    }
}

/// One differential run: `ops` random operations over a key space that spans
/// several pages (so page-boundary and never-written-page paths are hit).
fn run_differential(seed: u64, ops: usize) {
    let mut rng = SimRng::new(seed);
    let mut dense = ReplicaStore::new();
    let mut reference = ReferenceStore::default();
    // Far beyond one 4096-slot page, with a hole-y tail.
    let key_space = 3 * 4096 + rng.next_bounded(8192);
    let mut version = 0u64;

    for i in 0..ops {
        let key = Key(rng.next_bounded(key_space));
        match rng.next_bounded(10) {
            0 => {
                version += 1;
                dense.preload(key, Version(version), 100 + key.0 as u32 % 400);
                reference.preload(key, Version(version), 100 + key.0 as u32 % 400);
            }
            1..=4 => {
                // Mix fresh and deliberately stale versions so the
                // last-write-wins arm is exercised both ways.
                let v = if rng.next_bounded(4) == 0 && version > 1 {
                    1 + rng.next_bounded(version)
                } else {
                    version += 1;
                    version
                };
                let size = 50 + rng.next_bounded(1_000) as u32;
                let at = SimTime::from_micros(i as u64);
                let a = dense.apply_write(key, Version(v), size, at);
                let b = reference.apply_write(key, Version(v), size, at);
                prop_assert_eq!(a, b, "apply_write result diverged at op {}", i);
            }
            5..=7 => {
                prop_assert_eq!(dense.read(key), reference.read(key), "read diverged");
            }
            8 => {
                prop_assert_eq!(dense.peek(key), reference.data.get(&key).copied());
            }
            _ => {
                let len = 1 + rng.next_bounded(150) as u32;
                let r = dense.read_range(key, len);
                let (anchor, records, bytes) = reference.read_range(key, len);
                prop_assert_eq!(r.anchor, anchor, "range anchor diverged");
                prop_assert_eq!(r.records, records, "range record count diverged");
                prop_assert_eq!(r.bytes, bytes, "range byte weight diverged");
            }
        }
    }

    // Meters must agree exactly at the end of the stream.
    prop_assert_eq!(dense.bytes_stored(), reference.bytes_stored);
    prop_assert_eq!(dense.key_count(), reference.data.len());
    prop_assert_eq!(dense.read_ops(), reference.read_ops);
    prop_assert_eq!(dense.write_ops(), reference.write_ops);
    prop_assert_eq!(dense.superseded_writes(), reference.superseded_writes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn dense_store_matches_the_hashmap_reference(seed in 0u64..u64::MAX) {
        run_differential(seed, 3_000);
    }
}
