//! Shard-boundary edge cases of the conservative-PDES engine.
//!
//! `golden_determinism` pins fixed-seed scenarios against hardcoded digests
//! at 1, 2 and 4 shards. This suite attacks the sharded engine where its
//! window/mailbox machinery is under the most stress — a node crashing in
//! the middle of a lookahead window, a datacenter partition severing the
//! link between two shards, an ordered-partitioner scan straddling a shard
//! boundary — and pins each scenario **byte-identical to its own 1-shard
//! run** (full per-op digest plus every public meter), so any divergence in
//! the barrier protocol shows up as a field-level diff rather than a bare
//! checksum mismatch.

use concord_cluster::{
    Cluster, ClusterConfig, ClusterOutput, ConsistencyLevel, Partitioner, ReplicationStrategy,
    ORDERED_SLICE_KEYS,
};
use concord_sim::{DcId, NetworkModel, NodeId, RegionId, SimDuration, SimTime, Topology};

/// Full observable fingerprint of a drained run: an FNV-1a digest over every
/// completed operation plus the public counters a driver could read.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    ops: u64,
    timeouts: u64,
    stale: u64,
    latency_sum_us: u64,
    checksum: u64,
    events: u64,
    now_us: u64,
    messages: u64,
    messages_lost: u64,
    traffic_total: u64,
    storage_ops: (u64, u64),
}

/// Drain the cluster, applying `on_tick` to every tick id, and fingerprint
/// the completed-operation stream.
fn drain(c: &mut Cluster, mut on_tick: impl FnMut(&mut Cluster, u64)) -> Fingerprint {
    let mut ops = 0u64;
    let mut timeouts = 0u64;
    let mut stale = 0u64;
    let mut latency_sum_us = 0u64;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let fnv = |h: &mut u64, x: u64| {
        *h ^= x;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    while let Some(out) = c.advance() {
        match out {
            ClusterOutput::Tick { id, .. } => on_tick(c, id),
            ClusterOutput::Completed(op) => {
                ops += 1;
                if op.status == concord_cluster::OpStatus::Timeout {
                    timeouts += 1;
                }
                if op.stale {
                    stale += 1;
                }
                latency_sum_us += op.latency().as_micros();
                fnv(&mut h, op.completed_at.as_micros());
                fnv(&mut h, op.returned_version.0);
                fnv(&mut h, op.staleness_depth as u64);
                fnv(&mut h, op.records_returned as u64);
            }
        }
    }
    Fingerprint {
        ops,
        timeouts,
        stale,
        latency_sum_us,
        checksum: h,
        events: c.events_processed(),
        now_us: c.now().as_micros(),
        messages: c.metrics().messages,
        messages_lost: c.metrics().messages_lost,
        traffic_total: c.metrics().traffic.total(),
        storage_ops: (c.metrics().storage_read_ops, c.metrics().storage_write_ops),
    }
}

/// A two-site geo cluster whose datacenters land on different shards at
/// `shards >= 2` (nodes are shard-mapped dc-contiguously).
fn two_site_cluster(seed: u64, shards: u32, rf: u32) -> Cluster {
    let mut cfg = ClusterConfig::lan_test(6, rf);
    cfg.topology = Topology::spread(
        6,
        &[("site-east", RegionId(0)), ("site-south", RegionId(0))],
    );
    cfg.network = NetworkModel::grid5000_like();
    cfg.strategy = ReplicationStrategy::NetworkTopology;
    cfg.read_repair = true;
    cfg.shards = shards;
    Cluster::new(cfg, seed)
}

/// Submit alternating ALL-write / ONE-read churn (the mix that keeps write
/// fan-outs, acks and timeouts crossing shards continuously).
fn submit_churn(c: &mut Cluster, ops: u64, keys: u64, gap_us: u64) {
    let mut at = SimTime::ZERO;
    for i in 0..ops {
        at += SimDuration::from_micros(gap_us);
        if i % 2 == 0 {
            c.submit_write_with((i / 2) % keys, 180, ConsistencyLevel::All, at);
        } else {
            c.submit_read_at((i / 2) % keys, at);
        }
    }
}

/// A node crashes (ring reconfiguration + recovery migration) and later
/// recovers, with the fault ticks landing *inside* lookahead windows —
/// crash_node rebuilds the ring and broadcasts RepairSync arrivals while
/// cross-shard mailboxes hold staged traffic. Byte-identical at 2 and 4
/// shards to the 1-shard run.
#[test]
fn node_crash_mid_window_is_byte_identical_across_shard_counts() {
    let run = |shards: u32| {
        let mut c = two_site_cluster(51, shards, 3);
        c.load_records((0..40u64).map(|k| (k, 180)));
        submit_churn(&mut c, 1_600, 40, 400);
        // Fault times chosen off the grid5000 link-delay grid so the ticks
        // fire mid-window, not at a barrier the churn itself would create.
        c.schedule_tick(SimTime::from_micros(100_137), 1);
        c.schedule_tick(SimTime::from_micros(400_291), 2);
        drain(&mut c, |c, id| match id {
            1 => c.crash_node(NodeId(2)),
            2 => c.recover_node(NodeId(2)),
            _ => {}
        })
    };
    let sequential = run(1);
    assert_eq!(sequential.ops, 1_600, "every op completes exactly once");
    for shards in [2u32, 4] {
        assert_eq!(run(shards), sequential, "{shards} shards vs sequential");
    }
}

/// The two datacenters — which are exactly the two shards at `shards = 2` —
/// partition mid-run and heal later: every cross-shard message in between
/// is lost in transit, so the mailbox plane carries only losses while the
/// partition holds. Byte-identical at 2 and 4 shards to the 1-shard run.
#[test]
fn partition_severing_two_shards_is_byte_identical_across_shard_counts() {
    let run = |shards: u32| {
        let mut c = two_site_cluster(57, shards, 5);
        c.load_records((0..30u64).map(|k| (k, 180)));
        c.set_levels(ConsistencyLevel::Quorum, ConsistencyLevel::Quorum);
        submit_churn(&mut c, 2_000, 30, 400);
        c.schedule_tick(SimTime::from_micros(150_211), 1);
        c.schedule_tick(SimTime::from_micros(550_433), 2);
        drain(&mut c, |c, id| match id {
            1 => c.partition_dcs(DcId(0), DcId(1)),
            2 => c.heal_dcs(DcId(0), DcId(1)),
            _ => {}
        })
    };
    let sequential = run(1);
    assert_eq!(sequential.ops, 2_000);
    assert!(
        sequential.messages_lost > 0,
        "the partition must drop cross-site messages"
    );
    for shards in [2u32, 4] {
        assert_eq!(run(shards), sequential, "{shards} shards vs sequential");
    }
}

/// Ordered-partitioner range scans anchored just below an ownership-slice
/// boundary, with the record space split so the two slices' owners live on
/// different shards: the segment fan-out gathers one scan's responses from
/// both sides of a shard boundary. Byte-identical at 2 and 4 shards to the
/// 1-shard run.
#[test]
fn ordered_scan_straddling_a_shard_boundary_is_byte_identical() {
    let run = |shards: u32| {
        let mut cfg = ClusterConfig::lan_test(6, 3);
        cfg.topology = Topology::spread(
            6,
            &[("site-east", RegionId(0)), ("site-south", RegionId(0))],
        );
        cfg.network = NetworkModel::grid5000_like();
        cfg.strategy = ReplicationStrategy::NetworkTopology;
        cfg.read_repair = true;
        cfg.partitioner = Partitioner::Ordered;
        cfg.shards = shards;
        let mut c = Cluster::new(cfg, 61);
        let records = 2 * ORDERED_SLICE_KEYS;
        c.load_records((0..records).map(|k| (k, 180)));
        c.set_levels(ConsistencyLevel::One, ConsistencyLevel::One);
        let mut at = SimTime::ZERO;
        for i in 0..2_000u64 {
            at += SimDuration::from_micros(400);
            // Anchor just below the slice boundary so scans keep straddling
            // it; writes hit the anchor so scans race their propagation.
            let hot = ORDERED_SLICE_KEYS - 1 - ((i / 4) % 16);
            if i % 4 == 0 {
                c.submit_write_at(hot, 180, at);
            } else {
                c.submit_scan_at(hot, 8 + (i % 24) as u32, at);
            }
        }
        drain(&mut c, |_, _| {})
    };
    let sequential = run(1);
    assert_eq!(sequential.ops, 2_000);
    for shards in [2u32, 4] {
        assert_eq!(run(shards), sequential, "{shards} shards vs sequential");
    }
}

/// Batch-submitted arrivals (the bulk FIFO lane) route per home shard; the
/// fingerprint must match the sequential run and per-op submission exactly.
#[test]
fn bulk_submitted_arrivals_stay_byte_identical_when_sharded() {
    use concord_cluster::BatchOp;
    let run = |shards: u32, batch: bool| {
        let mut c = two_site_cluster(67, shards, 3);
        c.load_records((0..25u64).map(|k| (k, 150)));
        if batch {
            let ops: Vec<BatchOp> = (0..1_500u64)
                .map(|i| {
                    let at = SimTime::from_micros((i + 1) * 300);
                    if i % 2 == 0 {
                        BatchOp::write(at, (i / 2) % 25, 150)
                    } else {
                        BatchOp::read(at, (i / 2) % 25)
                    }
                })
                .collect();
            assert_eq!(c.submit_batch(ops), 1_500);
        } else {
            // Same schedule through the per-op path (default levels, like
            // the batch constructors).
            for i in 0..1_500u64 {
                let at = SimTime::from_micros((i + 1) * 300);
                if i % 2 == 0 {
                    c.submit_write_at((i / 2) % 25, 150, at);
                } else {
                    c.submit_read_at((i / 2) % 25, at);
                }
            }
        }
        drain(&mut c, |_, _| {})
    };
    let sequential = run(1, false);
    for shards in [1u32, 2, 4] {
        assert_eq!(run(shards, true), sequential, "{shards} shards, batched");
    }
    assert_eq!(run(4, false), sequential, "4 shards, per-op submission");
}
