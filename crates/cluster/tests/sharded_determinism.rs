//! Thread-invariance matrix of the conservative-PDES engine.
//!
//! `golden_determinism` pins fixed-seed scenarios against hardcoded digests
//! at 1, 2 and 4 shards. This suite pins the other axis of the determinism
//! contract: for a **fixed shard count**, the full observable fingerprint of
//! a run must be byte-identical at *any* worker-thread count (1, 2, 4 and 8
//! here), because shard batches only touch shard-owned state and everything
//! cross-shard folds serially in fixed shard order at window barriers. The
//! scenarios attack the engine where the window/mailbox machinery is under
//! the most stress — a node crashing in the middle of a lookahead window, a
//! datacenter partition severing the link between two shards, an
//! ordered-partitioner scan straddling a shard boundary, bulk-submitted
//! arrival streams — and each one also sanity-checks the physics across
//! shard counts (same op totals; each shard count is otherwise its own
//! deterministic universe, see the golden suite's module docs).
//!
//! The thread counts are driven through the work-stealing pool's
//! `ThreadPool::install` scope, the same mechanism `--threads` uses in the
//! bench binaries, so the matrix here exercises exactly the production
//! dispatch path — including thread counts far above this container's core
//! count (oversubscription must not change a byte either).

use concord_cluster::{
    Cluster, ClusterConfig, ClusterOutput, ConsistencyLevel, Partitioner, ReplicationStrategy,
    ORDERED_SLICE_KEYS,
};
use concord_sim::{DcId, NetworkModel, NodeId, RegionId, SimDuration, SimTime, Topology};

/// Full observable fingerprint of a drained run: an FNV-1a digest over every
/// completed operation plus the public counters a driver could read.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    ops: u64,
    timeouts: u64,
    stale: u64,
    latency_sum_us: u64,
    checksum: u64,
    events: u64,
    now_us: u64,
    messages: u64,
    messages_lost: u64,
    traffic_total: u64,
    storage_ops: (u64, u64),
    windows: u64,
    barrier_folds: u64,
    elided_barriers: u64,
    fast_forwards: u64,
    parallel_batches: u64,
    max_batch_len: u64,
    // Resilience-layer counters: pinned to zero by every resilience-off
    // scenario (the layer must be inert when disabled) and thread-invariant
    // like everything else when it is on.
    hedged_requests: u64,
    hedge_wins: u64,
    backoff_retries: u64,
    breaker_opens: u64,
    hedge_traffic: u64,
}

/// Drain the cluster, applying `on_tick` to every tick id, and fingerprint
/// the completed-operation stream.
fn drain(c: &mut Cluster, mut on_tick: impl FnMut(&mut Cluster, u64)) -> Fingerprint {
    let mut ops = 0u64;
    let mut timeouts = 0u64;
    let mut stale = 0u64;
    let mut latency_sum_us = 0u64;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let fnv = |h: &mut u64, x: u64| {
        *h ^= x;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    while let Some(out) = c.advance() {
        match out {
            ClusterOutput::Tick { id, .. } => on_tick(c, id),
            ClusterOutput::Completed(op) => {
                ops += 1;
                if op.status == concord_cluster::OpStatus::Timeout {
                    timeouts += 1;
                }
                if op.stale {
                    stale += 1;
                }
                latency_sum_us += op.latency().as_micros();
                fnv(&mut h, op.completed_at.as_micros());
                fnv(&mut h, op.returned_version.0);
                fnv(&mut h, op.staleness_depth as u64);
                fnv(&mut h, op.records_returned as u64);
            }
        }
    }
    let m = c.shard_metrics();
    Fingerprint {
        ops,
        timeouts,
        stale,
        latency_sum_us,
        checksum: h,
        events: c.events_processed(),
        now_us: c.now().as_micros(),
        messages: c.metrics().messages,
        messages_lost: c.metrics().messages_lost,
        traffic_total: c.metrics().traffic.total(),
        storage_ops: (c.metrics().storage_read_ops, c.metrics().storage_write_ops),
        windows: m.windows,
        barrier_folds: m.barrier_folds,
        elided_barriers: m.elided_barriers,
        fast_forwards: m.fast_forwards,
        parallel_batches: m.parallel_batches,
        max_batch_len: m.max_batch_len,
        hedged_requests: c.metrics().hedged_requests,
        hedge_wins: c.metrics().hedge_wins,
        backoff_retries: c.metrics().backoff_retries,
        breaker_opens: c.metrics().breaker_opens,
        hedge_traffic: c.metrics().hedge_traffic.total(),
    }
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("the vendored builder cannot fail")
}

/// Run `scenario` over the shards × threads matrix. For every shard count,
/// the fingerprint must be byte-identical at 1, 2, 4 and 8 worker threads;
/// the per-shard-count fingerprints (at any thread count — they are all the
/// same) are returned for scenario-level physics assertions.
fn thread_matrix(scenario: impl Fn(u32) -> Fingerprint) -> Vec<Fingerprint> {
    [1u32, 2, 4]
        .into_iter()
        .map(|shards| {
            let base = pool(1).install(|| scenario(shards));
            for threads in [2usize, 4, 8] {
                let fp = pool(threads).install(|| scenario(shards));
                assert_eq!(
                    fp, base,
                    "shards={shards}: {threads} worker threads diverged from 1"
                );
            }
            if shards > 1 {
                assert!(
                    base.windows > 0,
                    "shards={shards}: no lookahead windows ran"
                );
                // Since PR 10 folds are elided on quiet windows and forced
                // flushes can add extra folds, so the relationship is an
                // invariant rather than an equality.
                assert!(
                    base.barrier_folds + base.elided_barriers >= base.windows,
                    "every window either folds or is counted as elided"
                );
                assert!(
                    base.parallel_batches > 0,
                    "shards={shards}: no window ever had two busy shard batches"
                );
            }
            base
        })
        .collect()
}

/// A two-site geo cluster whose datacenters land on different shards at
/// `shards >= 2` (nodes are shard-mapped dc-contiguously).
fn two_site_cluster(seed: u64, shards: u32, rf: u32) -> Cluster {
    let mut cfg = ClusterConfig::lan_test(6, rf);
    cfg.topology = Topology::spread(
        6,
        &[("site-east", RegionId(0)), ("site-south", RegionId(0))],
    );
    cfg.network = NetworkModel::grid5000_like();
    cfg.strategy = ReplicationStrategy::NetworkTopology;
    cfg.read_repair = true;
    cfg.shards = shards;
    Cluster::new(cfg, seed)
}

/// Submit alternating ALL-write / ONE-read churn (the mix that keeps write
/// fan-outs, acks and timeouts crossing shards continuously).
fn submit_churn(c: &mut Cluster, ops: u64, keys: u64, gap_us: u64) {
    let mut at = SimTime::ZERO;
    for i in 0..ops {
        at += SimDuration::from_micros(gap_us);
        if i % 2 == 0 {
            c.submit_write_with((i / 2) % keys, 180, ConsistencyLevel::All, at);
        } else {
            c.submit_read_at((i / 2) % keys, at);
        }
    }
}

/// A node crashes (ring reconfiguration + recovery migration) and later
/// recovers, with the fault ticks landing *inside* lookahead windows —
/// crash_node rebuilds the ring and broadcasts RepairSync arrivals while
/// cross-shard mailboxes hold staged traffic.
#[test]
fn node_crash_mid_window_is_thread_invariant() {
    let fps = thread_matrix(|shards| {
        let mut c = two_site_cluster(51, shards, 3);
        c.load_records((0..40u64).map(|k| (k, 180)));
        submit_churn(&mut c, 1_600, 40, 400);
        // Fault times chosen off the grid5000 link-delay grid so the ticks
        // fire mid-window, not at a barrier the churn itself would create.
        c.schedule_tick(SimTime::from_micros(100_137), 1);
        c.schedule_tick(SimTime::from_micros(400_291), 2);
        drain(&mut c, |c, id| match id {
            1 => c.crash_node(NodeId(2)),
            2 => c.recover_node(NodeId(2)),
            _ => {}
        })
    });
    for fp in &fps {
        assert_eq!(fp.ops, 1_600, "every op completes exactly once");
    }
}

/// The two datacenters — which are exactly the two shards at `shards = 2` —
/// partition mid-run and heal later: every cross-shard message in between
/// is lost in transit, so the mailbox plane carries only losses while the
/// partition holds.
#[test]
fn partition_severing_two_shards_is_thread_invariant() {
    let fps = thread_matrix(|shards| {
        let mut c = two_site_cluster(57, shards, 5);
        c.load_records((0..30u64).map(|k| (k, 180)));
        c.set_levels(ConsistencyLevel::Quorum, ConsistencyLevel::Quorum);
        submit_churn(&mut c, 2_000, 30, 400);
        c.schedule_tick(SimTime::from_micros(150_211), 1);
        c.schedule_tick(SimTime::from_micros(550_433), 2);
        drain(&mut c, |c, id| match id {
            1 => c.partition_dcs(DcId(0), DcId(1)),
            2 => c.heal_dcs(DcId(0), DcId(1)),
            _ => {}
        })
    });
    for fp in &fps {
        assert_eq!(fp.ops, 2_000);
        assert!(
            fp.messages_lost > 0,
            "the partition must drop cross-site messages"
        );
    }
}

/// Ordered-partitioner range scans anchored just below an ownership-slice
/// boundary, with the record space split so the two slices' owners live on
/// different shards: the segment fan-out gathers one scan's responses from
/// both sides of a shard boundary.
#[test]
fn ordered_scan_straddling_a_shard_boundary_is_thread_invariant() {
    let fps = thread_matrix(|shards| {
        let mut cfg = ClusterConfig::lan_test(6, 3);
        cfg.topology = Topology::spread(
            6,
            &[("site-east", RegionId(0)), ("site-south", RegionId(0))],
        );
        cfg.network = NetworkModel::grid5000_like();
        cfg.strategy = ReplicationStrategy::NetworkTopology;
        cfg.read_repair = true;
        cfg.partitioner = Partitioner::Ordered;
        cfg.shards = shards;
        let mut c = Cluster::new(cfg, 61);
        let records = 2 * ORDERED_SLICE_KEYS;
        c.load_records((0..records).map(|k| (k, 180)));
        c.set_levels(ConsistencyLevel::One, ConsistencyLevel::One);
        let mut at = SimTime::ZERO;
        for i in 0..2_000u64 {
            at += SimDuration::from_micros(400);
            // Anchor just below the slice boundary so scans keep straddling
            // it; writes hit the anchor so scans race their propagation.
            let hot = ORDERED_SLICE_KEYS - 1 - ((i / 4) % 16);
            if i % 4 == 0 {
                c.submit_write_at(hot, 180, at);
            } else {
                c.submit_scan_at(hot, 8 + (i % 24) as u32, at);
            }
        }
        drain(&mut c, |_, _| {})
    });
    for fp in &fps {
        assert_eq!(fp.ops, 2_000);
    }
}

/// The full resilience layer under a gray failure: one node serves 10×
/// slow mid-run (hedged reads rescue the ONE-reads stuck behind it) while
/// another goes down hard (ALL-reads that must contact it ride the
/// timeout → backoff → breaker path — the jittered backoff delays route
/// through the timer wheel, and the health EWMA/breaker state feeds every
/// subsequent selection). All of it — hedge fires crossing shards, the
/// backoff wheel, breaker flips — must be byte-identical at any worker
/// thread count, and the resilience counters themselves are part of the
/// fingerprint.
#[test]
fn gray_failure_resilience_layer_is_thread_invariant() {
    use concord_cluster::ReplicaSelection;
    let fps = thread_matrix(|shards| {
        let mut cfg = ClusterConfig::lan_test(6, 3);
        cfg.topology = Topology::spread(
            6,
            &[("site-east", RegionId(0)), ("site-south", RegionId(0))],
        );
        cfg.network = NetworkModel::grid5000_like();
        cfg.strategy = ReplicationStrategy::NetworkTopology;
        cfg.read_repair = true;
        cfg.op_timeout = SimDuration::from_millis(60);
        cfg.retry_on_timeout = 2;
        cfg.resilience.hedge_delay = SimDuration::from_millis(2);
        cfg.resilience.backoff = true;
        cfg.read_selection = ReplicaSelection::Dynamic;
        cfg.shards = shards;
        let mut c = Cluster::new(cfg, 71);
        c.load_records((0..20u64).map(|k| (k, 180)));
        c.set_levels(ConsistencyLevel::One, ConsistencyLevel::One);
        let mut at = SimTime::ZERO;
        for i in 0..2_000u64 {
            at += SimDuration::from_micros(500);
            let k = (i / 2) % 20;
            if i % 2 == 0 {
                c.submit_write_at(k, 180, at);
            } else if (i / 2) % 3 == 2 {
                c.submit_read_with(k, ConsistencyLevel::All, at);
            } else {
                c.submit_read_at(k, at);
            }
        }
        // Fault times off the link-delay grid so the ticks fire mid-window.
        c.schedule_tick(SimTime::from_micros(150_137), 1);
        c.schedule_tick(SimTime::from_micros(750_291), 2);
        c.schedule_tick(SimTime::from_micros(225_433), 3);
        c.schedule_tick(SimTime::from_micros(825_571), 4);
        let fp = drain(&mut c, |c, id| match id {
            1 => c.slow_node(NodeId(1), 10.0),
            2 => c.restore_node(NodeId(1)),
            3 => c.set_node_down(NodeId(4)),
            4 => c.set_node_up(NodeId(4)),
            _ => {}
        });
        assert_eq!(c.inflight_ops(), 0, "hedged ops must not leak slab slots");
        fp
    });
    for fp in &fps {
        assert_eq!(fp.ops, 2_000, "every op completes exactly once");
        assert!(
            fp.hedged_requests > 0,
            "the gray window must trigger hedges"
        );
        assert!(fp.hedge_wins > 0 && fp.hedge_wins <= fp.hedged_requests);
        assert!(fp.backoff_retries > 0, "the outage must exercise backoff");
        assert!(fp.breaker_opens > 0, "timeouts must trip the breaker");
        assert!(fp.hedge_traffic > 0 && fp.hedge_traffic <= fp.traffic_total);
    }
}

/// Batch-submitted arrivals (the bulk FIFO lane) route per home shard; the
/// fingerprint must match per-op submission exactly within every shard
/// count, at every thread count.
#[test]
fn bulk_submitted_arrivals_match_per_op_submission_at_any_thread_count() {
    use concord_cluster::BatchOp;
    let run = |shards: u32, batch: bool| {
        let mut c = two_site_cluster(67, shards, 3);
        c.load_records((0..25u64).map(|k| (k, 150)));
        if batch {
            let ops: Vec<BatchOp> = (0..1_500u64)
                .map(|i| {
                    let at = SimTime::from_micros((i + 1) * 300);
                    if i % 2 == 0 {
                        BatchOp::write(at, (i / 2) % 25, 150)
                    } else {
                        BatchOp::read(at, (i / 2) % 25)
                    }
                })
                .collect();
            assert_eq!(c.submit_batch(ops), 1_500);
        } else {
            // Same schedule through the per-op path (default levels, like
            // the batch constructors).
            for i in 0..1_500u64 {
                let at = SimTime::from_micros((i + 1) * 300);
                if i % 2 == 0 {
                    c.submit_write_at((i / 2) % 25, 150, at);
                } else {
                    c.submit_read_at((i / 2) % 25, at);
                }
            }
        }
        drain(&mut c, |_, _| {})
    };
    let batched = thread_matrix(|shards| run(shards, true));
    for (i, shards) in [1u32, 2, 4].into_iter().enumerate() {
        let per_op = run(shards, false);
        assert_eq!(
            batched[i], per_op,
            "{shards} shards: batch vs per-op submission"
        );
    }
}

/// The dispatch primitive really runs shard batches on more than one worker
/// thread: under a 4-thread pool, `par_for_each_mut` over blocking items
/// must be observed from at least two distinct OS threads. (The cluster
/// tests above prove thread *invariance*; this proves the threads are
/// actually there to be invariant against.)
#[test]
fn window_dispatch_uses_multiple_worker_threads() {
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
    // Each item spins briefly so the scheduler has time to run another
    // worker even on a single hardware core; retry to absorb scheduling
    // flukes without ever flaking on a loaded machine.
    for attempt in 0..20 {
        seen.lock().unwrap().clear();
        pool(4).install(|| {
            let mut items = [0u64; 8];
            rayon::par_for_each_mut(&mut items, |_, slot| {
                seen.lock().unwrap().insert(std::thread::current().id());
                let deadline = Instant::now() + Duration::from_millis(10);
                while Instant::now() < deadline {
                    *slot = slot.wrapping_add(1);
                    std::hint::spin_loop();
                }
            });
        });
        if seen.lock().unwrap().len() >= 2 {
            return;
        }
        // Give the OS a chance to schedule the other workers next round.
        std::thread::sleep(Duration::from_millis(5 * (attempt + 1)));
    }
    panic!(
        "par_for_each_mut never ran on two distinct threads under a 4-thread pool \
         (saw {:?})",
        seen.lock().unwrap()
    );
}

/// A sharded run inside a multi-thread pool really exercises the parallel
/// window engine: batches from at least two shards execute within single
/// windows (the `parallel_batches` counter the run reports are built from).
#[test]
fn sharded_run_reports_parallel_batches_under_a_thread_pool() {
    pool(4).install(|| {
        let mut c = two_site_cluster(51, 4, 3);
        c.load_records((0..40u64).map(|k| (k, 180)));
        submit_churn(&mut c, 1_200, 40, 400);
        let fp = drain(&mut c, |_, _| {});
        assert_eq!(fp.ops, 1_200);
        assert!(fp.windows > 0);
        assert!(
            fp.parallel_batches > 0,
            "geo churn over 4 shards must co-schedule shard batches"
        );
        assert!(fp.max_batch_len > 0);
    });
}
