//! Golden fixed-seed regression tests.
//!
//! These tests pin the *exact* simulation output of fixed-seed cluster runs:
//! operation counts, ground-truth stale reads, event counts, final virtual
//! clock, traffic bytes, and an integer checksum over every completed
//! operation's latency and returned version. They were captured on the
//! pre-hot-path-refactor implementation (HashMap op tables, per-read replica
//! Vec allocations, sort-based replica selection) and must keep passing
//! byte-for-byte on the slab/scratch-buffer/precomputed-ranking hot path:
//! any drift means the optimization changed simulation behaviour, not just
//! its speed.
//!
//! To re-capture after an *intentional* semantic change, run with
//! `GOLDEN_PRINT=1 cargo test -p concord-cluster --test golden_determinism -- --nocapture`
//! and update the constants.
//!
//! # Determinism contract of the sharded engine
//!
//! Since the parallel execution PR, a run's output is a pure function of
//! `(seed, shard count)` — **not** of the worker-thread count, the thread
//! scheduler, or the machine. Concretely:
//!
//! * `shards = 1` executes the exact pre-sharding serial engine (same RNG
//!   stream, same event order, same metering order) and must stay
//!   byte-identical to every golden captured before the engine existed.
//! * Each `shards > 1` count is its own deterministic universe: per-shard
//!   RNG streams (`SimRng::shard_stream`), coordinator-homed routing drawn
//!   from the control stream, timestamp-packed write versions and
//!   barrier-fold ordering (outboxes applied in fixed shard order, read
//!   classifications resolved against the central oracle's time-indexed ack
//!   history) make its digests stable, but different from the serial ones —
//!   so each shard count pins its **own** golden tuple below (captured with
//!   `GOLDEN_PRINT=1` at the introduction of parallel execution). The
//!   *physics* is shared: staleness rates, latency sums and traffic stay in
//!   family across shard counts; only the sampled universe differs.
//! * For a fixed shard count the digests must be byte-identical at *any*
//!   worker-thread count (1, 2, 4, 8, …): shard batches only touch
//!   shard-owned state, and everything cross-shard is folded serially in
//!   fixed shard order at window barriers. The thread-count matrix is
//!   asserted in `tests/sharded_determinism.rs`; these goldens pin the
//!   per-shard-count values themselves.

use concord_cluster::{
    Cluster, ClusterConfig, ConsistencyLevel, OpKind, OpStatus, Partitioner, ReplicaSelection,
    ReplicationStrategy, ORDERED_SLICE_KEYS,
};
use concord_sim::{NetworkModel, RegionId, SimDuration, SimTime, Topology};

/// Integer digest of a completed-operation stream, independent of the
/// metrics back-end (FNV-1a over the per-op fields that matter).
#[derive(Debug, Default, PartialEq, Eq)]
struct RunDigest {
    ops: u64,
    reads: u64,
    writes: u64,
    stale: u64,
    timeouts: u64,
    latency_sum_us: u64,
    checksum: u64,
}

fn digest(cluster: &mut Cluster) -> RunDigest {
    let mut d = RunDigest::default();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let fnv = |h: &mut u64, x: u64| {
        *h ^= x;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for op in cluster.run_to_completion(u64::MAX) {
        d.ops += 1;
        match op.kind {
            OpKind::Read => d.reads += 1,
            OpKind::Write => d.writes += 1,
        }
        if op.stale {
            d.stale += 1;
        }
        if op.status == OpStatus::Timeout {
            d.timeouts += 1;
        }
        d.latency_sum_us += op.latency().as_micros();
        fnv(&mut h, op.completed_at.as_micros());
        fnv(&mut h, op.returned_version.0);
        fnv(&mut h, op.staleness_depth as u64);
        fnv(&mut h, op.replicas_involved as u64);
    }
    d.checksum = h;
    d
}

fn geo_cluster(seed: u64) -> Cluster {
    geo_cluster_sharded(seed, 1)
}

/// The same geo cluster on a sharded event engine: the digests must hold
/// byte-for-byte at **any** shard count (the conservative-PDES engine's
/// merge-exact contract — see `concord_sim::shard`).
fn geo_cluster_sharded(seed: u64, shards: u32) -> Cluster {
    let mut cfg = ClusterConfig::lan_test(6, 5);
    cfg.topology = Topology::spread(
        6,
        &[("site-rennes", RegionId(0)), ("site-sophia", RegionId(0))],
    );
    cfg.network = NetworkModel::grid5000_like();
    cfg.strategy = ReplicationStrategy::NetworkTopology;
    cfg.read_repair = true;
    cfg.shards = shards;
    Cluster::new(cfg, seed)
}

/// Alternating write→read churn over hot keys, the Figure-1 situation.
fn churn(c: &mut Cluster, ops: u64, keys: u64, gap: SimDuration) {
    let mut at = SimTime::ZERO;
    for i in 0..ops {
        at += gap;
        if i % 2 == 0 {
            c.submit_write_at((i / 2) % keys, 200, at);
        } else {
            c.submit_read_at((i / 2) % keys, at);
        }
    }
}

/// `GOLDEN_PRINT=1` turns the suite into capture mode: every scenario
/// prints its fresh digest line and the per-shard-count loops skip their
/// golden assertions, so one run prints all shard counts even when a
/// recapture is in progress (a panic at shards=2 would otherwise hide the
/// shards=4 tuple).
fn capture_mode() -> bool {
    std::env::var("GOLDEN_PRINT").is_ok()
}

fn maybe_print(name: &str, d: &RunDigest, c: &Cluster) {
    if capture_mode() {
        println!(
            "{name}: {d:?} retries={} messages_lost={} events={} now_us={} messages={} \
             traffic_total={} traffic_inter_dc={} \
             storage_r={} storage_w={} oracle_stale={} oracle_fresh={}",
            c.metrics().retries,
            c.metrics().messages_lost,
            c.events_processed(),
            c.now().as_micros(),
            c.metrics().messages,
            c.metrics().traffic.total(),
            c.metrics().traffic.inter_dc,
            c.metrics().storage_read_ops,
            c.metrics().storage_write_ops,
            c.oracle().stale_reads(),
            c.oracle().fresh_reads(),
        );
    }
}

/// Weak-consistency geo run with read repair: the paper's staleness window.
/// Pinned at 1, 2 and 4 event-queue shards. Each shard count owns one golden
/// tuple (see the module docs): with one shard the pre-parallel digest must
/// hold byte-for-byte; with more, the per-shard-count digest must be stable
/// at any worker-thread count.
#[test]
fn golden_geo_weak_consistency_run() {
    for (i, shards) in [1u32, 2, 4].into_iter().enumerate() {
        let golden = GOLDEN_WEAK[i];
        let mut c = geo_cluster_sharded(7, shards);
        c.load_records((0..20u64).map(|k| (k, 200)));
        c.set_levels(ConsistencyLevel::One, ConsistencyLevel::One);
        churn(&mut c, 4_000, 20, SimDuration::from_micros(500));
        let d = digest(&mut c);
        maybe_print(&format!("weak[shards={shards}]"), &d, &c);
        if capture_mode() {
            continue;
        }

        assert_eq!(c.shards() as u32, shards);
        assert_eq!(d.ops, 4_000);
        assert_eq!(d.reads, 2_000);
        assert_eq!(d.writes, 2_000);
        assert_eq!(d.stale, golden.0, "{shards} shards");
        assert_eq!(d.timeouts, 0);
        assert_eq!(d.latency_sum_us, golden.1, "{shards} shards");
        assert_eq!(d.checksum, golden.2, "{shards} shards");
        assert_eq!(c.events_processed(), golden.3, "{shards} shards");
        assert_eq!(c.now().as_micros(), golden.4, "{shards} shards");
        assert_eq!(c.metrics().messages, golden.5, "{shards} shards");
        assert_eq!(c.metrics().traffic.total(), golden.6, "{shards} shards");
        assert_eq!(c.metrics().traffic.inter_dc, golden.7, "{shards} shards");
        assert_eq!(
            (c.metrics().storage_read_ops, c.metrics().storage_write_ops),
            golden.8,
            "{shards} shards"
        );
        assert_eq!(c.oracle().stale_reads(), d.stale);
        if shards > 1 {
            let m = c.shard_metrics();
            assert!(m.windows > 0, "the run must cross lookahead windows");
            assert!(m.staged > 0, "geo traffic must stage cross-shard events");
            // Since PR 10 a window's serial fold is elided when no staged
            // control effect or deferred completion demands it; forced
            // flushes between windows can also fold, so the counters bound
            // the window count from both sides rather than matching it.
            assert!(
                m.barrier_folds + m.elided_barriers >= m.windows,
                "every window either folds or is counted as elided"
            );
            assert!(
                m.elided_barriers <= m.windows,
                "cannot elide more barriers than windows ran"
            );
        }
    }
}

/// Quorum/quorum run: R+W>N, so zero staleness with non-trivial latencies.
#[test]
fn golden_geo_quorum_run() {
    for (i, shards) in [1u32, 2, 4].into_iter().enumerate() {
        let golden = GOLDEN_QUORUM[i];
        let mut c = geo_cluster_sharded(13, shards);
        c.load_records((0..50u64).map(|k| (k, 200)));
        c.set_levels(ConsistencyLevel::Quorum, ConsistencyLevel::Quorum);
        churn(&mut c, 3_000, 50, SimDuration::from_micros(300));
        let d = digest(&mut c);
        maybe_print(&format!("quorum[shards={shards}]"), &d, &c);
        if capture_mode() {
            continue;
        }

        assert_eq!(d.ops, 3_000);
        assert_eq!(d.stale, 0, "R+W>N can never be stale");
        assert_eq!(d.timeouts, 0);
        assert_eq!(d.latency_sum_us, golden.0, "{shards} shards");
        assert_eq!(d.checksum, golden.1, "{shards} shards");
        assert_eq!(c.events_processed(), golden.2, "{shards} shards");
        assert_eq!(c.now().as_micros(), golden.3, "{shards} shards");
    }
}

/// Failure + timeout path: one node down under write-ALL.
#[test]
fn golden_failure_timeout_run() {
    let mut cfg = ClusterConfig::lan_test(5, 3);
    cfg.op_timeout = SimDuration::from_millis(50);
    let mut c = Cluster::new(cfg, 21);
    c.load_records((0..30u64).map(|k| (k, 100)));
    c.set_node_down(concord_sim::NodeId(2));
    let mut at = SimTime::ZERO;
    for i in 0..600u64 {
        at += SimDuration::from_micros(400);
        if i % 3 == 0 {
            c.submit_write_with(i % 30, 100, ConsistencyLevel::All, at);
        } else {
            c.submit_read_at(i % 30, at);
        }
    }
    let d = digest(&mut c);
    maybe_print("failure", &d, &c);

    assert_eq!(d.ops, 600);
    assert_eq!(d.timeouts, GOLDEN_FAILURE.0);
    assert_eq!(d.latency_sum_us, GOLDEN_FAILURE.1);
    assert_eq!(d.checksum, GOLDEN_FAILURE.2);
    assert_eq!(c.events_processed(), GOLDEN_FAILURE.3);
}

/// Crash/recover scenario: a node crashes mid-run (ring reconfigures onto
/// the survivors), recovers later (original token positions restored), with
/// timeout retries enabled. Events are driven through ticks so the fault
/// times are exact and reproducible.
#[test]
fn golden_crash_recover_run() {
    let mut cfg = ClusterConfig::lan_test(6, 3);
    cfg.op_timeout = SimDuration::from_millis(80);
    cfg.retry_on_timeout = 1;
    cfg.read_repair = true;
    let mut c = Cluster::new(cfg, 33);
    c.load_records((0..40u64).map(|k| (k, 150)));
    // Alternating ALL-write → ONE-read churn across the fault windows.
    let mut at = SimTime::ZERO;
    for i in 0..2_000u64 {
        at += SimDuration::from_micros(400);
        if i % 2 == 0 {
            c.submit_write_with((i / 2) % 40, 150, ConsistencyLevel::All, at);
        } else {
            c.submit_read_at((i / 2) % 40, at);
        }
    }
    // Crash at 100 ms, recover at 500 ms (the churn spans 800 ms); a
    // *transient* outage of node 0 (ring untouched, so ALL writes keep
    // targeting it and time out into retries) from 250 ms to 400 ms.
    c.schedule_tick(SimTime::from_millis(100), 1);
    c.schedule_tick(SimTime::from_millis(500), 2);
    c.schedule_tick(SimTime::from_millis(250), 3);
    c.schedule_tick(SimTime::from_millis(400), 4);
    let mut d = RunDigest::default();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let fnv = |h: &mut u64, x: u64| {
        *h ^= x;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    while let Some(out) = c.advance() {
        match out {
            concord_cluster::ClusterOutput::Tick { id: 1, .. } => {
                c.crash_node(concord_sim::NodeId(2))
            }
            concord_cluster::ClusterOutput::Tick { id: 2, .. } => {
                c.recover_node(concord_sim::NodeId(2))
            }
            concord_cluster::ClusterOutput::Tick { id: 3, .. } => {
                c.set_node_down(concord_sim::NodeId(0))
            }
            concord_cluster::ClusterOutput::Tick { id: 4, .. } => {
                c.set_node_up(concord_sim::NodeId(0))
            }
            concord_cluster::ClusterOutput::Tick { .. } => {}
            concord_cluster::ClusterOutput::Completed(op) => {
                d.ops += 1;
                if op.status == OpStatus::Timeout {
                    d.timeouts += 1;
                }
                if op.stale {
                    d.stale += 1;
                }
                d.latency_sum_us += op.latency().as_micros();
                fnv(&mut h, op.completed_at.as_micros());
                fnv(&mut h, op.returned_version.0);
            }
        }
    }
    d.checksum = h;
    maybe_print("crash_recover", &d, &c);

    assert_eq!(d.ops, 2_000, "every op completes exactly once");
    assert!(c.metrics().retries > 0, "the outage must induce retries");
    assert!(!c.is_node_crashed(concord_sim::NodeId(2)));
    assert_eq!(c.inflight_ops(), 0);
    assert_eq!(c.inflight_write_payloads(), 0);
    assert_eq!(d.timeouts, GOLDEN_CRASH.0);
    assert_eq!(c.metrics().retries, GOLDEN_CRASH.1);
    assert_eq!(d.latency_sum_us, GOLDEN_CRASH.2);
    assert_eq!(d.checksum, GOLDEN_CRASH.3);
    assert_eq!(c.events_processed(), GOLDEN_CRASH.4);
}

/// The crash/recover scenario of [`golden_crash_recover_run`] with the
/// full repair plane enabled (hinted handoff + anti-entropy + recovery
/// migration): pins the repair engine's event interleaving, hint
/// accounting and streamed-record metering byte-for-byte. (Captured at the
/// introduction of the repair plane; there is no pre-repair digest.)
#[test]
fn golden_repair_run() {
    let mut cfg = ClusterConfig::lan_test(6, 3);
    cfg.op_timeout = SimDuration::from_millis(80);
    cfg.retry_on_timeout = 1;
    cfg.read_repair = true;
    cfg.repair = concord_cluster::RepairConfig::with_mode(concord_cluster::RepairMode::Full);
    let mut c = Cluster::new(cfg, 33);
    c.load_records((0..40u64).map(|k| (k, 150)));
    let mut at = SimTime::ZERO;
    for i in 0..2_000u64 {
        at += SimDuration::from_micros(400);
        if i % 2 == 0 {
            c.submit_write_with((i / 2) % 40, 150, ConsistencyLevel::All, at);
        } else {
            c.submit_read_at((i / 2) % 40, at);
        }
    }
    c.schedule_tick(SimTime::from_millis(100), 1);
    c.schedule_tick(SimTime::from_millis(500), 2);
    c.schedule_tick(SimTime::from_millis(250), 3);
    c.schedule_tick(SimTime::from_millis(400), 4);
    let mut d = RunDigest::default();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let fnv = |h: &mut u64, x: u64| {
        *h ^= x;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    while let Some(out) = c.advance() {
        match out {
            concord_cluster::ClusterOutput::Tick { id: 1, .. } => {
                c.crash_node(concord_sim::NodeId(2))
            }
            concord_cluster::ClusterOutput::Tick { id: 2, .. } => {
                c.recover_node(concord_sim::NodeId(2))
            }
            concord_cluster::ClusterOutput::Tick { id: 3, .. } => {
                c.set_node_down(concord_sim::NodeId(0))
            }
            concord_cluster::ClusterOutput::Tick { id: 4, .. } => {
                c.set_node_up(concord_sim::NodeId(0))
            }
            concord_cluster::ClusterOutput::Tick { .. } => {}
            concord_cluster::ClusterOutput::Completed(op) => {
                d.ops += 1;
                if op.status == OpStatus::Timeout {
                    d.timeouts += 1;
                }
                if op.stale {
                    d.stale += 1;
                }
                d.latency_sum_us += op.latency().as_micros();
                fnv(&mut h, op.completed_at.as_micros());
                fnv(&mut h, op.returned_version.0);
            }
        }
    }
    d.checksum = h;
    maybe_print("repair", &d, &c);
    if std::env::var("GOLDEN_PRINT").is_ok() {
        let m = c.metrics();
        println!(
            "repair: hints=({}, {}, {}) pages={} streamed={} repair_bytes={}",
            m.hints_queued,
            m.hints_replayed,
            m.hints_dropped,
            m.repair_pages_compared,
            m.repair_records_streamed,
            m.repair_traffic.total(),
        );
    }

    assert_eq!(d.ops, 2_000, "every op completes exactly once");
    assert_eq!(c.inflight_ops(), 0);
    assert_eq!(c.inflight_write_payloads(), 0);
    let m = c.metrics();
    assert!(m.hints_queued > 0, "the outage must queue hints");
    assert!(
        m.repair_records_streamed > 0,
        "the crash must trigger streams"
    );
    assert_eq!(d.timeouts, GOLDEN_REPAIR.0);
    assert_eq!(d.stale, GOLDEN_REPAIR.1);
    assert_eq!(d.latency_sum_us, GOLDEN_REPAIR.2);
    assert_eq!(d.checksum, GOLDEN_REPAIR.3);
    assert_eq!(c.events_processed(), GOLDEN_REPAIR.4);
    assert_eq!(
        (m.hints_queued, m.hints_replayed, m.hints_dropped),
        GOLDEN_REPAIR.5
    );
    assert_eq!(m.repair_pages_compared, GOLDEN_REPAIR.6);
    assert_eq!(m.repair_records_streamed, GOLDEN_REPAIR.7);
    assert_eq!(m.repair_traffic.total(), GOLDEN_REPAIR.8);
}

/// Gray-failure scenario with the full resilience layer on: hedged reads
/// (2 ms), exponential retry backoff and health-aware dynamic replica
/// selection, against one node serving 10× slow mid-run (a gray failure —
/// it keeps answering, so nothing crashes) plus a transient hard outage of
/// another node (timeouts → backoff retries → breaker strikes). Pinned at
/// 1, 2 and 4 shards like the weak golden; the thread-count invariance of
/// the same shape is asserted in `tests/sharded_determinism.rs`. (Captured
/// at the introduction of the resilience layer; there is no pre-resilience
/// digest. Resilience **off** stays pinned by every other golden in this
/// file — the layer must add zero events and zero RNG draws when disabled.)
#[test]
fn golden_resilience_run() {
    for (i, shards) in [1u32, 2, 4].into_iter().enumerate() {
        let golden = GOLDEN_RESILIENCE[i];
        let mut cfg = ClusterConfig::lan_test(6, 3);
        cfg.topology = Topology::spread(
            6,
            &[("site-rennes", RegionId(0)), ("site-sophia", RegionId(0))],
        );
        cfg.network = NetworkModel::grid5000_like();
        cfg.strategy = ReplicationStrategy::NetworkTopology;
        cfg.read_repair = true;
        cfg.op_timeout = SimDuration::from_millis(60);
        cfg.retry_on_timeout = 2;
        cfg.resilience.hedge_delay = SimDuration::from_millis(2);
        cfg.resilience.backoff = true;
        cfg.read_selection = ReplicaSelection::Dynamic;
        cfg.shards = shards;
        let mut c = Cluster::new(cfg, 47);
        c.load_records((0..20u64).map(|k| (k, 200)));
        c.set_levels(ConsistencyLevel::One, ConsistencyLevel::One);
        // Alternating write → read churn, with every third read at CL ALL.
        // ALL-reads must contact every replica (the breaker can demote a
        // struggling node but not skip it, and with nothing left unused the
        // hedge has no target), so the ones whose replica set holds the
        // dead node are guaranteed onto the timeout → backoff → breaker
        // path in every shard count's sampled universe — while hedges keep
        // rescuing the ONE-reads stuck behind the gray or dead node.
        let mut at = SimTime::ZERO;
        for i in 0..4_000u64 {
            at += SimDuration::from_micros(500);
            let k = (i / 2) % 20;
            if i % 2 == 0 {
                c.submit_write_at(k, 200, at);
            } else if (i / 2) % 3 == 2 {
                c.submit_read_with(k, ConsistencyLevel::All, at);
            } else {
                c.submit_read_at(k, at);
            }
        }
        // Node 1 serves 10x slow from 300 ms to 1.5 s (the churn spans 2 s);
        // node 4 goes down hard from 450 ms to 1.65 s so timed-out scans
        // exercise the backoff wheel and trip its breaker.
        c.schedule_tick(SimTime::from_millis(300), 1);
        c.schedule_tick(SimTime::from_millis(1_500), 2);
        c.schedule_tick(SimTime::from_millis(450), 3);
        c.schedule_tick(SimTime::from_millis(1_650), 4);
        let mut d = RunDigest::default();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let fnv = |h: &mut u64, x: u64| {
            *h ^= x;
            *h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        while let Some(out) = c.advance() {
            match out {
                concord_cluster::ClusterOutput::Tick { id: 1, .. } => {
                    c.slow_node(concord_sim::NodeId(1), 10.0)
                }
                concord_cluster::ClusterOutput::Tick { id: 2, .. } => {
                    c.restore_node(concord_sim::NodeId(1))
                }
                concord_cluster::ClusterOutput::Tick { id: 3, .. } => {
                    c.set_node_down(concord_sim::NodeId(4))
                }
                concord_cluster::ClusterOutput::Tick { id: 4, .. } => {
                    c.set_node_up(concord_sim::NodeId(4))
                }
                concord_cluster::ClusterOutput::Tick { .. } => {}
                concord_cluster::ClusterOutput::Completed(op) => {
                    d.ops += 1;
                    if op.status == OpStatus::Timeout {
                        d.timeouts += 1;
                    }
                    if op.stale {
                        d.stale += 1;
                    }
                    d.latency_sum_us += op.latency().as_micros();
                    fnv(&mut h, op.completed_at.as_micros());
                    fnv(&mut h, op.returned_version.0);
                    fnv(&mut h, op.staleness_depth as u64);
                    fnv(&mut h, op.replicas_involved as u64);
                }
            }
        }
        d.checksum = h;
        maybe_print(&format!("resilience[shards={shards}]"), &d, &c);
        if capture_mode() {
            let m = c.metrics();
            println!(
                "resilience[shards={shards}]: hedged={} wins={} backoff={} \
                 breaker_opens={} hedge_bytes={}",
                m.hedged_requests,
                m.hedge_wins,
                m.backoff_retries,
                m.breaker_opens,
                m.hedge_traffic.total(),
            );
        }
        if capture_mode() {
            continue;
        }

        let m = c.metrics();
        assert_eq!(d.ops, 4_000, "every op completes exactly once");
        assert_eq!(c.inflight_ops(), 0, "hedged ops must not leak slab entries");
        assert_eq!(c.inflight_write_payloads(), 0);
        assert!(m.hedged_requests > 0, "the slow window must trigger hedges");
        assert!(m.hedge_wins > 0 && m.hedge_wins <= m.hedged_requests);
        assert!(m.backoff_retries > 0, "the outage must exercise backoff");
        assert!(m.breaker_opens > 0, "timeouts must trip the breaker");
        assert!(m.hedge_traffic.total() > 0);
        assert!(m.hedge_traffic.total() <= m.traffic.total());
        assert_eq!(d.timeouts, golden.0, "{shards} shards");
        assert_eq!(d.latency_sum_us, golden.1, "{shards} shards");
        assert_eq!(d.checksum, golden.2, "{shards} shards");
        assert_eq!(c.events_processed(), golden.3, "{shards} shards");
        assert_eq!(
            (
                m.hedged_requests,
                m.hedge_wins,
                m.backoff_retries,
                m.breaker_opens
            ),
            golden.4,
            "{shards} shards"
        );
        assert_eq!(m.hedge_traffic.total(), golden.5, "{shards} shards");
        assert_eq!(m.traffic.total(), golden.6, "{shards} shards");
    }
}

/// Partition/heal scenario: the two sites of a geo cluster partition and
/// later heal, under quorum churn — cross-site messages are lost while the
/// partition holds.
#[test]
fn golden_partition_heal_run() {
    let mut c = geo_cluster(37);
    c.load_records((0..30u64).map(|k| (k, 200)));
    c.set_levels(ConsistencyLevel::Quorum, ConsistencyLevel::Quorum);
    churn(&mut c, 3_000, 30, SimDuration::from_micros(400));
    // Partition at 200 ms, heal at 700 ms (the churn spans 1.2 s).
    c.schedule_tick(SimTime::from_millis(200), 1);
    c.schedule_tick(SimTime::from_millis(700), 2);
    let (a, b) = (concord_sim::DcId(0), concord_sim::DcId(1));
    let mut d = RunDigest::default();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let fnv = |h: &mut u64, x: u64| {
        *h ^= x;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    while let Some(out) = c.advance() {
        match out {
            concord_cluster::ClusterOutput::Tick { id: 1, .. } => c.partition_dcs(a, b),
            concord_cluster::ClusterOutput::Tick { id: 2, .. } => c.heal_dcs(a, b),
            concord_cluster::ClusterOutput::Tick { .. } => {}
            concord_cluster::ClusterOutput::Completed(op) => {
                d.ops += 1;
                if op.status == OpStatus::Timeout {
                    d.timeouts += 1;
                }
                if op.stale {
                    d.stale += 1;
                }
                d.latency_sum_us += op.latency().as_micros();
                fnv(&mut h, op.completed_at.as_micros());
                fnv(&mut h, op.returned_version.0);
            }
        }
    }
    d.checksum = h;
    maybe_print("partition_heal", &d, &c);

    assert_eq!(d.ops, 3_000);
    assert!(
        c.metrics().messages_lost > 0,
        "the partition drops messages"
    );
    assert!(!c.dcs_partitioned(a, b));
    assert_eq!(c.inflight_ops(), 0);
    assert_eq!(c.inflight_write_payloads(), 0);
    assert_eq!(d.timeouts, GOLDEN_PARTITION.0);
    assert_eq!(c.metrics().messages_lost, GOLDEN_PARTITION.1);
    assert_eq!(d.latency_sum_us, GOLDEN_PARTITION.2);
    assert_eq!(d.checksum, GOLDEN_PARTITION.3);
    assert_eq!(c.events_processed(), GOLDEN_PARTITION.4);
}

/// YCSB-E-style scan scenario: alternating writes and short range scans over
/// a geo cluster at weak levels. Pins the full scan path — per-replica range
/// reads through the dense store, per-record storage-read metering,
/// byte-weighted response traffic, anchor-based staleness — byte-for-byte.
/// (Captured at the introduction of the range-read path; scans previously
/// read only their anchor record, so there is no pre-refactor digest.)
#[test]
fn golden_ycsb_e_scan_run() {
    for (i, shards) in [1u32, 2, 4].into_iter().enumerate() {
        let golden = GOLDEN_SCAN[i];
        let mut c = geo_cluster_sharded(43, shards);
        c.load_records((0..200u64).map(|k| (k, 200)));
        c.set_levels(ConsistencyLevel::One, ConsistencyLevel::One);
        let mut at = SimTime::ZERO;
        // 5% inserts-as-updates / 95% scans is workload E's shape; interleave
        // writes so scans race propagation (staleness through the anchor).
        for i in 0..3_000u64 {
            at += SimDuration::from_micros(400);
            // Scans anchor on the most recently written key, so they race its
            // propagation window exactly like the Figure-1 point reads do.
            let hot = (i / 4) % 200;
            if i % 4 == 0 {
                c.submit_write_at(hot, 200, at);
            } else {
                let len = 1 + (i % 40) as u32;
                c.submit_scan_at(hot, len, at);
            }
        }
        let d = digest(&mut c);
        maybe_print(&format!("ycsb_e_scan[shards={shards}]"), &d, &c);
        if capture_mode() {
            continue;
        }

        assert_eq!(d.ops, 3_000);
        assert_eq!(d.timeouts, 0);
        assert_eq!(d.stale, golden.0, "{shards} shards");
        assert_eq!(d.latency_sum_us, golden.1, "{shards} shards");
        assert_eq!(d.checksum, golden.2, "{shards} shards");
        assert_eq!(c.events_processed(), golden.3, "{shards} shards");
        assert_eq!(
            (c.metrics().storage_read_ops, c.metrics().storage_write_ops),
            golden.4,
            "scans are metered one storage read per probed record"
        );
        assert_eq!(c.metrics().traffic.total(), golden.5, "{shards} shards");
        // Sanity: the scan mix probes far more records than it completes reads
        // (mean scan length ~20 over 2250 scans).
        assert!(c.metrics().storage_read_ops > 40_000);
    }
}

/// Ordered-partitioner YCSB-E scan scenario: the same weak-level scan churn
/// as the hash golden above, but under contiguous key-range ownership and a
/// record space spanning two ownership slices, so a steady share of the
/// scans straddles the boundary and gathers from both segments' owners.
/// Pins the ordered placement, the segment fan-out, multi-replica gather
/// and the full-coverage contract byte-for-byte. (Captured at the
/// introduction of the ordered partitioner; there is no pre-refactor
/// digest.)
#[test]
fn golden_ordered_scan_run() {
    let mut cfg = ClusterConfig::lan_test(6, 5);
    cfg.topology = Topology::spread(
        6,
        &[("site-rennes", RegionId(0)), ("site-sophia", RegionId(0))],
    );
    cfg.network = NetworkModel::grid5000_like();
    cfg.strategy = ReplicationStrategy::NetworkTopology;
    cfg.read_repair = true;
    cfg.partitioner = Partitioner::Ordered;
    let mut c = Cluster::new(cfg, 43);
    let records = 2 * ORDERED_SLICE_KEYS;
    c.load_records((0..records).map(|k| (k, 200)));
    c.set_levels(ConsistencyLevel::One, ConsistencyLevel::One);
    let mut at = SimTime::ZERO;
    let mut scanned_records = 0u64;
    let mut boundary_scans = 0u64;
    for i in 0..3_000u64 {
        at += SimDuration::from_micros(400);
        // Each group of four ops shares one anchor (one write, three scans
        // racing its propagation window, like the hash scan golden). Odd
        // groups pin the anchor just below the ownership boundary so a
        // steady share of scans crosses it; even groups stride over the
        // whole two-slice space.
        let group = i / 4;
        let hot = if group % 2 == 1 {
            ORDERED_SLICE_KEYS - 1 - (group % 20)
        } else {
            (group * 131) % (records - 40)
        };
        if i % 4 == 0 {
            c.submit_write_at(hot, 200, at);
        } else {
            let len = 1 + (i % 40) as u32;
            if hot < ORDERED_SLICE_KEYS && hot + len as u64 > ORDERED_SLICE_KEYS {
                boundary_scans += 1;
            }
            scanned_records += len as u64;
            c.submit_scan_at(hot, len, at);
        }
    }
    assert!(
        boundary_scans > 10,
        "the scenario must keep straddling the ownership boundary ({boundary_scans})"
    );
    let mut records_returned = 0u64;
    let mut d = RunDigest::default();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let fnv = |h: &mut u64, x: u64| {
        *h ^= x;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for op in c.run_to_completion(u64::MAX) {
        d.ops += 1;
        if op.stale {
            d.stale += 1;
        }
        if op.status == OpStatus::Timeout {
            d.timeouts += 1;
        }
        d.latency_sum_us += op.latency().as_micros();
        records_returned += op.records_returned as u64;
        fnv(&mut h, op.completed_at.as_micros());
        fnv(&mut h, op.returned_version.0);
        fnv(&mut h, op.records_returned as u64);
    }
    d.checksum = h;
    maybe_print("ordered_scan", &d, &c);
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("ordered_scan records_returned={records_returned} (submitted {scanned_records})");
    }

    assert_eq!(d.ops, 3_000);
    assert_eq!(d.timeouts, 0);
    // The full-coverage contract, in aggregate: every scanned record that
    // exists is returned (anchors stay ≥ 40 below the end of the loaded
    // space, so every probed slot exists).
    assert_eq!(
        records_returned, scanned_records,
        "ordered scans must return exactly their contiguous ranges"
    );
    assert_eq!(d.stale, GOLDEN_ORDERED.0);
    assert_eq!(d.latency_sum_us, GOLDEN_ORDERED.1);
    assert_eq!(d.checksum, GOLDEN_ORDERED.2);
    assert_eq!(c.events_processed(), GOLDEN_ORDERED.3);
    assert_eq!(
        (c.metrics().storage_read_ops, c.metrics().storage_write_ops),
        GOLDEN_ORDERED.4,
        "segmented scans stay metered one storage read per probed record"
    );
    assert_eq!(c.metrics().traffic.total(), GOLDEN_ORDERED.5);
}

// Captured values, one tuple per shard count [1, 2, 4] (see the module
// docs: shards=1 is the pre-refactor serial digest and predates the
// parallel engine; the shards>1 tuples were captured with GOLDEN_PRINT=1
// when parallel execution landed and are thread-count-invariant):
// (stale, latency_sum_us, checksum, events, now_us, messages, traffic_total,
//  traffic_inter_dc, (storage_read_ops, storage_write_ops)).
type WeakGolden = (u64, u64, u64, u64, u64, u64, u64, u64, (u64, u64));
const GOLDEN_WEAK: [WeakGolden; 3] = [
    (
        827,
        1_738_104,
        9473355854552743838,
        44_000,
        12_000_000,
        24_000,
        4_320_000,
        1_785_960,
        (2_000, 10_000),
    ),
    (
        863,
        1_744_239,
        5111835488427010063,
        44_000,
        12_000_000,
        24_000,
        4_320_000,
        1_804_680,
        (2_000, 10_000),
    ),
    (
        840,
        1_754_506,
        2730432402454974043,
        44_000,
        12_000_000,
        24_000,
        4_320_000,
        1_796_400,
        (2_000, 10_000),
    ),
];
// (latency_sum_us, checksum, events, now_us), per shard count [1, 2, 4].
const GOLDEN_QUORUM: [(u64, u64, u64, u64); 3] = [
    (45_593_949, 7203024975233682314, 45_738, 10_900_000),
    (44_868_937, 14999936417424129039, 45_846, 10_900_000),
    (45_214_288, 1715814602399151384, 45_852, 10_900_000),
];
// (timeouts, latency_sum_us, checksum, events).
const GOLDEN_FAILURE: (u64, u64, u64, u64) = (107, 5_735_824, 5079826259043572358, 3_879);
// Fault-scenario digests (captured at the introduction of fault injection;
// re-capture with GOLDEN_PRINT=1 after intentional semantic changes):
// (timeouts, retries, latency_sum_us, checksum, events).
const GOLDEN_CRASH: (u64, u64, u64, u64, u64) = (61, 147, 18_554_388, 18292732308431460120, 16_744);
// Repair-plane digest (captured at the introduction of the repair plane;
// re-capture with GOLDEN_PRINT=1 after intentional semantic changes):
// (timeouts, stale, latency_sum_us, checksum, events,
//  (hints_queued, hints_replayed, hints_dropped), repair_pages_compared,
//  repair_records_streamed, repair_traffic_total).
type HintCounters = (u64, u64, u64);
const GOLDEN_REPAIR: (u64, u64, u64, u64, u64, HintCounters, u64, u64, u64) = (
    59,
    0,
    18_510_376,
    7688465609908642402,
    17_526,
    (187, 187, 0),
    64,
    81,
    65_756,
);
// Resilience-layer digest (captured at the introduction of the resilience
// layer; re-capture with GOLDEN_PRINT=1 after intentional semantic
// changes): per shard count [1, 2, 4], (timeouts, latency_sum_us, checksum,
// events, (hedged_requests, hedge_wins, backoff_retries, breaker_opens),
// hedge_traffic_total, traffic_total).
type ResilienceGolden = (u64, u64, u64, u64, (u64, u64, u64, u64), u64, u64);
const GOLDEN_RESILIENCE: [ResilienceGolden; 3] = [
    (
        193,
        61_440_586,
        4613832723449410810,
        42_488,
        (127, 31, 465, 102),
        12_700,
        3_677_500,
    ),
    (
        190,
        67_258_781,
        2276998821231081281,
        43_027,
        (137, 44, 467, 161),
        13_700,
        3_693_100,
    ),
    (
        189,
        60_936_675,
        13268572294427135746,
        42_904,
        (134, 30, 460, 166),
        13_400,
        3_684_000,
    ),
];
// (timeouts, messages_lost, latency_sum_us, checksum, events).
const GOLDEN_PARTITION: (u64, u64, u64, u64, u64) =
    (649, 1_946, 6_516_290_287, 9876085233809652447, 38_442);
// Scan-scenario digest (shards=1 captured at the introduction of the
// range-read path; shards>1 with GOLDEN_PRINT=1 when parallel execution
// landed; re-capture after intentional semantic changes): per shard count
// [1, 2, 4], (stale, latency_sum_us, checksum, events, (storage_read_ops,
//  storage_write_ops), traffic_total).
type ScanGolden = (u64, u64, u64, u64, (u64, u64), u64);
const GOLDEN_SCAN: [ScanGolden; 3] = [
    (
        993,
        1_419_731,
        306768600784371757,
        24_000,
        (47_250, 3_750),
        9_266_200,
    ),
    (
        1_002,
        1_422_401,
        4008009353691089535,
        24_000,
        (47_250, 3_750),
        9_213_600,
    ),
    (
        1_001,
        1_406_605,
        17874967739256141859,
        24_000,
        (47_250, 3_750),
        9_200_600,
    ),
];
// Ordered-partitioner scan digest (captured at the introduction of the
// ordered partitioner; re-capture with GOLDEN_PRINT=1 after intentional
// semantic changes): (stale, latency_sum_us, checksum, events,
// (storage_read_ops, storage_write_ops), traffic_total).
const GOLDEN_ORDERED: (u64, u64, u64, u64, (u64, u64), u64) = (
    1_002,
    1_572_569,
    9619850606259622177,
    26_931,
    (47_250, 3_750),
    11_316_320,
);
