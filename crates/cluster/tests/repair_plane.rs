//! End-to-end repair-plane behaviour under a crash/recover fault.
//!
//! The scenario pins the failure mode the repair plane exists to fix: a
//! crashed node rejoins the ring with whatever its store held at crash
//! time, and — without repair — serves those stale versions to every
//! level-ONE read that lands on it until the next write to each key
//! happens to refresh it. With `RepairMode::Full`, queued hints replay and
//! the recovery migration streams the missed writes back in before the
//! spike can form.

use concord_cluster::{
    Cluster, ClusterConfig, ClusterOutput, ConsistencyLevel, OpKind, RepairConfig, RepairMode,
    ReplicaSelection,
};
use concord_sim::{NodeId, SimDuration, SimTime};

const KEYS: u64 = 40;
const CRASH_AT_MS: u64 = 400;
const RECOVER_AT_MS: u64 = 1200;
/// Post-recovery observation window. Each key is rewritten every 16 ms, so
/// a longer window lets the organic write stream refresh the recovered
/// node on its own and dilute exactly the spike being measured: within the
/// first 16 ms, every read targets a key whose last write the crashed node
/// missed.
const POST_WINDOW_MS: u64 = 16;

/// Run the crash/recover workload and return the level-ONE stale-read
/// rates (stale reads / reads) for reads issued in the pre-crash window
/// and in the first [`POST_WINDOW_MS`] after recovery.
fn windowed_stale_rates(mode: RepairMode) -> (f64, f64) {
    let mut cfg = ClusterConfig::lan_test(6, 3);
    cfg.repair = RepairConfig::with_mode(mode);
    let mut c = Cluster::new(cfg, 2013);
    // Spread level-ONE reads uniformly over the replicas — with the default
    // snitch-like `Closest` selection a uniform LAN almost never reads from
    // the recovered node, hiding exactly the staleness this test measures.
    c.set_replica_selection(ReplicaSelection::Random);
    c.load_records((0..KEYS).map(|k| (k, 150)));

    // Alternating write/read stream, every 200 µs, for 2.4 s. Reads target
    // a key written ~16 ms earlier, so in a healthy cluster asynchronous
    // propagation has long finished and the baseline stale rate is tiny.
    for i in 0..12_000u64 {
        let at = SimTime::from_micros(i * 200);
        if i % 2 == 0 {
            c.submit_write_with((i / 2) % KEYS, 150, ConsistencyLevel::One, at);
        } else {
            c.submit_read_with((i / 2 + KEYS / 2) % KEYS, ConsistencyLevel::One, at);
        }
    }
    c.schedule_tick(SimTime::from_millis(CRASH_AT_MS), 1);
    c.schedule_tick(SimTime::from_millis(RECOVER_AT_MS), 2);

    let victim = NodeId(2);
    let mut done = Vec::new();
    while let Some(out) = c.advance() {
        match out {
            ClusterOutput::Tick { id: 1, .. } => c.crash_node(victim),
            ClusterOutput::Tick { id: 2, .. } => c.recover_node(victim),
            ClusterOutput::Tick { .. } => {}
            ClusterOutput::Completed(op) => done.push(op),
        }
    }

    let rate = |from: SimTime, to: SimTime| {
        let reads = done
            .iter()
            .filter(|o| o.kind == OpKind::Read && o.issued_at >= from && o.issued_at < to);
        let (mut total, mut stale) = (0u64, 0u64);
        for r in reads {
            total += 1;
            if r.stale {
                stale += 1;
            }
        }
        assert!(total > 0, "window [{from:?}, {to:?}) holds no reads");
        stale as f64 / total as f64
    };
    let pre = rate(SimTime::ZERO, SimTime::from_millis(CRASH_AT_MS));
    let post = rate(
        SimTime::from_millis(RECOVER_AT_MS),
        SimTime::from_millis(RECOVER_AT_MS) + SimDuration::from_millis(POST_WINDOW_MS),
    );
    (pre, post)
}

/// Regression pin for the pre-repair failure mode: the recovered node
/// serves its crash-time store, so the post-recovery window shows a stale
/// spike far above the pre-crash baseline.
#[test]
fn recovery_without_repair_serves_a_stale_read_spike() {
    let (pre, post) = windowed_stale_rates(RepairMode::Off);
    assert!(
        post > (4.0 * pre).max(0.05),
        "expected a post-recovery stale spike without repair \
         (pre-crash {pre:.4}, post-recovery {post:.4})"
    );
}

/// Acceptance: with the full repair plane the post-recovery stale rate is
/// within 2x of the pre-crash baseline (with a 2-percentage-point floor so
/// a near-zero baseline does not make the bound vacuous), i.e. the spike
/// the test above pins is gone.
#[test]
fn full_repair_holds_post_recovery_staleness_at_the_baseline() {
    let (pre, post) = windowed_stale_rates(RepairMode::Full);
    assert!(
        post <= (2.0 * pre).max(0.02),
        "full repair must restore the recovered node before it serves reads \
         (pre-crash {pre:.4}, post-recovery {post:.4})"
    );
    let (_, spike) = windowed_stale_rates(RepairMode::Off);
    assert!(
        post < spike / 2.0,
        "repair must clearly beat the unrepaired spike ({post:.4} vs {spike:.4})"
    );
}
