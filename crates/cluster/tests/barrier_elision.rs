//! Barrier elision must be an *optimization*, never a semantic change.
//!
//! The sharded engine closes every lookahead window by delivering staged
//! cross-shard data-plane messages, but since the elision PR the serial
//! control-plane fold (oracle updates, deferred read classification,
//! output publication) only runs when staged control effects or the
//! deferred-completion buffer demand it. This suite pins the contract from
//! both sides:
//!
//! * **Property test**: randomized open-loop fault/arrival scripts must
//!   produce byte-identical observable fingerprints with elision on
//!   (`eager_folds = false`, the default) and off (`eager_folds = true`)
//!   at 2 and 4 shards. Only the fold-accounting counters may differ —
//!   a fold can never be skipped when a window staged control effects or
//!   fold-time RNG draws, so everything observable is invariant. The
//!   scripts are open-loop (`submit_batch` plus tick-scripted faults)
//!   because a *closed-loop* driver that reacts to outputs mid-run is
//!   allowed to diverge: elision batches output publication, so reaction
//!   points shift.
//! * **Counters**: a quiet-period scenario (two bursts separated by a long
//!   idle gap) must elide barriers and fast-forward across the gap, and a
//!   serial (`shards = 1`) run must report both counters as exactly zero.

use concord_cluster::{
    BatchOp, Cluster, ClusterConfig, ClusterOutput, ConsistencyLevel, ReplicationStrategy,
};
use concord_sim::{DcId, NetworkModel, NodeId, RegionId, SimDuration, SimTime, Topology};

/// Deterministic script generator (xorshift64*); the suite must not depend
/// on ambient randomness, so each property-test case derives everything
/// from its explicit seed.
struct Script(u64);

impl Script {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Everything observable about a drained run *except* the fold-accounting
/// counters (`barrier_folds` / `elided_barriers` differ between the two
/// modes by construction — that is the optimization).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Observable {
    ops: u64,
    timeouts: u64,
    stale: u64,
    latency_sum_us: u64,
    checksum: u64,
    events: u64,
    now_us: u64,
    messages: u64,
    messages_lost: u64,
    traffic_total: u64,
    storage_ops: (u64, u64),
    retries: u64,
    oracle_stale: u64,
    // Window geometry is fold-independent: the end of a window depends
    // only on lane contents, which elision never changes.
    windows: u64,
    staged: u64,
    violations: u64,
    fast_forwards: u64,
}

fn drain(c: &mut Cluster, mut on_tick: impl FnMut(&mut Cluster, u64)) -> Observable {
    let mut ops = 0u64;
    let mut timeouts = 0u64;
    let mut stale = 0u64;
    let mut latency_sum_us = 0u64;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let fnv = |h: &mut u64, x: u64| {
        *h ^= x;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    while let Some(out) = c.advance() {
        match out {
            ClusterOutput::Tick { id, .. } => on_tick(c, id),
            ClusterOutput::Completed(op) => {
                ops += 1;
                if op.status == concord_cluster::OpStatus::Timeout {
                    timeouts += 1;
                }
                if op.stale {
                    stale += 1;
                }
                latency_sum_us += op.latency().as_micros();
                fnv(&mut h, op.completed_at.as_micros());
                fnv(&mut h, op.returned_version.0);
                fnv(&mut h, op.staleness_depth as u64);
                fnv(&mut h, op.records_returned as u64);
            }
        }
    }
    let m = c.shard_metrics();
    Observable {
        ops,
        timeouts,
        stale,
        latency_sum_us,
        checksum: h,
        events: c.events_processed(),
        now_us: c.now().as_micros(),
        messages: c.metrics().messages,
        messages_lost: c.metrics().messages_lost,
        traffic_total: c.metrics().traffic.total(),
        storage_ops: (c.metrics().storage_read_ops, c.metrics().storage_write_ops),
        retries: c.metrics().retries,
        oracle_stale: c.oracle().stale_reads(),
        windows: m.windows,
        staged: m.staged,
        violations: m.violations,
        fast_forwards: m.fast_forwards,
    }
}

/// A two-site geo cluster (DC-aligned shard cut at `shards = 2`).
fn two_site_config(shards: u32, eager_folds: bool) -> ClusterConfig {
    let mut cfg = ClusterConfig::lan_test(6, 3);
    cfg.topology = Topology::spread(
        6,
        &[("site-east", RegionId(0)), ("site-south", RegionId(0))],
    );
    cfg.network = NetworkModel::grid5000_like();
    cfg.strategy = ReplicationStrategy::NetworkTopology;
    cfg.read_repair = true;
    cfg.op_timeout = SimDuration::from_millis(80);
    cfg.retry_on_timeout = 1;
    cfg.shards = shards;
    cfg.eager_folds = eager_folds;
    cfg
}

/// One randomized open-loop case: a scripted arrival batch (reads, writes,
/// scans at jittered gaps over a hot key range) plus a scripted fault
/// timeline (crash/recover one node, partition/heal the two sites) whose
/// tick times are drawn off any delay grid.
fn run_case(seed: u64, shards: u32, eager_folds: bool) -> Observable {
    let mut c = Cluster::new(two_site_config(shards, eager_folds), seed);
    c.load_records((0..48u64).map(|k| (k, 150)));
    c.set_levels(ConsistencyLevel::One, ConsistencyLevel::One);

    let mut s = Script(seed | 1);
    let mut at = 0u64;
    let mut batch = Vec::with_capacity(2_500);
    for _ in 0..2_500 {
        at += 120 + s.below(700);
        let key = s.below(48);
        let t = SimTime::from_micros(at);
        batch.push(match s.below(10) {
            0..=3 => BatchOp::write(t, key, 100 + s.below(150) as u32),
            9 => BatchOp::scan(t, key, 2 + s.below(20) as u32),
            _ => BatchOp::read(t, key),
        });
    }
    c.submit_batch(batch);

    // Fault timeline: windows ordered by construction, times jittered off
    // the link-delay grid so ticks land mid-window.
    let span = at; // the arrival horizon, in µs
    let crash_at = span / 5 + s.below(10_000) + 137;
    let recover_at = crash_at + span / 4 + s.below(10_000);
    let part_at = recover_at + span / 10 + s.below(10_000);
    let heal_at = part_at + span / 6 + s.below(10_000);
    c.schedule_tick(SimTime::from_micros(crash_at), 1);
    c.schedule_tick(SimTime::from_micros(recover_at), 2);
    c.schedule_tick(SimTime::from_micros(part_at), 3);
    c.schedule_tick(SimTime::from_micros(heal_at), 4);
    let victim = NodeId(s.below(6) as u32);
    drain(&mut c, |c, id| match id {
        1 => c.crash_node(victim),
        2 => c.recover_node(victim),
        3 => c.partition_dcs(DcId(0), DcId(1)),
        4 => c.heal_dcs(DcId(0), DcId(1)),
        _ => {}
    })
}

/// Satellite (PR 10): elision on vs off is observably byte-identical at 2
/// and 4 shards across randomized fault/arrival scripts — a fold may be
/// *deferred*, never *changed*.
#[test]
fn elision_on_and_off_are_byte_identical() {
    for seed in [11u64, 29, 83] {
        for shards in [2u32, 4] {
            let elided = run_case(seed, shards, false);
            let eager = run_case(seed, shards, true);
            assert_eq!(
                elided, eager,
                "seed {seed}, {shards} shards: elision perturbed the run"
            );
            assert!(elided.ops > 0, "the script must complete operations");
        }
    }
}

/// With elision on (the default), the same scripts must actually elide
/// folds — otherwise the property test above is vacuous — while the eager
/// mode folds every window.
#[test]
fn elision_actually_elides_and_eager_mode_does_not() {
    let mut c = Cluster::new(two_site_config(2, false), 11);
    c.load_records((0..48u64).map(|k| (k, 150)));
    let mut at = SimTime::ZERO;
    for i in 0..1_000u64 {
        at += SimDuration::from_micros(400);
        if i % 2 == 0 {
            c.submit_write_at(i % 48, 150, at);
        } else {
            c.submit_read_at(i % 48, at);
        }
    }
    drain(&mut c, |_, _| {});
    let m = c.shard_metrics();
    assert!(
        m.elided_barriers > 0,
        "a healthy open-loop run must skip folds on quiet windows"
    );
    assert!(
        m.barrier_folds + m.elided_barriers >= m.windows,
        "every window either folds or is counted as elided"
    );

    let mut c = Cluster::new(two_site_config(2, true), 11);
    c.load_records((0..48u64).map(|k| (k, 150)));
    let mut at = SimTime::ZERO;
    for i in 0..1_000u64 {
        at += SimDuration::from_micros(400);
        if i % 2 == 0 {
            c.submit_write_at(i % 48, 150, at);
        } else {
            c.submit_read_at(i % 48, at);
        }
    }
    drain(&mut c, |_, _| {});
    let m = c.shard_metrics();
    assert_eq!(m.elided_barriers, 0, "eager mode must fold every window");
    assert!(
        m.barrier_folds >= m.windows,
        "eager mode folds at least once per window"
    );
}

/// A quiet-period scenario — two bursts separated by a long idle gap —
/// must both elide barriers (healthy windows stage no control effects)
/// and fast-forward across the gap instead of marching barrier-by-barrier
/// through empty simulated time.
#[test]
fn quiet_periods_elide_and_fast_forward() {
    let mut cfg = ClusterConfig::lan_test(6, 3);
    cfg.shards = 2;
    let mut c = Cluster::new(cfg, 7);
    c.load_records((0..32u64).map(|k| (k, 120)));
    let burst = |start_us: u64| {
        (0..400u64).map(move |i| {
            let t = SimTime::from_micros(start_us + i * 250);
            if i % 2 == 0 {
                BatchOp::write(t, i % 32, 120)
            } else {
                BatchOp::read(t, i % 32)
            }
        })
    };
    // Two bursts, 5 simulated seconds of silence in between.
    c.submit_batch(burst(0).chain(burst(5_000_000)).collect::<Vec<_>>());
    drain(&mut c, |_, _| {});
    let m = c.shard_metrics();
    assert!(m.windows > 0);
    assert!(
        m.elided_barriers > 0,
        "quiet windows must skip the serial fold"
    );
    assert!(
        m.fast_forwards > 0,
        "the idle gap must be crossed by a cursor jump, not barrier-by-barrier"
    );
}

/// The serial engine never windows, so it can neither elide nor
/// fast-forward: both counters must be exactly zero at `shards = 1`.
#[test]
fn serial_runs_report_zero_elision_counters() {
    let mut cfg = ClusterConfig::lan_test(5, 3);
    cfg.shards = 1;
    let mut c = Cluster::new(cfg, 7);
    c.load_records((0..16u64).map(|k| (k, 120)));
    let mut at = SimTime::ZERO;
    for i in 0..500u64 {
        at += SimDuration::from_micros(300);
        if i % 2 == 0 {
            c.submit_write_at(i % 16, 120, at);
        } else {
            c.submit_read_at(i % 16, at);
        }
    }
    let fp = drain(&mut c, |_, _| {});
    assert!(fp.ops > 0);
    let m = c.shard_metrics();
    assert_eq!(
        (m.windows, m.elided_barriers, m.fast_forwards),
        (0, 0, 0),
        "the serial path must bypass window bookkeeping entirely"
    );
}
