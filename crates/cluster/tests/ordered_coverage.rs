//! Range-scan coverage under the two partitioners.
//!
//! PR 4 made scan *costs* faithful (per-record storage reads, byte-weighted
//! responses) but under hash partitioning a contacted replica can only
//! return the subset of the range it owns — Cassandra's random-partitioner
//! semantics. The ordered partitioner closes the coverage gap: a slice's
//! owners hold every record in it, and scans straddling an ownership
//! boundary gather the remainder from the next slice's owners. These tests
//! pin both semantics via [`CompletedOp::records_returned`].

use concord_cluster::{
    Cluster, ClusterConfig, ClusterOutput, ConsistencyLevel, OpKind, OpStatus, Partitioner,
    ORDERED_SLICE_KEYS,
};
use concord_sim::{SimDuration, SimTime};

/// A single-DC cluster with the requested partitioner, loaded with `records`
/// dense keys (enough to span the first two ownership slices).
fn loaded_cluster(partitioner: Partitioner, nodes: usize, rf: u32, records: u64) -> Cluster {
    let mut cfg = ClusterConfig::lan_test(nodes, rf);
    cfg.partitioner = partitioner;
    let mut c = Cluster::new(cfg, 77);
    c.load_records((0..records).map(|k| (k, 100)));
    c
}

fn run_one(c: &mut Cluster) -> Vec<concord_cluster::CompletedOp> {
    c.run_to_completion(u64::MAX)
}

#[test]
fn ordered_scan_returns_exactly_scan_len_contiguous_records() {
    let mut c = loaded_cluster(Partitioner::Ordered, 6, 3, 2 * ORDERED_SLICE_KEYS);
    c.submit_scan_with(100, 25, ConsistencyLevel::One, SimTime::ZERO);
    let done = run_one(&mut c);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].kind, OpKind::Read);
    assert_eq!(done[0].status, OpStatus::Ok);
    assert_eq!(
        done[0].records_returned, 25,
        "an in-slice ordered scan covers its whole contiguous range"
    );
    assert!(!done[0].stale, "a quiescent scan reads fresh data");
}

#[test]
fn ordered_scan_gathers_the_full_range_across_an_ownership_boundary() {
    let mut c = loaded_cluster(Partitioner::Ordered, 6, 3, 2 * ORDERED_SLICE_KEYS);
    // Slices 0 and 1 have different owners (adjacent slices round-robin), so
    // this scan must fan out to both segments' replicas and gather.
    let anchor = ORDERED_SLICE_KEYS - 6;
    let contacted_before = c.metrics().read_replicas_contacted;
    let (reads_before, _) = c.storage_op_totals();
    c.submit_scan_with(anchor, 20, ConsistencyLevel::One, SimTime::ZERO);
    let done = run_one(&mut c);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].status, OpStatus::Ok);
    assert_eq!(
        done[0].records_returned, 20,
        "a boundary-straddling ordered scan still covers the full range"
    );
    assert_eq!(
        c.metrics().read_replicas_contacted - contacted_before,
        2,
        "level ONE contacts one replica per ownership segment"
    );
    let (reads_after, _) = c.storage_op_totals();
    assert_eq!(
        reads_after - reads_before,
        20,
        "each segment's replica probes exactly its sub-range (6 + 14 slots)"
    );
    // The two segments' owners differ: different primaries serve the scan.
    assert_ne!(c.replicas_of(anchor), c.replicas_of(ORDERED_SLICE_KEYS));
}

#[test]
fn hash_scans_retain_subset_semantics() {
    // Same scan, hash partitioning: consecutive ids scatter over the ring,
    // so the single data replica returns only the records it owns — PR 4's
    // cost-faithful but coverage-partial behaviour.
    let mut c = loaded_cluster(Partitioner::Hash, 6, 3, 2 * ORDERED_SLICE_KEYS);
    c.submit_scan_with(100, 25, ConsistencyLevel::One, SimTime::ZERO);
    let done = run_one(&mut c);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].status, OpStatus::Ok);
    assert!(
        done[0].records_returned < 25,
        "a hash-placed replica owns only a subset of the range (got {})",
        done[0].records_returned
    );
    assert!(
        done[0].records_returned > 0,
        "the data replica owns some of the range"
    );
}

#[test]
fn ordered_point_reads_and_writes_behave_like_hash_ones() {
    // The partitioner changes *where* records live, not the protocol:
    // point ops succeed at every level and quorum intersection still
    // guarantees freshness.
    let mut c = loaded_cluster(Partitioner::Ordered, 5, 5, 64);
    c.set_levels(ConsistencyLevel::Quorum, ConsistencyLevel::Quorum);
    let mut at = SimTime::ZERO;
    for i in 0..400u64 {
        at += SimDuration::from_micros(200);
        if i % 2 == 0 {
            c.submit_write_at((i / 2) % 10, 100, at);
        } else {
            c.submit_read_at((i / 2) % 10, at);
        }
    }
    let done = run_one(&mut c);
    assert_eq!(done.len(), 400);
    assert!(done.iter().all(|o| o.status == OpStatus::Ok));
    let stale = done.iter().filter(|o| o.stale).count();
    assert_eq!(stale, 0, "R+W>N can never be stale, ordered or not");
    let point_reads: Vec<_> = done.iter().filter(|o| o.kind == OpKind::Read).collect();
    assert!(point_reads.iter().all(|o| o.records_returned == 1));
    assert_eq!(c.inflight_ops(), 0);
}

#[test]
fn ordered_scans_retry_with_full_coverage() {
    // A timed-out ordered scan re-issues with its full range and gathers
    // complete coverage once the cluster heals.
    let mut cfg = ClusterConfig::lan_test(6, 3);
    cfg.partitioner = Partitioner::Ordered;
    cfg.op_timeout = SimDuration::from_millis(50);
    cfg.retry_on_timeout = 2;
    let mut c = Cluster::new(cfg, 9);
    c.load_records((0..2 * ORDERED_SLICE_KEYS).map(|k| (k, 100)));
    for n in 0..6 {
        c.set_node_down(concord_sim::NodeId(n));
    }
    let anchor = ORDERED_SLICE_KEYS - 4;
    c.submit_scan_with(anchor, 12, ConsistencyLevel::One, SimTime::ZERO);
    c.schedule_tick(SimTime::from_millis(60), 1);
    let mut done = Vec::new();
    while let Some(out) = c.advance() {
        match out {
            ClusterOutput::Tick { id: 1, .. } => {
                for n in 0..6 {
                    c.set_node_up(concord_sim::NodeId(n));
                }
            }
            ClusterOutput::Completed(op) => done.push(op),
            ClusterOutput::Tick { .. } => {}
        }
    }
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].status, OpStatus::Ok, "the retry must succeed");
    assert!(c.metrics().retries >= 1);
    assert_eq!(
        done[0].records_returned, 12,
        "the retried scan gathers its full boundary-straddling range"
    );
}

#[test]
#[should_panic(expected = "at most 2^16 ownership slices")]
fn oversized_ordered_scans_are_rejected_at_submission() {
    // Segment ids are 16-bit: a range spanning more than 2^16 slices fails
    // fast at submit time instead of panicking mid-simulation.
    let mut c = loaded_cluster(Partitioner::Ordered, 4, 3, 16);
    c.submit_scan_at(0, u32::MAX, SimTime::ZERO);
}

#[test]
fn ordered_runs_are_deterministic_and_leak_free() {
    let run = || {
        let mut c = loaded_cluster(Partitioner::Ordered, 6, 3, 2 * ORDERED_SLICE_KEYS);
        c.set_levels(ConsistencyLevel::One, ConsistencyLevel::One);
        let mut at = SimTime::ZERO;
        for i in 0..600u64 {
            at += SimDuration::from_micros(300);
            let hot = (i * 37) % (2 * ORDERED_SLICE_KEYS - 40);
            if i % 4 == 0 {
                c.submit_write_at(hot, 100, at);
            } else {
                c.submit_scan_at(hot, 1 + (i % 30) as u32, at);
            }
        }
        let done = run_one(&mut c);
        assert_eq!(c.inflight_ops(), 0, "multi-segment scans must not leak");
        assert_eq!(c.inflight_write_payloads(), 0);
        done
    };
    assert_eq!(run(), run(), "fixed seed ⇒ identical ordered run");
}
